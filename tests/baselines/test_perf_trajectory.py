"""The perf-trajectory gate: checked-in records must not regress."""

from __future__ import annotations

import importlib.util
import json
import sys
from pathlib import Path

import pytest

_BENCH_DIR = Path(__file__).resolve().parents[2] / "benchmarks"


@pytest.fixture(scope="module")
def checker():
    spec = importlib.util.spec_from_file_location(
        "check_perf_trajectory", _BENCH_DIR / "check_perf_trajectory.py"
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


class TestMetricExtraction:
    def test_checked_in_records_yield_metrics(self, checker) -> None:
        metrics = checker.collect_metrics(_BENCH_DIR)
        # Every record the repo checks in must contribute headline
        # ratios, or the gate silently watches nothing.
        assert any(k.startswith("infer.") for k in metrics)
        assert any(k.startswith("retract.") for k in metrics)
        assert any(k.startswith("parallel.") for k in metrics)
        assert any(k.startswith("resil.") for k in metrics)
        assert metrics.get("resil.chaos_parity") == 1.0
        assert all(v > 0 for v in metrics.values())

    def test_missing_and_malformed_records_are_skipped(
        self, checker, tmp_path: Path
    ) -> None:
        (tmp_path / "BENCH_inference.json").write_text("not json")
        assert checker.collect_metrics(tmp_path) == {}

    def test_files_filter_restricts_extraction(self, checker) -> None:
        only = checker.collect_metrics(
            _BENCH_DIR, files=["BENCH_retraction.json"]
        )
        assert only
        assert all(k.startswith("retract.") for k in only)


class TestCompareGate:
    def test_within_tolerance_passes(self, checker) -> None:
        rows, regressions = checker.compare(
            {"m": 10.0}, {"m": 8.0}, tolerance=0.25
        )
        assert regressions == []
        assert rows[0][-1] == "ok"

    def test_regression_beyond_tolerance_fails(self, checker) -> None:
        rows, regressions = checker.compare(
            {"m": 10.0}, {"m": 7.0}, tolerance=0.25
        )
        assert regressions == ["m"]
        assert rows[0][-1] == "REGRESSION"

    def test_one_sided_metrics_never_fail(self, checker) -> None:
        rows, regressions = checker.compare(
            {"old": 5.0}, {"new": 5.0}, tolerance=0.25
        )
        assert regressions == []
        assert {r[-1] for r in rows} == {"new", "not re-run"}

    def test_improvements_pass(self, checker) -> None:
        _, regressions = checker.compare({"m": 2.0}, {"m": 9.0})
        assert regressions == []


class TestCommandLine:
    def test_snapshot_then_compare_round_trip(
        self, checker, tmp_path: Path, capsys
    ) -> None:
        out = tmp_path / "snap.json"
        assert checker.main(["snapshot", "--out", str(out)]) == 0
        snapshot = json.loads(out.read_text())
        assert snapshot["metrics"]
        assert checker.main(["compare", "--baseline", str(out)]) == 0
        printed = capsys.readouterr().out
        assert "REGRESSION" not in printed
        assert "OK: no metric regressed" in printed

    def test_compare_exits_nonzero_on_regression(
        self, checker, tmp_path: Path, capsys
    ) -> None:
        inflated = {
            name: value * 10
            for name, value in checker.collect_metrics(_BENCH_DIR).items()
        }
        baseline = tmp_path / "inflated.json"
        baseline.write_text(json.dumps({"metrics": inflated}))
        assert (
            checker.main(["compare", "--baseline", str(baseline)]) == 1
        )
        assert "REGRESSION" in capsys.readouterr().out

    def test_snapshot_of_empty_dir_fails(
        self, checker, tmp_path: Path
    ) -> None:
        out = tmp_path / "snap.json"
        code = checker.main(
            ["snapshot", "--out", str(out), "--dir", str(tmp_path)]
        )
        assert code == 1
        assert not out.exists()

    def test_compare_with_unreadable_baseline_fails(
        self, checker, tmp_path: Path
    ) -> None:
        assert (
            checker.main(
                ["compare", "--baseline", str(tmp_path / "missing.json")]
            )
            == 1
        )
