"""Unit tests for the baseline integration strategies."""

from __future__ import annotations

import pytest

from repro.baselines.global_schema import GlobalSchemaIntegrator
from repro.baselines.manual_views import ManualViewIntegrator
from repro.core.ontology import Ontology
from repro.errors import AlgebraError
from repro.workloads.generator import WorkloadConfig, generate_workload


class TestGlobalSchema:
    def test_merges_all_terms(self, carrier: Ontology, factory: Ontology) -> None:
        integrator = GlobalSchemaIntegrator([carrier, factory])
        merged = integrator.build()
        # Without alignment, shared labels merge by name; the rest stay.
        assert merged.has_term("Car")
        assert merged.has_term("Vehicle")
        assert merged.has_term("Transportation")

    def test_alignment_unifies_concepts(
        self, carrier: Ontology, factory: Ontology
    ) -> None:
        integrator = GlobalSchemaIntegrator(
            [carrier, factory],
            alignment=[("carrier:Car", "factory:Vehicle")],
        )
        merged = integrator.build()
        # The union-find maps both to one representative term.
        assert merged.has_term("Car") != merged.has_term("Vehicle") or (
            merged.has_term("Car") and not merged.has_term("Vehicle")
        ) or (merged.has_term("Vehicle") and not merged.has_term("Car"))

    def test_edges_carried_over(self, carrier: Ontology, factory: Ontology) -> None:
        integrator = GlobalSchemaIntegrator([carrier, factory])
        merged = integrator.build()
        assert merged.graph.has_edge("Car", "S", "Cars")
        assert merged.graph.has_edge("Truck", "S", "GoodsVehicle")

    def test_cost_counts_work(self, carrier: Ontology, factory: Ontology) -> None:
        integrator = GlobalSchemaIntegrator([carrier, factory])
        integrator.build()
        total_items = (
            carrier.term_count()
            + factory.term_count()
            + carrier.graph.edge_count()
            + factory.graph.edge_count()
        )
        # Shared labels (Transportation, Price) merge, so cost is at
        # most the item count and at least most of it.
        assert 0 < integrator.total_cost <= total_items

    def test_update_source_forces_full_rebuild(
        self, carrier: Ontology, factory: Ontology
    ) -> None:
        integrator = GlobalSchemaIntegrator([carrier, factory])
        integrator.build()
        first_cost = integrator.total_cost
        updated = carrier.copy()
        updated.ensure_term("Scooter")
        integrator.update_source(updated)
        assert integrator.build_count == 2
        assert integrator.total_cost >= 2 * first_cost - 1

    def test_maintenance_cost_ignores_change_locality(
        self, carrier: Ontology, factory: Ontology
    ) -> None:
        integrator = GlobalSchemaIntegrator([carrier, factory])
        integrator.build()
        tiny_change_cost = integrator.maintenance_cost_for(["Price"])
        # One irrelevant term still costs a full rebuild.
        assert tiny_change_cost >= carrier.term_count()

    def test_unknown_source_update_rejected(
        self, carrier: Ontology, factory: Ontology
    ) -> None:
        integrator = GlobalSchemaIntegrator([carrier, factory])
        stranger = Ontology("stranger")
        with pytest.raises(AlgebraError):
            integrator.update_source(stranger)

    def test_duplicate_sources_rejected(self, carrier: Ontology) -> None:
        with pytest.raises(AlgebraError):
            GlobalSchemaIntegrator([carrier, carrier.copy()])

    def test_merge_with_synthetic_alignment(self) -> None:
        workload = generate_workload(
            WorkloadConfig(universe_size=60, n_sources=2,
                           terms_per_source=25, seed=11)
        )
        integrator = GlobalSchemaIntegrator(
            workload.sources, workload.truth_alignment(0, 1)
        )
        merged = integrator.build()
        n0 = workload.sources[0].term_count()
        n1 = workload.sources[1].term_count()
        shared = len(workload.co_referring(0, 1))
        assert merged.term_count() == n0 + n1 - shared


class TestManualViews:
    def test_define_views_costs_specification(self, carrier: Ontology) -> None:
        integrator = ManualViewIntegrator()
        integrator.add_source(carrier)
        views = integrator.define_views("carrier", terms_per_view=5)
        assert views
        assert integrator.specification_cost == carrier.term_count()

    def test_source_change_revises_every_view(
        self, carrier: Ontology, factory: Ontology
    ) -> None:
        integrator = ManualViewIntegrator()
        integrator.add_source(carrier)
        integrator.add_source(factory)
        integrator.define_views("carrier")
        integrator.define_views("factory")
        cost = integrator.source_changed("carrier", ["Price"])
        assert cost == carrier.term_count()
        # factory views untouched.
        assert all(
            v.revision == 0 for v in integrator.views if v.source == "factory"
        )

    def test_views_touch_detection(self, carrier: Ontology) -> None:
        integrator = ManualViewIntegrator()
        integrator.add_source(carrier)
        views = integrator.define_views("carrier", terms_per_view=3)
        assert any(v.touches(["Car"]) for v in views)
        assert not any(v.touches(["Spaceship"]) for v in views)

    def test_unknown_source_rejected(self) -> None:
        integrator = ManualViewIntegrator()
        with pytest.raises(AlgebraError):
            integrator.define_views("nowhere")
        with pytest.raises(AlgebraError):
            integrator.source_changed("nowhere")

    def test_duplicate_source_rejected(self, carrier: Ontology) -> None:
        integrator = ManualViewIntegrator()
        integrator.add_source(carrier)
        with pytest.raises(AlgebraError):
            integrator.add_source(carrier.copy())
