"""Unit tests for FaultPlan / RetryPolicy determinism and validation."""

from __future__ import annotations

import pytest

from repro.errors import OnionError
from repro.reliability import (
    DEFAULT_RETRY_POLICY,
    FAULT_SITES,
    FaultInjected,
    FaultPlan,
    RetryPolicy,
    TaskFault,
)


class TestRetryPolicy:
    def test_backoff_doubles_and_caps(self) -> None:
        policy = RetryPolicy(backoff_base=0.01, backoff_cap=0.05)
        assert policy.delay(0) == pytest.approx(0.01)
        assert policy.delay(1) == pytest.approx(0.02)
        assert policy.delay(2) == pytest.approx(0.04)
        assert policy.delay(3) == pytest.approx(0.05)  # capped
        assert policy.delay(10) == pytest.approx(0.05)

    def test_validation(self) -> None:
        with pytest.raises(OnionError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(OnionError):
            RetryPolicy(task_timeout=0.0)

    def test_default_is_frozen(self) -> None:
        with pytest.raises(AttributeError):
            DEFAULT_RETRY_POLICY.max_retries = 9  # type: ignore[misc]


class TestFaultPlanDeterminism:
    def test_same_seed_same_firing_sequence(self) -> None:
        draws = [
            [FaultPlan(seed=42, rates={"task_error": 0.5}).fire("task_error")]
            for _ in range(2)
        ]
        plan_a = FaultPlan(seed=42, rates={"task_error": 0.5})
        plan_b = FaultPlan(seed=42, rates={"task_error": 0.5})
        seq_a = [plan_a.fire("task_error") for _ in range(50)]
        seq_b = [plan_b.fire("task_error") for _ in range(50)]
        assert seq_a == seq_b
        assert any(seq_a) and not all(seq_a)
        assert draws[0] == draws[1]

    def test_sites_have_independent_streams(self) -> None:
        """Drawing one site never perturbs another: a plan that also
        draws task_slow fires task_error identically."""
        plan_a = FaultPlan(
            seed=7, rates={"task_error": 0.3, "task_slow": 0.9}
        )
        plan_b = FaultPlan(seed=7, rates={"task_error": 0.3})
        seq_a = []
        for _ in range(40):
            plan_a.fire("task_slow")
            seq_a.append(plan_a.fire("task_error"))
        seq_b = [plan_b.fire("task_error") for _ in range(40)]
        assert seq_a == seq_b

    def test_unknown_site_rejected(self) -> None:
        with pytest.raises(OnionError):
            FaultPlan(rates={"cosmic_ray": 1.0})
        plan = FaultPlan()
        with pytest.raises(OnionError):
            plan.fire("cosmic_ray")

    def test_max_fires_caps_total(self) -> None:
        plan = FaultPlan(seed=1, rates={"task_error": 1.0}, max_fires=3)
        fired = sum(plan.fire("task_error") for _ in range(10))
        assert fired == 3

    def test_scripted_plan_fires_exact_draws(self) -> None:
        plan = FaultPlan.scripted({"worker_crash": [0, 2]})
        assert plan.fire("worker_crash") is True
        assert plan.fire("worker_crash") is False
        assert plan.fire("worker_crash") is True
        assert plan.fire("worker_crash") is False

    def test_summary_counts_draws_and_fires(self) -> None:
        plan = FaultPlan(seed=0, rates={"sqlite_lock": 1.0})
        for _ in range(4):
            assert plan.sqlite_fault()
        summary = plan.summary()
        assert summary["draws"]["sqlite_lock"] == 4
        assert summary["fired"]["sqlite_lock"] == 4

    def test_all_sites_listed(self) -> None:
        assert set(FAULT_SITES) == {
            "worker_crash",
            "task_hang",
            "task_error",
            "task_slow",
            "sqlite_lock",
            "batch_crash",
        }


class TestTaskFaultSelection:
    def test_task_fault_severity_order(self) -> None:
        """worker_crash wins over task_error when both fire."""
        plan = FaultPlan(
            seed=0, rates={"worker_crash": 1.0, "task_error": 1.0}
        )
        fault = plan.task_fault()
        assert isinstance(fault, TaskFault)
        assert fault.kind == "crash"

    def test_no_fault_when_quiet(self) -> None:
        assert FaultPlan(seed=0).task_fault() is None

    def test_hang_carries_duration(self) -> None:
        plan = FaultPlan(
            seed=0, rates={"task_hang": 1.0}, hang_seconds=0.125
        )
        fault = plan.task_fault()
        assert fault is not None
        assert fault.kind == "hang"
        assert fault.seconds == 0.125

    def test_fault_injected_is_onion_error(self) -> None:
        assert issubclass(FaultInjected, OnionError)
