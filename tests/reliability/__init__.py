"""Tests for the reliability layer: fault plans, the hardened parallel
scheduler, the churn journal, and end-to-end chaos parity."""
