"""End-to-end chaos: campaigns and hypothesis chaos-parity.

The bit-for-bit contract under test: any seeded combination of worker
crashes, hangs, task errors, slow tasks, and mid-batch process crashes
must leave the engine in exactly the state a fault-free serial run
reaches over the same surviving inputs.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.reliability import FaultPlan, RetryPolicy
from repro.workloads import run_chaos_campaign
from tests.support.churn_scripts import (
    CLAUSE_POOL,
    churn_scripts,
    oracle_states,
    replay_incremental,
)

FAST = RetryPolicy(
    max_retries=2, backoff_base=0.001, backoff_cap=0.01, task_timeout=5.0
)


class TestChaosCampaign:
    def test_fault_free_campaign_has_parity(self, tmp_path) -> None:
        result = run_chaos_campaign(
            tmp_path / "journal.jsonl", seed=1, workers=2
        )
        assert result.parity
        assert result.recoveries == 0
        assert result.scheduler_stats["retries"] == 0

    def test_campaign_under_full_chaos(self, tmp_path) -> None:
        plan = FaultPlan(
            seed=7,
            rates={
                "worker_crash": 0.15,
                "task_error": 0.2,
                "task_slow": 0.3,
                "batch_crash": 0.25,
            },
        )
        result = run_chaos_campaign(
            tmp_path / "journal.jsonl",
            seed=3,
            workers=2,
            fault_plan=plan,
            retry_policy=FAST,
        )
        assert result.parity
        assert result.facts == result.oracle_facts
        # the campaign actually hit trouble — otherwise it proves nothing
        assert result.fault_summary["fired"]
        assert (
            result.recoveries
            + result.scheduler_stats["retries"]
            + result.scheduler_stats["degraded_strata"]
        ) > 0

    def test_batch_crashes_force_journal_recoveries(self, tmp_path) -> None:
        plan = FaultPlan.scripted({"batch_crash": [0, 2]})
        result = run_chaos_campaign(
            tmp_path / "journal.jsonl", seed=5, workers=1, fault_plan=plan
        )
        assert result.parity
        assert result.recoveries == 2

    def test_campaign_is_seed_deterministic(self, tmp_path) -> None:
        def run(tag: str):
            return run_chaos_campaign(
                tmp_path / f"{tag}.jsonl",
                seed=11,
                workers=2,
                fault_plan=FaultPlan(
                    seed=2, rates={"worker_crash": 0.2, "batch_crash": 0.2}
                ),
                retry_policy=FAST,
            )

        a, b = run("a"), run("b")
        assert a.parity and b.parity
        assert a.recoveries == b.recoveries
        assert a.facts == b.facts
        assert a.fault_summary == b.fault_summary


class _PlanFactory:
    """Fresh, identically-seeded FaultPlans per hypothesis example."""

    @staticmethod
    def build(seed: int) -> FaultPlan:
        return FaultPlan(
            seed=seed,
            rates={
                "worker_crash": 0.1,
                "task_error": 0.15,
                "task_slow": 0.2,
            },
        )


class TestChaosParity:
    """Satellite: churn scripts under randomized seeded fault plans
    converge to the fault-free oracle at every checkpoint."""

    @given(
        script=churn_scripts(max_ops=10),
        fault_seed=st.integers(0, 2**16),
        workers=st.sampled_from([1, 2, 4]),
    )
    @settings(max_examples=12, deadline=None)
    def test_faulty_replay_matches_oracle(
        self, script, fault_seed, workers
    ) -> None:
        seed_clauses = (CLAUSE_POOL[0], CLAUSE_POOL[1])
        _, snapshots = replay_incremental(
            script,
            saturate_every=4,
            seed_clauses=seed_clauses,
            workers=workers,
            retry_policy=FAST,
            fault_plan=_PlanFactory.build(fault_seed),
        )
        expected = oracle_states(
            script, saturate_every=4, seed_clauses=seed_clauses
        )
        assert snapshots == expected
