"""The churn write-ahead journal: durability, recovery, compaction."""

from __future__ import annotations

import json

import pytest

from repro.core.rules import HornClause
from repro.inference.horn import HornEngine
from repro.reliability import ChurnJournal, FaultInjected, FaultPlan

TRANS = HornClause(
    ("S", "?x", "?z"), (("S", "?x", "?y"), ("S", "?y", "?z"))
)


def _engine(journal: ChurnJournal | None = None) -> HornEngine:
    engine = HornEngine(journal=journal)
    engine.add_clause(TRANS)
    engine.add_facts([("S", "a", "b"), ("S", "b", "c")])
    engine.saturate()
    return engine


class TestJournalRecords:
    def test_begin_then_commit_round_trip(self, tmp_path) -> None:
        journal = ChurnJournal(tmp_path / "j.jsonl")
        seq = journal.begin([("S", "c", "d")], [("S", "a", "b")])
        assert journal.pending() == [seq]
        journal.commit(seq)
        assert journal.pending() == []

    def test_sequence_numbers_survive_reopen(self, tmp_path) -> None:
        path = tmp_path / "j.jsonl"
        first = ChurnJournal(path).begin([("S", "a", "b")], [])
        second = ChurnJournal(path).begin([("S", "b", "c")], [])
        assert second > first

    def test_torn_tail_is_discarded(self, tmp_path) -> None:
        path = tmp_path / "j.jsonl"
        journal = ChurnJournal(path)
        seq = journal.begin([("S", "a", "b")], [])
        journal.commit(seq)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"type": "begin", "seq": 99, "ad')  # torn
        reopened = ChurnJournal(path)
        assert reopened.pending() == []
        # ...and the next append does not merge into the torn line
        seq2 = reopened.begin([("S", "x", "y")], [])
        records = reopened.records()
        assert any(
            r.get("type") == "begin" and r.get("seq") == seq2
            for r in records
        )


class TestApplyBatchJournaling:
    def test_batch_journals_and_commits(self, tmp_path) -> None:
        journal = ChurnJournal(tmp_path / "j.jsonl")
        engine = _engine(journal)
        journal.snapshot(engine)
        report = engine.apply_batch(
            adds=[("S", "c", "d")], retracts=[("S", "a", "b")]
        )
        assert "journal_seq" in report
        assert journal.pending() == []

    def test_without_journal_no_file(self, tmp_path) -> None:
        engine = _engine(None)
        engine.apply_batch(adds=[("S", "c", "d")])
        assert list(tmp_path.iterdir()) == []


class TestRecovery:
    def test_recover_replays_uncommitted_batch(self, tmp_path) -> None:
        """The crash contract: diff journaled, engine dead — recovery
        lands on the fixpoint the batch was driving toward."""
        journal = ChurnJournal(tmp_path / "j.jsonl")
        plan = FaultPlan.scripted({"batch_crash": [0]})
        engine = HornEngine(journal=journal, fault_plan=plan)
        engine.add_clause(TRANS)
        engine.add_facts([("S", "a", "b"), ("S", "b", "c")])
        engine.saturate()
        journal.snapshot(engine)

        with pytest.raises(FaultInjected):
            engine.apply_batch(
                adds=[("S", "c", "d")], retracts=[("S", "a", "b")]
            )
        # the in-memory engine never mutated
        assert ("S", "c", "d") not in engine.facts()

        recovered, report = journal.recover()
        assert report["replayed_pending"] == 1
        oracle = HornEngine()
        oracle.add_clause(TRANS)
        oracle.add_facts([("S", "b", "c"), ("S", "c", "d")])
        oracle.saturate()
        assert recovered.facts() == oracle.facts()
        # second recovery is a no-op: the replay was committed
        assert journal.pending() == []
        again, report2 = journal.recover()
        assert report2["replayed_pending"] == 0
        assert again.facts() == oracle.facts()

    def test_recover_from_snapshot_plus_committed_history(
        self, tmp_path
    ) -> None:
        journal = ChurnJournal(tmp_path / "j.jsonl")
        engine = _engine(journal)
        journal.snapshot(engine)
        engine.apply_batch(adds=[("S", "c", "d")])
        engine.apply_batch(retracts=[("S", "a", "b")])
        recovered, report = journal.recover()
        assert report["batches"] == 2
        assert recovered.facts() == engine.facts()

    def test_snapshot_compacts_the_log(self, tmp_path) -> None:
        path = tmp_path / "j.jsonl"
        journal = ChurnJournal(path)
        engine = _engine(journal)
        journal.snapshot(engine)
        for i in range(5):
            engine.apply_batch(adds=[("S", f"n{i}", f"n{i + 1}")])
        journal.snapshot(engine)
        lines = [
            json.loads(line)
            for line in path.read_text().splitlines()
            if line.strip()
        ]
        assert len(lines) == 1
        assert lines[0]["type"] == "snapshot"
        recovered, _ = journal.recover()
        assert recovered.facts() == engine.facts()

    def test_recover_without_snapshot_is_facts_only(self, tmp_path) -> None:
        """Begins alone carry no clauses — recovery still folds the
        fact diffs (the documented contract: snapshot carries the
        program)."""
        journal = ChurnJournal(tmp_path / "j.jsonl")
        seq = journal.begin([("S", "a", "b")], [])
        recovered, report = journal.recover()
        assert report["batches"] == 1
        assert recovered.base_facts() == {("S", "a", "b")}
        assert journal.pending() == []
