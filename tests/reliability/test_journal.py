"""The churn write-ahead journal: durability, recovery, compaction."""

from __future__ import annotations

import json

import pytest

from repro.core.rules import HornClause
from repro.inference.horn import HornEngine
from repro.reliability import ChurnJournal, FaultInjected, FaultPlan

TRANS = HornClause(
    ("S", "?x", "?z"), (("S", "?x", "?y"), ("S", "?y", "?z"))
)


def _engine(journal: ChurnJournal | None = None) -> HornEngine:
    engine = HornEngine(journal=journal)
    engine.add_clause(TRANS)
    engine.add_facts([("S", "a", "b"), ("S", "b", "c")])
    engine.saturate()
    return engine


class TestJournalRecords:
    def test_begin_then_commit_round_trip(self, tmp_path) -> None:
        journal = ChurnJournal(tmp_path / "j.jsonl")
        seq = journal.begin([("S", "c", "d")], [("S", "a", "b")])
        assert journal.pending() == [seq]
        journal.commit(seq)
        assert journal.pending() == []

    def test_sequence_numbers_survive_reopen(self, tmp_path) -> None:
        path = tmp_path / "j.jsonl"
        first = ChurnJournal(path).begin([("S", "a", "b")], [])
        second = ChurnJournal(path).begin([("S", "b", "c")], [])
        assert second > first

    def test_torn_tail_is_discarded(self, tmp_path) -> None:
        path = tmp_path / "j.jsonl"
        journal = ChurnJournal(path)
        seq = journal.begin([("S", "a", "b")], [])
        journal.commit(seq)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"type": "begin", "seq": 99, "ad')  # torn
        reopened = ChurnJournal(path)
        assert reopened.pending() == []
        assert reopened.truncated_records == 0  # a tail is not a hole
        # ...and the next append does not merge into the torn line
        seq2 = reopened.begin([("S", "x", "y")], [])
        records = reopened.records()
        assert any(
            r.get("type") == "begin" and r.get("seq") == seq2
            for r in records
        )

    def test_append_heals_rather_than_seals_a_torn_tail(
        self, tmp_path
    ) -> None:
        """The torn line must vanish from the file, not be newline-
        terminated into permanent mid-file garbage (which would make
        every later record look like it sat beyond corruption)."""
        path = tmp_path / "j.jsonl"
        journal = ChurnJournal(path)
        seq = journal.begin([("S", "a", "b")], [])
        journal.commit(seq)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"type": "begin", "seq": 99, "ad')
        reopened = ChurnJournal(path)
        reopened.begin([("S", "x", "y")], [])
        raw_lines = path.read_text(encoding="utf-8").splitlines()
        for line in raw_lines:
            json.loads(line)  # every surviving line parses
        # and a third open sees the full, uncorrupted history
        third = ChurnJournal(path)
        assert third.truncated_records == 0
        assert len(third.records()) == 3


def _corrupt_line(path, index: int, *, keep_bytes: int = 12) -> None:
    """Byte-level harness: tear line ``index`` mid-record, keeping the
    rest of the file (the compaction-crash-plus-append shape)."""
    raw = path.read_bytes().split(b"\n")
    raw[index] = raw[index][:keep_bytes]
    path.write_bytes(b"\n".join(raw))


class TestMidFileCorruption:
    def _journal_with_history(self, path, batches: int = 4) -> list[int]:
        journal = ChurnJournal(path)
        seqs = []
        for i in range(batches):
            seq = journal.begin([("S", f"n{i}", f"n{i + 1}")], [])
            journal.commit(seq)
            seqs.append(seq)
        return seqs

    def test_recovery_stops_at_last_contiguous_prefix(self, tmp_path) -> None:
        path = tmp_path / "j.jsonl"
        self._journal_with_history(path, batches=4)
        # 8 lines (begin/commit x4); tear the 5th (begin of batch 2,
        # 0-indexed line 4) — records after it are durable but sit
        # beyond a hole
        _corrupt_line(path, 4)
        journal = ChurnJournal(path)
        assert journal.truncated_records == 3
        recovered, report = journal.recover()
        assert report["truncated_records"] == 3
        assert report["batches"] == 2  # the prefix: batches 0 and 1
        assert recovered.base_facts() == {
            ("S", "n0", "n1"),
            ("S", "n1", "n2"),
        }

    def test_corruption_detected_at_recover_time_too(self, tmp_path) -> None:
        """recover() on an already-open journal must notice bytes that
        rotted after the open."""
        path = tmp_path / "j.jsonl"
        self._journal_with_history(path, batches=3)
        journal = ChurnJournal(path)
        assert journal.truncated_records == 0
        _corrupt_line(path, 2)  # begin of batch 1
        recovered, report = journal.recover()
        assert report["truncated_records"] == 3
        assert recovered.base_facts() == {("S", "n0", "n1")}

    def test_file_healed_so_later_appends_are_readable(self, tmp_path) -> None:
        path = tmp_path / "j.jsonl"
        self._journal_with_history(path, batches=4)
        _corrupt_line(path, 4)
        journal = ChurnJournal(path)
        seq = journal.begin([("S", "x", "y")], [])
        journal.commit(seq)
        # a fresh open reads prefix + the new batch, with no losses
        fresh = ChurnJournal(path)
        assert fresh.truncated_records == 0
        assert fresh.pending() == []
        recovered, report = fresh.recover()
        assert report["truncated_records"] == 0
        assert ("S", "x", "y") in recovered.base_facts()
        assert recovered.base_facts() == {
            ("S", "n0", "n1"),
            ("S", "n1", "n2"),
            ("S", "x", "y"),
        }

    def test_new_seqs_do_not_collide_with_truncated_region(
        self, tmp_path
    ) -> None:
        """After truncation the journal may re-issue sequence numbers
        the dropped region used — the heal rewrote the file, so the
        stale commit records that could falsely mark a new begin as
        committed are gone."""
        path = tmp_path / "j.jsonl"
        self._journal_with_history(path, batches=4)
        _corrupt_line(path, 4)
        journal = ChurnJournal(path)
        seq = journal.begin([("S", "x", "y")], [])
        assert journal.pending() == [seq]  # no phantom commit


class TestApplyBatchJournaling:
    def test_batch_journals_and_commits(self, tmp_path) -> None:
        journal = ChurnJournal(tmp_path / "j.jsonl")
        engine = _engine(journal)
        journal.snapshot(engine)
        report = engine.apply_batch(
            adds=[("S", "c", "d")], retracts=[("S", "a", "b")]
        )
        assert "journal_seq" in report
        assert journal.pending() == []

    def test_without_journal_no_file(self, tmp_path) -> None:
        engine = _engine(None)
        engine.apply_batch(adds=[("S", "c", "d")])
        assert list(tmp_path.iterdir()) == []


class TestRecovery:
    def test_recover_replays_uncommitted_batch(self, tmp_path) -> None:
        """The crash contract: diff journaled, engine dead — recovery
        lands on the fixpoint the batch was driving toward."""
        journal = ChurnJournal(tmp_path / "j.jsonl")
        plan = FaultPlan.scripted({"batch_crash": [0]})
        engine = HornEngine(journal=journal, fault_plan=plan)
        engine.add_clause(TRANS)
        engine.add_facts([("S", "a", "b"), ("S", "b", "c")])
        engine.saturate()
        journal.snapshot(engine)

        with pytest.raises(FaultInjected):
            engine.apply_batch(
                adds=[("S", "c", "d")], retracts=[("S", "a", "b")]
            )
        # the in-memory engine never mutated
        assert ("S", "c", "d") not in engine.facts()

        recovered, report = journal.recover()
        assert report["replayed_pending"] == 1
        oracle = HornEngine()
        oracle.add_clause(TRANS)
        oracle.add_facts([("S", "b", "c"), ("S", "c", "d")])
        oracle.saturate()
        assert recovered.facts() == oracle.facts()
        # second recovery is a no-op: the replay was committed
        assert journal.pending() == []
        again, report2 = journal.recover()
        assert report2["replayed_pending"] == 0
        assert again.facts() == oracle.facts()

    def test_recover_from_snapshot_plus_committed_history(
        self, tmp_path
    ) -> None:
        journal = ChurnJournal(tmp_path / "j.jsonl")
        engine = _engine(journal)
        journal.snapshot(engine)
        engine.apply_batch(adds=[("S", "c", "d")])
        engine.apply_batch(retracts=[("S", "a", "b")])
        recovered, report = journal.recover()
        assert report["batches"] == 2
        assert recovered.facts() == engine.facts()

    def test_snapshot_compacts_the_log(self, tmp_path) -> None:
        path = tmp_path / "j.jsonl"
        journal = ChurnJournal(path)
        engine = _engine(journal)
        journal.snapshot(engine)
        for i in range(5):
            engine.apply_batch(adds=[("S", f"n{i}", f"n{i + 1}")])
        journal.snapshot(engine)
        lines = [
            json.loads(line)
            for line in path.read_text().splitlines()
            if line.strip()
        ]
        assert len(lines) == 1
        assert lines[0]["type"] == "snapshot"
        recovered, _ = journal.recover()
        assert recovered.facts() == engine.facts()

    def test_recover_without_snapshot_is_facts_only(self, tmp_path) -> None:
        """Begins alone carry no clauses — recovery still folds the
        fact diffs (the documented contract: snapshot carries the
        program)."""
        journal = ChurnJournal(tmp_path / "j.jsonl")
        seq = journal.begin([("S", "a", "b")], [])
        recovered, report = journal.recover()
        assert report["batches"] == 1
        assert recovered.base_facts() == {("S", "a", "b")}
        assert journal.pending() == []
