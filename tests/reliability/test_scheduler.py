"""The hardened parallel scheduler: crashes, hangs, errors, respawns.

Every test's bottom line is the robustness contract — ``workers=N``
under injected faults derives exactly what the serial engine derives —
plus honest bookkeeping in ``last_stats``.
"""

from __future__ import annotations

import pytest

from repro.core.rules import HornClause
from repro.inference.horn import (
    HornEngine,
    _POOL_CACHE,
    _evict_pool,
    _pool_unusable,
    _shared_pool,
)
from repro.reliability import FaultPlan, RetryPolicy

TRANS = HornClause(
    ("S", "?x", "?z"), (("S", "?x", "?y"), ("S", "?y", "?z"))
)
LIFT = HornClause(("implies", "?x", "?y"), (("S", "?x", "?y"),))
IMPL_TRANS = HornClause(
    ("implies", "?x", "?z"),
    (("implies", "?x", "?y"), ("implies", "?y", "?z")),
)

FAST = RetryPolicy(
    max_retries=2, backoff_base=0.001, backoff_cap=0.01, task_timeout=5.0
)


def _chain_facts(n: int = 8) -> list[tuple[str, str, str]]:
    return [("S", f"v{i}", f"v{i + 1}") for i in range(n)]


def _serial_oracle() -> set:
    engine = HornEngine()
    engine.add_clauses([TRANS, LIFT, IMPL_TRANS])
    engine.add_facts(_chain_facts())
    engine.saturate()
    return engine.facts()


def _chaos_engine(plan: FaultPlan, *, workers: int = 2) -> HornEngine:
    engine = HornEngine(
        workers=workers, retry_policy=FAST, fault_plan=plan
    )
    engine.add_clauses([TRANS, LIFT, IMPL_TRANS])
    engine.add_facts(_chain_facts())
    return engine


class TestFaultAbsorption:
    def test_worker_crash_is_absorbed(self) -> None:
        plan = FaultPlan.scripted({"worker_crash": [0]})
        engine = _chaos_engine(plan)
        engine.saturate()
        assert engine.facts() == _serial_oracle()
        stats = engine.last_stats
        assert stats["pool_respawns"] >= 1
        assert stats["retries"] >= 1
        assert plan.fired["worker_crash"] == 1

    def test_task_error_is_retried(self) -> None:
        plan = FaultPlan.scripted({"task_error": [0]})
        engine = _chaos_engine(plan)
        engine.saturate()
        assert engine.facts() == _serial_oracle()
        assert engine.last_stats["retries"] >= 1

    def test_task_hang_trips_timeout(self) -> None:
        plan = FaultPlan.scripted({"task_hang": [0]}, hang_seconds=30.0)
        engine = HornEngine(
            workers=2,
            retry_policy=RetryPolicy(
                max_retries=2,
                backoff_base=0.001,
                backoff_cap=0.01,
                task_timeout=0.5,
            ),
            fault_plan=plan,
        )
        engine.add_clauses([TRANS, LIFT, IMPL_TRANS])
        engine.add_facts(_chain_facts())
        engine.saturate()
        assert engine.facts() == _serial_oracle()
        stats = engine.last_stats
        assert stats["timeouts"] >= 1
        assert stats["pool_respawns"] >= 1

    def test_exhausted_retries_degrade_to_serial(self) -> None:
        # every dispatch of the first stratum errors: 1 try + 2
        # retries all fail, then the stratum runs serially in-process
        plan = FaultPlan.scripted({"task_error": range(50)})
        engine = _chaos_engine(plan)
        engine.saturate()
        assert engine.facts() == _serial_oracle()
        stats = engine.last_stats
        assert stats["degraded_strata"] >= 1
        assert stats["retries"] >= FAST.max_retries

    def test_slow_tasks_ride_the_happy_path(self) -> None:
        plan = FaultPlan(
            seed=0, rates={"task_slow": 1.0}, slow_seconds=0.005
        )
        engine = _chaos_engine(plan)
        engine.saturate()
        assert engine.facts() == _serial_oracle()
        stats = engine.last_stats
        assert stats["retries"] == 0
        assert stats["degraded_strata"] == 0

    def test_incremental_push_survives_faults(self) -> None:
        """Delta propagation (the apply_batch path) rides the same
        hardened scheduler."""
        plan = FaultPlan.scripted({"worker_crash": [0], "task_error": [1]})
        engine = _chaos_engine(plan)
        engine.saturate()
        engine.apply_batch(adds=[("S", "v8", "v9"), ("S", "v9", "v10")])
        oracle = HornEngine()
        oracle.add_clauses([TRANS, LIFT, IMPL_TRANS])
        oracle.add_facts(_chain_facts(10))
        oracle.saturate()
        assert engine.facts() == oracle.facts()

    def test_fault_free_stats_stay_zero(self) -> None:
        engine = HornEngine(workers=2)
        engine.add_clauses([TRANS, LIFT, IMPL_TRANS])
        engine.add_facts(_chain_facts())
        engine.saturate()
        stats = engine.last_stats
        assert stats["retries"] == 0
        assert stats["timeouts"] == 0
        assert stats["pool_respawns"] == 0
        assert stats["degraded_strata"] == 0


class TestPoolHealth:
    def test_broken_pool_evicted_from_cache(self) -> None:
        """_shared_pool never hands back a pool it knows is unusable."""
        pool = _shared_pool(2)
        pool.shutdown(wait=True)
        assert _pool_unusable(pool)
        fresh = _shared_pool(2)
        assert fresh is not pool
        assert not _pool_unusable(fresh)

    def test_evict_pool_is_identity_guarded(self) -> None:
        """Evicting a stale reference must not tear down the fresh
        replacement another caller already installed."""
        stale = _shared_pool(2)
        assert _evict_pool(2, stale)
        fresh = _shared_pool(2)
        assert not _evict_pool(2, stale)  # stale is gone; fresh stands
        assert _POOL_CACHE[2] is fresh
        assert _evict_pool(2, fresh)

    def test_evict_without_reference_removes_cached(self) -> None:
        _shared_pool(2)
        assert _evict_pool(2)
        assert 2 not in _POOL_CACHE
        assert not _evict_pool(2)
