"""Unit tests for the MiniWordNet lexicon."""

from __future__ import annotations

import pytest

from repro.errors import LexiconError
from repro.lexicon.wordnet import (
    MiniWordNet,
    Synset,
    normalize_lemma,
    seed_lexicon,
)


class TestNormalization:
    @pytest.mark.parametrize(
        "variant",
        ["PassengerCar", "passenger_car", "passenger car", "Passenger-Car"],
    )
    def test_variants_normalize_identically(self, variant: str) -> None:
        assert normalize_lemma(variant) == "passengercar"

    def test_simple_lowercase(self) -> None:
        assert normalize_lemma("Car") == "car"

    def test_whitespace_trimmed(self) -> None:
        assert normalize_lemma("  truck  ") == "truck"


class TestSynsets:
    def test_empty_lemmas_rejected(self) -> None:
        with pytest.raises(LexiconError):
            Synset("bad.n.01", ())

    def test_duplicate_synset_id_rejected(self) -> None:
        lexicon = MiniWordNet()
        lexicon.add_synset("x.n.01", ["x"])
        with pytest.raises(LexiconError):
            lexicon.add_synset("x.n.01", ["y"])

    def test_unknown_synset_raises(self) -> None:
        with pytest.raises(LexiconError):
            MiniWordNet().synset("ghost.n.01")

    def test_validate_reports_dangling_hypernyms(self) -> None:
        lexicon = MiniWordNet()
        lexicon.add_synset("a.n.01", ["a"], hypernyms=["missing.n.01"])
        issues = lexicon.validate()
        assert len(issues) == 1
        assert "missing.n.01" in issues[0]


class TestLookup:
    @pytest.fixture
    def lexicon(self) -> MiniWordNet:
        return seed_lexicon()

    def test_knows(self, lexicon: MiniWordNet) -> None:
        assert lexicon.knows("car")
        assert lexicon.knows("Car")
        assert not lexicon.knows("flibbertigibbet")

    def test_synonyms(self, lexicon: MiniWordNet) -> None:
        synonyms = lexicon.synonyms("car")
        assert "automobile" in synonyms
        assert "car" not in {normalize_lemma(s) for s in synonyms}

    def test_are_synonyms(self, lexicon: MiniWordNet) -> None:
        assert lexicon.are_synonyms("car", "automobile")
        assert lexicon.are_synonyms("truck", "lorry")
        assert not lexicon.are_synonyms("car", "truck")

    def test_synsets_for_is_case_insensitive(self, lexicon: MiniWordNet) -> None:
        assert lexicon.synsets_for("CAR") == lexicon.synsets_for("car")


class TestHypernymy:
    @pytest.fixture
    def lexicon(self) -> MiniWordNet:
        return seed_lexicon()

    def test_direct_hyponym(self, lexicon: MiniWordNet) -> None:
        assert lexicon.is_hyponym_of("SUV", "car")

    def test_transitive_hyponym(self, lexicon: MiniWordNet) -> None:
        assert lexicon.is_hyponym_of("car", "vehicle")
        assert lexicon.is_hyponym_of("SUV", "vehicle")

    def test_hyponymy_directed(self, lexicon: MiniWordNet) -> None:
        assert not lexicon.is_hyponym_of("vehicle", "car")

    def test_synonyms_are_not_hyponyms(self, lexicon: MiniWordNet) -> None:
        assert not lexicon.is_hyponym_of("car", "automobile")

    def test_unknown_term_not_hyponym(self, lexicon: MiniWordNet) -> None:
        assert not lexicon.is_hyponym_of("blorp", "vehicle")

    def test_hypernym_closure(self, lexicon: MiniWordNet) -> None:
        closure = lexicon.hypernym_closure("car.n.01")
        assert "vehicle.n.01" in closure
        assert "entity.n.01" in closure
        assert "car.n.01" not in closure


class TestSimilarity:
    @pytest.fixture
    def lexicon(self) -> MiniWordNet:
        return seed_lexicon()

    def test_identity_is_one(self, lexicon: MiniWordNet) -> None:
        assert lexicon.similarity("car", "car") == 1.0

    def test_synonyms_are_one(self, lexicon: MiniWordNet) -> None:
        assert lexicon.similarity("car", "automobile") == 1.0

    def test_siblings_beat_strangers(self, lexicon: MiniWordNet) -> None:
        sibling = lexicon.similarity("car", "truck")
        stranger = lexicon.similarity("car", "person")
        assert sibling > stranger

    def test_parent_beats_grandparent(self, lexicon: MiniWordNet) -> None:
        parent = lexicon.similarity("SUV", "car")
        grandparent = lexicon.similarity("SUV", "motor vehicle")
        assert parent > grandparent

    def test_unrelated_unknown_is_zero(self, lexicon: MiniWordNet) -> None:
        assert lexicon.similarity("car", "blorp") == 0.0

    def test_bounded(self, lexicon: MiniWordNet) -> None:
        for a, b in [("car", "truck"), ("SUV", "vehicle"), ("euro", "dollar")]:
            assert 0.0 <= lexicon.similarity(a, b) <= 1.0


class TestSerialization:
    def test_round_trip(self, tmp_path) -> None:
        lexicon = seed_lexicon()
        path = tmp_path / "lexicon.json"
        lexicon.save(path)
        loaded = MiniWordNet.load(path)
        assert len(loaded) == len(lexicon)
        assert loaded.are_synonyms("car", "automobile")
        assert loaded.is_hyponym_of("SUV", "vehicle")

    def test_from_dict_validates(self) -> None:
        payload = {
            "synsets": [
                {"id": "a.n.01", "lemmas": ["a"], "hypernyms": ["ghost"]}
            ]
        }
        with pytest.raises(LexiconError):
            MiniWordNet.from_dict(payload)

    def test_seed_lexicon_covers_fig2_vocabulary(self) -> None:
        lexicon = seed_lexicon()
        for term in (
            "car", "truck", "vehicle", "carrier", "factory", "price",
            "owner", "driver", "person", "euro", "DutchGuilders",
            "PoundSterling", "transportation", "goods", "weight", "buyer",
        ):
            assert lexicon.knows(term), term


class TestMemoization:
    def test_hypernym_closure_memoized(self) -> None:
        lex = seed_lexicon()
        first = lex.hypernym_closure("car.n.01")
        second = lex.hypernym_closure("car.n.01")
        assert second is first  # cached frozenset, not a recomputation
        assert "vehicle.n.01" in first

    def test_add_invalidates_closure_cache(self) -> None:
        lex = seed_lexicon()
        before = lex.hypernym_closure("car.n.01")
        lex.add_synset(
            "hatchback.n.01", ["hatchback"], hypernyms=["car.n.01"]
        )
        closure = lex.hypernym_closure("hatchback.n.01")
        assert "car.n.01" in closure
        assert "vehicle.n.01" in closure
        # the old entry was recomputed, not served stale
        assert lex.hypernym_closure("car.n.01") == before

    def test_synonyms_memoized_and_invalidated(self) -> None:
        lex = seed_lexicon()
        first = lex.synonyms("car")
        assert lex.synonyms("car") is first
        assert "automobile" in first
        lex.add_synset("car_extra.n.01", ["car", "jalopy"])
        assert "jalopy" in lex.synonyms("car")

    def test_depth_consistent_with_closure(self) -> None:
        lex = seed_lexicon()
        assert lex._depth("car.n.01") == len(lex.hypernym_closure("car.n.01"))
        lex.add_synset("kart.n.01", ["go-kart"], hypernyms=["car.n.01"])
        assert lex._depth("kart.n.01") == len(
            lex.hypernym_closure("kart.n.01")
        )

    def test_similarity_unchanged_by_memoization(self) -> None:
        lex = seed_lexicon()
        cold = MiniWordNet.from_dict(lex.to_dict())
        pairs = [
            ("car", "truck"),
            ("car", "vehicle"),
            ("euro", "guilder"),
            ("car", "warehouse"),
        ]
        warm = [lex.similarity(a, b) for a, b in pairs]
        warm_again = [lex.similarity(a, b) for a, b in pairs]
        fresh = [cold.similarity(a, b) for a, b in pairs]
        assert warm == warm_again == fresh
