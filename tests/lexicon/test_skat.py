"""Unit tests for SKAT matchers and the expert iteration loop."""

from __future__ import annotations

import pytest

from repro.core.ontology import Ontology
from repro.core.rules import ImplicationRule
from repro.lexicon.expert import (
    AcceptAllPolicy,
    ExpertDecision,
    GroundTruthPolicy,
    ScriptedPolicy,
    ThresholdPolicy,
)
from repro.lexicon.skat import (
    ExactLabelMatcher,
    HypernymMatcher,
    SkatEngine,
    StructuralMatcher,
    SynonymMatcher,
    articulate_with_expert,
)
from repro.lexicon.wordnet import seed_lexicon


@pytest.fixture
def left() -> Ontology:
    onto = Ontology("left")
    for term in ("Vehicle", "Car", "Price", "Lorry"):
        onto.add_term(term)
    onto.add_subclass("Car", "Vehicle")
    onto.add_attribute("Price", "Car")
    onto.add_subclass("Lorry", "Vehicle")
    return onto


@pytest.fixture
def right() -> Ontology:
    onto = Ontology("right")
    for term in ("Vehicle", "Automobile", "Cost", "Truck"):
        onto.add_term(term)
    onto.add_subclass("Automobile", "Vehicle")
    onto.add_attribute("Cost", "Automobile")
    onto.add_subclass("Truck", "Vehicle")
    return onto


class TestExactLabelMatcher:
    def test_identical_labels_matched(
        self, left: Ontology, right: Ontology
    ) -> None:
        candidates = ExactLabelMatcher().propose(left, right)
        texts = {c.key() for c in candidates}
        assert "left:Vehicle => right:Vehicle" in texts
        assert "right:Vehicle => left:Vehicle" in texts

    def test_no_candidates_without_shared_labels(self) -> None:
        a = Ontology("a")
        a.add_term("X")
        b = Ontology("b")
        b.add_term("Y")
        assert ExactLabelMatcher().propose(a, b) == []

    def test_normalized_label_match(self) -> None:
        a = Ontology("a")
        a.add_term("passenger_car")
        b = Ontology("b")
        b.add_term("PassengerCar")
        candidates = ExactLabelMatcher().propose(a, b)
        assert candidates


class TestSynonymMatcher:
    def test_lexicon_synonyms_matched(
        self, left: Ontology, right: Ontology
    ) -> None:
        candidates = SynonymMatcher(seed_lexicon()).propose(left, right)
        texts = {c.key() for c in candidates}
        assert "left:Car => right:Automobile" in texts
        assert "right:Automobile => left:Car" in texts
        assert "left:Price => right:Cost" in texts
        assert "left:Lorry => right:Truck" in texts

    def test_exact_pairs_left_to_exact_matcher(
        self, left: Ontology, right: Ontology
    ) -> None:
        candidates = SynonymMatcher(seed_lexicon()).propose(left, right)
        texts = {c.key() for c in candidates}
        assert "left:Vehicle => right:Vehicle" not in texts


class TestHypernymMatcher:
    def test_directed_specialization(
        self, left: Ontology, right: Ontology
    ) -> None:
        candidates = HypernymMatcher(seed_lexicon()).propose(left, right)
        texts = {c.key() for c in candidates}
        # left:Car is a hyponym of right:Vehicle -> directed rule.
        assert "left:Car => right:Vehicle" in texts
        # and never the reverse direction for a hypernym pair.
        assert "right:Vehicle => left:Car" not in texts

    def test_both_directions_across_ontologies(
        self, left: Ontology, right: Ontology
    ) -> None:
        candidates = HypernymMatcher(seed_lexicon()).propose(left, right)
        texts = {c.key() for c in candidates}
        # right:Automobile is a hyponym of left:Vehicle.
        assert "right:Automobile => left:Vehicle" in texts

    def test_scores_decay_with_distance(self) -> None:
        a = Ontology("a")
        a.add_term("SUV")
        b = Ontology("b")
        b.add_term("Car")
        b.add_term("Vehicle")
        candidates = HypernymMatcher(seed_lexicon()).propose(a, b)
        by_target = {
            c.key(): c.score for c in candidates
        }
        assert by_target["a:SUV => b:Car"] > by_target["a:SUV => b:Vehicle"]


class TestStructuralMatcher:
    def test_neighborhood_alignment_proposes_unlexical_pair(self) -> None:
        """Two terms the lexicon has never heard of get matched because
        their neighbors align."""
        a = Ontology("a")
        for term in ("Vehicle", "Zorblat", "Price"):
            a.add_term(term)
        a.add_subclass("Zorblat", "Vehicle")
        a.add_attribute("Price", "Zorblat")
        b = Ontology("b")
        for term in ("Vehicle", "Gnarf", "Price"):
            b.add_term(term)
        b.add_subclass("Gnarf", "Vehicle")
        b.add_attribute("Price", "Gnarf")
        candidates = StructuralMatcher().propose(a, b)
        texts = {c.key() for c in candidates}
        assert "a:Zorblat => b:Gnarf" in texts

    def test_no_anchor_no_proposal(self) -> None:
        a = Ontology("a")
        a.add_term("X1")
        a.add_term("X2")
        a.add_subclass("X1", "X2")
        b = Ontology("b")
        b.add_term("Y1")
        b.add_term("Y2")
        b.add_subclass("Y1", "Y2")
        assert StructuralMatcher().propose(a, b) == []


class TestSkatEngine:
    def test_dedup_keeps_best_score(
        self, left: Ontology, right: Ontology
    ) -> None:
        engine = SkatEngine.default()
        candidates = engine.propose(left, right)
        keys = [c.key() for c in candidates]
        assert len(keys) == len(set(keys))

    def test_ranked_descending(self, left: Ontology, right: Ontology) -> None:
        candidates = SkatEngine.default().propose(left, right)
        scores = [c.score for c in candidates]
        assert scores == sorted(scores, reverse=True)

    def test_exclusion(self, left: Ontology, right: Ontology) -> None:
        engine = SkatEngine.default()
        first = engine.propose(left, right)
        excluded = engine.propose(
            left, right, exclude=[first[0].rule]
        )
        assert first[0].key() not in {c.key() for c in excluded}

    def test_seed_matchers_run_once_per_propose(
        self, left: Ontology, right: Ontology
    ) -> None:
        """The structural matcher reuses the pipeline's seed proposals
        instead of re-running the shared exact/synonym matchers."""
        engine = SkatEngine.default()
        calls: dict[str, int] = {}
        for matcher in engine.matchers:
            original = matcher.propose

            def counted(o1, o2, *, _orig=original, _name=matcher.name, **kw):
                calls[_name] = calls.get(_name, 0) + 1
                return _orig(o1, o2, **kw)

            matcher.propose = counted  # type: ignore[method-assign]
        engine.propose(left, right)
        assert all(count == 1 for count in calls.values()), calls

    def test_seed_reuse_preserves_proposals(
        self, left: Ontology, right: Ontology
    ) -> None:
        """Handing seed proposals over must not change the output."""
        engine = SkatEngine.default()
        via_engine = [c.key() for c in engine.propose(left, right)]
        standalone = StructuralMatcher(seeds=engine.matchers[:2])
        direct = standalone.propose(left, right)
        structural = engine.matchers[-1].propose(
            left,
            right,
            seed_candidates=[
                c
                for seed in engine.matchers[:2]
                for c in seed.propose(left, right)
            ],
        )
        assert {c.key() for c in structural} == {c.key() for c in direct}
        assert via_engine  # the pipeline still proposes


class TestExpertLoop:
    def test_accept_all_converges(
        self, left: Ontology, right: Ontology
    ) -> None:
        articulation, audit = articulate_with_expert(
            left, right, AcceptAllPolicy(), name="mid"
        )
        assert len(articulation.rules) > 0
        assert len(audit) >= len(articulation.rules)
        # Car ~ Automobile must have made it into the articulation.
        terms = set(articulation.ontology.terms())
        assert "Automobile" in terms or "Car" in terms

    def test_threshold_policy_accepts_fewer(
        self, left: Ontology, right: Ontology
    ) -> None:
        all_art, _ = articulate_with_expert(
            left, right, AcceptAllPolicy(), name="mid"
        )
        strict_art, _ = articulate_with_expert(
            left, right, ThresholdPolicy(threshold=0.9), name="mid"
        )
        assert len(strict_art.rules) <= len(all_art.rules)

    def test_ground_truth_policy_filters_exactly(
        self, left: Ontology, right: Ontology
    ) -> None:
        truth = ["left:Car => right:Automobile"]
        policy = GroundTruthPolicy(frozenset(truth))
        articulation, _ = articulate_with_expert(
            left, right, policy, name="mid", use_inference=False
        )
        assert {str(r) for r in articulation.rules} == set(truth)

    def test_scripted_policy_modification(self) -> None:
        from repro.core.rules import parse_rule
        from repro.lexicon.expert import MatchCandidate

        candidate = MatchCandidate(
            parse_rule("a:X => b:Y"), 0.9, "exact"
        )
        replacement = parse_rule("a:X => b:Z")
        policy = ScriptedPolicy(
            decisions={"a:X => b:Y": ExpertDecision.MODIFY},
            modifications={"a:X => b:Y": replacement},
        )
        reviewed = policy.review([candidate])
        assert reviewed[0].accepted_rule() is replacement

    def test_scripted_policy_volunteers_rules_once(self) -> None:
        from repro.core.rules import parse_rule

        policy = ScriptedPolicy(
            volunteered=(parse_rule("a:X => b:Y"),)
        )
        assert len(policy.extra_rules()) == 1
        assert policy.extra_rules() == []

    def test_audit_records_rejections(
        self, left: Ontology, right: Ontology
    ) -> None:
        _, audit = articulate_with_expert(
            left,
            right,
            ThresholdPolicy(threshold=2.0),  # rejects everything
            name="mid",
        )
        assert audit
        assert all(
            review.decision is ExpertDecision.REJECT for review in audit
        )
