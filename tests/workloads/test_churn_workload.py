"""End-to-end churn regression: retraction ≡ rebuild on the paper example.

:func:`run_churn_workload` drives batches of random source edits
through the maintainer and into the inference engine two ways — one
long-lived engine riding incremental/retract refreshes, and a
from-scratch engine rebuild per batch.  Equal seeds must give equal
probe answers on every batch, and the incremental driver must actually
take the DRed path (not silently rebuild).
"""

from __future__ import annotations

import pytest

from repro.errors import OnionError
from repro.workloads.churn import run_churn_workload
from repro.workloads.paper_example import generate_transport_articulation


@pytest.mark.parametrize("seed", [0, 2, 5])
def test_retraction_equals_rebuild_on_paper_example(seed: int) -> None:
    incremental = run_churn_workload(
        generate_transport_articulation(),
        batches=6,
        mutations_per_batch=6,
        seed=seed,
        incremental=True,
    )
    rebuild = run_churn_workload(
        generate_transport_articulation(),
        batches=6,
        mutations_per_batch=6,
        seed=seed,
        incremental=False,
    )
    assert incremental.probe_results == rebuild.probe_results
    assert incremental.batches == rebuild.batches == 6


def test_incremental_campaign_takes_the_retract_path() -> None:
    result = run_churn_workload(
        generate_transport_articulation(),
        batches=6,
        mutations_per_batch=6,
        seed=0,
        incremental=True,
    )
    # Deletion-heavy churn on a fixed seed: repairs happen and every
    # post-repair refresh is served as a retraction delta — the
    # campaign never falls back to a rebuild.
    assert result.repairs > 0
    assert result.refresh_modes.get("retract", 0) > 0
    assert "rebuild" not in result.refresh_modes


def test_rebuild_baseline_reports_initial_refreshes() -> None:
    result = run_churn_workload(
        generate_transport_articulation(),
        batches=3,
        seed=1,
        incremental=False,
    )
    assert result.refresh_modes == {"initial": 3}


def test_probe_trace_is_deterministic() -> None:
    first = run_churn_workload(
        generate_transport_articulation(), batches=4, seed=3
    )
    second = run_churn_workload(
        generate_transport_articulation(), batches=4, seed=3
    )
    assert first.probe_results == second.probe_results
    assert first.refresh_modes == second.refresh_modes


class TestBatchedCampaign:
    def test_batch_size_must_be_positive(self) -> None:
        with pytest.raises(OnionError):
            run_churn_workload(
                generate_transport_articulation(), batch_size=0
            )

    def test_batching_coalesces_refreshes(self) -> None:
        per_op = run_churn_workload(
            generate_transport_articulation(), batches=6, seed=0
        )
        batched = run_churn_workload(
            generate_transport_articulation(), batches=6, seed=0, batch_size=3
        )
        # One refresh row per round vs one per coalesced window.
        assert len(per_op.batch_work) == 6
        assert len(batched.batch_work) == 2
        assert [row["round"] for row in batched.batch_work] == [2, 5]

    def test_batched_probes_agree_at_shared_rounds(self) -> None:
        per_op = run_churn_workload(
            generate_transport_articulation(), batches=6, seed=2
        )
        batched = run_churn_workload(
            generate_transport_articulation(), batches=6, seed=2, batch_size=2
        )
        shared = {
            (row, term): answers
            for row, term, answers in per_op.probe_results
        }
        assert batched.probe_results  # rounds 1, 3, 5 observed
        for row, term, answers in batched.probe_results:
            assert shared[(row, term)] == answers

    def test_final_round_always_refreshed(self) -> None:
        # batch_size larger than the campaign: exactly one refresh, at
        # the last round, carrying the whole accumulated diff.
        result = run_churn_workload(
            generate_transport_articulation(), batches=4, seed=1, batch_size=9
        )
        assert len(result.batch_work) == 1
        assert result.batch_work[0]["round"] == 3

    def test_phase_timings_cover_all_phases(self) -> None:
        result = run_churn_workload(
            generate_transport_articulation(), batches=3, seed=0, batch_size=3
        )
        assert set(result.phase_ms) == {
            "churn",
            "maintenance",
            "refresh",
            "probes",
        }
        assert all(value >= 0.0 for value in result.phase_ms.values())
        # Churn and maintenance ran every round even though the engine
        # refreshed only once.
        assert len(result.batch_work) == 1
