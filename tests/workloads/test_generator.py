"""Unit tests for the synthetic workload generator and churn model."""

from __future__ import annotations

import pytest

from repro.core.articulation import ArticulationGenerator
from repro.errors import OnionError
from repro.inference.horn import HornEngine
from repro.workloads.churn import apply_churn
from repro.workloads.generator import (
    WorkloadConfig,
    generate_workload,
    wide_program,
)


class TestConfigValidation:
    def test_overlap_range(self) -> None:
        with pytest.raises(OnionError):
            WorkloadConfig(overlap=1.5)

    def test_terms_bounded_by_universe(self) -> None:
        with pytest.raises(OnionError):
            WorkloadConfig(universe_size=10, terms_per_source=20)

    def test_universe_minimum(self) -> None:
        with pytest.raises(OnionError):
            WorkloadConfig(universe_size=1)

    def test_sources_minimum(self) -> None:
        with pytest.raises(OnionError):
            WorkloadConfig(n_sources=0)


class TestGeneration:
    @pytest.fixture
    def workload(self):
        return generate_workload(
            WorkloadConfig(
                universe_size=100,
                n_sources=3,
                terms_per_source=40,
                overlap=0.4,
                seed=42,
            )
        )

    def test_deterministic_in_seed(self) -> None:
        config = WorkloadConfig(universe_size=50, terms_per_source=20, seed=9)
        w1 = generate_workload(config)
        w2 = generate_workload(config)
        for s1, s2 in zip(w1.sources, w2.sources):
            assert s1.same_structure(s2)

    def test_different_seeds_differ(self) -> None:
        w1 = generate_workload(
            WorkloadConfig(universe_size=50, terms_per_source=20, seed=1)
        )
        w2 = generate_workload(
            WorkloadConfig(universe_size=50, terms_per_source=20, seed=2)
        )
        assert not w1.sources[0].same_structure(w2.sources[0])

    def test_source_sizes(self, workload) -> None:
        assert all(s.term_count() == 40 for s in workload.sources)

    def test_sources_are_valid_ontologies(self, workload) -> None:
        for source in workload.sources:
            assert source.is_valid(), source.validate()

    def test_overlap_produces_co_references(self, workload) -> None:
        pairs = workload.co_referring(0, 1)
        assert pairs
        # Every co-referring term exists in its respective source.
        for term0, term1 in pairs:
            assert workload.sources[0].has_term(term0)
            assert workload.sources[1].has_term(term1)

    def test_zero_overlap(self) -> None:
        workload = generate_workload(
            WorkloadConfig(
                universe_size=400,
                terms_per_source=20,
                overlap=0.0,
                seed=5,
            )
        )
        # With no deliberate overlap, co-references come only from
        # chance collisions of private samples; allow a small number.
        assert len(workload.co_referring(0, 1)) <= 6

    def test_truth_rules_are_equivalences(self, workload) -> None:
        rules = workload.truth_rules(0, 1)
        texts = {str(r) for r in rules}
        for term0, term1 in workload.co_referring(0, 1):
            assert f"src0:{term0} => src1:{term1}" in texts
            assert f"src1:{term1} => src0:{term0}" in texts

    def test_truth_rules_generate_cleanly(self, workload) -> None:
        generator = ArticulationGenerator(
            workload.sources[:2], name="mid"
        )
        articulation = generator.generate(workload.truth_rules(0, 1))
        assert len(articulation.bridges) > 0

    def test_truth_alignment_qualified(self, workload) -> None:
        alignment = workload.truth_alignment(0, 1)
        for left, right in alignment:
            assert left.startswith("src0:")
            assert right.startswith("src1:")


class TestWorkloadLexicon:
    def test_lexicon_knows_variants(self) -> None:
        workload = generate_workload(
            WorkloadConfig(universe_size=40, terms_per_source=20, seed=3)
        )
        lexicon = workload.lexicon()
        # Pick a concept and check its variant labels are synonyms.
        concept = workload.concepts[5]
        assert lexicon.are_synonyms(concept.labels[0], concept.labels[1])

    def test_noise_drops_entries(self) -> None:
        workload = generate_workload(
            WorkloadConfig(universe_size=100, terms_per_source=30, seed=3)
        )
        full = workload.lexicon(noise=0.0)
        noisy = workload.lexicon(noise=0.5, seed=1)
        assert len(noisy) < len(full)

    def test_full_noise_empties_lexicon(self) -> None:
        workload = generate_workload(
            WorkloadConfig(universe_size=30, terms_per_source=10, seed=3)
        )
        assert len(workload.lexicon(noise=1.0)) == 0


class TestChurn:
    def test_mutation_count(self, carrier) -> None:
        report = apply_churn(carrier, n_mutations=12, seed=4)
        assert len(report) == 12 or len(report) >= 10  # deletes may skip

    def test_churn_deterministic(self) -> None:
        from repro.workloads.paper_example import carrier_ontology

        o1, o2 = carrier_ontology(), carrier_ontology()
        r1 = apply_churn(o1, n_mutations=15, seed=7)
        r2 = apply_churn(o2, n_mutations=15, seed=7)
        assert o1.same_structure(o2)
        assert [m.kind for m in r1.mutations] == [
            m.kind for m in r2.mutations
        ]

    def test_touched_terms_reported(self, carrier) -> None:
        before = set(carrier.terms())
        report = apply_churn(carrier, n_mutations=10, seed=2)
        touched = report.touched_terms()
        assert touched
        after = set(carrier.terms())
        # Every added or removed term is reported as touched.
        assert (after - before) <= touched
        assert (before - after) <= touched

    def test_add_only_churn(self, carrier) -> None:
        report = apply_churn(
            carrier,
            n_mutations=5,
            seed=3,
            add_weight=1.0,
            delete_weight=0.0,
            edge_weight=0.0,
        )
        assert all(m.kind == "add_term" for m in report.mutations)

    def test_ontology_stays_valid_under_churn(self, factory) -> None:
        apply_churn(factory, n_mutations=30, seed=9)
        assert factory.is_valid(), factory.validate()


class TestWideProgram:
    def test_shape(self) -> None:
        program = wide_program(4, 5)
        assert len(program.clauses) == 12  # 3 clauses per family
        assert len(program.facts) == 20  # scc_size facts per family
        predicates = {clause.head[0] for clause in program.clauses}
        assert predicates == {f"{p}{i}" for p in "PQ" for i in range(4)}

    def test_families_share_no_constants(self) -> None:
        program = wide_program(3, 4)
        by_family: dict[str, set[str]] = {}
        for fact in program.facts:
            by_family.setdefault(fact[0], set()).update(fact[1:])
        families = list(by_family.values())
        for i, left in enumerate(families):
            for right in families[i + 1 :]:
                assert not (left & right)

    def test_closure_size_matches_saturation(self) -> None:
        program = wide_program(3, 5)
        engine = HornEngine()
        engine.add_clauses(program.clauses)
        engine.add_facts(program.facts)
        engine.saturate()
        assert len(engine.facts()) == program.closure_size()

    def test_stratum_dag_is_wide(self) -> None:
        program = wide_program(5, 3)
        engine = HornEngine()
        engine.add_clauses(program.clauses)
        strata, deps = engine.stratum_dag()
        assert len(strata) == 10  # P and Q stratum per family
        # Half the strata are roots: real width for the scheduler.
        assert sum(1 for dep in deps if not dep) == 5

    def test_validation(self) -> None:
        with pytest.raises(OnionError):
            wide_program(0, 3)
        with pytest.raises(OnionError):
            wide_program(3, 0)

    def test_deterministic(self) -> None:
        assert wide_program(2, 3) == wide_program(2, 3)
