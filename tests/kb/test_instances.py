"""Unit tests for the instance stores."""

from __future__ import annotations

import pytest

from repro.core.ontology import Ontology
from repro.errors import KnowledgeBaseError
from repro.kb.instances import Instance, InstanceStore


@pytest.fixture
def store(carrier) -> InstanceStore:
    return InstanceStore(carrier)


class TestInstance:
    def test_attribute_access_case_insensitive(self) -> None:
        instance = Instance("i1", "Cars", {"price": 5})
        assert instance.get("Price") == 5
        assert instance.get("PRICE") == 5

    def test_get_default(self) -> None:
        instance = Instance("i1", "Cars", {})
        assert instance.get("missing", 0) == 0

    def test_with_attributes_merges_lowercased(self) -> None:
        instance = Instance("i1", "Cars", {"price": 5})
        updated = instance.with_attributes({"Owner": "gio"})
        assert updated.get("owner") == "gio"
        assert updated.get("price") == 5
        assert instance.get("owner") is None  # original untouched


class TestPopulation:
    def test_add_and_get(self, store: InstanceStore) -> None:
        store.add("i1", "Cars", price=100)
        assert store.get("i1").get("price") == 100
        assert "i1" in store
        assert len(store) == 1

    def test_attribute_kwargs_and_mapping_merge(
        self, store: InstanceStore
    ) -> None:
        instance = store.add("i1", "Cars", {"Price": 1}, owner="gio")
        assert instance.get("price") == 1
        assert instance.get("owner") == "gio"

    def test_duplicate_id_rejected(self, store: InstanceStore) -> None:
        store.add("i1", "Cars")
        with pytest.raises(KnowledgeBaseError):
            store.add("i1", "Trucks")

    def test_unknown_class_rejected(self, store: InstanceStore) -> None:
        with pytest.raises(KnowledgeBaseError):
            store.add("i1", "Spaceship")

    def test_remove(self, store: InstanceStore) -> None:
        store.add("i1", "Cars")
        store.remove("i1")
        assert "i1" not in store
        with pytest.raises(KnowledgeBaseError):
            store.remove("i1")

    def test_get_missing_raises(self, store: InstanceStore) -> None:
        with pytest.raises(KnowledgeBaseError):
            store.get("ghost")


class TestStrictAttributes:
    @pytest.fixture
    def strict(self, carrier) -> InstanceStore:
        return InstanceStore(carrier, strict_attributes=True)

    def test_declared_attribute_accepted(self, strict: InstanceStore) -> None:
        # Price is declared on Cars; Car inherits it.
        strict.add("i1", "Car", price=10)

    def test_undeclared_attribute_rejected(self, strict: InstanceStore) -> None:
        with pytest.raises(KnowledgeBaseError):
            strict.add("i1", "Car", wingspan=3)

    def test_validate_reports_problems(self, carrier) -> None:
        lax = InstanceStore(carrier)
        lax.add("i1", "Car", wingspan=3)
        strict = InstanceStore(carrier, strict_attributes=True)
        strict.backend.insert(lax.get("i1"))  # simulate drift
        issues = strict.validate()
        assert issues and "wingspan" in issues[0]


class TestQueries:
    def test_instances_of_direct(self, carrier_kb: InstanceStore) -> None:
        trucks = carrier_kb.instances_of("Trucks", include_subclasses=False)
        assert {i.instance_id for i in trucks} == {
            "HaulTruck1",
            "HaulTruck2",
        }

    def test_instances_of_with_subclass_closure(
        self, carrier_kb: InstanceStore
    ) -> None:
        cars = carrier_kb.instances_of("Cars")
        assert {i.instance_id for i in cars} == {
            "MyCar",
            "FleetCar1",
            "FleetSUV1",
        }

    def test_closure_reaches_the_root(self, carrier_kb: InstanceStore) -> None:
        everything = carrier_kb.instances_of("Transportation")
        assert len(everything) == 5

    def test_unknown_class_query_rejected(
        self, carrier_kb: InstanceStore
    ) -> None:
        with pytest.raises(KnowledgeBaseError):
            carrier_kb.instances_of("Spaceship")

    def test_select_union_deduplicates(
        self, carrier_kb: InstanceStore
    ) -> None:
        rows = carrier_kb.select(["Cars", "Car"])
        ids = [i.instance_id for i in rows]
        assert len(ids) == len(set(ids))

    def test_select_with_predicate(self, carrier_kb: InstanceStore) -> None:
        cheap = carrier_kb.select(
            ["Transportation"],
            lambda i: isinstance(i.get("price"), (int, float))
            and i.get("price") < 8000,
        )
        assert {i.instance_id for i in cheap} == {"MyCar", "FleetCar1",
                                                  "HaulTruck2"}

    def test_classes_present(self, carrier_kb: InstanceStore) -> None:
        assert "Trucks" in carrier_kb.classes()

    def test_validate_clean_store(self, carrier_kb: InstanceStore) -> None:
        assert carrier_kb.validate() == []

    def test_validate_detects_removed_class(self, carrier) -> None:
        store = InstanceStore(carrier)
        store.add("i1", "SUV")
        carrier.remove_term("SUV")
        issues = store.validate()
        assert issues and "SUV" in issues[0]
