"""Multi-threaded access to :class:`SQLiteBackend`.

Two regimes, mirroring the class docstring: file-backed databases hand
each thread its own connection (sqlite serializes at the file), while
``:memory:`` shares one connection behind an RLock (a second in-memory
connection would see a *different* empty database).
"""

from __future__ import annotations

import threading

from repro.kb.backends.sqlite import SQLiteBackend
from repro.kb.instances import Instance

THREADS = 8
READS = 40


def _seed(backend: SQLiteBackend, n: int = 25) -> None:
    with backend.bulk():
        for i in range(n):
            backend.insert(Instance(f"i{i}", "Car", {"price": i * 100}))


def _read_worker(backend: SQLiteBackend, errors: list) -> None:
    try:
        for i in range(READS):
            rows = list(backend.scan(["Car"]))
            assert len(rows) >= 25
            got = backend.get(f"i{i % 25}")
            assert got is not None
            assert got.attributes["price"] == (i % 25) * 100
    except BaseException as exc:  # pragma: no cover - failure path
        errors.append(exc)


def _run(backend: SQLiteBackend) -> list:
    errors: list = []
    pool = [
        threading.Thread(target=_read_worker, args=(backend, errors))
        for _ in range(THREADS)
    ]
    for thread in pool:
        thread.start()
    for thread in pool:
        thread.join()
    return errors


class TestFileBackedThreading:
    def test_threads_get_private_connections(self, tmp_path) -> None:
        backend = SQLiteBackend(str(tmp_path / "kb.db"))
        _seed(backend)
        conns: list[int] = []
        lock = threading.Lock()
        # hold every thread alive until all have grabbed their conn, so
        # thread idents (and thread-local slots) cannot be recycled
        barrier = threading.Barrier(4)

        def worker() -> None:
            ident = id(backend._conn)
            with lock:
                conns.append(ident)
            barrier.wait(timeout=5)

        pool = [threading.Thread(target=worker) for _ in range(4)]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()
        assert len(set(conns)) == 4, "one connection per thread"
        assert id(backend._conn) not in conns
        backend.close()

    def test_concurrent_reads(self, tmp_path) -> None:
        backend = SQLiteBackend(str(tmp_path / "kb.db"))
        _seed(backend)
        assert _run(backend) == []
        backend.close()

    def test_concurrent_reads_with_writer(self, tmp_path) -> None:
        backend = SQLiteBackend(str(tmp_path / "kb.db"))
        _seed(backend)
        stop = threading.Event()
        errors: list = []

        def writer() -> None:
            try:
                for i in range(1000, 1150):
                    if stop.is_set():
                        break
                    backend.insert(Instance(f"w{i}", "Truck", {"price": i}))
            except BaseException as exc:  # pragma: no cover
                errors.append(exc)

        thread = threading.Thread(target=writer)
        thread.start()
        try:
            errors.extend(_run(backend))
        finally:
            stop.set()
            thread.join()
        assert errors == []
        backend.close()


class TestMemoryBackedThreading:
    def test_memory_shares_one_connection(self) -> None:
        backend = SQLiteBackend()
        _seed(backend)
        conns = set()
        lock = threading.Lock()

        def worker() -> None:
            with lock:
                conns.add(id(backend._conn))

        pool = [threading.Thread(target=worker) for _ in range(4)]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()
        conns.add(id(backend._conn))
        assert len(conns) == 1, ":memory: must share the single connection"
        backend.close()

    def test_concurrent_reads_on_memory(self) -> None:
        backend = SQLiteBackend()
        _seed(backend)
        assert _run(backend) == []
        backend.close()

    def test_bulk_excludes_concurrent_statements(self) -> None:
        backend = SQLiteBackend()
        _seed(backend, n=5)
        errors: list = []
        started = threading.Event()

        def bulk_writer() -> None:
            try:
                with backend.bulk():
                    started.set()
                    for i in range(200):
                        backend.insert(
                            Instance(f"b{i}", "Bus", {"price": i})
                        )
            except BaseException as exc:  # pragma: no cover
                errors.append(exc)

        def reader() -> None:
            try:
                started.wait(timeout=5)
                for _ in range(50):
                    len(backend)
                    list(backend.scan(["Car"]))
            except BaseException as exc:  # pragma: no cover
                errors.append(exc)

        pool = [threading.Thread(target=bulk_writer)] + [
            threading.Thread(target=reader) for _ in range(3)
        ]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()
        assert errors == []
        assert backend.get("b199") is not None
        backend.close()
