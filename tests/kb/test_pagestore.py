"""The out-of-core fact store: FactStore-contract parity, the buffer
pool, bulk ETL ingest, and the storage={memory,paged} x workers={1,2}
churn-script parity matrix (DRed retraction and apply_batch crossover
included)."""

from __future__ import annotations

import sqlite3

import pytest
from hypothesis import given, settings

from repro.core.rules import HornClause
from repro.inference.horn import FactStore, HornEngine
from repro.kb.ingest import ingest_facts, iter_fact_file
from repro.kb.pagestore import PagedFactStore
from tests.support.churn_scripts import (
    CLAUSE_POOL,
    churn_scripts,
    oracle_states,
    replay_incremental,
)

TRANS = HornClause(
    ("S", "?x", "?z"), (("S", "?x", "?y"), ("S", "?y", "?z"))
)


@pytest.fixture
def store():
    paged = PagedFactStore(":memory:", buffer_facts=256)
    yield paged
    paged.close()


def _chain(n: int, pred: str = "S") -> list[tuple[str, str, str]]:
    return [(pred, f"n{i}", f"n{i + 1}") for i in range(n)]


class TestFactStoreContract:
    """Same observable behavior as the in-memory store, operation by
    operation — the duck-typing contract the engine relies on."""

    def test_add_contains_remove_roundtrip(self, store) -> None:
        atom = ("S", "a", "b")
        assert store.add(atom) is True
        assert store.add(atom) is False  # duplicate
        assert atom in store
        assert len(store) == 1
        assert store.remove(atom) is True
        assert store.remove(atom) is False
        assert atom not in store
        assert len(store) == 0

    def test_mirrors_in_memory_store_over_mixed_ops(self, store) -> None:
        memory = FactStore()
        ops = _chain(12) + [("T", "x", "y"), ("S", "n3", "n4")]
        for atom in ops:
            assert store.add(atom) == memory.add(atom)
        for atom in [("S", "n0", "n1"), ("T", "x", "y"), ("Z", "q", "r")]:
            assert store.remove(atom) == memory.remove(atom)
        assert set(store.iter_facts()) == set(memory.iter_facts())
        assert len(store) == len(memory)
        assert store.predicates() == memory.predicates()
        for pred in ("S", "T", "Z"):
            assert store.pool_size(pred) == memory.pool_size(pred)
            assert set(store.pool(pred)) == set(memory.pool(pred))
        for pos in (1, 2):
            for value in ("n3", "n4", "x", "nope"):
                assert set(store.probe("S", pos, value)) == set(
                    memory.probe("S", pos, value)
                )
                assert store.probe_size("S", pos, value) == memory.probe_size(
                    "S", pos, value
                )

    def test_probe_snapshot_survives_concurrent_add(self, store) -> None:
        for atom in _chain(10):
            store.add(atom)
        probe = store.probe("S", 1, "n3")
        store.add(("S", "n3", "zz"))  # patches the cached bucket
        assert list(probe) == [("S", "n3", "n4")]  # iterator unaffected
        assert set(store.probe("S", 1, "n3")) == {
            ("S", "n3", "n4"),
            ("S", "n3", "zz"),
        }

    def test_overlay_factstore_composes_over_paged_base(self, store) -> None:
        """The serving tier's copy-free overlay discipline must work
        with a paged base: tombstones shadow, local facts add."""
        for atom in _chain(5):
            store.add(atom)
        overlay = FactStore(base=store)
        assert ("S", "n0", "n1") in overlay
        overlay.remove(("S", "n0", "n1"))  # tombstone, not a base delete
        assert ("S", "n0", "n1") not in overlay
        assert ("S", "n0", "n1") in store
        overlay.add(("S", "zz", "ww"))
        assert ("S", "zz", "ww") in overlay
        assert ("S", "zz", "ww") not in store
        assert set(overlay.probe("S", 1, "zz")) == {("S", "zz", "ww")}

    def test_persistence_across_reopen(self, tmp_path) -> None:
        path = tmp_path / "facts.sqlite"
        first = PagedFactStore(path)
        for atom in _chain(8):
            first.add(atom)
        first.close()
        second = PagedFactStore(path)
        try:
            assert len(second) == 8
            assert ("S", "n2", "n3") in second
            assert second.pool_size("S") == 8
        finally:
            second.close()

    def test_close_removes_owned_temp_file(self) -> None:
        import os

        paged = PagedFactStore()  # temp-file flavor
        paged.add(("S", "a", "b"))
        path = paged.path
        assert os.path.exists(path)
        paged.close()
        assert not os.path.exists(path)
        with pytest.raises(sqlite3.ProgrammingError):
            paged._conn.execute("SELECT 1")


class TestBufferPool:
    def test_capacity_is_enforced_in_facts(self) -> None:
        paged = PagedFactStore(":memory:", buffer_facts=32)
        try:
            # 16 distinct buckets of 4 facts each = 64 cached facts max
            for b in range(16):
                for i in range(4):
                    paged.add(("P", f"k{b}", f"v{b}_{i}"))
            for b in range(16):
                list(paged.probe("P", 1, f"k{b}"))
            stats = paged.buffer_stats()
            assert stats["buffered_facts"] <= 32
            assert stats["evictions"] > 0
        finally:
            paged.close()

    def test_hot_bucket_hits_and_oversize_streams(self) -> None:
        paged = PagedFactStore(":memory:", buffer_facts=64)
        try:
            for i in range(100):
                paged.add(("P", "hot", f"v{i}"))  # one bucket of 100 > 32
            paged.add(("P", "cold", "w"))
            list(paged.probe("P", 1, "hot"))
            list(paged.probe("P", 1, "hot"))
            stats = paged.buffer_stats()
            assert stats["oversize"] >= 2  # too big to pin, streamed
            list(paged.probe("P", 1, "cold"))
            list(paged.probe("P", 1, "cold"))
            assert paged.buffer_stats()["hits"] >= 1
            assert 0.0 <= paged.buffer_stats()["hit_rate"] <= 1.0
        finally:
            paged.close()

    def test_cached_buckets_patched_by_add_and_remove(self) -> None:
        paged = PagedFactStore(":memory:", buffer_facts=256)
        try:
            paged.add(("S", "a", "b"))
            assert set(paged.probe("S", 1, "a")) == {("S", "a", "b")}
            paged.add(("S", "a", "c"))
            paged.remove(("S", "a", "b"))
            assert set(paged.probe("S", 1, "a")) == {("S", "a", "c")}
            assert paged.probe_size("S", 1, "a") == 1
        finally:
            paged.close()


class TestBulkLoad:
    def test_dedupes_within_batch_and_against_existing(self, store) -> None:
        store.add(("P", "pre", "existing"))
        report = store.bulk_load(
            [("P", "a", "b"), ("P", "a", "b"), ("P", "pre", "existing")],
            batch_size=2,
        )
        assert report["staged"] == 3
        assert report["added"] == 1
        assert report["deduplicated"] == 2
        assert len(store) == 2

    def test_cold_load_rebuilds_indexes_post_load(self, tmp_path) -> None:
        path = tmp_path / "facts.sqlite"
        paged = PagedFactStore(path)
        try:
            report = paged.bulk_load(_chain(1000), batch_size=128)
            assert report["reindexed"] == 1
            assert report["batches"] == 8
            # the covering index exists and answers probes
            assert set(paged.probe("S", 1, "n500")) == {("S", "n500", "n501")}
            names = {
                row[0]
                for row in paged._conn.execute(
                    "SELECT name FROM sqlite_master WHERE type = 'index'"
                )
            }
            assert "idx_args_cover" in names
        finally:
            paged.close()

    def test_loaded_base_saturates_identically(self, tmp_path) -> None:
        """ingest-then-saturate equals add_facts-then-saturate."""
        path = tmp_path / "facts.sqlite"
        ingest_facts(path, _chain(40))
        paged_engine = HornEngine(storage="paged", storage_path=str(path))
        for atom in list(paged_engine.store.iter_facts()):
            paged_engine.add_fact(atom)  # register as base facts
        paged_engine.add_clause(TRANS)
        paged_engine.saturate()
        oracle = HornEngine()
        oracle.add_clause(TRANS)
        oracle.add_facts(_chain(40))
        oracle.saturate()
        assert paged_engine.facts() == oracle.facts()


class TestIngestFile:
    def test_jsonl_and_tsv_roundtrip(self, tmp_path) -> None:
        jsonl = tmp_path / "facts.jsonl"
        jsonl.write_text(
            '["S", "a", "b"]\n\n# comment\n["S", "b", "c"]\n',
            encoding="utf-8",
        )
        tsv = tmp_path / "facts.tsv"
        tsv.write_text("S\ta\tb\nS\tb\tc\n", encoding="utf-8")
        assert list(iter_fact_file(jsonl)) == list(iter_fact_file(tsv))

    def test_ingest_journal_snapshot_recovers(self, tmp_path) -> None:
        from repro.reliability.journal import ChurnJournal

        db = tmp_path / "facts.sqlite"
        journal_path = tmp_path / "journal.jsonl"
        report = ingest_facts(
            db, _chain(25), journal_path=journal_path
        )
        assert report["journaled"] == 25
        recovered, rec_report = ChurnJournal(journal_path).recover()
        assert rec_report["facts"] == 25
        assert recovered.base_facts() == set(_chain(25))

    def test_bad_jsonl_line_reports_location(self, tmp_path) -> None:
        from repro.errors import KnowledgeBaseError

        bad = tmp_path / "facts.jsonl"
        bad.write_text('["S", "a", "b"]\n["S", 42]\n', encoding="utf-8")
        with pytest.raises(KnowledgeBaseError, match="facts.jsonl:2"):
            list(iter_fact_file(bad))


class TestChurnParityMatrix:
    """The tentpole's equivalence claim: the paged store is
    observationally identical to the in-memory store under every
    churn path the engine has — delta additions, DRed retractions,
    clause churn — serial and parallel alike."""

    @pytest.mark.parametrize("workers", [1, 2])
    @settings(max_examples=30, deadline=None)
    @given(script=churn_scripts())
    def test_paged_matches_memory_and_oracle(self, workers, script) -> None:
        expected = oracle_states(script, saturate_every=3)
        _, memory_states = replay_incremental(
            script, saturate_every=3, storage="memory", workers=workers
        )
        engine, paged_states = replay_incremental(
            script, saturate_every=3, storage="paged", workers=workers
        )
        assert memory_states == expected
        assert paged_states == expected
        engine.store.close()

    @settings(max_examples=15, deadline=None)
    @given(script=churn_scripts(max_ops=10))
    def test_apply_batch_crossover_parity_on_paged(self, script) -> None:
        """Batch the script's fact diffs through apply_batch on a
        paged engine, forcing both sides of the rebuild crossover."""
        for crossover in (0, 10_000):  # always-rebuild / always-DRed
            oracle = oracle_states(script, saturate_every=len(script) or 1)
            engine = HornEngine(storage="paged", storage_path=":memory:")
            engine.rebuild_crossover = crossover
            adds: dict = {}
            for op in script:
                if op.kind in ("add_fact", "retract_fact"):
                    adds[op.fact] = op.kind
                elif op.kind == "add_clause":
                    engine.add_clause(CLAUSE_POOL[op.clause_index])
                else:
                    engine.retract_clause(CLAUSE_POOL[op.clause_index])
            engine.apply_batch(
                [f for f, k in adds.items() if k == "add_fact"],
                [f for f, k in adds.items() if k == "retract_fact"],
            )
            assert engine.facts() == oracle[-1]
            engine.store.close()

    def test_dred_retraction_parity_on_paged(self) -> None:
        """A deep retraction through a transitive closure exercises
        the DRed overdelete/rederive pass against the paged indexes."""
        engines = {}
        for storage in ("memory", "paged"):
            engine = HornEngine(
                storage=storage,
                storage_path=":memory:" if storage == "paged" else None,
            )
            engine.add_clause(TRANS)
            engine.add_facts(_chain(20))
            engine.saturate()
            engine.retract_fact(("S", "n10", "n11"))  # split the chain
            engines[storage] = engine.facts()
        assert engines["paged"] == engines["memory"]

    def test_detach_store_returns_frozen_paged_snapshot(self) -> None:
        engine = HornEngine(storage="paged", storage_path=":memory:")
        engine.add_clause(TRANS)
        engine.add_facts(_chain(6))
        engine.saturate()
        before = engine.facts()
        frozen = engine.detach_store()
        engine.add_fact(("S", "zz", "n0"))
        engine.saturate()
        assert set(frozen.iter_facts()) == before  # snapshot froze
        assert engine.facts() > before
        assert engine.store is not frozen
