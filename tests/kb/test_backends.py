"""Backend parity: the same store contents must answer identically
through the in-memory and SQLite backends, and SQL-side pushdown must
match Python-side evaluation exactly."""

from __future__ import annotations

import pytest

from repro.core.articulation import Articulation
from repro.errors import KnowledgeBaseError
from repro.kb.backends import (
    InMemoryBackend,
    SQLiteBackend,
    create_backend,
)
from repro.kb.backends.sqlite import condition_to_sql
from repro.kb.instances import Instance, InstanceStore
from repro.query.ast import Condition
from repro.query.engine import QueryEngine
from repro.workloads.paper_example import carrier_store, factory_store

BACKEND_FACTORIES = {
    "memory": InMemoryBackend,
    "sqlite": SQLiteBackend,
}


@pytest.fixture(params=sorted(BACKEND_FACTORIES))
def backend_kind(request) -> str:
    return request.param


def on_backend(store: InstanceStore, kind: str) -> InstanceStore:
    if kind == "memory":
        return store
    return store.clone(BACKEND_FACTORIES[kind]())


def row_key(instance: Instance):
    return (instance.instance_id, instance.cls, dict(instance.attributes))


class TestBackendProtocol:
    def test_crud_roundtrip(self, carrier, backend_kind) -> None:
        store = InstanceStore(
            carrier, backend=BACKEND_FACTORIES[backend_kind]()
        )
        store.add("i1", "Cars", price=100, model="T1")
        store.add("i2", "Trucks", price=200)
        assert len(store) == 2
        assert "i1" in store
        assert store.get("i1").get("model") == "T1"
        assert store.classes() == {"Cars", "Trucks"}
        store.remove("i2")
        assert "i2" not in store
        with pytest.raises(KnowledgeBaseError):
            store.remove("i2")

    def test_scan_is_ordered_and_streaming(
        self, carrier, backend_kind
    ) -> None:
        store = InstanceStore(
            carrier, backend=BACKEND_FACTORIES[backend_kind]()
        )
        for i in (3, 1, 2):
            store.add(f"i{i}", "Cars", price=i * 100)
        iterator = store.scan(["Cars"])
        assert iter(iterator) is iter(iterator)  # a lazy iterator
        assert [i.instance_id for i in iterator] == ["i1", "i2", "i3"]
        assert store.backend.ordered

    def test_create_backend_by_name(self, backend_kind) -> None:
        backend = create_backend(backend_kind)
        assert backend.kind == backend_kind
        with pytest.raises(KnowledgeBaseError):
            create_backend("papyrus")

    def test_nested_values_roundtrip(self, carrier, backend_kind) -> None:
        store = InstanceStore(
            carrier, backend=BACKEND_FACTORIES[backend_kind]()
        )
        store.add("i1", "Cars", tags=["a", "b"], meta={"k": 1})
        fetched = store.get("i1")
        assert fetched.get("tags") == ["a", "b"]
        assert fetched.get("meta") == {"k": 1}


class TestSQLitePersistence:
    def test_reopen_from_disk(self, carrier, tmp_path) -> None:
        path = tmp_path / "kb.sqlite"
        store = InstanceStore(carrier, backend=SQLiteBackend(path))
        store.add("i1", "Cars", price=123)
        store.backend.close()
        reopened = InstanceStore(carrier, backend=SQLiteBackend(path))
        assert reopened.get("i1").get("price") == 123

    def test_unserializable_attribute_rejected(self, carrier) -> None:
        store = InstanceStore(carrier, backend=SQLiteBackend())
        with pytest.raises(KnowledgeBaseError):
            store.add("i1", "Cars", weird=object())


CONDITIONS = [
    Condition("price", "<", 20000),
    Condition("price", "<=", 21500),
    Condition("price", ">", 21500),
    Condition("price", ">=", 61000),
    Condition("price", "!=", 21500),
    Condition("price", "=", 21500),
    Condition("model", "=", "T800"),
    Condition("model", "!=", "T800"),
    Condition("model", "<", "V"),
    Condition("owner", "=", "Gio"),
    # type-mismatch cases: numeric predicate over text values and
    # vice versa must fail the row on both backends
    Condition("model", "<", 10),
    Condition("price", "<", "cheap"),
    Condition("missing", "=", 1),
]


class TestScanParity:
    @pytest.mark.parametrize(
        "condition", CONDITIONS, ids=[str(c) for c in CONDITIONS]
    )
    @pytest.mark.parametrize("maker", [carrier_store, factory_store])
    def test_condition_parity(self, maker, condition) -> None:
        mem = maker()
        sql = mem.clone(SQLiteBackend())
        classes = sorted(mem.classes())
        got_mem = [
            row_key(i)
            for i in mem.scan(classes, conditions=(condition,))
        ]
        got_sql = [
            row_key(i)
            for i in sql.scan(classes, conditions=(condition,))
        ]
        assert got_mem == got_sql
        # and both agree with plain python filtering over a full scan
        plain = [
            row_key(i)
            for i in mem.scan(classes)
            if condition.evaluate(i.get(condition.attribute))
        ]
        assert got_mem == plain

    def test_sqlite_actually_pushes_into_sql(self) -> None:
        sql = carrier_store().clone(SQLiteBackend())
        before = sql.backend.stats.snapshot()
        list(
            sql.scan(
                ["Carrier"], conditions=(Condition("price", "<", 20000),)
            )
        )
        after = sql.backend.stats.snapshot()
        assert (
            after["conditions_pushed"] - before["conditions_pushed"] == 1
        )
        assert "json_extract" in sql.backend.last_sql
        assert "WHERE" in sql.backend.last_sql

    def test_untranslatable_condition_falls_back_to_python(self) -> None:
        sql = carrier_store().clone(SQLiteBackend())
        condition = Condition("price", "=", True)  # bool: never pushed
        assert condition_to_sql(condition) is None
        list(sql.scan(["Carrier"], conditions=(condition,)))
        assert sql.backend.stats.conditions_python >= 1

    def test_projection_pushes_into_sql(self) -> None:
        sql = carrier_store().clone(SQLiteBackend())
        rows = list(sql.scan(["Carrier"], attrs=frozenset({"price"})))
        assert rows
        assert all(set(i.attributes) <= {"price"} for i in rows)
        assert "data -> " in sql.backend.last_sql
        assert sql.backend.stats.projected_scans >= 1

    def test_string_not_equal_skips_stored_null(self, carrier) -> None:
        """A stored JSON null is None to Python, which fails every
        predicate — SQL-side evaluation must agree."""
        mem = InstanceStore(carrier)
        mem.add("i1", "Cars", model=None)
        mem.add("i2", "Cars", model="T800")
        mem.add("i3", "Cars")
        sql = mem.clone(SQLiteBackend())
        condition = Condition("model", "!=", "X")
        got_mem = [
            i.instance_id for i in mem.scan(["Cars"], conditions=(condition,))
        ]
        got_sql = [
            i.instance_id for i in sql.scan(["Cars"], conditions=(condition,))
        ]
        assert got_mem == got_sql == ["i2"]
        assert sql.backend.stats.conditions_pushed == 1

    def test_out_of_range_int_falls_back_to_python(self, carrier) -> None:
        """sqlite3 cannot bind ints beyond 64 bits; the condition must
        run in Python instead of crashing the scan."""
        mem = InstanceStore(carrier)
        mem.add("i1", "Cars", serial=2**63)
        mem.add("i2", "Cars", serial=5)
        sql = mem.clone(SQLiteBackend())
        condition = Condition("serial", "=", 2**63)
        assert condition_to_sql(condition) is None
        got = [
            i.instance_id for i in sql.scan(["Cars"], conditions=(condition,))
        ]
        assert got == ["i1"]

    def test_clear_empties_backend(self, carrier, backend_kind) -> None:
        store = InstanceStore(
            carrier, backend=BACKEND_FACTORIES[backend_kind]()
        )
        store.add("i1", "Cars", price=1)
        store.backend.clear()
        assert len(store) == 0
        store.add("i1", "Cars", price=2)  # id is free again
        assert store.get("i1").get("price") == 2

    def test_insert_overwrite_replaces_indexes(
        self, carrier, backend_kind
    ) -> None:
        """insert is an upsert on both backends: a replaced row must
        vanish from its old class and attribute buckets."""
        backend = BACKEND_FACTORIES[backend_kind]()
        backend.insert(Instance("i1", "Cars", {"model": "T1"}))
        backend.insert(Instance("i1", "Trucks", {"model": "T2"}))
        assert backend.classes() == {"Trucks"}
        assert list(backend.scan({"Cars"})) == []
        assert [
            i.get("model")
            for i in backend.scan(
                {"Trucks"}, conditions=(Condition("model", "=", "T2"),)
            )
        ] == ["T2"]
        assert not list(
            backend.scan(
                {"Trucks"}, conditions=(Condition("model", "=", "T1"),)
            )
        )

    def test_memory_equality_index_narrows(self) -> None:
        mem = carrier_store()
        rows = list(
            mem.scan(
                ["Carrier"], conditions=(Condition("model", "=", "T800"),)
            )
        )
        assert [i.instance_id for i in rows] == ["HaulTruck1"]


SCENARIOS = [
    "SELECT price FROM transport:Vehicle",
    "SELECT price FROM transport:Vehicle WHERE price < 10000",
    "SELECT price FROM carrier:Trucks WHERE price < 20000",
    "SELECT model FROM carrier:Trucks WHERE model = T800",
    "SELECT * FROM carrier:Trucks",
    "SELECT COUNT(*) FROM transport:Vehicle WHERE price < 10000",
    "SELECT MIN(price), MAX(price) FROM transport:Vehicle",
    "SELECT price FROM transport:Vehicle ORDER BY price DESC LIMIT 2",
    "SELECT price FROM transport:Vehicle LIMIT 1",
]


def result_keys(rows):
    return [
        (r.source, r.instance_id, sorted(r.values.items())) for r in rows
    ]


class TestQueryParityAcrossBackends:
    """The acceptance gate: every query scenario answers identically
    on both backends, with and without pushdown."""

    @pytest.mark.parametrize("question", SCENARIOS)
    @pytest.mark.parametrize("pushdown", [False, True])
    def test_scenario(
        self, transport: Articulation, question, pushdown, backend_kind
    ) -> None:
        baseline_engine = QueryEngine(
            transport,
            {"carrier": carrier_store(), "factory": factory_store()},
        )
        stores = {
            "carrier": on_backend(carrier_store(), backend_kind),
            "factory": on_backend(factory_store(), backend_kind),
        }
        engine = QueryEngine(transport, stores, pushdown=pushdown)
        assert result_keys(engine.execute(question)) == result_keys(
            baseline_engine.execute(question)
        )
