"""SQLite backend resilience: busy timeout, lock retry, rollback,
context-manager lifecycle."""

from __future__ import annotations

import sqlite3

import pytest

from repro.kb.backends.sqlite import SQLiteBackend
from repro.kb.instances import Instance
from repro.reliability import FaultPlan, RetryPolicy

FAST = RetryPolicy(
    max_retries=3, backoff_base=0.001, backoff_cap=0.005, task_timeout=None
)


def _instance(i: int) -> Instance:
    return Instance(f"i{i}", "Car", {"price": i})


class TestBusyTimeoutAndRetry:
    def test_busy_timeout_pragma_applied(self) -> None:
        backend = SQLiteBackend(busy_timeout_ms=1234)
        (value,) = backend._conn.execute("PRAGMA busy_timeout").fetchone()
        assert value == 1234
        backend.close()

    def test_injected_lock_is_retried_transparently(self) -> None:
        plan = FaultPlan(seed=0, rates={"sqlite_lock": 1.0}, max_fires=3)
        backend = SQLiteBackend(retry_policy=FAST, fault_plan=plan)
        backend.insert(_instance(0))
        assert backend.get("i0") is not None
        assert backend.lock_retries >= 1
        backend.close()

    def test_lock_that_outlives_retries_raises(self) -> None:
        backend = SQLiteBackend(
            retry_policy=RetryPolicy(
                max_retries=0,
                backoff_base=0.0,
                backoff_cap=0.0,
                task_timeout=None,
            ),
        )
        # arm after construction so the schema DDL is not the victim
        backend._fault_plan = FaultPlan(seed=0, rates={"sqlite_lock": 1.0})
        with pytest.raises(sqlite3.OperationalError, match="locked"):
            backend.insert(_instance(0))
        backend.close()

    def test_non_lock_operational_error_not_retried(self) -> None:
        backend = SQLiteBackend(retry_policy=FAST)
        with pytest.raises(sqlite3.OperationalError):
            backend._execute("SELECT * FROM no_such_table")
        assert backend.lock_retries == 0
        backend.close()

    def test_real_cross_connection_lock_is_waited_out(self, tmp_path) -> None:
        """A second connection holding a write lock stalls, not kills,
        the backend (busy_timeout + retry loop)."""
        path = tmp_path / "kb.db"
        backend = SQLiteBackend(path, busy_timeout_ms=2000)
        backend.insert(_instance(0))
        other = sqlite3.connect(path, check_same_thread=False)
        other.execute("BEGIN IMMEDIATE")
        try:
            import threading

            def release() -> None:
                other.commit()

            timer = threading.Timer(0.1, release)
            timer.start()
            backend.insert(_instance(1))  # blocks until the lock frees
            timer.join()
        finally:
            other.close()
        assert len(backend) == 2
        backend.close()


class TestBulkRollback:
    def test_mid_bulk_failure_leaves_table_unchanged(self) -> None:
        backend = SQLiteBackend()
        backend.insert(_instance(0))
        with pytest.raises(RuntimeError):
            with backend.bulk():
                backend.insert(_instance(1))
                backend.insert(_instance(2))
                raise RuntimeError("load failed mid-bulk")
        assert len(backend) == 1
        assert backend.get("i1") is None
        # the connection is not wedged in a stale transaction
        assert not backend._conn.in_transaction
        backend.insert(_instance(3))
        assert len(backend) == 2
        backend.close()

    def test_mid_bulk_injected_lock_exhaustion_rolls_back(self) -> None:
        """Even the retry loop giving up inside a bulk leaves the
        table at its pre-bulk state."""
        backend = SQLiteBackend(
            retry_policy=RetryPolicy(
                max_retries=0,
                backoff_base=0.0,
                backoff_cap=0.0,
                task_timeout=None,
            ),
        )
        backend.insert(_instance(0))
        # arm the fault only for the statements inside the bulk
        backend._fault_plan = FaultPlan(
            seed=0, rates={"sqlite_lock": 1.0}, max_fires=1
        )
        with pytest.raises(sqlite3.OperationalError):
            with backend.bulk():
                backend.insert(_instance(1))
        backend._fault_plan = None
        assert len(backend) == 1
        assert not backend._conn.in_transaction
        backend.close()

    def test_bulk_commit_persists(self) -> None:
        backend = SQLiteBackend()
        with backend.bulk():
            for i in range(5):
                backend.insert(_instance(i))
        assert len(backend) == 5
        backend.close()


class TestRollbackFailureRecovery:
    """Regression: a ROLLBACK that itself raises used to leave the
    connection wedged inside a half-open transaction — a later bulk()
    would BEGIN on top of the stale BEGIN and die.  The backend now
    discards and replaces the connection."""

    def _fail_rollback(self, backend, monkeypatch) -> None:
        def boom() -> None:
            raise sqlite3.OperationalError("disk I/O error (rollback)")

        monkeypatch.setattr(backend, "_rollback", boom)

    def test_memory_backend_usable_after_rollback_failure(
        self, monkeypatch
    ) -> None:
        backend = SQLiteBackend()
        backend.insert(_instance(0))
        self._fail_rollback(backend, monkeypatch)
        with pytest.raises(RuntimeError, match="mid-bulk"):
            with backend.bulk():
                backend.insert(_instance(1))
                raise RuntimeError("load failed mid-bulk")
        monkeypatch.undo()
        # the replacement connection carries no half-open transaction
        assert not backend._conn.in_transaction
        with backend.bulk():  # a later bulk() must work end to end
            backend.insert(_instance(7))
        assert backend.get("i7") is not None
        backend.close()

    def test_file_backend_keeps_committed_rows(
        self, tmp_path, monkeypatch
    ) -> None:
        backend = SQLiteBackend(tmp_path / "kb.db")
        backend.insert(_instance(0))
        self._fail_rollback(backend, monkeypatch)
        with pytest.raises(RuntimeError):
            with backend.bulk():
                backend.insert(_instance(1))
                raise RuntimeError("load failed mid-bulk")
        monkeypatch.undo()
        assert not backend._conn.in_transaction
        # durable pre-bulk state survived the connection swap...
        assert backend.get("i0") is not None
        # ...the uncommitted bulk work did not...
        assert backend.get("i1") is None
        # ...and the backend takes new transactions
        with backend.bulk():
            backend.insert(_instance(2))
        assert len(backend) == 2
        backend.close()

    def test_rollback_success_path_untouched(self) -> None:
        backend = SQLiteBackend()
        with pytest.raises(RuntimeError):
            with backend.bulk():
                backend.insert(_instance(1))
                raise RuntimeError("boom")
        assert not backend._conn.in_transaction
        assert backend.get("i1") is None
        backend.close()


class TestContextManager:
    def test_with_statement_closes_connection(self) -> None:
        with SQLiteBackend() as backend:
            backend.insert(_instance(0))
            assert len(backend) == 1
        with pytest.raises(sqlite3.ProgrammingError):
            backend._conn.execute("SELECT 1")

    def test_close_propagates_body_exception(self) -> None:
        with pytest.raises(RuntimeError, match="boom"):
            with SQLiteBackend() as backend:
                raise RuntimeError("boom")
        with pytest.raises(sqlite3.ProgrammingError):
            backend._conn.execute("SELECT 1")
