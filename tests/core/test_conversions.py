"""Unit tests for executable conversion expressions in functional rules."""

from __future__ import annotations

import pytest

from repro.core.rules import FunctionalRule, compile_conversion, parse_rule
from repro.errors import RuleError, RuleParseError


class TestCompileConversion:
    @pytest.mark.parametrize(
        ("expression", "value", "expected"),
        [
            ("x * 2", 3, 6),
            ("x / 4", 8, 2),
            ("x + 1.5", 1, 2.5),
            ("x - 10", 7, -3),
            ("-x", 5, -5),
            ("x ** 2", 3, 9),
            ("x % 3", 7, 1),
            ("(x + 1) * (x - 1)", 3, 8),
            ("2", 99, 2),  # constant function
        ],
    )
    def test_arithmetic(self, expression, value, expected) -> None:
        fn = compile_conversion(expression)
        assert fn(value) == expected

    @pytest.mark.parametrize(
        "bad",
        [
            "y * 2",                      # unknown variable
            "__import__('os')",           # call
            "x.__class__",                # attribute access
            "[1, 2]",                     # container literal
            "x if x else 0",              # conditional
            "'str'",                      # non-numeric literal
            "lambda v: v",                # lambda
            "x; x",                       # statements
            "",                           # empty
        ],
    )
    def test_rejects_unsafe_or_invalid(self, bad) -> None:
        with pytest.raises(RuleError):
            compile_conversion(bad)

    def test_no_builtins_leak(self) -> None:
        fn = compile_conversion("x * 1")
        # The compiled code runs with empty builtins.
        assert fn.__closure__ is not None
        assert fn(2) == 2


class TestFunctionalRuleExpressions:
    FULL = (
        "PSToEuroFn(x / 0.7111 ; x * 0.7111 ; EuroToPSFn) : "
        "carrier:PoundSterling => transport:Euro"
    )

    def test_parse_executable_rule(self) -> None:
        rule = parse_rule(self.FULL)
        assert isinstance(rule, FunctionalRule)
        assert rule.apply(0.7111) == pytest.approx(1.0)
        assert rule.apply_inverse(1.0) == pytest.approx(0.7111)
        assert rule.inverse_edge_label() == "EuroToPSFn()"

    def test_str_round_trip_preserves_expressions(self) -> None:
        rule = parse_rule(self.FULL)
        assert isinstance(rule, FunctionalRule)
        again = parse_rule(str(rule))
        assert isinstance(again, FunctionalRule)
        assert again.expr_text == rule.expr_text
        assert again.inverse_expr_text == rule.inverse_expr_text
        assert again.apply(100.0) == pytest.approx(rule.apply(100.0))

    def test_forward_only_expression(self) -> None:
        rule = parse_rule("Half(x / 2) : a:X => b:Y")
        assert isinstance(rule, FunctionalRule)
        assert rule.apply(10) == 5
        assert rule.inverse is None
        assert rule.inverse_edge_label() is None

    def test_empty_body_is_declaration_only(self) -> None:
        rule = parse_rule("Fn() : a:X => b:Y")
        assert isinstance(rule, FunctionalRule)
        with pytest.raises(RuleError):
            rule.apply(1)

    def test_too_many_segments_rejected(self) -> None:
        with pytest.raises(RuleParseError):
            parse_rule("Fn(x ; x ; Inv ; extra) : a:X => b:Y")

    def test_bad_inverse_name_rejected(self) -> None:
        with pytest.raises(RuleParseError):
            parse_rule("Fn(x ; x ; 9bad) : a:X => b:Y")

    def test_unsafe_expression_rejected_at_parse(self) -> None:
        with pytest.raises(RuleParseError):
            parse_rule("Fn(__import__('os')) : a:X => b:Y")

    def test_generator_uses_parsed_conversions(self) -> None:
        from repro.core.articulation import ArticulationGenerator
        from repro.core.rules import parse_rules
        from repro.workloads.paper_example import (
            carrier_ontology,
            factory_ontology,
        )

        generator = ArticulationGenerator(
            [carrier_ontology(), factory_ontology()], name="transport"
        )
        articulation = generator.generate(parse_rules(self.FULL))
        forward = articulation.functions["PSToEuroFn()"]
        backward = articulation.functions["EuroToPSFn()"]
        assert backward.apply(forward.apply(123.0)) == pytest.approx(123.0)
