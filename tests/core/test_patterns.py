"""Unit tests for graph patterns and the strict/fuzzy matcher."""

from __future__ import annotations

import pytest

from repro.core.graph import LabeledGraph
from repro.core.ontology import Ontology
from repro.core.patterns import (
    ANY_LABEL,
    MatchConfig,
    Pattern,
    find_matches,
    first_match,
    matches,
)
from repro.errors import PatternError


@pytest.fixture
def graph(carrier: Ontology) -> LabeledGraph:
    return carrier.graph


class TestPatternConstruction:
    def test_duplicate_node_id_rejected(self) -> None:
        pattern = Pattern()
        pattern.add_node("n", "Car")
        with pytest.raises(PatternError):
            pattern.add_node("n", "Cars")

    def test_edge_requires_known_endpoints(self) -> None:
        pattern = Pattern()
        pattern.add_node("n", "Car")
        with pytest.raises(PatternError):
            pattern.add_edge("n", "S", "ghost")

    def test_edge_label_empty_rejected(self) -> None:
        pattern = Pattern()
        pattern.add_node("a", "Car")
        pattern.add_node("b", "Cars")
        with pytest.raises(PatternError):
            pattern.add_edge("a", "", "b")

    def test_single_factory(self) -> None:
        pattern = Pattern.single("Car", ontology="carrier")
        assert len(pattern) == 1
        assert pattern.ontology == "carrier"

    def test_path_factory(self) -> None:
        pattern = Pattern.path(["Car", "Cars", "Carrier"], edge_label="S")
        assert len(pattern) == 3
        assert len(pattern.edges()) == 2

    def test_path_needs_labels(self) -> None:
        with pytest.raises(PatternError):
            Pattern.path([])

    def test_variables_listed(self) -> None:
        pattern = Pattern()
        pattern.add_node("n0", "Trucks")
        pattern.add_node("n1", None, "O")
        pattern.add_edge("n1", "A", "n0")
        assert pattern.variables() == ["O"]


class TestStrictMatching:
    def test_single_node_match(self, graph: LabeledGraph) -> None:
        assert matches(Pattern.single("Car"), graph)

    def test_single_node_no_match(self, graph: LabeledGraph) -> None:
        assert not matches(Pattern.single("Spaceship"), graph)

    def test_empty_pattern_raises(self, graph: LabeledGraph) -> None:
        with pytest.raises(PatternError):
            list(find_matches(Pattern(), graph))

    def test_edge_condition_enforced(self, graph: LabeledGraph) -> None:
        pattern = Pattern.path(["Car", "Cars"], edge_label="S")
        assert matches(pattern, graph)
        wrong_direction = Pattern.path(["Cars", "Car"], edge_label="S")
        assert not matches(wrong_direction, graph)

    def test_edge_label_must_agree(self, graph: LabeledGraph) -> None:
        pattern = Pattern.path(["Car", "Cars"], edge_label="A")
        assert not matches(pattern, graph)

    def test_any_label_wildcard(self, graph: LabeledGraph) -> None:
        pattern = Pattern.path(["Car", "Driver"], edge_label=ANY_LABEL)
        assert matches(pattern, graph)  # the drivenBy edge

    def test_binding_exposes_mapping(self, graph: LabeledGraph) -> None:
        pattern = Pattern.path(["Car", "Cars"], edge_label="S")
        binding = first_match(pattern, graph)
        assert binding is not None
        assert binding["n0"] == "Car"
        assert binding.matched_nodes() == frozenset({"Car", "Cars"})

    def test_variable_binding(self, graph: LabeledGraph) -> None:
        pattern = Pattern()
        pattern.add_node("truck", "Trucks")
        pattern.add_node("owner", None, "O")
        pattern.add_edge("owner", "A", "truck")
        variables = {b.var("O") for b in find_matches(pattern, graph)}
        # Trucks has A-edges from Price, Owner, Model.
        assert variables == {"Price", "Owner", "Model"}

    def test_multi_edge_pattern(self, graph: LabeledGraph) -> None:
        pattern = Pattern()
        pattern.add_node("t", "Trucks")
        pattern.add_node("o", "Owner")
        pattern.add_node("m", "Model")
        pattern.add_edge("o", "A", "t")
        pattern.add_edge("m", "A", "t")
        assert matches(pattern, graph)

    def test_limit_stops_enumeration(self, graph: LabeledGraph) -> None:
        pattern = Pattern()
        pattern.add_node("x", None, "X")
        results = list(find_matches(pattern, graph, limit=3))
        assert len(results) == 3

    def test_wildcard_matches_every_node(self, graph: LabeledGraph) -> None:
        pattern = Pattern()
        pattern.add_node("x", None, "X")
        results = list(find_matches(pattern, graph))
        assert len(results) == graph.node_count()

    def test_homomorphism_default_not_injective(self) -> None:
        g = LabeledGraph()
        g.add_node("n", "A")
        g.add_edge("n", "r", "n")  # self loop
        pattern = Pattern()
        pattern.add_node("p1", "A")
        pattern.add_node("p2", "A")
        pattern.add_edge("p1", "r", "p2")
        # Non-injective: both pattern nodes may map to the single node.
        assert matches(pattern, g)
        assert not matches(pattern, g, MatchConfig(injective=True))


class TestFuzzyMatching:
    def test_case_insensitive(self, graph: LabeledGraph) -> None:
        pattern = Pattern.single("car")
        assert not matches(pattern, graph)
        assert matches(pattern, graph, MatchConfig(case_insensitive=True))

    def test_synonyms_relax_condition_one(self, graph: LabeledGraph) -> None:
        pattern = Pattern.single("Automobile")
        config = MatchConfig.with_synonyms([("Automobile", "Car")])
        assert matches(pattern, graph, config)

    def test_synonyms_are_symmetric(self, graph: LabeledGraph) -> None:
        pattern = Pattern.single("Car")
        config = MatchConfig.with_synonyms([("Automobile", "Car")])
        # Car still matches itself under the synonym config.
        assert matches(pattern, graph, config)

    def test_relax_edge_labels(self, graph: LabeledGraph) -> None:
        pattern = Pattern.path(["Car", "Cars"], edge_label="A")
        assert matches(pattern, graph, MatchConfig(relax_edge_labels=True))

    def test_node_equiv_escape_hatch(self, graph: LabeledGraph) -> None:
        config = MatchConfig(
            node_equiv=lambda p, g: p == "AnyVehicle" and g in ("Car", "SUV")
        )
        pattern = Pattern.single("AnyVehicle")
        found = {
            b["n0"] for b in find_matches(pattern, graph, config)
        }
        assert found == {"Car", "SUV"}

    def test_edge_equiv_escape_hatch(self, graph: LabeledGraph) -> None:
        config = MatchConfig(edge_equiv=lambda p, g: {p, g} == {"S", "A"})
        pattern = Pattern.path(["Car", "Cars"], edge_label="A")
        assert matches(pattern, graph, config)

    def test_strict_config_factory(self) -> None:
        config = MatchConfig.strict()
        assert not config.case_insensitive
        assert not config.relax_edge_labels
