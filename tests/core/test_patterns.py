"""Unit tests for graph patterns and the strict/fuzzy matcher."""

from __future__ import annotations

import pytest

from repro.core.graph import LabeledGraph
from repro.core.ontology import Ontology
from repro.core.patterns import (
    ANY_LABEL,
    MatchConfig,
    Pattern,
    find_matches,
    first_match,
    matches,
)
from repro.errors import PatternError


@pytest.fixture
def graph(carrier: Ontology) -> LabeledGraph:
    return carrier.graph


class TestPatternConstruction:
    def test_duplicate_node_id_rejected(self) -> None:
        pattern = Pattern()
        pattern.add_node("n", "Car")
        with pytest.raises(PatternError):
            pattern.add_node("n", "Cars")

    def test_edge_requires_known_endpoints(self) -> None:
        pattern = Pattern()
        pattern.add_node("n", "Car")
        with pytest.raises(PatternError):
            pattern.add_edge("n", "S", "ghost")

    def test_edge_label_empty_rejected(self) -> None:
        pattern = Pattern()
        pattern.add_node("a", "Car")
        pattern.add_node("b", "Cars")
        with pytest.raises(PatternError):
            pattern.add_edge("a", "", "b")

    def test_single_factory(self) -> None:
        pattern = Pattern.single("Car", ontology="carrier")
        assert len(pattern) == 1
        assert pattern.ontology == "carrier"

    def test_path_factory(self) -> None:
        pattern = Pattern.path(["Car", "Cars", "Carrier"], edge_label="S")
        assert len(pattern) == 3
        assert len(pattern.edges()) == 2

    def test_path_needs_labels(self) -> None:
        with pytest.raises(PatternError):
            Pattern.path([])

    def test_variables_listed(self) -> None:
        pattern = Pattern()
        pattern.add_node("n0", "Trucks")
        pattern.add_node("n1", None, "O")
        pattern.add_edge("n1", "A", "n0")
        assert pattern.variables() == ["O"]


class TestStrictMatching:
    def test_single_node_match(self, graph: LabeledGraph) -> None:
        assert matches(Pattern.single("Car"), graph)

    def test_single_node_no_match(self, graph: LabeledGraph) -> None:
        assert not matches(Pattern.single("Spaceship"), graph)

    def test_empty_pattern_raises(self, graph: LabeledGraph) -> None:
        with pytest.raises(PatternError):
            list(find_matches(Pattern(), graph))

    def test_edge_condition_enforced(self, graph: LabeledGraph) -> None:
        pattern = Pattern.path(["Car", "Cars"], edge_label="S")
        assert matches(pattern, graph)
        wrong_direction = Pattern.path(["Cars", "Car"], edge_label="S")
        assert not matches(wrong_direction, graph)

    def test_edge_label_must_agree(self, graph: LabeledGraph) -> None:
        pattern = Pattern.path(["Car", "Cars"], edge_label="A")
        assert not matches(pattern, graph)

    def test_any_label_wildcard(self, graph: LabeledGraph) -> None:
        pattern = Pattern.path(["Car", "Driver"], edge_label=ANY_LABEL)
        assert matches(pattern, graph)  # the drivenBy edge

    def test_binding_exposes_mapping(self, graph: LabeledGraph) -> None:
        pattern = Pattern.path(["Car", "Cars"], edge_label="S")
        binding = first_match(pattern, graph)
        assert binding is not None
        assert binding["n0"] == "Car"
        assert binding.matched_nodes() == frozenset({"Car", "Cars"})

    def test_variable_binding(self, graph: LabeledGraph) -> None:
        pattern = Pattern()
        pattern.add_node("truck", "Trucks")
        pattern.add_node("owner", None, "O")
        pattern.add_edge("owner", "A", "truck")
        variables = {b.var("O") for b in find_matches(pattern, graph)}
        # Trucks has A-edges from Price, Owner, Model.
        assert variables == {"Price", "Owner", "Model"}

    def test_multi_edge_pattern(self, graph: LabeledGraph) -> None:
        pattern = Pattern()
        pattern.add_node("t", "Trucks")
        pattern.add_node("o", "Owner")
        pattern.add_node("m", "Model")
        pattern.add_edge("o", "A", "t")
        pattern.add_edge("m", "A", "t")
        assert matches(pattern, graph)

    def test_limit_stops_enumeration(self, graph: LabeledGraph) -> None:
        pattern = Pattern()
        pattern.add_node("x", None, "X")
        results = list(find_matches(pattern, graph, limit=3))
        assert len(results) == 3

    def test_wildcard_matches_every_node(self, graph: LabeledGraph) -> None:
        pattern = Pattern()
        pattern.add_node("x", None, "X")
        results = list(find_matches(pattern, graph))
        assert len(results) == graph.node_count()

    def test_homomorphism_default_not_injective(self) -> None:
        g = LabeledGraph()
        g.add_node("n", "A")
        g.add_edge("n", "r", "n")  # self loop
        pattern = Pattern()
        pattern.add_node("p1", "A")
        pattern.add_node("p2", "A")
        pattern.add_edge("p1", "r", "p2")
        # Non-injective: both pattern nodes may map to the single node.
        assert matches(pattern, g)
        assert not matches(pattern, g, MatchConfig(injective=True))


class TestFuzzyMatching:
    def test_case_insensitive(self, graph: LabeledGraph) -> None:
        pattern = Pattern.single("car")
        assert not matches(pattern, graph)
        assert matches(pattern, graph, MatchConfig(case_insensitive=True))

    def test_synonyms_relax_condition_one(self, graph: LabeledGraph) -> None:
        pattern = Pattern.single("Automobile")
        config = MatchConfig.with_synonyms([("Automobile", "Car")])
        assert matches(pattern, graph, config)

    def test_synonyms_are_symmetric(self, graph: LabeledGraph) -> None:
        pattern = Pattern.single("Car")
        config = MatchConfig.with_synonyms([("Automobile", "Car")])
        # Car still matches itself under the synonym config.
        assert matches(pattern, graph, config)

    def test_relax_edge_labels(self, graph: LabeledGraph) -> None:
        pattern = Pattern.path(["Car", "Cars"], edge_label="A")
        assert matches(pattern, graph, MatchConfig(relax_edge_labels=True))

    def test_node_equiv_escape_hatch(self, graph: LabeledGraph) -> None:
        config = MatchConfig(
            node_equiv=lambda p, g: p == "AnyVehicle" and g in ("Car", "SUV")
        )
        pattern = Pattern.single("AnyVehicle")
        found = {
            b["n0"] for b in find_matches(pattern, graph, config)
        }
        assert found == {"Car", "SUV"}

    def test_edge_equiv_escape_hatch(self, graph: LabeledGraph) -> None:
        config = MatchConfig(edge_equiv=lambda p, g: {p, g} == {"S", "A"})
        pattern = Pattern.path(["Car", "Cars"], edge_label="A")
        assert matches(pattern, graph, config)

    def test_strict_config_factory(self) -> None:
        config = MatchConfig.strict()
        assert not config.case_insensitive
        assert not config.relax_edge_labels


class TestSynonymClosure:
    def test_transitive_chain_closes(self, graph: LabeledGraph) -> None:
        """a~b plus b~c must let a match c without restating the pair."""
        config = MatchConfig.with_synonyms(
            [("Automobile", "Motorcar"), ("Motorcar", "Car")]
        )
        # 'Automobile' reaches the graph's 'Car' through the chain.
        assert matches(Pattern.single("Automobile"), graph, config)
        assert config.synonyms["Automobile"] == frozenset(
            {"Motorcar", "Car"}
        )
        assert config.synonyms["Car"] == frozenset(
            {"Motorcar", "Automobile"}
        )

    def test_closure_spans_components_independently(self) -> None:
        config = MatchConfig.with_synonyms(
            [("a", "b"), ("b", "c"), ("x", "y")]
        )
        assert config.synonyms["a"] == frozenset({"b", "c"})
        assert config.synonyms["x"] == frozenset({"y"})
        assert "a" not in config.synonyms["x"]


class TestDeterministicEnumeration:
    def test_candidates_enumerate_sorted(self) -> None:
        g = LabeledGraph()
        for node in ("z9", "m5", "a1", "k3"):
            g.add_node(node, "Same")
        pattern = Pattern.single("Same")
        for strategy in ("indexed", "scan"):
            found = [
                b["n0"]
                for b in find_matches(pattern, g, strategy=strategy)
            ]
            assert found == sorted(found) == ["a1", "k3", "m5", "z9"]

    def test_wildcard_enumerates_sorted(self) -> None:
        g = LabeledGraph()
        for node in ("w", "b", "q", "d"):
            g.add_node(node)
        pattern = Pattern()
        pattern.add_node("x", None, "X")
        for strategy in ("indexed", "scan"):
            found = [
                b.var("X")
                for b in find_matches(pattern, g, strategy=strategy)
            ]
            assert found == ["b", "d", "q", "w"]

    def test_unknown_strategy_rejected(self, graph: LabeledGraph) -> None:
        with pytest.raises(PatternError):
            list(find_matches(Pattern.single("Car"), graph,
                              strategy="psychic"))


class TestNonCopyingAccessors:
    def test_nodes_and_edges_are_cached_tuples(self) -> None:
        pattern = Pattern.path(["Car", "Cars"], edge_label="S")
        assert pattern.nodes() is pattern.nodes()
        assert pattern.edges() is pattern.edges()
        assert isinstance(pattern.nodes(), tuple)
        assert isinstance(pattern.edges(), tuple)

    def test_cache_invalidated_on_growth(self) -> None:
        pattern = Pattern()
        pattern.add_node("a", "Car")
        nodes_before = pattern.nodes()
        edges_before = pattern.edges()
        pattern.add_node("b", "Cars")
        pattern.add_edge("a", "S", "b")
        assert len(pattern.nodes()) == 2
        assert len(pattern.edges()) == 1
        assert pattern.nodes() is not nodes_before
        assert pattern.edges() is not edges_before


class TestScanBaselineParity:
    def test_node_id_colliding_with_label_keeps_candidates(self) -> None:
        """Regression: the scan path skipped any graph label that
        happened to equal a node id already collected, dropping valid
        fuzzy candidates and diverging from the indexed strategy."""
        g = LabeledGraph()
        g.add_node("car", "CAR")  # node id 'car' collides with...
        g.add_node("n1", "car")   # ...this node's label
        pattern = Pattern.single("CAR")
        config = MatchConfig(case_insensitive=True)
        results = {
            strategy: sorted(
                b["n0"]
                for b in find_matches(pattern, g, config, strategy=strategy)
            )
            for strategy in ("indexed", "scan")
        }
        assert results["scan"] == results["indexed"] == ["car", "n1"]


class TestMatchIndexCaching:
    def test_index_reused_for_same_graph_and_config(
        self, graph: LabeledGraph
    ) -> None:
        from repro.core.patterns import MatchIndex

        config = MatchConfig(case_insensitive=True)
        index1 = MatchIndex.for_graph(graph, config)
        index2 = MatchIndex.for_graph(graph, config)
        assert index2 is index1

    def test_index_refreshed_in_place_after_mutation(
        self, graph: LabeledGraph
    ) -> None:
        from repro.core.patterns import MatchIndex

        config = MatchConfig(case_insensitive=True)
        index1 = MatchIndex.for_graph(graph, config)
        assert "Car" in index1.candidates("car")
        graph.add_node("CAR2", "CAR")
        index2 = MatchIndex.for_graph(graph, config)
        assert index2 is index1  # journal replay, not a rebuild
        assert index2.fresh()
        assert index2.delta_refreshes == 1
        assert "CAR2" in index2.candidates("car")

    def test_distinct_configs_get_distinct_indexes(
        self, graph: LabeledGraph
    ) -> None:
        from repro.core.patterns import MatchIndex

        strict = MatchConfig.strict()
        fuzzy = MatchConfig(case_insensitive=True)
        assert MatchIndex.for_graph(graph, strict) is not MatchIndex.for_graph(
            graph, fuzzy
        )
        assert MatchIndex.for_graph(graph, strict).candidates("car") == ()
        assert MatchIndex.for_graph(graph, fuzzy).candidates("car") == ("Car",)

    def test_default_config_shares_one_index(self) -> None:
        """Config-less calls must reuse one strict index, not churn the
        cache with a fresh config per call."""
        g = LabeledGraph()
        g.add_node("Car")
        before = len(g._match_indexes)
        for _ in range(20):
            list(find_matches(Pattern.single("Car"), g))
        assert len(g._match_indexes) <= before + 1

    def test_value_equal_configs_share_one_index(self) -> None:
        """A fresh-but-equal MatchConfig per call (idiomatic for a
        frozen dataclass) must hit the same cached index, not rebuild
        and churn the cache."""
        from repro.core.patterns import MatchIndex

        g = LabeledGraph()
        g.add_node("Car")
        g._match_indexes.clear()
        first = MatchIndex.for_graph(g, MatchConfig(case_insensitive=True))
        for _ in range(20):
            config = MatchConfig(case_insensitive=True)
            assert MatchIndex.for_graph(g, config) is first
        assert len(g._match_indexes) == 1

    def test_eviction_drops_one_entry_not_all(self) -> None:
        from repro.core.patterns import MatchIndex

        g = LabeledGraph()
        g.add_node("Car")
        g._match_indexes.clear()
        configs = [MatchConfig.with_synonyms([("car", f"auto{i}")])
                   for i in range(MatchIndex._CACHE_LIMIT)]
        indexes = [MatchIndex.for_graph(g, c) for c in configs]
        overflow = MatchConfig(relax_edge_labels=True)
        MatchIndex.for_graph(g, overflow)
        # Only the oldest entry was evicted; the rest stay warm.
        assert MatchIndex.for_graph(g, configs[-1]) is indexes[-1]
        assert len(g._match_indexes) == MatchIndex._CACHE_LIMIT


class TestIncrementalIndexMaintenance:
    """MatchIndex journal replay: deltas patch the index in place."""

    def _config(self) -> MatchConfig:
        synonyms = MatchConfig.with_synonyms([("Car", "Auto")]).synonyms
        return MatchConfig(synonyms=synonyms, case_insensitive=True)

    def test_replay_matches_scratch_build_over_mixed_deltas(self) -> None:
        from repro.core.patterns import MatchIndex

        g = LabeledGraph()
        for n in ["Car", "car", "Truck", "Auto", "Bus"]:
            g.add_node(n)
        g.add_edge("Car", "uses", "Truck")
        config = self._config()
        index = MatchIndex.for_graph(g, config)
        # Warm every lazy structure so the replay has to patch them all.
        index.candidates("Car")
        index.all_nodes()
        index.pair_labels("Car", "Truck")

        g.add_node("auto2", "auto")       # joins via synonym + case
        g.add_node("Plane")
        g.relabel_node("Bus", "Car")      # joins via relabel
        g.remove_node("Truck")            # leaves (and sheds its edge)
        g.add_edge("Car", "tows", "Plane")

        refreshed = MatchIndex.for_graph(g, config)
        assert refreshed is index
        assert refreshed.fresh()
        assert refreshed.delta_refreshes == 1
        scratch = MatchIndex(g, config)
        assert refreshed.candidates("Car") == scratch.candidates("Car")
        assert refreshed.all_nodes() == scratch.all_nodes()
        assert refreshed.pair_labels("Car", "Plane") == {"tows"}
        assert not refreshed.pair_labels("Car", "Truck")

    def test_strategies_agree_after_delta_refresh(self) -> None:
        g = LabeledGraph()
        for n in ["Car", "Truck", "Bus"]:
            g.add_node(n)
        g.add_edge("Car", "uses", "Truck")
        config = self._config()
        pattern = Pattern.path(["Car", "Truck"], edge_label="uses")
        baseline = [b.mapping for b in find_matches(pattern, g, config)]
        assert baseline

        g.add_node("Auto1", "Auto")
        g.add_edge("Auto1", "uses", "Truck")
        indexed = [
            b.mapping
            for b in find_matches(pattern, g, config, strategy="indexed")
        ]
        scanned = [
            b.mapping
            for b in find_matches(pattern, g, config, strategy="scan")
        ]
        assert indexed == scanned
        assert {"n0": "Auto1", "n1": "Truck"} in indexed

    def test_journal_overflow_falls_back_to_rebuild(self) -> None:
        from repro.core.graph import _JOURNAL_RETENTION
        from repro.core.patterns import MatchIndex

        g = LabeledGraph()
        g.add_node("Car")
        config = self._config()
        index = MatchIndex.for_graph(g, config)
        index.candidates("Car")
        version = g.version
        for i in range(_JOURNAL_RETENTION + 10):
            g.add_node(f"bulk{i}", "Bulk")
        assert g.journal_since(version) is None
        rebuilt = MatchIndex.for_graph(g, config)
        assert rebuilt is not index
        assert rebuilt.delta_refreshes == 0
        assert rebuilt.candidates("Bulk") == MatchIndex(g, config).candidates(
            "Bulk"
        )

    def test_overflow_resets_delta_refresh_accounting(self) -> None:
        """Regression: refresh() returning False (journal overflow)
        must zero ``delta_refreshes`` — a direct index holder that
        polls the counter across an overflow must not see replay
        credit earned before the gap, or it over-reports incremental
        refreshes that the forced rebuild just threw away."""
        from repro.core.graph import _JOURNAL_RETENTION
        from repro.core.patterns import MatchIndex

        g = LabeledGraph()
        g.add_node("Car")
        config = self._config()
        index = MatchIndex.for_graph(g, config)
        g.add_node("Auto1", "Auto")
        assert index.refresh() is True
        assert index.delta_refreshes == 1
        for i in range(_JOURNAL_RETENTION + 10):
            g.add_node(f"bulk{i}", "Bulk")
        assert index.refresh() is False  # overflow: caller must rebuild
        assert index.delta_refreshes == 0

    def test_journal_since_semantics(self) -> None:
        g = LabeledGraph()
        g.add_node("A")
        v = g.version
        assert g.journal_since(v) == []
        g.add_node("B")
        g.add_edge("A", "rel", "B")
        rows = g.journal_since(v)
        assert [row[1] for row in rows] == ["add_node", "add_edge"]
        assert rows[-1][0] == g.version


class TestLabelCacheSpill:
    """MatchIndex.enable_spill: label→candidate maps page to disk."""

    def _big_graph(self) -> LabeledGraph:
        g = LabeledGraph()
        for i in range(40):
            g.add_node(f"n{i}", f"Label{i}")
        return g

    def test_spilled_candidates_match_unbounded_cache(self) -> None:
        from repro.core.patterns import MatchIndex

        g = self._big_graph()
        config = MatchConfig(case_insensitive=True)
        index = MatchIndex(g, config)
        spill = index.enable_spill(capacity=4)
        try:
            labels = [f"label{i}" for i in range(40)]
            first = {label: index.candidates(label) for label in labels}
            assert spill.stats()["spilled"] > 0  # the cap actually bit
            # revisiting promotes from disk and answers identically
            oracle = MatchIndex(g, config)
            for label in labels:
                assert index.candidates(label) == first[label]
                assert first[label] == oracle.candidates(label)
            assert spill.stats()["reloads"] > 0
        finally:
            spill.close()

    def test_refresh_drops_spilled_entries(self) -> None:
        from repro.core.patterns import MatchIndex

        g = self._big_graph()
        config = MatchConfig(case_insensitive=True)
        index = MatchIndex.for_graph(g, config)
        spill = index.enable_spill(capacity=2)
        try:
            for i in range(8):
                index.candidates(f"label{i}")  # spills the early ones
            g.add_node("extra", "Label0")
            assert index.refresh() is True
            # the spilled Label0 tuple predates the mutation; replay
            # could not patch it, so refresh must have dropped it
            assert "extra" in index.candidates("label0")
            assert index.candidates("label0") == MatchIndex(
                g, config
            ).candidates("label0")
        finally:
            spill.close()

    def test_memoized_entries_carry_over(self) -> None:
        from repro.core.patterns import MatchIndex

        g = self._big_graph()
        index = MatchIndex(g, MatchConfig(case_insensitive=True))
        warm = index.candidates("label7")
        spill = index.enable_spill(capacity=8)
        try:
            assert index.candidates("label7") == warm
        finally:
            spill.close()
