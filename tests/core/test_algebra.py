"""Unit tests for the ontology algebra (paper §5) — experiment ids
ALG-UNION / ALG-INTER / ALG-DIFF."""

from __future__ import annotations

import pytest

from repro.core.algebra import (
    compose,
    difference,
    extract_ontology,
    filter_ontology,
    intersection,
    union,
)
from repro.core.articulation import Articulation
from repro.core.ontology import Ontology
from repro.core.patterns import MatchConfig, Pattern
from repro.core.rules import ArticulationRuleSet, parse_rules
from repro.core.unified import UnifiedOntology
from repro.errors import AlgebraError
from repro.workloads.paper_example import paper_rules


class TestFilter:
    def test_filter_keeps_matched_induced_subgraph(
        self, carrier: Ontology
    ) -> None:
        pattern = Pattern.path(["Car", "Cars"], edge_label="S")
        filtered = filter_ontology(carrier, pattern)
        assert set(filtered.terms()) == {"Car", "Cars"}
        assert filtered.graph.has_edge("Car", "S", "Cars")

    def test_filter_union_of_all_matches(self, carrier: Ontology) -> None:
        pattern = Pattern()
        pattern.add_node("x", None, "X")
        pattern.add_node("cars", "Cars")
        pattern.add_edge("x", "S", "cars")
        filtered = filter_ontology(carrier, pattern)
        assert set(filtered.terms()) == {"Car", "SUV", "Cars"}

    def test_filter_no_match_is_empty(self, carrier: Ontology) -> None:
        filtered = filter_ontology(carrier, Pattern.single("Ghost"))
        assert len(filtered) == 0

    def test_filter_respects_pattern_scope(self, carrier: Ontology) -> None:
        pattern = Pattern.single("Car", ontology="factory")
        with pytest.raises(AlgebraError):
            filter_ontology(carrier, pattern)

    def test_filter_with_fuzzy_config(self, carrier: Ontology) -> None:
        pattern = Pattern.single("car")
        filtered = filter_ontology(
            carrier, pattern, config=MatchConfig(case_insensitive=True)
        )
        assert set(filtered.terms()) == {"Car"}

    def test_filter_names_result(self, carrier: Ontology) -> None:
        filtered = filter_ontology(
            carrier, Pattern.single("Car"), name="slice"
        )
        assert filtered.name == "slice"


class TestExtract:
    def test_extract_includes_reachable_region(self, carrier: Ontology) -> None:
        extracted = extract_ontology(carrier, Pattern.single("Car"))
        # Car reaches its ancestors and the drivenBy target.
        assert set(extracted.terms()) == {
            "Car",
            "Cars",
            "Carrier",
            "Transportation",
            "Driver",
            "Person",
        }

    def test_extract_empty_when_no_match(self, carrier: Ontology) -> None:
        extracted = extract_ontology(carrier, Pattern.single("Ghost"))
        assert len(extracted) == 0

    def test_extract_superset_of_filter(self, carrier: Ontology) -> None:
        pattern = Pattern.single("Cars")
        filtered = set(filter_ontology(carrier, pattern).terms())
        extracted = set(extract_ontology(carrier, pattern).terms())
        assert filtered <= extracted


class TestUnion:
    def test_union_returns_unified_ontology(
        self, carrier: Ontology, factory: Ontology
    ) -> None:
        unified = union(carrier, factory, paper_rules(), name="transport")
        assert isinstance(unified, UnifiedOntology)

    def test_union_graph_counts(
        self, carrier: Ontology, factory: Ontology, transport: Articulation
    ) -> None:
        unified = union(carrier, factory, paper_rules(), name="transport")
        graph = unified.graph()
        assert graph.node_count() == (
            carrier.term_count()
            + factory.term_count()
            + transport.ontology.term_count()
        )

    def test_union_accepts_prebuilt_articulation(
        self, carrier: Ontology, factory: Ontology, transport: Articulation
    ) -> None:
        unified = union(carrier, factory, transport)
        assert unified.articulation is transport

    def test_union_is_virtual_sources_untouched(
        self, carrier: Ontology, factory: Ontology
    ) -> None:
        carrier_before = carrier.graph.structure()
        union(carrier, factory, paper_rules(), name="transport")
        assert carrier.graph.structure() == carrier_before


class TestIntersection:
    def test_intersection_is_articulation_ontology(
        self, carrier: Ontology, factory: Ontology
    ) -> None:
        inter = intersection(carrier, factory, paper_rules(), name="transport")
        assert set(inter.terms()) == {
            "Vehicle",
            "PassengerCar",
            "Owner",
            "Person",
            "CargoCarrierVehicle",
            "CarsTrucks",
            "Euro",
        }

    def test_intersection_excludes_bridge_edges(
        self, carrier: Ontology, factory: Ontology
    ) -> None:
        """§5.2: edges into source nodes are pruned, so every edge of
        the result stays inside the articulation term set."""
        inter = intersection(carrier, factory, paper_rules(), name="transport")
        terms = set(inter.terms())
        for edge in inter.graph.edges():
            assert edge.source in terms
            assert edge.target in terms

    def test_intersection_composable(
        self, carrier: Ontology, factory: Ontology
    ) -> None:
        """The intersection output is an ordinary ontology and can be
        articulated against a further source (§5.2 'central to our
        scalable articulation concepts')."""
        inter = intersection(carrier, factory, paper_rules(), name="transport")
        third = Ontology("dealer")
        third.add_term("Automobile")
        art2 = union(
            inter,
            third,
            parse_rules("dealer:Automobile => transport:Vehicle"),
            name="art2",
        )
        assert art2.articulation.ontology.has_term("Vehicle")

    def test_intersection_empty_rules_empty_result(
        self, carrier: Ontology, factory: Ontology
    ) -> None:
        inter = intersection(
            carrier, factory, ArticulationRuleSet(), name="transport"
        )
        assert len(inter) == 0


class TestDifference:
    """The paper's §5.3 worked example, both directions."""

    def test_car_removed_from_carrier_minus_factory(
        self, carrier: Ontology, factory: Ontology
    ) -> None:
        diff = difference(
            carrier, factory, paper_rules(), articulation_name="transport"
        )
        assert not diff.has_term("Car")

    def test_vehicle_kept_in_factory_minus_carrier(
        self, carrier: Ontology, factory: Ontology
    ) -> None:
        """'the node Vehicle is not deleted' — the rules identify cars
        as vehicles but not which vehicles are cars."""
        diff = difference(
            factory, carrier, paper_rules(), articulation_name="transport"
        )
        assert diff.has_term("Vehicle")

    def test_difference_keeps_unrelated_terms(
        self, carrier: Ontology, factory: Ontology
    ) -> None:
        diff = difference(
            carrier, factory, paper_rules(), articulation_name="transport"
        )
        # Person is anchored by Owner; Price by Cars/Trucks.
        assert diff.has_term("Person")
        assert diff.has_term("Price")

    def test_conservative_deletes_nodes_only_reachable_from_deleted(
        self, carrier: Ontology, factory: Ontology
    ) -> None:
        """Driver is reachable only via Car's drivenBy edge, so the
        worked example's clause ('reached by a path from Car, but not
        by a path from any other node') removes it."""
        diff = difference(
            carrier, factory, paper_rules(), articulation_name="transport"
        )
        assert not diff.has_term("Driver")
        formal = difference(
            carrier,
            factory,
            paper_rules(),
            articulation_name="transport",
            strategy="formal",
        )
        assert formal.has_term("Driver")

    def test_bridged_specializations_also_removed(
        self, carrier: Ontology, factory: Ontology
    ) -> None:
        # Cars and Trucks bridge into transport:CarsTrucks, but no path
        # continues into factory, so they survive; Car reaches
        # factory:Vehicle and dies.
        diff = difference(
            carrier, factory, paper_rules(), articulation_name="transport"
        )
        assert diff.has_term("Cars")
        assert diff.has_term("Trucks")

    def test_single_rule_worked_example(self) -> None:
        """The §5.3 example with exactly one rule: Car => Vehicle."""
        carrier = Ontology("carrier")
        for term in ("Car", "SUV", "Cars", "Price"):
            carrier.add_term(term)
        carrier.add_subclass("Car", "Cars")
        carrier.add_subclass("SUV", "Cars")
        carrier.add_attribute("Price", "Car")
        factory = Ontology("factory")
        factory.add_term("Vehicle")
        rules = parse_rules("carrier:Car => factory:Vehicle")
        diff_cf = difference(carrier, factory, rules)
        assert not diff_cf.has_term("Car")
        assert diff_cf.has_term("Price")  # not reachable *from* Car
        assert diff_cf.has_term("Cars")  # anchored by SUV
        diff_fc = difference(factory, carrier, rules)
        assert diff_fc.has_term("Vehicle")

    def test_superclass_dies_without_another_anchor(self) -> None:
        """With no sibling, the deleted class's superclass is reachable
        only from the deleted node and is removed too (the literal
        reading of the worked example)."""
        o1 = Ontology("o1")
        o1.add_term("Car")
        o1.add_term("Cars")
        o1.add_subclass("Car", "Cars")
        o2 = Ontology("o2")
        o2.add_term("Vehicle")
        rules = parse_rules("o1:Car => o2:Vehicle")
        conservative = difference(o1, o2, rules)
        assert not conservative.has_term("Cars")
        formal = difference(o1, o2, rules, strategy="formal")
        assert formal.has_term("Cars")

    def test_conservative_prunes_orphans(self) -> None:
        """Nodes reachable only from deleted nodes are dropped in the
        conservative strategy (the worked example's second clause)."""
        o1 = Ontology("o1")
        for term in ("Car", "CarOnly", "Shared", "Other"):
            o1.add_term(term)
        # Car -> CarOnly (only path), Car -> Shared <- Other
        o1.relate("Car", "has", "CarOnly")
        o1.relate("Car", "has", "Shared")
        o1.relate("Other", "has", "Shared")
        o2 = Ontology("o2")
        o2.add_term("Vehicle")
        rules = parse_rules("o1:Car => o2:Vehicle")

        conservative = difference(o1, o2, rules)
        assert not conservative.has_term("Car")
        assert not conservative.has_term("CarOnly")
        assert conservative.has_term("Shared")  # reachable from Other
        assert conservative.has_term("Other")

        formal = difference(o1, o2, rules, strategy="formal")
        assert not formal.has_term("Car")
        assert formal.has_term("CarOnly")  # formal keeps orphans

    def test_unknown_strategy_rejected(
        self, carrier: Ontology, factory: Ontology
    ) -> None:
        with pytest.raises(AlgebraError):
            difference(carrier, factory, paper_rules(), strategy="bogus")

    def test_difference_with_no_rules_is_identity(
        self, carrier: Ontology, factory: Ontology
    ) -> None:
        diff = difference(carrier, factory, ArticulationRuleSet())
        assert set(diff.terms()) == set(carrier.terms())

    def test_difference_result_name(
        self, carrier: Ontology, factory: Ontology
    ) -> None:
        diff = difference(carrier, factory, ArticulationRuleSet())
        assert diff.name == "carrier_minus_factory"


class TestCompose:
    def test_compose_spans_three_sources(
        self, carrier: Ontology, factory: Ontology, transport: Articulation
    ) -> None:
        dealer = Ontology("dealer")
        dealer.add_term("Automobile")
        dealer.add_term("Showroom")
        art2 = compose(
            transport,
            dealer,
            parse_rules("dealer:Automobile => transport:Vehicle"),
            name="art2",
        )
        assert art2.ontology.has_term("Vehicle")
        triples = {(e.source, e.label, e.target) for e in art2.bridges}
        assert ("dealer:Automobile", "SIBridge", "art2:Vehicle") in triples

    def test_compose_name_collision_rejected(
        self, transport: Articulation
    ) -> None:
        impostor = Ontology("transport")
        impostor.add_term("X")
        with pytest.raises(AlgebraError):
            compose(transport, impostor, ArticulationRuleSet())
