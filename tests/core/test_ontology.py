"""Unit tests for the Ontology model."""

from __future__ import annotations

import pytest

from repro.core.graph import Edge
from repro.core.ontology import Ontology, qualify, split_qualified
from repro.errors import (
    ConsistencyError,
    OntologyError,
    TermNotFoundError,
)


class TestQualifiedNames:
    def test_qualify(self) -> None:
        assert qualify("carrier", "Car") == "carrier:Car"

    def test_split_qualified(self) -> None:
        assert split_qualified("carrier:Car") == ("carrier", "Car")

    def test_split_unqualified(self) -> None:
        assert split_qualified("Car") == (None, "Car")

    def test_split_only_first_separator(self) -> None:
        assert split_qualified("a:b:c") == ("a", "b:c")

    def test_round_trip(self) -> None:
        onto, term = split_qualified(qualify("o", "T:with:colons"))
        assert (onto, term) == ("o", "T:with:colons")


class TestConstruction:
    def test_empty_name_rejected(self) -> None:
        with pytest.raises(OntologyError):
            Ontology("")

    def test_name_with_qualifier_rejected(self) -> None:
        with pytest.raises(OntologyError):
            Ontology("bad:name")

    def test_add_term_twice_is_inconsistent(self) -> None:
        onto = Ontology("o")
        onto.add_term("Car")
        with pytest.raises(ConsistencyError):
            onto.add_term("Car")

    def test_ensure_term_idempotent(self) -> None:
        onto = Ontology("o")
        onto.ensure_term("Car")
        onto.ensure_term("Car")
        assert onto.term_count() == 1

    def test_remove_term_returns_edges(self, tiny: Ontology) -> None:
        removed = tiny.remove_term("Dog")
        assert Edge("Dog", "S", "Animal") in removed
        assert not tiny.has_term("Dog")

    def test_remove_missing_term_raises(self, tiny: Ontology) -> None:
        with pytest.raises(TermNotFoundError):
            tiny.remove_term("Unicorn")

    def test_contains_and_len(self, tiny: Ontology) -> None:
        assert "Dog" in tiny
        assert "Unicorn" not in tiny
        assert len(tiny) == 4


class TestRelationships:
    def test_relate_normalizes_relation_names(self, tiny: Ontology) -> None:
        edge = tiny.relate("Cat", "SubclassOf", "Dog")
        assert edge.label == "S"

    def test_relate_accepts_codes(self, tiny: Ontology) -> None:
        edge = tiny.relate("Cat", "S", "Dog")
        assert edge.label == "S"

    def test_relate_free_verb_labels(self, tiny: Ontology) -> None:
        edge = tiny.relate("Dog", "chases", "Cat")
        assert edge.label == "chases"
        assert tiny.related("Dog", "chases") == {"Cat"}

    def test_relate_missing_term_raises(self, tiny: Ontology) -> None:
        with pytest.raises(TermNotFoundError):
            tiny.relate("Dog", "S", "Unicorn")

    def test_unrelate(self, tiny: Ontology) -> None:
        tiny.unrelate("Dog", "SubclassOf", "Animal")
        assert tiny.superclasses("Dog") == set()

    def test_helper_edge_codes(self, tiny: Ontology) -> None:
        tiny.ensure_term("Rex")
        edge_i = tiny.add_instance("Rex", "Dog")
        assert edge_i.label == "I"
        tiny.ensure_term("Pet")
        edge_si = tiny.add_implication("Dog", "Pet")
        assert edge_si.label == "SI"


class TestStructuralQueries:
    def test_superclasses_and_subclasses(self, tiny: Ontology) -> None:
        assert tiny.superclasses("Dog") == {"Animal"}
        assert tiny.subclasses("Animal") == {"Dog", "Cat"}

    def test_attributes(self, tiny: Ontology) -> None:
        assert tiny.attributes("Animal") == {"Name"}

    def test_instances(self, tiny: Ontology) -> None:
        tiny.ensure_term("Rex")
        tiny.add_instance("Rex", "Dog")
        assert tiny.instances("Dog") == {"Rex"}

    def test_ancestors_transitive(self, carrier: Ontology) -> None:
        assert carrier.ancestors("Car") == {
            "Cars",
            "Carrier",
            "Transportation",
        }

    def test_descendants_transitive(self, carrier: Ontology) -> None:
        assert "Car" in carrier.descendants("Transportation")
        assert "SUV" in carrier.descendants("Carrier")

    def test_ancestors_exclude_self(self, tiny: Ontology) -> None:
        assert "Dog" not in tiny.ancestors("Dog")

    def test_roots(self, carrier: Ontology) -> None:
        roots = carrier.roots()
        assert "Transportation" in roots
        assert "Car" not in roots


class TestValidation:
    def test_paper_ontologies_valid(
        self, carrier: Ontology, factory: Ontology
    ) -> None:
        assert carrier.is_valid()
        assert factory.is_valid()

    def test_subclass_cycle_flagged(self, tiny: Ontology) -> None:
        tiny.relate("Animal", "S", "Dog")  # Dog -S-> Animal -S-> Dog
        issues = tiny.validate()
        assert any("cycle" in issue for issue in issues)

    def test_si_cycle_is_legal_equivalence(self, tiny: Ontology) -> None:
        tiny.add_implication("Dog", "Cat")
        tiny.add_implication("Cat", "Dog")
        assert tiny.is_valid()

    def test_unexpected_validate_error_propagates(
        self, tiny: Ontology, monkeypatch
    ) -> None:
        """validate() narrows to GraphError: a planner bug (any other
        exception type) must surface, not masquerade as a cycle."""

        def boom(*args, **kwargs):
            raise RuntimeError("bug in topological_order")

        monkeypatch.setattr(
            type(tiny.graph), "topological_order", boom
        )
        with pytest.raises(RuntimeError, match="bug in topological_order"):
            tiny.validate()


class TestProjectionsAndCopies:
    def test_copy_independent(self, tiny: Ontology) -> None:
        clone = tiny.copy()
        clone.ensure_term("New")
        assert not tiny.has_term("New")

    def test_copy_rename(self, tiny: Ontology) -> None:
        assert tiny.copy("renamed").name == "renamed"

    def test_qualified_graph_ids_and_labels(self, tiny: Ontology) -> None:
        qualified = tiny.qualified_graph()
        assert qualified.has_node("tiny:Dog")
        assert qualified.label("tiny:Dog") == "Dog"
        assert qualified.has_edge("tiny:Dog", "S", "tiny:Animal")

    def test_subontology_induced(self, carrier: Ontology) -> None:
        sub = carrier.subontology({"Car", "Cars"}, "subset")
        assert set(sub.terms()) == {"Car", "Cars"}
        assert sub.graph.has_edge("Car", "S", "Cars")
        assert sub.name == "subset"

    def test_subontology_missing_term_raises(self, carrier: Ontology) -> None:
        with pytest.raises(TermNotFoundError):
            carrier.subontology({"Car", "Ghost"})

    def test_triples_iteration(self, tiny: Ontology) -> None:
        triples = set(tiny.triples())
        assert ("Dog", "S", "Animal") in triples
        assert ("Name", "A", "Animal") in triples

    def test_same_structure(self, tiny: Ontology) -> None:
        assert tiny.same_structure(tiny.copy("other"))
