"""Unit tests for the labeled-multigraph substrate."""

from __future__ import annotations

import pytest

from repro.core.graph import Edge, LabeledGraph
from repro.errors import (
    DuplicateNodeError,
    EdgeNotFoundError,
    GraphError,
    NodeNotFoundError,
)


@pytest.fixture
def graph() -> LabeledGraph:
    g = LabeledGraph()
    for node in ("a", "b", "c", "d"):
        g.add_node(node)
    g.add_edge("a", "S", "b")
    g.add_edge("b", "S", "c")
    g.add_edge("a", "A", "c")
    g.add_edge("c", "S", "d")
    return g


class TestNodes:
    def test_add_node_defaults_label_to_id(self) -> None:
        g = LabeledGraph()
        g.add_node("x")
        assert g.label("x") == "x"

    def test_add_node_with_explicit_label(self) -> None:
        g = LabeledGraph()
        g.add_node("n1", "Car")
        assert g.label("n1") == "Car"

    def test_duplicate_node_rejected(self) -> None:
        g = LabeledGraph()
        g.add_node("x")
        with pytest.raises(DuplicateNodeError):
            g.add_node("x")

    def test_empty_label_rejected(self) -> None:
        g = LabeledGraph()
        with pytest.raises(GraphError):
            g.add_node("x", "")

    def test_ensure_node_is_idempotent(self) -> None:
        g = LabeledGraph()
        g.ensure_node("x", "L")
        g.ensure_node("x", "IGNORED")
        assert g.label("x") == "L"
        assert g.node_count() == 1

    def test_remove_node_returns_incident_edges(self, graph: LabeledGraph) -> None:
        removed = graph.remove_node("b")
        assert set(removed) == {Edge("a", "S", "b"), Edge("b", "S", "c")}
        assert not graph.has_node("b")
        assert graph.edge_count() == 2

    def test_remove_missing_node_raises(self, graph: LabeledGraph) -> None:
        with pytest.raises(NodeNotFoundError):
            graph.remove_node("zzz")

    def test_label_of_missing_node_raises(self) -> None:
        g = LabeledGraph()
        with pytest.raises(NodeNotFoundError):
            g.label("ghost")

    def test_relabel_updates_label_index(self) -> None:
        g = LabeledGraph()
        g.add_node("n", "Old")
        g.relabel_node("n", "New")
        assert g.nodes_with_label("Old") == frozenset()
        assert g.nodes_with_label("New") == frozenset({"n"})

    def test_relabel_to_empty_rejected(self) -> None:
        g = LabeledGraph()
        g.add_node("n")
        with pytest.raises(GraphError):
            g.relabel_node("n", "")

    def test_nodes_with_label_tracks_multiple_nodes(self) -> None:
        g = LabeledGraph()
        g.add_node("n1", "Car")
        g.add_node("n2", "Car")
        assert g.nodes_with_label("Car") == frozenset({"n1", "n2"})
        assert not g.is_consistent()

    def test_contains_and_len(self, graph: LabeledGraph) -> None:
        assert "a" in graph
        assert "zzz" not in graph
        assert len(graph) == 4


class TestEdges:
    def test_add_edge_requires_endpoints(self) -> None:
        g = LabeledGraph()
        g.add_node("a")
        with pytest.raises(NodeNotFoundError):
            g.add_edge("a", "S", "missing")
        with pytest.raises(NodeNotFoundError):
            g.add_edge("missing", "S", "a")

    def test_add_edge_rejects_empty_label(self) -> None:
        g = LabeledGraph()
        g.add_node("a")
        g.add_node("b")
        with pytest.raises(GraphError):
            g.add_edge("a", "", "b")

    def test_duplicate_edge_is_noop(self, graph: LabeledGraph) -> None:
        before = graph.edge_count()
        graph.add_edge("a", "S", "b")
        assert graph.edge_count() == before

    def test_parallel_edges_with_distinct_labels(self, graph: LabeledGraph) -> None:
        graph.add_edge("a", "owns", "b")
        assert graph.has_edge("a", "S", "b")
        assert graph.has_edge("a", "owns", "b")

    def test_self_loop_allowed(self) -> None:
        g = LabeledGraph()
        g.add_node("a")
        g.add_edge("a", "self", "a")
        assert g.has_edge("a", "self", "a")
        assert g.degree("a") == 2

    def test_remove_edge(self, graph: LabeledGraph) -> None:
        graph.remove_edge(Edge("a", "S", "b"))
        assert not graph.has_edge("a", "S", "b")

    def test_remove_missing_edge_raises(self, graph: LabeledGraph) -> None:
        with pytest.raises(EdgeNotFoundError):
            graph.remove_edge(Edge("a", "nope", "b"))

    def test_discard_edge_reports_presence(self, graph: LabeledGraph) -> None:
        assert graph.discard_edge(Edge("a", "S", "b")) is True
        assert graph.discard_edge(Edge("a", "S", "b")) is False

    def test_out_edges_filtered_by_label(self, graph: LabeledGraph) -> None:
        assert set(graph.out_edges("a", "S")) == {Edge("a", "S", "b")}
        assert set(graph.out_edges("a")) == {
            Edge("a", "S", "b"),
            Edge("a", "A", "c"),
        }

    def test_in_edges_filtered_by_label(self, graph: LabeledGraph) -> None:
        assert set(graph.in_edges("c", "S")) == {Edge("b", "S", "c")}
        assert len(graph.in_edges("c")) == 2

    def test_successors_predecessors(self, graph: LabeledGraph) -> None:
        assert graph.successors("a") == {"b", "c"}
        assert graph.successors("a", "S") == {"b"}
        assert graph.predecessors("c") == {"b", "a"}

    def test_degree_counts_both_directions(self, graph: LabeledGraph) -> None:
        assert graph.degree("c") == 3

    def test_edge_labels(self, graph: LabeledGraph) -> None:
        assert graph.edge_labels() == {"S", "A"}

    def test_edge_value_object_helpers(self) -> None:
        edge = Edge("a", "S", "b")
        assert edge.reversed() == Edge("b", "S", "a")
        assert edge.relabeled("X") == Edge("a", "X", "b")


class TestTraversal:
    def test_reachable_from_includes_start(self, graph: LabeledGraph) -> None:
        assert graph.reachable_from("d") == {"d"}

    def test_reachable_from_follows_direction(self, graph: LabeledGraph) -> None:
        assert graph.reachable_from("a") == {"a", "b", "c", "d"}
        assert graph.reachable_from("b") == {"b", "c", "d"}

    def test_reachable_from_label_restriction(self, graph: LabeledGraph) -> None:
        assert graph.reachable_from("a", labels={"A"}) == {"a", "c"}

    def test_reachable_reverse(self, graph: LabeledGraph) -> None:
        assert graph.reachable_from("c", reverse=True) == {"a", "b", "c"}

    def test_reachable_multi_start(self, graph: LabeledGraph) -> None:
        assert graph.reachable_from(["b", "d"]) == {"b", "c", "d"}

    def test_reachable_missing_start_raises(self, graph: LabeledGraph) -> None:
        with pytest.raises(NodeNotFoundError):
            graph.reachable_from("ghost")

    def test_shortest_path(self, graph: LabeledGraph) -> None:
        assert graph.shortest_path("a", "d") == ["a", "c", "d"]

    def test_shortest_path_same_node(self, graph: LabeledGraph) -> None:
        assert graph.shortest_path("a", "a") == ["a"]

    def test_shortest_path_unreachable(self, graph: LabeledGraph) -> None:
        assert graph.shortest_path("d", "a") is None

    def test_shortest_path_label_restriction(self, graph: LabeledGraph) -> None:
        assert graph.shortest_path("a", "d", labels={"S"}) == [
            "a",
            "b",
            "c",
            "d",
        ]

    def test_topological_order(self, graph: LabeledGraph) -> None:
        order = graph.topological_order()
        position = {node: index for index, node in enumerate(order)}
        assert position["a"] < position["b"] < position["c"] < position["d"]

    def test_topological_order_detects_cycle(self) -> None:
        g = LabeledGraph()
        g.add_node("x")
        g.add_node("y")
        g.add_edge("x", "S", "y")
        g.add_edge("y", "S", "x")
        with pytest.raises(GraphError):
            g.topological_order()

    def test_topological_order_ignores_other_labels(self) -> None:
        g = LabeledGraph()
        g.add_node("x")
        g.add_node("y")
        g.add_edge("x", "S", "y")
        g.add_edge("y", "other", "x")  # cycle only across labels
        assert g.topological_order(labels={"S"}) == ["x", "y"]


class TestWholeGraph:
    def test_copy_is_deep_for_structure(self, graph: LabeledGraph) -> None:
        clone = graph.copy()
        clone.add_node("z")
        clone.remove_edge(Edge("a", "S", "b"))
        assert not graph.has_node("z")
        assert graph.has_edge("a", "S", "b")
        assert clone.has_node("z")

    def test_subgraph_keeps_internal_edges_only(self, graph: LabeledGraph) -> None:
        sub = graph.subgraph({"a", "b"})
        assert set(sub.nodes()) == {"a", "b"}
        assert sub.has_edge("a", "S", "b")
        assert sub.edge_count() == 1

    def test_subgraph_missing_node_raises(self, graph: LabeledGraph) -> None:
        with pytest.raises(NodeNotFoundError):
            graph.subgraph({"a", "ghost"})

    def test_merge_unions_nodes_and_edges(self) -> None:
        g1 = LabeledGraph()
        g1.add_node("a")
        g2 = LabeledGraph()
        g2.add_node("a")
        g2.add_node("b")
        g2.add_edge("a", "S", "b")
        g1.merge(g2)
        assert g1.has_edge("a", "S", "b")
        assert g1.node_count() == 2

    def test_merge_conflicting_labels_raises(self) -> None:
        g1 = LabeledGraph()
        g1.add_node("n", "One")
        g2 = LabeledGraph()
        g2.add_node("n", "Two")
        with pytest.raises(GraphError):
            g1.merge(g2)

    def test_filter_nodes(self, graph: LabeledGraph) -> None:
        sub = graph.filter_nodes(lambda node, label: node in ("a", "c"))
        assert set(sub.nodes()) == {"a", "c"}
        assert sub.has_edge("a", "A", "c")

    def test_same_structure(self, graph: LabeledGraph) -> None:
        assert graph.same_structure(graph.copy())
        other = graph.copy()
        other.add_node("extra")
        assert not graph.same_structure(other)

    def test_label_structure_ignores_node_ids(self) -> None:
        g1 = LabeledGraph()
        g1.add_node("n1", "Car")
        g1.add_node("n2", "Cars")
        g1.add_edge("n1", "S", "n2")
        g2 = LabeledGraph()
        g2.add_node("x", "Car")
        g2.add_node("y", "Cars")
        g2.add_edge("x", "S", "y")
        assert g1.label_structure() == g2.label_structure()

    def test_dict_round_trip(self, graph: LabeledGraph) -> None:
        rebuilt = LabeledGraph.from_dict(graph.to_dict())
        assert rebuilt.same_structure(graph)
