"""Unit tests for the articulation rule language."""

from __future__ import annotations

import pytest

from repro.core.rules import (
    AndOperand,
    ArticulationRuleSet,
    FunctionalRule,
    HornClause,
    ImplicationRule,
    OrOperand,
    TermOperand,
    TermRef,
    parse_rule,
    parse_rules,
)
from repro.errors import RuleError, RuleParseError


class TestTermRef:
    def test_parse_qualified(self) -> None:
        ref = TermRef.parse("carrier:Car")
        assert ref == TermRef("carrier", "Car")

    def test_parse_unqualified(self) -> None:
        assert TermRef.parse("Owner") == TermRef(None, "Owner")

    def test_parse_empty_raises(self) -> None:
        with pytest.raises(RuleError):
            TermRef.parse("  ")

    def test_parse_empty_term_raises(self) -> None:
        with pytest.raises(RuleError):
            TermRef.parse("carrier:")

    def test_qualified_with_default(self) -> None:
        assert TermRef(None, "X").qualified("art") == "art:X"
        assert TermRef("o", "X").qualified("art") == "o:X"

    def test_qualified_without_default_raises(self) -> None:
        with pytest.raises(RuleError):
            TermRef(None, "X").qualified()

    def test_str(self) -> None:
        assert str(TermRef("o", "X")) == "o:X"
        assert str(TermRef(None, "X")) == "X"


class TestParsingSimple:
    def test_simple_rule(self) -> None:
        rule = parse_rule("carrier:Car => factory:Vehicle")
        assert isinstance(rule, ImplicationRule)
        assert rule.is_simple()
        assert str(rule) == "carrier:Car => factory:Vehicle"

    def test_cascade(self) -> None:
        rule = parse_rule(
            "carrier:Car => transport:PassengerCar => factory:Vehicle"
        )
        assert isinstance(rule, ImplicationRule)
        assert len(rule.steps) == 3
        assert not rule.is_simple()

    def test_unqualified_steps(self) -> None:
        rule = parse_rule("Owner => Person")
        assert isinstance(rule, ImplicationRule)
        first = rule.steps[0]
        assert isinstance(first, TermOperand)
        assert first.ref.ontology is None

    def test_source_tag(self) -> None:
        rule = parse_rule("a:X => b:Y", source="skat")
        assert isinstance(rule, ImplicationRule)
        assert rule.source == "skat"

    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "   ",
            "carrier:Car",
            "=> factory:Vehicle",
            "carrier:Car =>",
            "carrier:Car => => factory:Vehicle",
            "a:X ^ b:Y => c:Z",  # compound must be parenthesized
        ],
    )
    def test_malformed_rules_raise(self, bad: str) -> None:
        with pytest.raises(RuleParseError):
            parse_rule(bad)


class TestParsingCompound:
    def test_conjunction(self) -> None:
        rule = parse_rule(
            "(factory:CargoCarrier ^ factory:Vehicle) => carrier:Trucks"
        )
        assert isinstance(rule, ImplicationRule)
        assert isinstance(rule.premise, AndOperand)
        assert rule.premise.default_label() == "CargoCarrierVehicle"

    def test_conjunction_ampersand_synonym(self) -> None:
        rule = parse_rule("(a:X & a:Y) => b:Z")
        assert isinstance(rule, ImplicationRule)
        assert isinstance(rule.premise, AndOperand)

    def test_disjunction(self) -> None:
        rule = parse_rule(
            "factory:Vehicle => (carrier:Cars | carrier:Trucks)"
        )
        assert isinstance(rule, ImplicationRule)
        assert isinstance(rule.consequence, OrOperand)
        assert rule.consequence.default_label() == "CarsTrucks"

    def test_as_clause_overrides_label(self) -> None:
        rule = parse_rule("(a:X ^ a:Y) => b:Z AS Nice")
        assert isinstance(rule, ImplicationRule)
        assert rule.label == "Nice"
        assert "AS Nice" in str(rule)

    def test_three_way_conjunction(self) -> None:
        rule = parse_rule("(a:X ^ a:Y ^ a:Z) => b:W")
        assert isinstance(rule, ImplicationRule)
        assert isinstance(rule.premise, AndOperand)
        assert len(rule.premise.operands) == 3

    def test_two_compounds_rejected(self) -> None:
        with pytest.raises(RuleParseError):
            parse_rule("(a:X ^ a:Y) => (b:Z | b:W)")

    def test_compound_needs_two_operands(self) -> None:
        with pytest.raises(RuleError):
            AndOperand((TermOperand(TermRef("a", "X")),))
        with pytest.raises(RuleError):
            OrOperand((TermOperand(TermRef("a", "X")),))

    def test_parenthesized_single_term_ok(self) -> None:
        rule = parse_rule("(a:X) => b:Y")
        assert isinstance(rule, ImplicationRule)
        assert rule.is_simple()


class TestParsingFunctional:
    def test_functional_rule(self) -> None:
        rule = parse_rule(
            "DGToEuroFn() : carrier:DutchGuilders => transport:Euro"
        )
        assert isinstance(rule, FunctionalRule)
        assert rule.name == "DGToEuroFn"
        assert rule.edge_label() == "DGToEuroFn()"

    def test_functional_without_executable_raises_on_apply(self) -> None:
        rule = parse_rule("Fn() : a:X => b:Y")
        assert isinstance(rule, FunctionalRule)
        with pytest.raises(RuleError):
            rule.apply(1.0)

    def test_functional_with_callables(self) -> None:
        rule = FunctionalRule(
            "Double",
            TermRef("a", "X"),
            TermRef("b", "Y"),
            fn=lambda v: v * 2,
            inverse=lambda v: v / 2,
        )
        assert rule.apply(3) == 6
        assert rule.apply_inverse(6) == 3
        assert rule.inverse_edge_label() == "DoubleInverse()"

    def test_functional_inverse_name(self) -> None:
        rule = FunctionalRule(
            "PSToEuroFn",
            TermRef("carrier", "PoundSterling"),
            TermRef("transport", "Euro"),
            fn=lambda v: v,
            inverse=lambda v: v,
            inverse_name="EuroToPSFn",
        )
        assert rule.inverse_edge_label() == "EuroToPSFn()"

    def test_functional_needs_single_arrow(self) -> None:
        with pytest.raises(RuleParseError):
            parse_rule("Fn() : a:X => b:Y => c:Z")


class TestAtomicBreakdown:
    def test_simple_atomic(self) -> None:
        rule = parse_rule("a:X => b:Y")
        assert isinstance(rule, ImplicationRule)
        assert rule.atomic_implications("art") == [("a:X", "b:Y")]

    def test_cascade_atomic(self) -> None:
        rule = parse_rule("a:X => art:M => b:Y")
        assert isinstance(rule, ImplicationRule)
        assert rule.atomic_implications("art") == [
            ("a:X", "art:M"),
            ("art:M", "b:Y"),
        ]

    def test_unqualified_resolves_to_articulation(self) -> None:
        rule = parse_rule("Owner => Person")
        assert isinstance(rule, ImplicationRule)
        assert rule.atomic_implications("art") == [("art:Owner", "art:Person")]

    def test_compound_uses_synthesized_name(self) -> None:
        rule = parse_rule("(a:X ^ a:Y) => b:Z AS XY")
        assert isinstance(rule, ImplicationRule)
        assert rule.atomic_implications("art") == [("art:XY", "b:Z")]

    def test_to_horn(self) -> None:
        rule = parse_rule("a:X => b:Y")
        assert isinstance(rule, ImplicationRule)
        clauses = rule.to_horn("art")
        assert clauses == [HornClause(("implies", "a:X", "b:Y"))]


class TestRuleSet:
    def test_dedup(self) -> None:
        rules = ArticulationRuleSet()
        assert rules.add(parse_rule("a:X => b:Y"))
        assert not rules.add(parse_rule("a:X => b:Y"))
        assert len(rules) == 1

    def test_contains(self) -> None:
        rules = ArticulationRuleSet()
        rule = parse_rule("a:X => b:Y")
        rules.add(rule)
        assert rule in rules

    def test_partition_by_kind(self) -> None:
        rules = parse_rules(
            """
            a:X => b:Y
            Fn() : a:U => b:V
            """
        )
        assert len(rules.implications()) == 1
        assert len(rules.functional()) == 1

    def test_parse_rules_skips_comments_and_blanks(self) -> None:
        rules = parse_rules(
            """
            # a comment
            a:X => b:Y   # trailing comment

            """
        )
        assert len(rules) == 1

    def test_ontologies_mentioned(self) -> None:
        rules = parse_rules(
            """
            a:X => b:Y
            Fn() : c:U => d:V
            """
        )
        assert rules.ontologies() == {"a", "b", "c", "d"}

    def test_copy_independent(self) -> None:
        rules = parse_rules("a:X => b:Y")
        clone = rules.copy()
        clone.add(parse_rule("a:P => b:Q"))
        assert len(rules) == 1
        assert len(clone) == 2

    def test_to_horn_collects_implications(self) -> None:
        rules = parse_rules(
            """
            a:X => b:Y
            a:P => art:M => b:Q
            """
        )
        clauses = rules.to_horn("art")
        assert len(clauses) == 3

    def test_extend_counts_new(self) -> None:
        rules = parse_rules("a:X => b:Y")
        added = rules.extend(
            [parse_rule("a:X => b:Y"), parse_rule("a:P => b:Q")]
        )
        assert added == 1
