"""Unit tests for the incremental articulation maintainer (§5.3)."""

from __future__ import annotations

import pytest

from repro.core.articulation import Articulation
from repro.core.maintenance import ArticulationMaintainer
from repro.errors import ArticulationError
from repro.workloads.churn import apply_churn
from repro.workloads.paper_example import generate_transport_articulation


@pytest.fixture
def maintainer(transport: Articulation) -> ArticulationMaintainer:
    return ArticulationMaintainer(transport)


class TestClassification:
    def test_free_vs_affected(self, maintainer: ArticulationMaintainer) -> None:
        free, affected = maintainer.classify(
            "carrier", ["SUV", "Car", "Driver", "Trucks"]
        )
        assert free == {"SUV", "Driver"}
        assert affected == {"Car", "Trucks"}

    def test_unknown_source_rejected(
        self, maintainer: ArticulationMaintainer
    ) -> None:
        with pytest.raises(ArticulationError):
            maintainer.classify("nowhere", ["X"])

    def test_brand_new_terms_are_free(
        self, maintainer: ArticulationMaintainer
    ) -> None:
        free, affected = maintainer.classify("carrier", ["JustAdded"])
        assert free == {"JustAdded"}
        assert not affected


class TestFreeChanges:
    def test_free_change_costs_nothing(
        self, maintainer: ArticulationMaintainer, transport: Articulation
    ) -> None:
        carrier = transport.sources["carrier"]
        carrier.ensure_term("Scooter")
        carrier.add_subclass("Scooter", "Cars")
        bridges_before = set(transport.bridges)
        report = maintainer.apply_source_changes("carrier", ["Scooter"])
        assert not report.required_work
        assert report.repair_ops == 0
        assert transport.bridges == bridges_before
        assert maintainer.verify() == []

    def test_removing_uncovered_term_is_free(
        self, maintainer: ArticulationMaintainer, transport: Articulation
    ) -> None:
        transport.sources["carrier"].remove_term("SUV")
        report = maintainer.apply_source_changes("carrier", ["SUV"])
        assert not report.required_work
        assert maintainer.verify() == []


class TestAffectingChanges:
    def test_deleting_bridged_term_repairs(
        self, maintainer: ArticulationMaintainer, transport: Articulation
    ) -> None:
        transport.sources["carrier"].remove_term("Car")
        report = maintainer.apply_source_changes("carrier", ["Car"])
        assert report.required_work
        # The two rules mentioning carrier:Car are dropped.
        dropped_texts = {str(r) for r in report.dropped_rules}
        assert "carrier:Car => factory:Vehicle" in dropped_texts
        assert any("PassengerCar" in t for t in dropped_texts)
        # No bridge references carrier:Car anymore.
        assert not any(
            "carrier:Car" in (e.source, e.target) for e in transport.bridges
        )
        assert maintainer.verify() == []

    def test_repair_equals_regeneration_from_surviving_rules(
        self, maintainer: ArticulationMaintainer, transport: Articulation
    ) -> None:
        transport.sources["carrier"].remove_term("Car")
        maintainer.apply_source_changes("carrier", ["Car"])
        # Regenerate from scratch with the surviving rule set and
        # compare: reconstruction repair is deterministic.
        from repro.core.articulation import ArticulationGenerator

        generator = ArticulationGenerator(
            transport.sources.values(), name=transport.name
        )
        fresh = generator.generate(transport.rules.copy())
        assert fresh.ontology.same_structure(transport.ontology)
        assert fresh.bridges == transport.bridges

    def test_functional_rule_dropped_with_its_unit(
        self, maintainer: ArticulationMaintainer, transport: Articulation
    ) -> None:
        transport.sources["carrier"].remove_term("PoundSterling")
        report = maintainer.apply_source_changes(
            "carrier", ["PoundSterling"]
        )
        assert report.required_work
        assert "PSToEuroFn()" not in transport.functions
        # The factory conversion survives untouched.
        assert "DGToEuroFn()" in transport.functions
        assert maintainer.verify() == []

    def test_affecting_change_without_deletion_replays(
        self, maintainer: ArticulationMaintainer, transport: Articulation
    ) -> None:
        """An edit that touches a covered term but deletes nothing
        keeps all rules; the repair replays them all."""
        n_rules = len(transport.rules)
        report = maintainer.apply_source_changes("carrier", ["Car"])
        assert report.required_work
        assert not report.dropped_rules
        assert report.replayed_rules == n_rules
        assert maintainer.verify() == []


class TestUnderChurn:
    def test_long_churn_run_stays_consistent(self) -> None:
        transport = generate_transport_articulation()
        maintainer = ArticulationMaintainer(transport)
        carrier = transport.sources["carrier"]
        for seed in range(6):
            report = apply_churn(carrier, n_mutations=8, seed=seed)
            maintainer.apply_source_changes(
                "carrier", report.touched_terms()
            )
            assert maintainer.verify() == []

    def test_verify_reports_manual_damage(
        self, maintainer: ArticulationMaintainer, transport: Articulation
    ) -> None:
        transport.sources["factory"].remove_term("Vehicle")
        issues = maintainer.verify()
        assert any("dangling bridge" in issue for issue in issues)
        assert any("stale rule" in issue for issue in issues)


class TestRetractionRouting:
    """Deletion-repairs ride the DRed retraction delta, and the
    fingerprint-keyed part cache keeps unchanged graphs un-walked."""

    def test_repair_does_not_reextract_unchanged_sources(
        self, maintainer: ArticulationMaintainer, transport: Articulation
    ) -> None:
        engine = maintainer.inference_engine()
        engine.fact_count()  # reach a fixpoint so DRed can repair it
        # Pin the crossover out of reach: this test is about DRed
        # routing and extraction caching, not the batch-rebuild switch
        # (covered below) — removing "Car" sheds ~30% of the base
        # facts, past the measured crossover.
        engine.engine.rebuild_crossover = 10_000
        transport.sources["carrier"].remove_term("Car")
        report = maintainer.apply_source_changes("carrier", ["Car"])
        assert report.inference_mode == "retract"
        refresh = engine.last_refresh
        assert refresh["removed"] > 0
        # carrier changed and the repair swapped in a fresh articulation
        # ontology; factory never moved, so its edge part came from the
        # per-version cache.
        assert "carrier" in refresh["extracted"]
        assert "factory" not in refresh["extracted"]

    def test_unsaturated_engine_reports_replay_not_retract(
        self, maintainer: ArticulationMaintainer, transport: Articulation
    ) -> None:
        """A shrink diffed into an engine that never reached a
        fixpoint is applied but honestly labeled: the next query
        replays from base instead of running the DRed pass."""
        engine = maintainer.inference_engine()  # built, never queried
        transport.sources["carrier"].remove_term("Car")
        report = maintainer.apply_source_changes("carrier", ["Car"])
        assert report.inference_mode == "replay"
        assert not engine.implies("carrier:Car", "factory:Vehicle")
        assert engine.engine.last_stats["mode"] == "full"

    def test_source_rename_invalidates_part_cache(
        self, transport: Articulation
    ) -> None:
        """The per-part cache keys on the ontology *name* as well as
        the graph version: an in-place rename must re-extract, not
        serve stale qualified atoms."""
        from repro.inference.engine import OntologyInferenceEngine

        engine = OntologyInferenceEngine.from_articulation(transport)
        engine.fact_count()
        transport.sources["hauler"] = transport.sources.pop("carrier")
        transport.sources["hauler"].name = "hauler"
        # an unrelated edit elsewhere moves the fingerprint
        transport.sources["factory"].ensure_term("SparePart")
        transport.bump_version()
        engine.refresh_from_articulation(transport)
        scratch = OntologyInferenceEngine.from_articulation(transport)
        assert engine.engine.facts() == scratch.engine.facts()

    def test_bridge_only_shrink_needs_no_extraction_at_all(
        self, maintainer: ArticulationMaintainer, transport: Articulation
    ) -> None:
        """Dropping a bridge (no graph moved) is served purely from
        the fingerprint diff: a retraction delta, zero graph walks."""
        from repro.inference.engine import OntologyInferenceEngine

        engine = maintainer.inference_engine()
        engine.fact_count()  # saturate once
        victim = sorted(
            transport.bridges, key=lambda e: (e.source, e.label, e.target)
        )[0]
        transport.bridges.discard(victim)
        transport.bump_version()
        refresh = engine.refresh_from_articulation(transport)
        assert refresh["mode"] == "retract"
        assert refresh["extracted"] == []  # every graph part cache-hit
        scratch = OntologyInferenceEngine.from_articulation(transport)
        assert engine.engine.facts() == scratch.engine.facts()


class TestSemanticChecks:
    def test_semantic_verify_clean_articulation(
        self, maintainer: ArticulationMaintainer
    ) -> None:
        assert maintainer.semantic_verify() == []

    def test_inference_engine_is_cached(
        self, maintainer: ArticulationMaintainer
    ) -> None:
        assert maintainer.inference_engine() is maintainer.inference_engine()

    def test_semantic_verify_reports_contradictions(
        self, maintainer: ArticulationMaintainer
    ) -> None:
        engine = maintainer.inference_engine()
        engine.declare_disjoint("carrier:Cars", "carrier:Trucks")
        engine.engine.add_fact(("implies", "carrier:SUV", "carrier:Trucks"))
        issues = maintainer.semantic_verify()
        assert any("carrier:SUV" in issue for issue in issues)

    def test_repair_refreshes_cached_engine(
        self, maintainer: ArticulationMaintainer, transport: Articulation
    ) -> None:
        engine = maintainer.inference_engine()
        assert engine.implies("carrier:Car", "factory:Vehicle")
        # A deletion-repair routes through the DRed retraction delta,
        # not a rebuild (crossover pinned out of reach — the
        # batch-rebuild switch has its own test below).
        engine.engine.rebuild_crossover = 10_000
        transport.sources["carrier"].remove_term("Car")
        report = maintainer.apply_source_changes("carrier", ["Car"])
        assert report.inference_mode == "retract"
        # Same engine object, refreshed program: the dropped rule's
        # implication is gone.
        assert maintainer.inference_engine() is engine
        assert not engine.implies("carrier:Car", "factory:Vehicle")
        assert maintainer.semantic_verify() == []

    def test_heavy_repair_crosses_rebuild_crossover(
        self, maintainer: ArticulationMaintainer, transport: Articulation
    ) -> None:
        """A shrink whose retraction count crosses the engine's
        measured rebuild crossover abandons the deletion cone and
        replays from base — surfaced as ``batch-rebuild``, with the
        same answers a DRed repair would give."""
        engine = maintainer.inference_engine()
        engine.fact_count()  # reach a fixpoint
        assert engine.engine.rebuild_crossover <= 10
        transport.sources["carrier"].remove_term("Car")
        report = maintainer.apply_source_changes("carrier", ["Car"])
        assert report.inference_mode == "batch-rebuild"
        assert engine.last_refresh["removed"] > 0
        # Semantics are unchanged by the routing choice.
        assert not engine.implies("carrier:Car", "factory:Vehicle")
        assert maintainer.semantic_verify() == []

    def test_semantic_verify_sees_free_edge_additions(
        self, maintainer: ArticulationMaintainer, transport: Articulation
    ) -> None:
        """A free change (no bridge touched) can still add edges the
        engine's program loads; semantic_verify must refresh first."""
        engine = maintainer.inference_engine()
        engine.declare_disjoint("carrier:Cars", "carrier:Trucks")
        assert maintainer.semantic_verify() == []
        carrier = transport.sources["carrier"]
        carrier.ensure_term("AmphibTruck")
        carrier.add_subclass("AmphibTruck", "Cars")
        carrier.add_subclass("AmphibTruck", "Trucks")
        report = maintainer.apply_source_changes("carrier", ["AmphibTruck"])
        assert not report.required_work  # classified free, no repair
        issues = maintainer.semantic_verify()
        assert any("carrier:AmphibTruck" in issue for issue in issues)

    def test_free_change_leaves_engine_untouched(
        self, maintainer: ArticulationMaintainer, transport: Articulation
    ) -> None:
        engine = maintainer.inference_engine()
        facts_before = engine.fact_count()
        carrier = transport.sources["carrier"]
        carrier.ensure_term("Scooter")
        report = maintainer.apply_source_changes("carrier", ["Scooter"])
        assert report.inference_mode == ""  # no repair, no refresh
        assert engine.fact_count() == facts_before


class TestClassificationCaching:
    def test_repeated_classify_hits_covered_cache(
        self, maintainer: ArticulationMaintainer, transport: Articulation
    ) -> None:
        transport.cache_stats.clear()
        maintainer.classify("carrier", ["SUV"])
        maintainer.classify("carrier", ["Driver", "Car"])
        maintainer.classify("factory", ["Vehicle"])
        assert transport.cache_stats.get("covered_misses", 0) == 1
        assert transport.cache_stats.get("covered_hits", 0) == 2

    def test_repair_invalidates_covered_cache(
        self, maintainer: ArticulationMaintainer, transport: Articulation
    ) -> None:
        free, affected = maintainer.classify("carrier", ["Car"])
        assert affected == {"Car"}
        transport.sources["carrier"].remove_term("Car")
        maintainer.apply_source_changes("carrier", ["Car"])
        free, affected = maintainer.classify("carrier", ["Car"])
        assert affected == set()  # repair dropped every Car bridge

    def test_noop_refresh_after_repairless_verify(
        self, maintainer: ArticulationMaintainer
    ) -> None:
        engine = maintainer.inference_engine()
        maintainer.semantic_verify()
        first_mode = engine.last_refresh["mode"]
        assert first_mode in ("noop", "incremental")
        maintainer.semantic_verify()
        assert engine.last_refresh["mode"] == "noop"
