"""Unit tests for the NA/ND/EA/ED primitives and the transform log."""

from __future__ import annotations

import pytest

from repro.core.graph import Edge, LabeledGraph
from repro.core.transform import (
    EdgeAddition,
    EdgeDeletion,
    NodeAddition,
    NodeDeletion,
    TransformLog,
    apply_all,
)
from repro.errors import GraphError


@pytest.fixture
def graph() -> LabeledGraph:
    g = LabeledGraph()
    g.add_node("a")
    g.add_node("b")
    g.add_edge("a", "S", "b")
    return g


class TestNodeAddition:
    def test_adds_node_and_adjacent_edges(self, graph: LabeledGraph) -> None:
        op = NodeAddition("c", "c", (Edge("c", "S", "a"), Edge("b", "A", "c")))
        op.apply(graph)
        assert graph.has_node("c")
        assert graph.has_edge("c", "S", "a")
        assert graph.has_edge("b", "A", "c")

    def test_rejects_non_adjacent_edges(self, graph: LabeledGraph) -> None:
        op = NodeAddition("c", "c", (Edge("a", "S", "b"),))
        with pytest.raises(GraphError):
            op.apply(graph)

    def test_inverts_to_deletion(self) -> None:
        op = NodeAddition("c", "c", (Edge("c", "S", "a"),))
        inverse = op.invert()
        assert isinstance(inverse, NodeDeletion)
        assert inverse.node_id == "c"

    def test_cost(self) -> None:
        assert NodeAddition("c", "c", (Edge("c", "S", "a"),)).cost() == 2


class TestNodeDeletion:
    def test_apply_records_removed_structure(self, graph: LabeledGraph) -> None:
        recorded = NodeDeletion("a").apply(graph)
        assert recorded.label == "a"
        assert Edge("a", "S", "b") in recorded.edges
        assert not graph.has_node("a")

    def test_invert_unapplied_raises(self) -> None:
        with pytest.raises(GraphError):
            NodeDeletion("a").invert()

    def test_invert_after_apply_restores(self, graph: LabeledGraph) -> None:
        recorded = NodeDeletion("a").apply(graph)
        recorded.invert().apply(graph)
        assert graph.has_node("a")
        assert graph.has_edge("a", "S", "b")


class TestEdgeOps:
    def test_edge_addition(self, graph: LabeledGraph) -> None:
        EdgeAddition((Edge("b", "A", "a"),)).apply(graph)
        assert graph.has_edge("b", "A", "a")

    def test_edge_addition_inverts_to_deletion(self, graph: LabeledGraph) -> None:
        op = EdgeAddition((Edge("b", "A", "a"),))
        op.apply(graph)
        op.invert().apply(graph)
        assert not graph.has_edge("b", "A", "a")

    def test_edge_deletion(self, graph: LabeledGraph) -> None:
        EdgeDeletion((Edge("a", "S", "b"),)).apply(graph)
        assert graph.edge_count() == 0

    def test_edge_ops_cost_counts_edges(self) -> None:
        edges = (Edge("a", "S", "b"), Edge("b", "S", "a"))
        assert EdgeAddition(edges).cost() == 2
        assert EdgeDeletion(edges).cost() == 2


class TestTransformLog:
    def test_apply_journals_operations(self, graph: LabeledGraph) -> None:
        log = TransformLog()
        log.apply(graph, NodeAddition("c", "c"))
        log.apply(graph, EdgeAddition((Edge("c", "S", "a"),)))
        assert len(log) == 2
        assert log.total_cost() == 2

    def test_undo_reverses_last_op(self, graph: LabeledGraph) -> None:
        log = TransformLog()
        log.apply(graph, NodeAddition("c", "c"))
        undone = log.undo(graph)
        assert isinstance(undone, NodeAddition)
        assert not graph.has_node("c")
        assert len(log) == 0

    def test_undo_empty_returns_none(self, graph: LabeledGraph) -> None:
        assert TransformLog().undo(graph) is None

    def test_undo_node_deletion_restores_edges(self, graph: LabeledGraph) -> None:
        log = TransformLog()
        log.apply(graph, NodeDeletion("a"))
        assert not graph.has_node("a")
        log.undo(graph)
        assert graph.has_edge("a", "S", "b")

    def test_rollback_to_checkpoint(self, graph: LabeledGraph) -> None:
        log = TransformLog()
        log.apply(graph, NodeAddition("c", "c"))
        mark = log.checkpoint()
        log.apply(graph, NodeAddition("d", "d"))
        log.apply(graph, EdgeAddition((Edge("d", "S", "c"),)))
        undone = log.rollback(graph, to=mark)
        assert undone == 2
        assert graph.has_node("c")
        assert not graph.has_node("d")

    def test_full_rollback_restores_original(self, graph: LabeledGraph) -> None:
        snapshot = graph.structure()
        log = TransformLog()
        log.apply(graph, NodeAddition("x", "x", (Edge("x", "S", "a"),)))
        log.apply(graph, NodeDeletion("b"))
        log.apply(graph, EdgeAddition((Edge("x", "A", "a"),)))
        log.rollback(graph)
        assert graph.structure() == snapshot

    def test_apply_all_helper(self, graph: LabeledGraph) -> None:
        log = apply_all(
            graph,
            [
                NodeAddition("c", "c"),
                EdgeAddition((Edge("c", "S", "b"),)),
            ],
        )
        assert log.total_cost() == 2
        assert graph.has_edge("c", "S", "b")

    def test_iteration(self, graph: LabeledGraph) -> None:
        log = TransformLog()
        log.apply(graph, NodeAddition("c", "c"))
        kinds = [type(op).__name__ for op in log]
        assert kinds == ["NodeAddition"]
