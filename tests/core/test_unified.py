"""Unit tests for the virtual unified ontology."""

from __future__ import annotations

import pytest

from repro.core.articulation import Articulation
from repro.core.unified import UnifiedOntology
from repro.errors import AlgebraError, TermNotFoundError


@pytest.fixture
def unified(transport: Articulation) -> UnifiedOntology:
    return UnifiedOntology(transport)


class TestResolution:
    def test_resolve_source_term(self, unified: UnifiedOntology) -> None:
        owner, term = unified.resolve("carrier:Car")
        assert owner.name == "carrier"
        assert term == "Car"

    def test_resolve_articulation_term(self, unified: UnifiedOntology) -> None:
        owner, term = unified.resolve("transport:Vehicle")
        assert owner.name == "transport"

    def test_resolve_unknown_ontology(self, unified: UnifiedOntology) -> None:
        with pytest.raises(TermNotFoundError):
            unified.resolve("nowhere:X")

    def test_resolve_unknown_term(self, unified: UnifiedOntology) -> None:
        with pytest.raises(TermNotFoundError):
            unified.resolve("carrier:Ghost")

    def test_resolve_unqualified_rejected(self, unified: UnifiedOntology) -> None:
        with pytest.raises(AlgebraError):
            unified.resolve("Car")

    def test_has_term(self, unified: UnifiedOntology) -> None:
        assert unified.has_term("carrier:Car")
        assert not unified.has_term("carrier:Ghost")
        assert not unified.has_term("Car")

    def test_terms_cover_everything(self, unified: UnifiedOntology) -> None:
        terms = set(unified.terms())
        assert "carrier:Car" in terms
        assert "factory:Vehicle" in terms
        assert "transport:Euro" in terms
        assert len(terms) == unified.term_count()


class TestSemanticNavigation:
    def test_implies_through_bridge(self, unified: UnifiedOntology) -> None:
        assert unified.implies("carrier:Car", "transport:Vehicle")

    def test_implies_through_cascade(self, unified: UnifiedOntology) -> None:
        assert unified.implies("carrier:Car", "factory:Vehicle")

    def test_implies_combines_local_subclass_and_bridges(
        self, unified: UnifiedOntology
    ) -> None:
        # factory:Truck -S-> GoodsVehicle -S-> Vehicle -SIB-> transport:Vehicle
        assert unified.implies("factory:Truck", "transport:Vehicle")

    def test_implies_is_directed(self, unified: UnifiedOntology) -> None:
        assert not unified.implies("transport:Vehicle", "carrier:Car")

    def test_specializations(self, unified: UnifiedOntology) -> None:
        specs = unified.specializations("transport:Vehicle")
        assert "carrier:Car" in specs
        assert "factory:Truck" in specs
        assert "carrier:SUV" not in specs

    def test_generalizations(self, unified: UnifiedOntology) -> None:
        gens = unified.generalizations("carrier:Car")
        assert "transport:Vehicle" in gens
        assert "carrier:Transportation" in gens

    def test_equivalents_via_si_cycle(self, unified: UnifiedOntology) -> None:
        assert unified.equivalents("factory:Vehicle") >= {"transport:Vehicle"}

    def test_equivalents_excludes_self(self, unified: UnifiedOntology) -> None:
        assert "factory:Vehicle" not in unified.equivalents("factory:Vehicle")


class TestMaterialization:
    def test_materialize_flattens(self, unified: UnifiedOntology) -> None:
        merged = unified.materialize()
        assert merged.has_term("carrier.Car")
        assert merged.has_term("transport.Vehicle")
        assert merged.is_valid()

    def test_materialize_preserves_edge_count(
        self, unified: UnifiedOntology
    ) -> None:
        merged = unified.materialize()
        assert merged.graph.edge_count() == unified.graph().edge_count()
