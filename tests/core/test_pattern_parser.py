"""Unit tests for the textual pattern notation parser."""

from __future__ import annotations

import pytest

from repro.core.ontology import Ontology
from repro.core.pattern_parser import is_variable_token, parse_pattern
from repro.core.patterns import MatchConfig, find_matches, matches
from repro.errors import PatternParseError


class TestVariableConvention:
    def test_single_letter_upper_is_variable(self) -> None:
        assert is_variable_token("O")

    def test_all_caps_is_variable(self) -> None:
        assert is_variable_token("OWNER")

    def test_mixed_case_is_a_term(self) -> None:
        assert not is_variable_token("Owner")
        assert not is_variable_token("owner")


class TestPathForm:
    def test_paper_example_carrier_car_driver(self) -> None:
        pattern = parse_pattern("carrier:car:driver")
        assert pattern.ontology == "carrier"
        labels = [node.label for node in pattern.nodes()]
        assert labels == ["car", "driver"]
        assert len(pattern.edges()) == 1
        assert pattern.edges()[0].label == "*"

    def test_two_segment_is_scoped_single_node(self) -> None:
        pattern = parse_pattern("carrier:Car")
        assert pattern.ontology == "carrier"
        assert [n.label for n in pattern.nodes()] == ["Car"]
        assert pattern.edges() == ()

    def test_long_path(self) -> None:
        pattern = parse_pattern("o:a:b:c:d")
        assert len(pattern) == 4
        assert len(pattern.edges()) == 3

    def test_path_matches_carrier(self, carrier: Ontology) -> None:
        pattern = parse_pattern("carrier:Car:Cars")
        assert matches(pattern, carrier.graph)

    def test_case_insensitive_path_matches(self, carrier: Ontology) -> None:
        pattern = parse_pattern("carrier:car:driver")
        assert matches(
            pattern, carrier.graph, MatchConfig(case_insensitive=True)
        )


class TestArgumentForm:
    def test_paper_example_truck_owner_model(self) -> None:
        pattern = parse_pattern("truck(O: owner, model)")
        labels = sorted(n.label for n in pattern.nodes())
        assert labels == ["model", "owner", "truck"]
        assert pattern.variables() == ["O"]
        # Attribute edges point into the parent.
        targets = {e.target for e in pattern.edges()}
        truck_id = next(
            n.node_id for n in pattern.nodes() if n.label == "truck"
        )
        assert targets == {truck_id}
        assert all(e.label == "A" for e in pattern.edges())

    def test_variable_binds_attribute_node(self, carrier: Ontology) -> None:
        pattern = parse_pattern("Trucks(O: Owner, Model)")
        bindings = list(find_matches(pattern, carrier.graph))
        assert len(bindings) == 1
        assert bindings[0].var("O") == "Owner"

    def test_scoped_argument_form(self) -> None:
        pattern = parse_pattern("carrier:Trucks(Owner)")
        assert pattern.ontology == "carrier"
        assert len(pattern) == 2

    def test_empty_argument_list(self) -> None:
        pattern = parse_pattern("truck()")
        assert len(pattern) == 1


class TestCurlyForm:
    def test_nested_hierarchy(self) -> None:
        pattern = parse_pattern("truck{owner{name}, model}")
        assert len(pattern) == 4
        assert len(pattern.edges()) == 3

    def test_nested_matches_structure(self, tiny: Ontology) -> None:
        # tiny: Name -A-> Animal
        pattern = parse_pattern("Animal{Name}")
        assert matches(pattern, tiny.graph)

    def test_mixed_forms(self) -> None:
        pattern = parse_pattern("a(B: b{c}, d)")
        assert len(pattern) == 4
        assert "B" in pattern.variables()


class TestErrors:
    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "   ",
            ":",
            "a:",
            "a:b:",
            "a(",
            "a(b",
            "a(b,)",  # trailing comma (empty element)
            "a{b",
            "(a)",
            "a b",
            "a(X:)",
        ],
    )
    def test_malformed_patterns_raise(self, bad: str) -> None:
        with pytest.raises(PatternParseError):
            parse_pattern(bad)

    def test_trailing_garbage_rejected(self) -> None:
        with pytest.raises(PatternParseError):
            parse_pattern("a(b) extra")
