"""Unit tests for the articulation generator — the paper's §4 semantics."""

from __future__ import annotations

import pytest

from repro.core.articulation import Articulation, ArticulationGenerator
from repro.core.graph import Edge
from repro.core.ontology import Ontology
from repro.core.rules import ArticulationRuleSet, parse_rule, parse_rules
from repro.errors import ArticulationError, TermNotFoundError


def bridges_as_triples(articulation: Articulation) -> set[tuple[str, str, str]]:
    return {(e.source, e.label, e.target) for e in articulation.bridges}


@pytest.fixture
def generator(carrier: Ontology, factory: Ontology) -> ArticulationGenerator:
    return ArticulationGenerator([carrier, factory], name="transport")


class TestConstruction:
    def test_duplicate_source_names_rejected(self, carrier: Ontology) -> None:
        with pytest.raises(ArticulationError):
            ArticulationGenerator([carrier, carrier.copy()])

    def test_articulation_name_collision_rejected(
        self, carrier: Ontology, factory: Ontology
    ) -> None:
        with pytest.raises(ArticulationError):
            ArticulationGenerator([carrier, factory], name="carrier")


class TestSimpleRule:
    """The paper's first worked example: carrier:Car => factory:Vehicle."""

    def test_consequence_copied_into_articulation(
        self, generator: ArticulationGenerator
    ) -> None:
        art = generator.generate(
            parse_rules("carrier:Car => factory:Vehicle")
        )
        assert art.ontology.has_term("Vehicle")

    def test_three_bridge_edges(self, generator: ArticulationGenerator) -> None:
        art = generator.generate(
            parse_rules("carrier:Car => factory:Vehicle")
        )
        assert bridges_as_triples(art) == {
            ("carrier:Car", "SIBridge", "transport:Vehicle"),
            ("factory:Vehicle", "SIBridge", "transport:Vehicle"),
            ("transport:Vehicle", "SIBridge", "factory:Vehicle"),
        }

    def test_unknown_source_term_raises(
        self, generator: ArticulationGenerator
    ) -> None:
        with pytest.raises(TermNotFoundError):
            generator.generate(parse_rules("carrier:Spaceship => factory:Vehicle"))

    def test_unknown_ontology_raises(
        self, generator: ArticulationGenerator
    ) -> None:
        with pytest.raises(ArticulationError):
            generator.generate(parse_rules("nowhere:X => factory:Vehicle"))


class TestCascadeRule:
    """carrier:Car => transport:PassengerCar => factory:Vehicle (§4.1)."""

    def test_intermediate_node_created(
        self, generator: ArticulationGenerator
    ) -> None:
        art = generator.generate(
            parse_rules(
                "carrier:Car => transport:PassengerCar => factory:Vehicle"
            )
        )
        assert art.ontology.has_term("PassengerCar")

    def test_two_directed_bridges_only(
        self, generator: ArticulationGenerator
    ) -> None:
        art = generator.generate(
            parse_rules(
                "carrier:Car => transport:PassengerCar => factory:Vehicle"
            )
        )
        assert bridges_as_triples(art) == {
            ("carrier:Car", "SIBridge", "transport:PassengerCar"),
            ("transport:PassengerCar", "SIBridge", "factory:Vehicle"),
        }


class TestInternalRule:
    """transport:Owner => transport:Person adds a SubclassOf edge (§4.1)."""

    def test_subclass_edge_inside_articulation(
        self, generator: ArticulationGenerator
    ) -> None:
        art = generator.generate(
            parse_rules("transport:Owner => transport:Person")
        )
        assert art.ontology.graph.has_edge("Owner", "S", "Person")
        assert art.bridges == set()

    def test_unqualified_terms_resolve_to_articulation(
        self, generator: ArticulationGenerator
    ) -> None:
        art = generator.generate(parse_rules("Owner => Person"))
        assert art.ontology.graph.has_edge("Owner", "S", "Person")


class TestConjunction:
    """(factory:CargoCarrier ^ factory:Vehicle) => carrier:Trucks (§4.1)."""

    RULE = (
        "(factory:CargoCarrier ^ factory:Vehicle) => carrier:Trucks "
        "AS CargoCarrierVehicle"
    )

    def test_synthesized_class(self, generator: ArticulationGenerator) -> None:
        art = generator.generate(parse_rules(self.RULE))
        assert art.ontology.has_term("CargoCarrierVehicle")

    def test_bridges_to_conjuncts_and_consequence(
        self, generator: ArticulationGenerator
    ) -> None:
        art = generator.generate(parse_rules(self.RULE))
        triples = bridges_as_triples(art)
        node = "transport:CargoCarrierVehicle"
        assert (node, "SIBridge", "factory:CargoCarrier") in triples
        assert (node, "SIBridge", "factory:Vehicle") in triples
        assert (node, "SIBridge", "carrier:Trucks") in triples

    def test_common_subclasses_bridged_in(
        self, generator: ArticulationGenerator
    ) -> None:
        """'all subclasses of Vehicle that are also subclasses of
        CargoCarrier, e.g., Truck, are made subclasses' — including the
        transitive common subclass Truck."""
        art = generator.generate(parse_rules(self.RULE))
        triples = bridges_as_triples(art)
        node = "transport:CargoCarrierVehicle"
        assert ("factory:GoodsVehicle", "SIBridge", node) in triples
        assert ("factory:Truck", "SIBridge", node) in triples

    def test_default_label_is_concatenation(
        self, generator: ArticulationGenerator
    ) -> None:
        art = generator.generate(
            parse_rules(
                "(factory:CargoCarrier ^ factory:Vehicle) => carrier:Trucks"
            )
        )
        assert art.ontology.has_term("CargoCarrierVehicle")

    def test_cross_ontology_conjunction_has_no_common_subclasses(
        self, generator: ArticulationGenerator
    ) -> None:
        art = generator.generate(
            parse_rules("(factory:Vehicle ^ carrier:Cars) => carrier:Trucks")
        )
        node = "transport:VehicleCars"
        incoming = {
            t for t in bridges_as_triples(art) if t[2] == node
        }
        assert incoming == set()  # only outgoing subclass bridges


class TestDisjunction:
    """factory:Vehicle => (carrier:Cars | carrier:Trucks) (§4.1)."""

    RULE = "factory:Vehicle => (carrier:Cars | carrier:Trucks)"

    def test_synthesized_class(self, generator: ArticulationGenerator) -> None:
        art = generator.generate(parse_rules(self.RULE))
        assert art.ontology.has_term("CarsTrucks")

    def test_everyone_bridges_into_the_disjunction(
        self, generator: ArticulationGenerator
    ) -> None:
        art = generator.generate(parse_rules(self.RULE))
        node = "transport:CarsTrucks"
        assert bridges_as_triples(art) == {
            ("carrier:Cars", "SIBridge", node),
            ("carrier:Trucks", "SIBridge", node),
            ("factory:Vehicle", "SIBridge", node),
        }


class TestFunctionalRules:
    def test_conversion_edge_and_registration(
        self, generator: ArticulationGenerator, rules: ArticulationRuleSet
    ) -> None:
        art = generator.generate(rules)
        triples = bridges_as_triples(art)
        assert (
            "carrier:PoundSterling",
            "PSToEuroFn()",
            "transport:Euro",
        ) in triples
        assert "PSToEuroFn()" in art.functions

    def test_inverse_edge_generated(
        self, generator: ArticulationGenerator, rules: ArticulationRuleSet
    ) -> None:
        art = generator.generate(rules)
        triples = bridges_as_triples(art)
        assert (
            "transport:Euro",
            "EuroToPSFn()",
            "carrier:PoundSterling",
        ) in triples
        inverse = art.functions["EuroToPSFn()"]
        assert inverse.apply(100.0) == pytest.approx(71.11)

    def test_conversion_between(self, transport: Articulation) -> None:
        rule = transport.conversion_between(
            "carrier:PoundSterling", "transport:Euro"
        )
        assert rule is not None
        assert rule.apply(71.11) == pytest.approx(100.0)

    def test_conversion_between_missing(self, transport: Articulation) -> None:
        assert (
            transport.conversion_between("carrier:Car", "transport:Vehicle")
            is None
        )


class TestIncrementalExtend:
    def test_extend_is_idempotent(
        self, generator: ArticulationGenerator
    ) -> None:
        art = generator.generate(parse_rules("carrier:Car => factory:Vehicle"))
        before = bridges_as_triples(art)
        applied = generator.extend(
            art, parse_rules("carrier:Car => factory:Vehicle")
        )
        assert applied == 0
        assert bridges_as_triples(art) == before

    def test_extend_adds_new_rules(
        self, generator: ArticulationGenerator
    ) -> None:
        art = generator.generate(parse_rules("carrier:Car => factory:Vehicle"))
        applied = generator.extend(art, parse_rules("Owner => Person"))
        assert applied == 1
        assert art.ontology.has_term("Owner")

    def test_cost_accumulates(self, generator: ArticulationGenerator) -> None:
        art = generator.generate(parse_rules("carrier:Car => factory:Vehicle"))
        cost_before = art.cost()
        generator.extend(art, parse_rules("Owner => Person"))
        assert art.cost() > cost_before


class TestArticulationQueries:
    def test_source_terms_implying(self, transport: Articulation) -> None:
        assert transport.source_terms_implying("Vehicle") == {
            "carrier:Car",
            "factory:Vehicle",
        }

    def test_articulation_terms_for(self, transport: Articulation) -> None:
        assert transport.articulation_terms_for("carrier:Car") == {
            "Vehicle",
            "PassengerCar",
        }

    def test_covered_source_terms(self, transport: Articulation) -> None:
        covered = transport.covered_source_terms()
        assert "carrier:Car" in covered
        assert "factory:Truck" in covered
        assert "carrier:SUV" not in covered  # untouched by any rule

    def test_unified_graph_union_semantics(
        self, transport: Articulation, carrier: Ontology, factory: Ontology
    ) -> None:
        unified = transport.unified_graph()
        expected_nodes = (
            carrier.term_count()
            + factory.term_count()
            + transport.ontology.term_count()
        )
        assert unified.node_count() == expected_nodes
        expected_edges = (
            carrier.graph.edge_count()
            + factory.graph.edge_count()
            + transport.ontology.graph.edge_count()
            + len(transport.bridges)
        )
        assert unified.edge_count() == expected_edges

    def test_dangling_bridges_after_source_change(
        self, transport: Articulation
    ) -> None:
        transport.sources["carrier"].remove_term("Car")
        dangling = transport.dangling_bridges()
        assert all("carrier:Car" in (e.source, e.target) for e in dangling)
        dropped = transport.drop_dangling_bridges()
        assert dropped == len(dangling) > 0
        assert transport.dangling_bridges() == []

    def test_unified_graph_skips_dangling_bridges(
        self, transport: Articulation
    ) -> None:
        transport.sources["carrier"].remove_term("Car")
        unified = transport.unified_graph()  # must not raise
        assert not unified.has_node("carrier:Car")


class TestStructureInheritance:
    def test_inherit_structure_copies_source_edges(
        self, carrier: Ontology, factory: Ontology
    ) -> None:
        generator = ArticulationGenerator([carrier, factory], name="transport")
        art = generator.generate(
            parse_rules(
                """
                carrier:Cars => factory:Vehicle
                carrier:Carrier => factory:Transportation
                """
            )
        )
        # carrier has Cars -S-> Carrier; the articulation copies of the
        # two concepts should inherit that edge.
        added = generator.inherit_structure(art, "carrier")
        assert added >= 1
        assert art.ontology.graph.has_edge("Vehicle", "S", "Transportation")

    def test_inherit_structure_transitive(
        self, carrier: Ontology, factory: Ontology
    ) -> None:
        generator = ArticulationGenerator([carrier, factory], name="transport")
        art = generator.generate(
            parse_rules(
                """
                carrier:Car => factory:Vehicle
                carrier:Transportation => factory:Transportation
                """
            )
        )
        added = generator.inherit_structure(art, "carrier", transitive=True)
        # Car -S-> ... -S-> Transportation is a path, not an edge; only
        # the transitive mode materializes it.
        assert art.ontology.graph.has_edge("Vehicle", "S", "Transportation")
        assert added >= 1

    def test_inherit_structure_unknown_source(
        self, carrier: Ontology, factory: Ontology
    ) -> None:
        generator = ArticulationGenerator([carrier, factory], name="transport")
        art = generator.generate(ArticulationRuleSet())
        with pytest.raises(ArticulationError):
            generator.inherit_structure(art, "nowhere")


class TestVersionStampCaching:
    """The version-stamped unified-graph / covered-term caches."""

    def test_unified_graph_cached_until_change(
        self, transport: Articulation
    ) -> None:
        first = transport.unified_graph()
        second = transport.unified_graph()
        assert second is first
        assert transport.cache_stats["unified_hits"] >= 1
        assert transport.cache_stats["unified_misses"] == 1

    def test_extend_invalidates_unified_cache(
        self, transport: Articulation
    ) -> None:
        before = transport.unified_graph()
        generator = ArticulationGenerator(
            transport.sources.values(), name=transport.name
        )
        extra = ArticulationRuleSet()
        extra.add(parse_rule("carrier:SUV => factory:Vehicle"))
        generator.extend(transport, extra)
        after = transport.unified_graph()
        assert after is not before
        assert after.has_edge(
            "carrier:SUV", "SIBridge", "transport:Vehicle"
        ) or after.edge_count() > before.edge_count()
        # and the new graph is itself cached
        assert transport.unified_graph() is after

    def test_source_mutation_invalidates_unified_cache(
        self, transport: Articulation
    ) -> None:
        before = transport.unified_graph()
        transport.sources["carrier"].ensure_term("Hovercraft")
        after = transport.unified_graph()
        assert after is not before
        assert after.has_node("carrier:Hovercraft")

    def test_drop_dangling_bridges_bumps_version(
        self, transport: Articulation
    ) -> None:
        transport.unified_graph()
        version = transport.version
        transport.sources["carrier"].remove_term("Car")
        dropped = transport.drop_dangling_bridges()
        assert dropped > 0
        assert transport.version > version
        assert not transport.unified_graph().has_node("carrier:Car")

    def test_covered_source_terms_cached(
        self, transport: Articulation
    ) -> None:
        first = transport.covered_source_terms()
        second = transport.covered_source_terms()
        assert second == first
        assert transport.cache_stats["covered_hits"] >= 1
        # The cache hands out copies: mutating one must not leak.
        second.add("carrier:Bogus")
        assert "carrier:Bogus" not in transport.covered_source_terms()

    def test_fingerprint_moves_with_each_layer(
        self, transport: Articulation
    ) -> None:
        fp0 = transport.fingerprint()
        transport.bump_version()
        fp1 = transport.fingerprint()
        assert fp1 != fp0
        transport.sources["factory"].ensure_term("Depot")
        fp2 = transport.fingerprint()
        assert fp2 != fp1
        transport.ontology.ensure_term("Extra")
        assert transport.fingerprint() != fp2

    def test_repeated_algebra_ops_share_cached_graph(
        self, transport: Articulation
    ) -> None:
        from repro.core.algebra import difference

        carrier = transport.sources["carrier"]
        factory = transport.sources["factory"]
        transport.cache_stats.clear()
        difference(carrier, factory, transport)
        difference(factory, carrier, transport)
        difference(carrier, factory, transport)
        assert transport.cache_stats.get("unified_misses", 0) == 1
        assert transport.cache_stats.get("unified_hits", 0) >= 2

    def test_match_index_rides_cached_unified_graph(
        self, transport: Articulation
    ) -> None:
        from repro.core.patterns import MatchConfig

        config = MatchConfig(case_insensitive=True)
        index1 = transport.match_index(config)
        index2 = transport.match_index(config)
        assert index2 is index1
        transport.sources["carrier"].ensure_term("Gyrocopter")
        index3 = transport.match_index(config)
        assert index3 is not index1

    def test_equal_count_bridge_swap_invalidates_cache(
        self, transport: Articulation
    ) -> None:
        """Swapping one bridge for another (same count) must not serve
        a stale unified graph — the fingerprint hashes bridge content."""
        before = transport.unified_graph()
        old = next(iter(transport.bridges))
        new = Edge("carrier:SUV", "SIBridge", "transport:Vehicle")
        assert new not in transport.bridges
        transport.bridges.discard(old)
        transport.bridges.add(new)
        after = transport.unified_graph()
        assert after is not before
        assert after.has_edge(new.source, new.label, new.target)
        assert not after.has_edge(old.source, old.label, old.target)
