"""Unit tests for the relationship vocabulary and registry."""

from __future__ import annotations

import pytest

from repro.core.relations import (
    ATTRIBUTE_OF,
    INSTANCE_OF,
    SEMANTIC_IMPLICATION,
    SI_BRIDGE,
    SUBCLASS_OF,
    RelationRegistry,
    RelationType,
    standard_registry,
)
from repro.errors import OntologyError


class TestRelationType:
    def test_standard_codes_match_the_paper(self) -> None:
        assert SUBCLASS_OF.code == "S"
        assert ATTRIBUTE_OF.code == "A"
        assert INSTANCE_OF.code == "I"
        assert SEMANTIC_IMPLICATION.code == "SI"

    def test_subclass_is_transitive(self) -> None:
        assert SUBCLASS_OF.transitive

    def test_attribute_is_not_transitive(self) -> None:
        assert not ATTRIBUTE_OF.transitive

    def test_bridge_implies_semantic_implication(self) -> None:
        assert "SemanticImplication" in SI_BRIDGE.implies

    def test_empty_name_rejected(self) -> None:
        with pytest.raises(OntologyError):
            RelationType("", "X")

    def test_empty_code_rejected(self) -> None:
        with pytest.raises(OntologyError):
            RelationType("Thing", "")


class TestRegistry:
    def test_standard_registry_contents(self) -> None:
        registry = standard_registry()
        assert len(registry) == 5
        assert "SubclassOf" in registry
        assert "S" in registry

    def test_lookup_by_name_and_code(self) -> None:
        registry = standard_registry()
        assert registry.get("SubclassOf") is registry.get("S")
        assert registry.require("SI").name == "SemanticImplication"

    def test_require_unknown_raises(self) -> None:
        with pytest.raises(OntologyError):
            standard_registry().require("NoSuchRelation")

    def test_code_for_normalizes(self) -> None:
        registry = standard_registry()
        assert registry.code_for("SubclassOf") == "S"
        assert registry.code_for("S") == "S"

    def test_register_identical_twice_ok(self) -> None:
        registry = standard_registry()
        registry.register(SUBCLASS_OF)
        assert len(registry) == 5

    def test_register_conflicting_properties_raises(self) -> None:
        registry = standard_registry()
        imposter = RelationType("SubclassOf", "S", transitive=False)
        with pytest.raises(OntologyError):
            registry.register(imposter)

    def test_register_code_collision_raises(self) -> None:
        registry = standard_registry()
        clash = RelationType("Other", "S")
        with pytest.raises(OntologyError):
            registry.register(clash)

    def test_transitive_codes(self) -> None:
        assert standard_registry().transitive_codes() == {"S", "SI"}

    def test_symmetric_codes_default_empty(self) -> None:
        assert standard_registry().symmetric_codes() == set()

    def test_copy_is_independent(self) -> None:
        registry = standard_registry()
        clone = registry.copy()
        clone.register(RelationType("PartOf", "P", transitive=True))
        assert "PartOf" in clone
        assert "PartOf" not in registry

    def test_merged_with_unions_vocabularies(self) -> None:
        left = RelationRegistry([SUBCLASS_OF])
        right = RelationRegistry([ATTRIBUTE_OF])
        merged = left.merged_with(right)
        assert "SubclassOf" in merged
        assert "AttributeOf" in merged

    def test_merged_with_conflict_raises(self) -> None:
        left = RelationRegistry([SUBCLASS_OF])
        right = RelationRegistry([RelationType("SubclassOf", "S",
                                               transitive=False)])
        with pytest.raises(OntologyError):
            left.merged_with(right)

    def test_iteration_yields_relation_types(self) -> None:
        names = {relation.name for relation in standard_registry()}
        assert "SIBridge" in names
