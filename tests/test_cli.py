"""Integration tests for the ``onion`` CLI."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.cli import load_ontology, main
from repro.formats import adjacency
from repro.kb.serialize import save_store, store_to_dict
from repro.workloads.paper_example import (
    carrier_ontology,
    carrier_store,
    factory_ontology,
    factory_store,
)

RULES_TEXT = """
carrier:Car => factory:Vehicle
carrier:Car => transport:PassengerCar => factory:Vehicle
transport:Owner => transport:Person
(factory:CargoCarrier ^ factory:Vehicle) => carrier:Trucks AS CargoCarrierVehicle
factory:Vehicle => (carrier:Cars | carrier:Trucks)
PSToEuroFn(x / 0.7111 ; x * 0.7111 ; EuroToPSFn) : carrier:PoundSterling => transport:Euro
DGToEuroFn(x / 2.20371 ; x * 2.20371 ; EuroToDGFn) : factory:DutchGuilders => transport:Euro
"""


@pytest.fixture
def world(tmp_path: Path) -> dict[str, Path]:
    paths = {}
    for onto in (carrier_ontology(), factory_ontology()):
        path = tmp_path / f"{onto.name}.adj"
        adjacency.dump(onto, path)
        paths[onto.name] = path
    rules = tmp_path / "rules.txt"
    rules.write_text(RULES_TEXT)
    paths["rules"] = rules
    carrier_json = tmp_path / "carrier.json"
    save_store(carrier_store(), carrier_json)
    paths["carrier_kb"] = carrier_json
    factory_json = tmp_path / "factory.json"
    save_store(factory_store(), factory_json)
    paths["factory_kb"] = factory_json
    return paths


class TestConvert:
    @pytest.mark.parametrize("suffix", [".xml", ".nt", ".adj"])
    def test_round_trip_via_format(
        self, world, tmp_path: Path, suffix: str, capsys
    ) -> None:
        out = tmp_path / f"out{suffix}"
        code = main(["convert", str(world["carrier"]), str(out)])
        assert code == 0
        rebuilt = load_ontology(str(out))
        assert rebuilt.term_count() == carrier_ontology().term_count()
        assert "wrote" in capsys.readouterr().out

    def test_convert_to_dot(self, world, tmp_path: Path) -> None:
        out = tmp_path / "out.dot"
        assert main(["convert", str(world["carrier"]), str(out)]) == 0
        assert out.read_text().startswith("digraph")

    def test_unknown_extension_fails(self, world, tmp_path: Path, capsys) -> None:
        code = main(
            ["convert", str(world["carrier"]), str(tmp_path / "x.bogus")]
        )
        assert code == 2
        assert "error" in capsys.readouterr().err

    def test_missing_file_fails(self, tmp_path: Path, capsys) -> None:
        code = main(["convert", str(tmp_path / "nope.adj"), "out.xml"])
        assert code == 2


class TestRenderValidate:
    def test_render(self, world, capsys) -> None:
        assert main(["render", str(world["carrier"])]) == 0
        out = capsys.readouterr().out
        assert "ontology carrier" in out
        assert "+- Transportation" in out

    def test_validate_ok(self, world, capsys) -> None:
        assert (
            main(
                ["validate", str(world["carrier"]), str(world["factory"])]
            )
            == 0
        )
        assert "OK" in capsys.readouterr().out

    def test_validate_catches_cycle(self, tmp_path: Path, capsys) -> None:
        bad = tmp_path / "bad.adj"
        bad.write_text("ontology bad\nA -S-> B\nB -S-> A\n")
        assert main(["validate", str(bad)]) == 1
        assert "cycle" in capsys.readouterr().out


class TestSuggest:
    def test_suggestions_printed(self, world, capsys) -> None:
        code = main(
            [
                "suggest",
                str(world["carrier"]),
                str(world["factory"]),
                "--min-score",
                "0.9",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        # Transportation and Price share labels across the sources.
        assert "carrier:Transportation => factory:Transportation" in out

    def test_why_flag(self, world, capsys) -> None:
        main(
            ["suggest", str(world["carrier"]), str(world["factory"]),
             "--min-score", "0.9", "--why"]
        )
        assert "normalize identically" in capsys.readouterr().out


class TestArticulate:
    def test_articulate_prints_bridges(self, world, capsys) -> None:
        code = main(
            [
                "articulate",
                str(world["carrier"]),
                str(world["factory"]),
                "--rules",
                str(world["rules"]),
                "--name",
                "transport",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "bridges (17):" in out
        assert "carrier:Car -SIBridge-> transport:Vehicle" in out

    def test_articulate_writes_dot(self, world, tmp_path: Path, capsys) -> None:
        dot_path = tmp_path / "art.dot"
        main(
            [
                "articulate",
                str(world["carrier"]),
                str(world["factory"]),
                "--rules",
                str(world["rules"]),
                "--name",
                "transport",
                "--dot",
                str(dot_path),
            ]
        )
        assert "cluster" in dot_path.read_text()

    def test_bad_rule_file(self, world, tmp_path: Path, capsys) -> None:
        bad = tmp_path / "bad_rules.txt"
        bad.write_text("this is not a rule\n")
        code = main(
            [
                "articulate",
                str(world["carrier"]),
                str(world["factory"]),
                "--rules",
                str(bad),
            ]
        )
        assert code == 2


class TestAlgebra:
    def test_intersection(self, world, capsys) -> None:
        code = main(
            [
                "algebra",
                "intersection",
                str(world["carrier"]),
                str(world["factory"]),
                "--rules",
                str(world["rules"]),
                "--name",
                "transport",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "CargoCarrierVehicle" in out

    def test_difference_strategies_differ(self, world, capsys) -> None:
        main(
            ["algebra", "difference", str(world["carrier"]),
             str(world["factory"]), "--rules", str(world["rules"]),
             "--name", "transport"]
        )
        conservative = capsys.readouterr().out
        main(
            ["algebra", "difference", str(world["carrier"]),
             str(world["factory"]), "--rules", str(world["rules"]),
             "--name", "transport", "--strategy", "formal"]
        )
        formal = capsys.readouterr().out
        assert "Driver" not in conservative
        assert "Driver" in formal

    def test_union_lists_edges(self, world, capsys) -> None:
        code = main(
            ["algebra", "union", str(world["carrier"]),
             str(world["factory"]), "--rules", str(world["rules"]),
             "--name", "transport"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "union (virtual): 30 nodes, 42 edges" in out


class TestQuery:
    def run_query(self, world, text: str, *extra: str):
        return main(
            [
                "query",
                text,
                str(world["carrier"]),
                str(world["factory"]),
                "--rules",
                str(world["rules"]),
                "--name",
                "transport",
                "--kb",
                f"carrier={world['carrier_kb']}",
                "--kb",
                f"factory={world['factory_kb']}",
                *extra,
            ]
        )

    def test_cross_source_query(self, world, capsys) -> None:
        code = self.run_query(
            world, "SELECT price FROM transport:Vehicle WHERE price < 10000"
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "factory:LineTruck2" in out
        assert "(2 row(s))" in out

    def test_explain_flag(self, world, capsys) -> None:
        self.run_query(
            world, "SELECT price FROM transport:Vehicle", "--explain"
        )
        out = capsys.readouterr().out
        assert "scan carrier" in out
        assert "PSToEuroFn" in out

    def test_aggregate_query(self, world, capsys) -> None:
        self.run_query(world, "SELECT COUNT(*) FROM transport:Vehicle")
        out = capsys.readouterr().out
        assert "count(*)" in out
        assert "(1 row(s))" in out

    def test_unknown_kb_source(self, world, capsys) -> None:
        code = self.run_query(
            world,
            "SELECT * FROM transport:Vehicle",
            "--kb",
            "nowhere=missing.json",
        )
        assert code == 2

    def test_sqlite_backend_matches_memory(self, world, capsys) -> None:
        question = "SELECT price FROM transport:Vehicle WHERE price < 10000"
        assert self.run_query(world, question) == 0
        memory_out = capsys.readouterr().out
        assert (
            self.run_query(
                world, question, "--backend", "sqlite", "--pushdown"
            )
            == 0
        )
        assert capsys.readouterr().out == memory_out

    def test_sqlite_backend_persists_to_db_dir(
        self, world, tmp_path, capsys
    ) -> None:
        db_dir = tmp_path / "dbs"
        code = self.run_query(
            world,
            "SELECT price FROM transport:Vehicle",
            "--backend",
            "sqlite",
            "--db",
            str(db_dir),
        )
        assert code == 0
        assert sorted(p.name for p in db_dir.iterdir()) == [
            "carrier.sqlite",
            "factory.sqlite",
        ]

    def test_reused_db_dir_drops_rows_removed_from_kb(
        self, world, tmp_path, capsys
    ) -> None:
        """The --kb JSON is the source of truth: reloading into an
        existing database must not resurrect deleted instances."""
        question = "SELECT COUNT(*) FROM transport:Vehicle"
        args = ("--backend", "sqlite", "--db", str(tmp_path / "dbs"))
        self.run_query(world, question, *args)
        first = capsys.readouterr().out
        payload = json.loads(world["factory_kb"].read_text())
        payload["instances"] = payload["instances"][:-1]
        world["factory_kb"].write_text(json.dumps(payload))
        self.run_query(world, question, *args)
        second = capsys.readouterr().out
        assert first != second

    def test_db_without_sqlite_backend_rejected(
        self, world, tmp_path, capsys
    ) -> None:
        code = self.run_query(
            world,
            "SELECT * FROM transport:Vehicle",
            "--db",
            str(tmp_path / "dbs"),
        )
        assert code == 2
        assert "--db only applies" in capsys.readouterr().err


class TestExplain:
    def run_explain(self, world, *extra: str):
        return main(
            [
                "explain",
                "SELECT price FROM transport:Vehicle WHERE price < 10000",
                str(world["carrier"]),
                str(world["factory"]),
                "--rules",
                str(world["rules"]),
                "--name",
                "transport",
                *extra,
            ]
        )

    def test_explain_without_stores_plans_all_sources(
        self, world, capsys
    ) -> None:
        assert self.run_explain(world) == 0
        out = capsys.readouterr().out
        assert "scan carrier" in out
        assert "scan factory" in out
        assert "finalize" in out

    def test_explain_shows_pushdown_into_sqlite(
        self, world, capsys
    ) -> None:
        code = self.run_explain(
            world,
            "--kb",
            f"carrier={world['carrier_kb']}",
            "--kb",
            f"factory={world['factory_kb']}",
            "--backend",
            "sqlite",
            "--pushdown",
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "push price <" in out
        assert "project ['price']" in out
        assert "backend carrier: sqlite" in out


class TestKbSerialization:
    def test_round_trip(self, tmp_path: Path) -> None:
        from repro.kb.serialize import load_store

        store = carrier_store()
        path = tmp_path / "kb.json"
        save_store(store, path)
        loaded = load_store(path, carrier_ontology())
        assert store_to_dict(loaded) == store_to_dict(store)

    def test_wrong_ontology_rejected(self, tmp_path: Path) -> None:
        from repro.errors import FormatError
        from repro.kb.serialize import load_store

        path = tmp_path / "kb.json"
        save_store(carrier_store(), path)
        with pytest.raises(FormatError):
            load_store(path, factory_ontology())

    def test_malformed_json_rejected(self, tmp_path: Path) -> None:
        from repro.errors import FormatError
        from repro.kb.serialize import load_store

        path = tmp_path / "kb.json"
        path.write_text("{not json")
        with pytest.raises(FormatError):
            load_store(path, carrier_ontology())

    def test_missing_fields_rejected(self, tmp_path: Path) -> None:
        from repro.errors import FormatError
        from repro.kb.serialize import store_from_dict

        with pytest.raises(FormatError):
            store_from_dict(
                {"instances": [{"id": "x"}]}, carrier_ontology()
            )


class TestMediator:
    def test_mediator_to_stdout(self, world, capsys) -> None:
        code = main(
            [
                "mediator",
                str(world["carrier"]),
                str(world["factory"]),
                "--rules",
                str(world["rules"]),
                "--name",
                "transport",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "module transport {" in out
        assert "interface Vehicle" in out
        assert "// Vehicle <- carrier: Car" in out

    def test_mediator_to_file(self, world, tmp_path: Path, capsys) -> None:
        out_path = tmp_path / "mediator.odl"
        code = main(
            [
                "mediator",
                str(world["carrier"]),
                str(world["factory"]),
                "--rules",
                str(world["rules"]),
                "--name",
                "transport",
                "--out",
                str(out_path),
            ]
        )
        assert code == 0
        assert "interface CargoCarrierVehicle" in out_path.read_text()
