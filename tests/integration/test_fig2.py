"""Experiment FIG2: exact reproduction of the paper's Fig. 2 articulation.

Every assertion here corresponds to a statement in §4.1/§5 of the
paper; together they certify that the generated transport articulation
is the one the paper describes.
"""

from __future__ import annotations

import pytest

from repro.core.algebra import difference, intersection, union
from repro.inference.engine import OntologyInferenceEngine
from repro.workloads.paper_example import (
    EXPECTED_ARTICULATION_TERMS,
    EXPECTED_BRIDGES,
    EXPECTED_INTERNAL_EDGES,
    carrier_ontology,
    factory_ontology,
    generate_transport_articulation,
    paper_rules,
)


@pytest.fixture(scope="module")
def articulation():
    return generate_transport_articulation()


class TestFig2Articulation:
    def test_articulation_terms_exact(self, articulation) -> None:
        assert (
            frozenset(articulation.ontology.terms())
            == EXPECTED_ARTICULATION_TERMS
        )

    def test_internal_edges_exact(self, articulation) -> None:
        got = frozenset(
            (e.source, e.label, e.target)
            for e in articulation.ontology.graph.edges()
        )
        assert got == EXPECTED_INTERNAL_EDGES

    def test_bridges_exact(self, articulation) -> None:
        got = frozenset(
            (e.source, e.label, e.target) for e in articulation.bridges
        )
        assert got == EXPECTED_BRIDGES

    def test_articulation_ontology_is_consistent(self, articulation) -> None:
        assert articulation.ontology.is_valid()

    def test_generation_is_deterministic(self, articulation) -> None:
        again = generate_transport_articulation()
        assert frozenset(
            (e.source, e.label, e.target) for e in again.bridges
        ) == frozenset(
            (e.source, e.label, e.target) for e in articulation.bridges
        )
        assert again.ontology.same_structure(articulation.ontology)


class TestFig2Algebra:
    """Experiment ids ALG-UNION / ALG-INTER / ALG-DIFF."""

    def test_union_is_sources_plus_articulation(self, articulation) -> None:
        carrier, factory = carrier_ontology(), factory_ontology()
        unified = union(carrier, factory, paper_rules(), name="transport")
        graph = unified.graph()
        assert graph.node_count() == (
            carrier.term_count()
            + factory.term_count()
            + len(EXPECTED_ARTICULATION_TERMS)
        )
        assert graph.edge_count() == (
            carrier.graph.edge_count()
            + factory.graph.edge_count()
            + len(EXPECTED_INTERNAL_EDGES)
            + len(EXPECTED_BRIDGES)
        )

    def test_intersection_is_transport_ontology(self) -> None:
        """'The intersection of the carrier and factory ontologies is
        the transportation ontology.'"""
        inter = intersection(
            carrier_ontology(), factory_ontology(), paper_rules(),
            name="transport",
        )
        assert frozenset(inter.terms()) == EXPECTED_ARTICULATION_TERMS

    def test_difference_worked_example(self) -> None:
        rules = paper_rules()
        diff_cf = difference(
            carrier_ontology(), factory_ontology(), rules,
            articulation_name="transport",
        )
        assert not diff_cf.has_term("Car")
        diff_fc = difference(
            factory_ontology(), carrier_ontology(), rules,
            articulation_name="transport",
        )
        assert diff_fc.has_term("Vehicle")

    def test_difference_supports_maintenance_decision(
        self, articulation
    ) -> None:
        """§5.3: a change in the difference needs no articulation
        update; a change outside it does."""
        diff = difference(
            carrier_ontology(), factory_ontology(), paper_rules(),
            articulation_name="transport",
        )
        covered = articulation.covered_source_terms()
        # Terms surviving the difference are exactly the ones whose
        # changes are free... minus those covered by bridges directly.
        for term in diff.terms():
            qualified = f"carrier:{term}"
            if qualified in covered:
                # Cars and Trucks are bridged (into CarsTrucks) yet kept
                # by the difference: bridges on a term always demand
                # maintenance, which is the conservative superset.
                assert term in {"Cars", "Trucks", "PoundSterling"}


class TestFig2Inference:
    def test_paper_level_consequences(self, articulation) -> None:
        engine = OntologyInferenceEngine.from_articulation(articulation)
        # "enables us to use information regarding cars in carrier and
        # to integrate knowledge about all vehicles" (§4.1):
        assert engine.implies("carrier:Car", "factory:Vehicle")
        # CargoCarrierVehicle "is indeed a vehicle, it carries cargo and
        # is therefore also a goods vehicle":
        assert engine.implies(
            "transport:CargoCarrierVehicle", "factory:Vehicle"
        )
        assert engine.implies(
            "transport:CargoCarrierVehicle", "factory:CargoCarrier"
        )
        # Truck ends up under the conjunction class:
        assert engine.implies(
            "factory:Truck", "transport:CargoCarrierVehicle"
        )
        # "the term Vehicle implies (is a subclass of) CarsOrTrucks":
        assert engine.implies("factory:Vehicle", "transport:CarsTrucks")

    def test_no_spurious_equivalence_collapse(self, articulation) -> None:
        engine = OntologyInferenceEngine.from_articulation(articulation)
        groups = engine.equivalence_classes()
        assert groups == [frozenset({"factory:Vehicle", "transport:Vehicle"})]
