"""End-to-end integration: expert session -> articulation -> queries,
and the full SKAT loop against a synthetic workload."""

from __future__ import annotations

import pytest

from repro.core.algebra import compose
from repro.core.articulation import ArticulationGenerator
from repro.core.ontology import Ontology
from repro.core.rules import parse_rules
from repro.formats import adjacency
from repro.kb.instances import InstanceStore
from repro.lexicon.expert import GroundTruthPolicy
from repro.lexicon.skat import SkatEngine, SynonymMatcher, ExactLabelMatcher
from repro.lexicon.skat import articulate_with_expert
from repro.query.engine import QueryEngine
from repro.query.views import ViewCatalog
from repro.viewer.session import ExpertSession
from repro.workloads.generator import WorkloadConfig, generate_workload
from repro.workloads.paper_example import (
    carrier_ontology,
    carrier_store,
    factory_ontology,
    factory_store,
)


class TestSessionToQueries:
    def test_full_pipeline(self) -> None:
        """Import -> specify rules -> generate -> query across sources."""
        session = ExpertSession(articulation_name="transport")
        session.import_ontology(carrier_ontology())
        session.import_ontology(factory_ontology())
        for text in (
            "carrier:Car => factory:Vehicle",
            "(factory:CargoCarrier ^ factory:Vehicle) => carrier:Trucks "
            "AS CargoCarrierVehicle",
        ):
            session.specify_rule(text)
        articulation = session.generate()

        engine = QueryEngine(
            articulation,
            {"carrier": carrier_store(), "factory": factory_store()},
        )
        rows = engine.execute("SELECT * FROM transport:Vehicle")
        assert {r.source for r in rows} == {"carrier", "factory"}

    def test_pipeline_from_serialized_sources(self, tmp_path) -> None:
        """Sources round-trip through the adjacency wrapper first."""
        for onto in (carrier_ontology(), factory_ontology()):
            adjacency.dump(onto, tmp_path / f"{onto.name}.adj")
        carrier = adjacency.load(tmp_path / "carrier.adj")
        factory = adjacency.load(tmp_path / "factory.adj")
        generator = ArticulationGenerator([carrier, factory],
                                          name="transport")
        articulation = generator.generate(
            parse_rules("carrier:Car => factory:Vehicle")
        )
        assert articulation.ontology.has_term("Vehicle")

    def test_views_layer_over_engine(self) -> None:
        from repro.workloads.paper_example import (
            generate_transport_articulation,
        )

        engine = QueryEngine(
            generate_transport_articulation(),
            {"carrier": carrier_store(), "factory": factory_store()},
        )
        catalog = ViewCatalog(engine)
        catalog.define("vehicles", "SELECT * FROM transport:Vehicle")
        live = engine.execute(
            "SELECT price FROM transport:Vehicle WHERE price < 10000"
        )
        via_view = catalog.execute(
            "SELECT price FROM transport:Vehicle WHERE price < 10000"
        )
        assert {r.instance_id for r in via_view} == {
            r.instance_id for r in live
        }
        assert catalog.hits == 1


class TestSkatOnSyntheticTruth:
    def test_ground_truth_expert_recovers_alignment(self) -> None:
        """With a perfectly informed expert, the applied rules are
        exactly the suggested-and-true ones; precision of the final
        articulation is 1 by construction, recall depends on SKAT."""
        workload = generate_workload(
            WorkloadConfig(
                universe_size=60,
                n_sources=2,
                terms_per_source=25,
                overlap=0.5,
                identical_fraction=0.4,
                seed=13,
            )
        )
        truth = workload.truth_rules(0, 1)
        policy = GroundTruthPolicy.from_rules(truth)
        lexicon = workload.lexicon()
        skat = SkatEngine(
            matchers=[ExactLabelMatcher(), SynonymMatcher(lexicon)]
        )
        articulation, _ = articulate_with_expert(
            workload.sources[0],
            workload.sources[1],
            policy,
            skat=skat,
            name="mid",
            use_inference=False,
        )
        applied = {str(r) for r in articulation.rules}
        truth_texts = {str(r) for r in truth}
        assert applied <= truth_texts  # perfect precision
        recall = len(applied) / len(truth_texts)
        assert recall > 0.9  # the lexicon covers every variant family


class TestComposition:
    """Experiment COMPOSE: articulations compose with new sources."""

    def make_dealer(self) -> tuple[Ontology, InstanceStore]:
        dealer = Ontology("dealer")
        for term in ("Inventory", "Automobile", "UsedCar", "ListPrice"):
            dealer.add_term(term)
        dealer.add_subclass("Automobile", "Inventory")
        dealer.add_subclass("UsedCar", "Automobile")
        dealer.add_attribute("ListPrice", "Automobile")
        store = InstanceStore(dealer)
        store.add("Lot1", "UsedCar", listprice=900)
        store.add("Lot2", "Automobile", listprice=2500)
        return dealer, store

    def test_second_articulation_spans_three_sources(self) -> None:
        from repro.workloads.paper_example import (
            generate_transport_articulation,
        )

        transport = generate_transport_articulation()
        dealer, _ = self.make_dealer()
        art2 = compose(
            transport,
            dealer,
            parse_rules("dealer:Automobile => transport:Vehicle"),
            name="market",
        )
        # The new articulation references the old one untouched.
        assert art2.sources.keys() == {"transport", "dealer"}
        assert transport.ontology.has_term("Vehicle")
        triples = {(e.source, e.label, e.target) for e in art2.bridges}
        assert ("dealer:Automobile", "SIBridge", "market:Vehicle") in triples

    def test_composition_reuses_prior_work(self) -> None:
        """Incremental cost of adding a third source is far below
        re-articulating everything (§4.2: 'minimal effort')."""
        from repro.workloads.paper_example import (
            generate_transport_articulation,
        )

        transport = generate_transport_articulation()
        base_cost = transport.cost()
        dealer, _ = self.make_dealer()
        art2 = compose(
            transport,
            dealer,
            parse_rules("dealer:Automobile => transport:Vehicle"),
            name="market",
        )
        assert art2.cost() < base_cost
