"""Unit tests for the planner layer: physical plans, pushdown
annotations, the LRU plan cache, and streaming execution stats."""

from __future__ import annotations

import pytest

from repro.core.articulation import Articulation
from repro.kb.backends import SQLiteBackend
from repro.kb.instances import InstanceStore
from repro.query.ast import Query
from repro.query.engine import QueryEngine
from repro.query.planner import (
    PhysicalPlan,
    Planner,
    articulation_fingerprint,
)
from repro.workloads.paper_example import carrier_store, factory_store


@pytest.fixture
def engine(
    transport: Articulation,
    carrier_kb: InstanceStore,
    factory_kb: InstanceStore,
) -> QueryEngine:
    return QueryEngine(
        transport, {"carrier": carrier_kb, "factory": factory_kb}
    )


class TestPhysicalPlan:
    def test_plan_is_an_operator_tree(self, engine: QueryEngine) -> None:
        plan = engine.plan(
            "SELECT price FROM transport:Vehicle WHERE price < 10000"
        )
        assert isinstance(plan, PhysicalPlan)
        assert {p.source for p in plan.pipelines} == {"carrier", "factory"}
        for pipeline in plan.pipelines:
            # no pushdown: predicates stay residual, projection pushes
            assert pipeline.scan.pushed == ()
            assert pipeline.scan.projection == ("price",)
            assert [str(c) for c in pipeline.filter.residual] == [
                "price < 10000"
            ]

    def test_pushdown_annotates_scan_ops(
        self, transport: Articulation
    ) -> None:
        engine = QueryEngine(
            transport,
            {"carrier": carrier_store(), "factory": factory_store()},
            pushdown=True,
        )
        plan = engine.plan(
            "SELECT price FROM transport:Vehicle WHERE price < 10000"
        )
        for pipeline in plan.pipelines:
            assert len(pipeline.scan.pushed) == 1
            # translated into the source's own metric
            assert pipeline.scan.pushed[0].value != 10000
            assert pipeline.filter.residual == ()

    def test_describe_shows_push_project_merge_finalize(
        self, transport: Articulation
    ) -> None:
        engine = QueryEngine(
            transport,
            {"carrier": carrier_store().clone(SQLiteBackend())},
            pushdown=True,
        )
        text = engine.plan(
            "SELECT price FROM transport:Vehicle WHERE price < 10000"
            " ORDER BY price LIMIT 3"
        ).describe()
        assert "scan carrier" in text
        assert "push price <" in text
        assert "project ['price']" in text
        assert "convert price" in text
        assert "merge" in text
        assert "finalize" in text
        assert "limit 3" in text

    def test_select_star_pushes_no_projection(
        self, engine: QueryEngine
    ) -> None:
        plan = engine.plan("SELECT * FROM transport:Vehicle")
        for pipeline in plan.pipelines:
            assert pipeline.scan.projection is None


class TestPlanCache:
    def test_repeated_query_hits_cache(self, engine: QueryEngine) -> None:
        question = "SELECT price FROM transport:Vehicle"
        first = engine.plan(question)
        second = engine.plan(question)
        assert first is second
        info = engine.plan_cache_info()
        assert info.hits == 1
        assert info.misses == 1

    def test_different_queries_miss(self, engine: QueryEngine) -> None:
        engine.plan("SELECT price FROM transport:Vehicle")
        engine.plan("SELECT model FROM transport:Vehicle")
        assert engine.plan_cache_info().misses == 2

    def test_articulation_edit_invalidates(
        self, engine: QueryEngine, transport: Articulation
    ) -> None:
        question = "SELECT price FROM transport:Vehicle"
        first = engine.plan(question)
        # mutate the articulation the engine plans over
        engine.unified.articulation.ontology.add_term("Zeppelin")
        engine.unified.articulation.ontology.add_subclass(
            "Zeppelin", "Vehicle"
        )
        second = engine.plan(question)
        assert second is not first
        assert engine.plan_cache_info().misses == 2

    def test_fingerprint_changes_with_bridges(
        self, transport: Articulation
    ) -> None:
        before = articulation_fingerprint(transport)
        transport.ontology.add_term("Hovercraft")
        assert articulation_fingerprint(transport) != before

    def test_rule_update_under_same_label_invalidates(
        self, transport: Articulation, carrier_kb, factory_kb
    ) -> None:
        """A rate update re-registered under the same label (the churn
        scenario) must not serve plans with the stale conversion."""
        from dataclasses import replace

        engine = QueryEngine(
            transport, {"carrier": carrier_kb, "factory": factory_kb}
        )
        question = "SELECT price FROM transport:Vehicle"
        before = engine.execute(question)
        functions = engine.unified.articulation.functions
        for label, rule in list(functions.items()):
            functions[label] = replace(
                rule,
                fn=lambda x, old=rule.fn: old(x) * 1000,
                expr_text=None,
                inverse_expr_text=None,
            )
        after = engine.execute(question)
        by_id = {r.instance_id: r for r in before}
        changed = [
            r
            for r in after
            if r.get("price") is not None
            and r.get("price") != by_id[r.instance_id].get("price")
        ]
        assert changed, "stale cached plan served obsolete conversions"

    def test_lru_evicts_oldest(self, transport: Articulation) -> None:
        planner = Planner(transport, cache_size=2)
        q1 = Query.over("transport:Vehicle", select=["price"])
        q2 = Query.over("transport:Vehicle", select=["model"])
        q3 = Query.over("transport:Vehicle", select=["owner"])
        planner.plan(q1)
        planner.plan(q2)
        planner.plan(q3)  # evicts q1
        assert planner.cache_info().size == 2
        planner.plan(q1)
        assert planner.cache_info().misses == 4


class TestStreamingExecution:
    def test_aggregate_queries_materialize_one_row(
        self, engine: QueryEngine
    ) -> None:
        rows = engine.execute("SELECT COUNT(*) FROM transport:Vehicle")
        stats = engine.last_stats
        assert rows[0].get("count(*)") == stats.rows_scanned > 1
        assert stats.peak_rows == 1
        assert stats.streamed

    def test_limit_stops_pulling_early(self, engine: QueryEngine) -> None:
        rows = engine.execute("SELECT price FROM transport:Vehicle LIMIT 1")
        stats = engine.last_stats
        assert len(rows) == 1
        assert stats.peak_rows == 1
        # only one instance was ever pulled out of the backends
        assert stats.rows_scanned == 1

    def test_order_by_forces_sort_barrier(
        self, engine: QueryEngine
    ) -> None:
        engine.execute(
            "SELECT price FROM transport:Vehicle ORDER BY price"
        )
        stats = engine.last_stats
        assert not stats.streamed
        assert stats.peak_rows >= stats.rows_out > 1

    def test_streamed_rows_arrive_sorted(self, engine: QueryEngine) -> None:
        rows = engine.execute("SELECT price FROM transport:Vehicle")
        stats = engine.last_stats
        assert stats.streamed
        keys = [(r.source, r.instance_id) for r in rows]
        assert keys == sorted(keys)

    def test_per_source_scan_accounting(self, engine: QueryEngine) -> None:
        engine.execute("SELECT price FROM transport:Vehicle")
        stats = engine.last_stats
        assert set(stats.per_source) == {"carrier", "factory"}
        assert sum(stats.per_source.values()) == stats.rows_scanned


class TestLegacyWrapperCompat:
    def test_fetch_only_wrapper_still_executes(
        self, transport: Articulation, factory_kb: InstanceStore
    ) -> None:
        """Wrappers written against the pre-streaming protocol
        (override fetch, no scan) must keep working end to end."""
        from repro.query.wrappers import SourceWrapper

        store = carrier_store()

        class LegacyWrapper(SourceWrapper):
            name = "carrier"

            def fetch(self, classes, *, include_subclasses=True,
                      predicate=None):
                return store.select(
                    classes,
                    predicate,
                    include_subclasses=include_subclasses,
                )

        engine = QueryEngine(
            transport,
            {"carrier": LegacyWrapper(), "factory": factory_kb},
        )
        rows = engine.execute(
            "SELECT price FROM transport:Vehicle WHERE price < 10000"
        )
        assert {r.source for r in rows} == {"factory"}
        pushed = QueryEngine(
            transport,
            {"carrier": LegacyWrapper(), "factory": factory_kb},
            pushdown=True,
        )
        assert [r.instance_id for r in pushed.execute(
            "SELECT price FROM transport:Vehicle WHERE price < 10000"
        )] == [r.instance_id for r in rows]
