"""Unit tests for the query-language extensions:
ORDER BY, LIMIT, and aggregates."""

from __future__ import annotations

import pytest

from repro.core.articulation import Articulation
from repro.errors import QueryError, QueryParseError
from repro.kb.instances import InstanceStore
from repro.query.ast import Aggregate, Condition, Query
from repro.query.engine import AGGREGATE_ROW_ID, QueryEngine
from repro.query.parser import parse_query
from repro.query.views import ViewCatalog
from repro.workloads.paper_example import DG_PER_EURO, PS_PER_EURO


@pytest.fixture
def engine(
    transport: Articulation,
    carrier_kb: InstanceStore,
    factory_kb: InstanceStore,
) -> QueryEngine:
    return QueryEngine(
        transport, {"carrier": carrier_kb, "factory": factory_kb}
    )


class TestAggregateAst:
    def test_unknown_fn_rejected(self) -> None:
        with pytest.raises(QueryError):
            Aggregate("median", "price")

    def test_star_only_for_count(self) -> None:
        with pytest.raises(QueryError):
            Aggregate("min", "*")
        assert Aggregate("count", "*").label() == "count(*)"

    def test_compute_semantics(self) -> None:
        assert Aggregate("count", "*").compute([1, None, 3]) == 3
        assert Aggregate("count", "x").compute([1, None, 3]) == 2
        assert Aggregate("min", "x").compute([5, 2, 9]) == 2
        assert Aggregate("max", "x").compute([5, 2, 9]) == 9
        assert Aggregate("sum", "x").compute([1, 2, 3]) == 6
        assert Aggregate("avg", "x").compute([2, 4]) == 3.0

    def test_compute_ignores_non_numeric(self) -> None:
        assert Aggregate("min", "x").compute(["a", None, 7]) == 7
        assert Aggregate("avg", "x").compute(["a", None]) is None

    def test_query_rejects_select_plus_aggregates(self) -> None:
        with pytest.raises(QueryError):
            Query.over(
                "t:V", select=["x"], aggregates=[Aggregate("count", "*")]
            )

    def test_negative_limit_rejected(self) -> None:
        with pytest.raises(QueryError):
            Query.over("t:V", limit=-1)


class TestParserExtensions:
    def test_order_by(self) -> None:
        query = parse_query(
            "SELECT price FROM t:V ORDER BY price DESC, model"
        )
        assert query.order_by == (("price", True), ("model", False))

    def test_order_by_asc_keyword(self) -> None:
        query = parse_query("SELECT price FROM t:V ORDER BY price ASC")
        assert query.order_by == (("price", False),)

    def test_limit(self) -> None:
        assert parse_query("SELECT * FROM t:V LIMIT 3").limit == 3

    def test_where_order_limit_together(self) -> None:
        query = parse_query(
            "SELECT price FROM t:V WHERE price > 1 "
            "ORDER BY price LIMIT 2"
        )
        assert query.where == (Condition("price", ">", 1),)
        assert query.order_by == (("price", False),)
        assert query.limit == 2

    def test_aggregates(self) -> None:
        query = parse_query("SELECT COUNT(*), AVG(price) FROM t:V")
        assert [a.label() for a in query.aggregates] == [
            "count(*)",
            "avg(price)",
        ]
        assert query.select == ()

    def test_mixed_projection_rejected(self) -> None:
        with pytest.raises(QueryParseError):
            parse_query("SELECT price, COUNT(*) FROM t:V")

    def test_unknown_aggregate_rejected(self) -> None:
        with pytest.raises(QueryParseError):
            parse_query("SELECT MEDIAN(price) FROM t:V")

    def test_round_trip_with_extensions(self) -> None:
        text = (
            "SELECT price FROM t:V WHERE price < 10 "
            "ORDER BY price DESC LIMIT 4"
        )
        query = parse_query(text)
        assert parse_query(str(query)) == query

    def test_aggregate_round_trip(self) -> None:
        query = parse_query("SELECT COUNT(*), MIN(price) FROM t:V")
        assert parse_query(str(query)) == query


class TestExecution:
    def test_order_by_converted_metric(self, engine: QueryEngine) -> None:
        rows = engine.execute(
            "SELECT price FROM transport:Vehicle ORDER BY price"
        )
        prices = [row.get("price") for row in rows]
        assert prices == sorted(prices)

    def test_order_by_desc_with_limit(self, engine: QueryEngine) -> None:
        rows = engine.execute(
            "SELECT price FROM transport:Vehicle ORDER BY price DESC LIMIT 2"
        )
        assert len(rows) == 2
        all_rows = engine.execute(
            "SELECT price FROM transport:Vehicle ORDER BY price DESC"
        )
        assert [r.instance_id for r in rows] == [
            r.instance_id for r in all_rows[:2]
        ]

    def test_order_by_unselected_attribute(self, engine: QueryEngine) -> None:
        rows = engine.execute(
            "SELECT model FROM carrier:Trucks ORDER BY price DESC"
        )
        # Projection strips price, but the order still reflects it.
        assert set(rows[0].values) == {"model"}
        priced = engine.execute(
            "SELECT price, model FROM carrier:Trucks ORDER BY price DESC"
        )
        assert [r.instance_id for r in rows] == [
            r.instance_id for r in priced
        ]

    def test_order_by_string_attribute(self, engine: QueryEngine) -> None:
        rows = engine.execute(
            "SELECT model FROM carrier:Trucks ORDER BY model"
        )
        models = [r.get("model") for r in rows if r.get("model")]
        assert models == sorted(models)

    def test_rows_missing_order_attribute_sort_last(
        self, engine: QueryEngine
    ) -> None:
        rows = engine.execute(
            "SELECT weight FROM transport:Vehicle ORDER BY weight"
        )
        weights = [r.get("weight") for r in rows]
        tail_none = [w for w in weights if w is None]
        head = [w for w in weights if w is not None]
        assert weights == head + tail_none

    def test_count_star(self, engine: QueryEngine) -> None:
        rows = engine.execute("SELECT COUNT(*) FROM transport:Vehicle")
        assert len(rows) == 1
        row = rows[0]
        assert row.instance_id == AGGREGATE_ROW_ID
        plain = engine.execute("SELECT * FROM transport:Vehicle")
        assert row.get("count(*)") == len(plain)

    def test_aggregates_over_converted_values(
        self, engine: QueryEngine
    ) -> None:
        rows = engine.execute(
            "SELECT MIN(price), MAX(price) FROM transport:Vehicle"
        )
        row = rows[0]
        # Min is factory LineTruck2 (9800 DG), max factory LineTruck1
        # (61000 DG) — both reported in Euro.
        assert row.get("min(price)") == pytest.approx(9800 / DG_PER_EURO)
        assert row.get("max(price)") == pytest.approx(61000 / DG_PER_EURO)

    def test_aggregate_with_where(self, engine: QueryEngine) -> None:
        rows = engine.execute(
            "SELECT COUNT(*) FROM transport:Vehicle WHERE price < 10000"
        )
        # LineTruck2 (4447 EUR) and ProtoVehicle1 (8849 EUR).
        assert rows[0].get("count(*)") == 2

    def test_aggregate_on_empty_result(self, engine: QueryEngine) -> None:
        rows = engine.execute(
            "SELECT COUNT(*), AVG(price) FROM transport:Vehicle "
            "WHERE price < 0"
        )
        assert rows[0].get("count(*)") == 0
        assert rows[0].get("avg(price)") is None


class TestViewsWithExtensions:
    def test_view_answers_ordered_limited_query(
        self, engine: QueryEngine
    ) -> None:
        catalog = ViewCatalog(engine)
        catalog.define("v", "SELECT * FROM transport:Vehicle")
        via_view = catalog.execute(
            "SELECT price FROM transport:Vehicle ORDER BY price LIMIT 2"
        )
        live = engine.execute(
            "SELECT price FROM transport:Vehicle ORDER BY price LIMIT 2"
        )
        assert catalog.hits == 1
        assert [(r.instance_id, r.get("price")) for r in via_view] == [
            (r.instance_id, r.get("price")) for r in live
        ]

    def test_view_answers_aggregate_query(self, engine: QueryEngine) -> None:
        catalog = ViewCatalog(engine)
        catalog.define("v", "SELECT * FROM transport:Vehicle")
        via_view = catalog.execute(
            "SELECT COUNT(*), AVG(price) FROM transport:Vehicle"
        )
        live = engine.execute(
            "SELECT COUNT(*), AVG(price) FROM transport:Vehicle"
        )
        assert catalog.hits == 1
        assert via_view[0].get("count(*)") == live[0].get("count(*)")
        assert via_view[0].get("avg(price)") == pytest.approx(
            live[0].get("avg(price)")
        )
