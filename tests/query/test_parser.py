"""Unit tests for the query language parser and AST."""

from __future__ import annotations

import pytest

from repro.core.rules import TermRef
from repro.errors import QueryError, QueryParseError
from repro.query.ast import Condition, Query
from repro.query.parser import parse_query


class TestConditions:
    def test_operator_validation(self) -> None:
        with pytest.raises(QueryError):
            Condition("price", "~", 5)

    def test_attribute_lowercased(self) -> None:
        assert Condition("Price", "<", 5).attribute == "price"

    @pytest.mark.parametrize(
        ("op", "value", "probe", "expected"),
        [
            ("=", 5, 5, True),
            ("=", 5, 6, False),
            ("!=", 5, 6, True),
            ("<", 5, 4, True),
            ("<=", 5, 5, True),
            (">", 5, 6, True),
            (">=", 5, 4, False),
        ],
    )
    def test_evaluation(self, op, value, probe, expected) -> None:
        assert Condition("x", op, value).evaluate(probe) is expected

    def test_none_never_satisfies(self) -> None:
        assert not Condition("x", "=", None).evaluate(None)

    def test_type_mismatch_is_false(self) -> None:
        assert not Condition("x", "<", 5).evaluate("a string")


class TestQueryAst:
    def test_target_must_be_qualified(self) -> None:
        with pytest.raises(QueryError):
            Query(TermRef(None, "Vehicle"))

    def test_over_constructor(self) -> None:
        query = Query.over("transport:Vehicle", select=["Price"])
        assert query.target == TermRef("transport", "Vehicle")
        assert query.select == ("price",)

    def test_attributes_needed_unions_select_and_where(self) -> None:
        query = Query.over(
            "t:V",
            select=["a"],
            where=[Condition("b", "<", 1)],
        )
        assert query.attributes_needed() == {"a", "b"}

    def test_str_round_trips_through_parser(self) -> None:
        query = Query.over(
            "transport:Vehicle",
            select=["price"],
            where=[Condition("price", "<", 10000)],
        )
        assert parse_query(str(query)) == query


class TestParser:
    def test_select_star(self) -> None:
        query = parse_query("SELECT * FROM transport:Vehicle")
        assert query.select == ()
        assert query.where == ()

    def test_projection_list(self) -> None:
        query = parse_query("SELECT price, model FROM transport:Vehicle")
        assert query.select == ("price", "model")

    def test_where_single(self) -> None:
        query = parse_query(
            "SELECT price FROM transport:Vehicle WHERE price < 10000"
        )
        assert query.where == (Condition("price", "<", 10000),)

    def test_where_and_chain(self) -> None:
        query = parse_query(
            "SELECT owner FROM carrier:Trucks "
            "WHERE model = 'T800' AND price >= 5.5"
        )
        assert query.where == (
            Condition("model", "=", "T800"),
            Condition("price", ">=", 5.5),
        )

    def test_keywords_case_insensitive(self) -> None:
        query = parse_query("select * from t:V where x = 1")
        assert query.target == TermRef("t", "V")

    def test_literal_types(self) -> None:
        query = parse_query(
            "SELECT * FROM t:V WHERE a = 1 AND b = 1.5 AND c = 'two words' "
            'AND d = "quoted" AND e = bare AND f = true'
        )
        values = [c.value for c in query.where]
        assert values == [1, 1.5, "two words", "quoted", "bare", True]

    def test_trailing_semicolon_ok(self) -> None:
        assert parse_query("SELECT * FROM t:V;").target.term == "V"

    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "SELECT FROM t:V",
            "SELECT * FROM Vehicle",  # unqualified
            "SELECT * FROM t:V WHERE",
            "SELECT * FROM t:V WHERE price !! 5",
            "SELECT a, FROM t:V",
            "FROM t:V SELECT *",
        ],
    )
    def test_malformed_queries_raise(self, bad: str) -> None:
        with pytest.raises(QueryParseError):
            parse_query(bad)
