"""Unit tests for automatic mediator derivation (paper §1, §2.2)."""

from __future__ import annotations

import pytest

from repro.core.articulation import Articulation
from repro.formats import idl
from repro.query.mediator import generate_mediator


@pytest.fixture
def spec(transport: Articulation):
    return generate_mediator(transport)


class TestSpecStructure:
    def test_exports_every_articulation_class(self, spec) -> None:
        names = {cls.name for cls in spec.classes}
        assert names == {
            "Vehicle",
            "PassengerCar",
            "Owner",
            "Person",
            "CargoCarrierVehicle",
            "CarsTrucks",
            "Euro",
        }

    def test_sources_listed(self, spec) -> None:
        assert spec.sources == ("carrier", "factory")

    def test_vehicle_scans_match_reformulation(self, spec) -> None:
        vehicle = spec.get("Vehicle")
        assert vehicle is not None
        assert vehicle.scans == {
            "carrier": ("Car",),
            "factory": ("Vehicle",),
        }

    def test_vehicle_attributes_from_both_sources(self, spec) -> None:
        vehicle = spec.get("Vehicle")
        assert vehicle is not None
        # Price (both), weight (factory GoodsVehicle), plus the carrier
        # Car's inherited attributes.
        assert "price" in vehicle.attributes
        assert "weight" in vehicle.attributes

    def test_conversions_documented(self, spec) -> None:
        vehicle = spec.get("Vehicle")
        assert vehicle is not None
        chains = [
            chain
            for chains in vehicle.conversions.values()
            for chain in chains
        ]
        assert any("PSToEuroFn" in chain for chain in chains)
        assert any("DGToEuroFn" in chain for chain in chains)

    def test_internal_structure_becomes_inheritance(self, spec) -> None:
        owner = spec.get("Owner")
        assert owner is not None
        assert owner.superclasses == ("Person",)

    def test_unbridged_class_has_no_scans(self, spec) -> None:
        euro = spec.get("Euro")
        assert euro is not None
        assert euro.scans == {}

    def test_get_unknown_class(self, spec) -> None:
        assert spec.get("Nope") is None


class TestOdlRendering:
    def test_odl_parses_back_as_ontology(self, spec) -> None:
        """The emitted ODL is valid input for our own IDL wrapper."""
        text = spec.to_odl()
        onto = idl.loads(text)
        assert onto.name == "transport"
        for cls in spec.classes:
            assert onto.has_term(cls.name)
        # Inheritance survives the round trip.
        assert onto.graph.has_edge("Owner", "S", "Person")

    def test_odl_contains_mapping_comments(self, spec) -> None:
        text = spec.to_odl()
        assert "// Vehicle <- carrier: Car" in text
        assert "// convert price" in text

    def test_odl_lists_attributes(self, spec) -> None:
        text = spec.to_odl()
        assert "attribute any price;" in text


class TestDerivedMediatorAnswersQueries:
    def test_scan_lists_agree_with_live_planner(
        self, spec, transport: Articulation
    ) -> None:
        """The mediator's static mapping equals what the planner would
        compute at query time — it can drive an external application
        without the Python planner."""
        from repro.query.ast import Query
        from repro.query.reformulate import reformulate

        for cls in spec.classes:
            if not cls.scans:
                continue
            plans = reformulate(
                Query.over(f"transport:{cls.name}"), transport
            )
            live = {plan.source: plan.classes for plan in plans}
            assert live == dict(cls.scans), cls.name


class TestErrorNarrowing:
    def test_unplannable_term_exported_without_scans(self, spec) -> None:
        euro = next(cls for cls in spec.classes if cls.name == "Euro")
        assert euro.scans == {}

    def test_unexpected_reformulate_error_propagates(
        self, transport: Articulation, monkeypatch
    ) -> None:
        """generate_mediator narrows to QueryError: a planner bug (any
        other exception type) must surface instead of silently yielding
        a scan-less mediator class."""
        import repro.query.mediator as mediator_module

        def boom(query, unified):
            raise ValueError("bug in reformulate")

        monkeypatch.setattr(mediator_module, "reformulate", boom)
        with pytest.raises(ValueError, match="bug in reformulate"):
            generate_mediator(transport)
