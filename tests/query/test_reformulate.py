"""Unit tests for query reformulation across the articulation."""

from __future__ import annotations

import pytest

from repro.core.articulation import Articulation
from repro.core.unified import UnifiedOntology
from repro.errors import PlanningError, QueryError
from repro.query.ast import Query
from repro.query.reformulate import SourcePlan, reformulate
from repro.workloads.paper_example import DG_PER_EURO, PS_PER_EURO


def plan_for(plans: list[SourcePlan], source: str) -> SourcePlan:
    by_name = {p.source: p for p in plans}
    assert source in by_name, f"no plan for {source}: {sorted(by_name)}"
    return by_name[source]


class TestClassFanout:
    def test_articulation_target_fans_to_both_sources(
        self, transport: Articulation
    ) -> None:
        plans = reformulate(Query.over("transport:Vehicle"), transport)
        assert {p.source for p in plans} == {"carrier", "factory"}
        assert plan_for(plans, "carrier").classes == ("Car",)
        assert plan_for(plans, "factory").classes == ("Vehicle",)

    def test_redundant_descendants_pruned(
        self, transport: Articulation
    ) -> None:
        """factory:Truck and factory:GoodsVehicle imply transport:Vehicle
        through factory:Vehicle; scanning Vehicle covers them."""
        plans = reformulate(Query.over("transport:Vehicle"), transport)
        assert plan_for(plans, "factory").classes == ("Vehicle",)

    def test_source_target_includes_cross_source_specializations(
        self, transport: Articulation
    ) -> None:
        """A query on carrier:Trucks must also reach factory's trucks
        via transport:CargoCarrierVehicle (the conjunction rule)."""
        plans = reformulate(Query.over("carrier:Trucks"), transport)
        factory_plan = plan_for(plans, "factory")
        assert set(factory_plan.classes) == {"GoodsVehicle"}
        carrier_plan = plan_for(plans, "carrier")
        assert carrier_plan.classes == ("Trucks",)

    def test_disjunction_target(self, transport: Articulation) -> None:
        plans = reformulate(Query.over("transport:CarsTrucks"), transport)
        carrier_plan = plan_for(plans, "carrier")
        assert set(carrier_plan.classes) == {"Cars", "Trucks"}
        factory_plan = plan_for(plans, "factory")
        assert factory_plan.classes == ("Vehicle",)

    def test_unbridged_target_has_no_plan(
        self, transport: Articulation
    ) -> None:
        with pytest.raises(PlanningError):
            reformulate(Query.over("transport:Euro"), transport)

    def test_unknown_target_term(self, transport: Articulation) -> None:
        with pytest.raises(QueryError):
            reformulate(Query.over("transport:Ghost"), transport)

    def test_unknown_target_ontology(self, transport: Articulation) -> None:
        with pytest.raises(PlanningError):
            reformulate(Query.over("nowhere:Vehicle"), transport)

    def test_accepts_unified_ontology(self, transport: Articulation) -> None:
        unified = UnifiedOntology(transport)
        plans = reformulate(Query.over("transport:Vehicle"), unified)
        assert len(plans) == 2


class TestConversions:
    def test_both_sources_convert_price_to_euro(
        self, transport: Articulation
    ) -> None:
        query = Query.over("transport:Vehicle", select=["price"])
        plans = reformulate(query, transport)
        carrier_conv = plan_for(plans, "carrier").conversions["price"]
        assert carrier_conv.unit_from == "carrier:PoundSterling"
        assert carrier_conv.unit_to == "transport:Euro"
        assert carrier_conv.apply(PS_PER_EURO) == pytest.approx(1.0)
        factory_conv = plan_for(plans, "factory").conversions["price"]
        assert factory_conv.apply(DG_PER_EURO) == pytest.approx(1.0)

    def test_two_hop_conversion_into_source_metric(
        self, transport: Articulation
    ) -> None:
        """Querying the carrier's trucks pulls factory prices through
        DG -> Euro -> PS (two functional bridges composed)."""
        query = Query.over("carrier:Trucks", select=["price"])
        plans = reformulate(query, transport)
        factory_conv = plan_for(plans, "factory").conversions["price"]
        assert factory_conv.unit_from == "factory:DutchGuilders"
        assert factory_conv.unit_to == "carrier:PoundSterling"
        assert len(factory_conv.chain) == 2
        guilders = 100.0
        expected = guilders / DG_PER_EURO * PS_PER_EURO
        assert factory_conv.apply(guilders) == pytest.approx(expected)

    def test_no_conversion_for_own_metric(
        self, transport: Articulation
    ) -> None:
        query = Query.over("carrier:Trucks", select=["price"])
        plans = reformulate(query, transport)
        assert plan_for(plans, "carrier").conversions == {}

    def test_non_numeric_values_pass_through(
        self, transport: Articulation
    ) -> None:
        query = Query.over("transport:Vehicle", select=["price"])
        plans = reformulate(query, transport)
        conversion = plan_for(plans, "carrier").conversions["price"]
        assert conversion.apply("N/A") == "N/A"
        assert conversion.apply(True) is True

    def test_where_attributes_also_converted(
        self, transport: Articulation
    ) -> None:
        from repro.query.ast import Condition

        query = Query.over(
            "transport:Vehicle", where=[Condition("price", "<", 100)]
        )
        plans = reformulate(query, transport)
        assert "price" in plan_for(plans, "carrier").conversions

    def test_unconvertible_attribute_left_raw(
        self, transport: Articulation
    ) -> None:
        query = Query.over("transport:Vehicle", select=["weight"])
        plans = reformulate(query, transport)
        assert plan_for(plans, "factory").conversions == {}

    def test_source_plan_convert_helper(
        self, transport: Articulation
    ) -> None:
        query = Query.over("transport:Vehicle", select=["price"])
        plans = reformulate(query, transport)
        carrier_plan = plan_for(plans, "carrier")
        assert carrier_plan.convert("price", PS_PER_EURO) == pytest.approx(1.0)
        assert carrier_plan.convert("weight", 10) == 10
