"""Unit tests for answering queries using materialized views."""

from __future__ import annotations

import pytest

from repro.core.articulation import Articulation
from repro.errors import QueryError
from repro.kb.instances import InstanceStore
from repro.query.ast import Condition
from repro.query.engine import QueryEngine
from repro.query.views import MaterializedView, ViewCatalog, _condition_implies


@pytest.fixture
def engine(
    transport: Articulation,
    carrier_kb: InstanceStore,
    factory_kb: InstanceStore,
) -> QueryEngine:
    return QueryEngine(
        transport, {"carrier": carrier_kb, "factory": factory_kb}
    )


@pytest.fixture
def catalog(engine: QueryEngine) -> ViewCatalog:
    return ViewCatalog(engine)


class TestConditionImplication:
    def test_equal_conditions(self) -> None:
        assert _condition_implies(
            Condition("x", "<", 5), Condition("x", "<", 5)
        )

    def test_tighter_upper_bound_implies_looser(self) -> None:
        assert _condition_implies(
            Condition("x", "<", 5), Condition("x", "<", 10)
        )
        assert not _condition_implies(
            Condition("x", "<", 10), Condition("x", "<", 5)
        )

    def test_equality_implies_range(self) -> None:
        assert _condition_implies(
            Condition("x", "=", 3), Condition("x", "<", 10)
        )

    def test_lower_bounds(self) -> None:
        assert _condition_implies(
            Condition("x", ">", 10), Condition("x", ">", 5)
        )
        assert _condition_implies(
            Condition("x", ">=", 10), Condition("x", ">", 5)
        )

    def test_different_attributes_never_imply(self) -> None:
        assert not _condition_implies(
            Condition("x", "<", 5), Condition("y", "<", 10)
        )

    def test_string_equality(self) -> None:
        assert _condition_implies(
            Condition("m", "=", "T800"), Condition("m", "=", "T800")
        )
        assert not _condition_implies(
            Condition("m", "=", "T800"), Condition("m", "=", "T900")
        )


class TestViewLifecycle:
    def test_define_materializes(self, catalog: ViewCatalog) -> None:
        view = catalog.define("vehicles", "SELECT * FROM transport:Vehicle")
        assert not view.stale
        assert view.rows
        assert view.refresh_count == 1

    def test_duplicate_name_rejected(self, catalog: ViewCatalog) -> None:
        catalog.define("v", "SELECT * FROM transport:Vehicle")
        with pytest.raises(QueryError):
            catalog.define("v", "SELECT * FROM transport:Vehicle")

    def test_invalidate_and_refresh(self, catalog: ViewCatalog) -> None:
        catalog.define("v", "SELECT * FROM transport:Vehicle")
        catalog.invalidate("v")
        assert catalog.views["v"].stale
        assert catalog.refresh_stale() == 1
        assert not catalog.views["v"].stale

    def test_invalidate_unknown_raises(self, catalog: ViewCatalog) -> None:
        with pytest.raises(QueryError):
            catalog.invalidate("ghost")

    def test_invalidate_all(self, catalog: ViewCatalog) -> None:
        catalog.define("v1", "SELECT * FROM transport:Vehicle")
        catalog.define("v2", "SELECT * FROM carrier:Trucks")
        catalog.invalidate()
        assert all(v.stale for v in catalog.views.values())


class TestAnswering:
    def test_same_query_hits_view(self, catalog: ViewCatalog) -> None:
        catalog.define("v", "SELECT * FROM transport:Vehicle")
        live = catalog.engine.execute("SELECT price FROM transport:Vehicle")
        answered = catalog.execute("SELECT price FROM transport:Vehicle")
        assert catalog.hits == 1
        assert [(r.source, r.instance_id) for r in answered] == [
            (r.source, r.instance_id) for r in live
        ]

    def test_residual_predicate_applied_on_view(
        self, catalog: ViewCatalog
    ) -> None:
        catalog.define("v", "SELECT * FROM transport:Vehicle")
        answered = catalog.execute(
            "SELECT price FROM transport:Vehicle WHERE price < 10000"
        )
        live = catalog.engine.execute(
            "SELECT price FROM transport:Vehicle WHERE price < 10000"
        )
        assert catalog.hits == 1
        assert {r.instance_id for r in answered} == {
            r.instance_id for r in live
        }

    def test_view_with_predicate_only_answers_contained_queries(
        self, catalog: ViewCatalog
    ) -> None:
        catalog.define(
            "cheap", "SELECT * FROM transport:Vehicle WHERE price < 10000"
        )
        catalog.execute(
            "SELECT price FROM transport:Vehicle WHERE price < 5000"
        )
        assert catalog.hits == 1
        catalog.execute("SELECT price FROM transport:Vehicle")
        assert catalog.misses == 1  # wider query cannot use the view

    def test_specialized_class_answered_by_general_view(
        self, catalog: ViewCatalog
    ) -> None:
        catalog.define("v", "SELECT * FROM transport:Vehicle")
        answered = catalog.execute("SELECT price FROM carrier:Car")
        assert catalog.hits == 1
        assert answered  # FleetCar1 comes back from the view

    def test_general_query_not_answered_by_specialized_view(
        self, catalog: ViewCatalog
    ) -> None:
        catalog.define("v", "SELECT * FROM carrier:Trucks")
        catalog.execute("SELECT price FROM transport:Vehicle")
        assert catalog.misses == 1

    def test_stale_view_is_skipped(self, catalog: ViewCatalog) -> None:
        catalog.define("v", "SELECT * FROM transport:Vehicle")
        catalog.invalidate("v")
        catalog.execute("SELECT price FROM transport:Vehicle")
        assert catalog.misses == 1

    def test_view_reflects_source_updates_after_refresh(
        self,
        engine: QueryEngine,
        carrier_kb: InstanceStore,
    ) -> None:
        catalog = ViewCatalog(engine)
        catalog.define("v", "SELECT * FROM carrier:Trucks")
        before = len(catalog.execute("SELECT * FROM carrier:Trucks"))
        carrier_kb.add("HaulTruck3", "Trucks", price=100, model="T100")
        catalog.invalidate("v")
        catalog.refresh_stale()
        after = len(catalog.execute("SELECT * FROM carrier:Trucks"))
        assert after == before + 1
