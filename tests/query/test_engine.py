"""Unit tests for query planning and execution."""

from __future__ import annotations

import pytest

from repro.core.articulation import Articulation
from repro.errors import PlanningError
from repro.kb.instances import InstanceStore
from repro.query.engine import QueryEngine
from repro.query.wrappers import InstanceStoreWrapper
from repro.workloads.paper_example import DG_PER_EURO, PS_PER_EURO


@pytest.fixture
def engine(
    transport: Articulation,
    carrier_kb: InstanceStore,
    factory_kb: InstanceStore,
) -> QueryEngine:
    return QueryEngine(
        transport, {"carrier": carrier_kb, "factory": factory_kb}
    )


class TestPlanning:
    def test_plan_covers_both_sources(self, engine: QueryEngine) -> None:
        plan = engine.plan("SELECT price FROM transport:Vehicle")
        assert {p.source for p in plan.source_plans} == {
            "carrier",
            "factory",
        }

    def test_plan_describe_mentions_conversions(
        self, engine: QueryEngine
    ) -> None:
        plan = engine.plan("SELECT price FROM transport:Vehicle")
        text = plan.describe()
        assert "PSToEuroFn" in text
        assert "scan carrier" in text

    def test_plan_without_registered_store_fails(
        self, transport: Articulation, carrier_kb: InstanceStore
    ) -> None:
        engine = QueryEngine(transport, {})
        with pytest.raises(PlanningError):
            engine.plan("SELECT * FROM transport:Vehicle")

    def test_plan_with_partial_stores_uses_what_exists(
        self, transport: Articulation, carrier_kb: InstanceStore
    ) -> None:
        engine = QueryEngine(transport, {"carrier": carrier_kb})
        plan = engine.plan("SELECT * FROM transport:Vehicle")
        assert [p.source for p in plan.source_plans] == ["carrier"]


class TestExecution:
    def test_cross_source_answers_in_euro(self, engine: QueryEngine) -> None:
        rows = engine.execute("SELECT price FROM transport:Vehicle")
        by_id = {row.instance_id: row for row in rows}
        # carrier FleetCar1: 7200 PS -> EUR
        assert by_id["FleetCar1"].get("price") == pytest.approx(
            7200 / PS_PER_EURO
        )
        # factory ProtoVehicle1: 19500 DG -> EUR
        assert by_id["ProtoVehicle1"].get("price") == pytest.approx(
            19500 / DG_PER_EURO
        )

    def test_predicates_evaluate_in_target_metric(
        self, engine: QueryEngine
    ) -> None:
        rows = engine.execute(
            "SELECT price FROM transport:Vehicle WHERE price < 10000"
        )
        ids = {row.instance_id for row in rows}
        # 7200 PS ~ 10125 EUR: excluded. 19500 DG ~ 8849 EUR: included.
        assert "FleetCar1" not in ids
        assert "ProtoVehicle1" in ids
        assert "LineTruck2" in ids

    def test_query_on_source_class_pulls_other_source(
        self, engine: QueryEngine
    ) -> None:
        rows = engine.execute("SELECT price FROM carrier:Trucks")
        sources = {row.source for row in rows}
        assert sources == {"carrier", "factory"}
        by_id = {row.instance_id: row for row in rows}
        # factory LineTruck1 61000 DG -> PS via Euro.
        expected = 61000 / DG_PER_EURO * PS_PER_EURO
        assert by_id["LineTruck1"].get("price") == pytest.approx(expected)
        # carrier trucks stay in their own metric.
        assert by_id["HaulTruck1"].get("price") == 21500

    def test_subclass_closure_within_source(
        self, engine: QueryEngine
    ) -> None:
        rows = engine.execute("SELECT * FROM carrier:Trucks")
        factory_ids = {
            row.instance_id for row in rows if row.source == "factory"
        }
        # GoodsVehicle closure picks up Trucks below it.
        assert factory_ids == {"GoodsVan1", "LineTruck1", "LineTruck2"}

    def test_select_star_returns_all_attributes(
        self, engine: QueryEngine
    ) -> None:
        rows = engine.execute("SELECT * FROM carrier:Trucks")
        haul = next(r for r in rows if r.instance_id == "HaulTruck1")
        assert set(haul.values) >= {"price", "owner", "model"}

    def test_projection_limits_attributes(self, engine: QueryEngine) -> None:
        rows = engine.execute("SELECT model FROM carrier:Trucks")
        haul = next(r for r in rows if r.instance_id == "HaulTruck1")
        assert set(haul.values) == {"model"}

    def test_string_predicate(self, engine: QueryEngine) -> None:
        rows = engine.execute(
            "SELECT model FROM carrier:Trucks WHERE model = T800"
        )
        assert [r.instance_id for r in rows] == ["HaulTruck1"]

    def test_rows_sorted_and_deduplicated(self, engine: QueryEngine) -> None:
        rows = engine.execute("SELECT * FROM transport:Vehicle")
        keys = [(r.source, r.instance_id) for r in rows]
        assert keys == sorted(keys)
        assert len(keys) == len(set(keys))

    def test_missing_attribute_fails_predicate(
        self, engine: QueryEngine
    ) -> None:
        rows = engine.execute(
            "SELECT weight FROM transport:Vehicle WHERE weight > 0"
        )
        assert {r.source for r in rows} == {"factory"}


class TestWrapperAccounting:
    def test_fetch_count_increments(
        self,
        transport: Articulation,
        carrier_kb: InstanceStore,
        factory_kb: InstanceStore,
    ) -> None:
        carrier_wrapper = InstanceStoreWrapper(carrier_kb)
        engine = QueryEngine(
            transport,
            {"carrier": carrier_wrapper, "factory": factory_kb},
        )
        engine.execute("SELECT * FROM transport:Vehicle")
        engine.execute("SELECT * FROM transport:Vehicle")
        assert carrier_wrapper.fetch_count == 2
