"""Unit tests for predicate pushdown through conversion functions."""

from __future__ import annotations

import pytest

from repro.core.articulation import Articulation
from repro.core.rules import FunctionalRule, TermRef
from repro.kb.instances import InstanceStore
from repro.query.ast import Condition, Query
from repro.query.engine import QueryEngine
from repro.query.pushdown import push_condition, pushable, source_predicate
from repro.query.reformulate import Conversion, reformulate
from repro.query.wrappers import InstanceStoreWrapper
from repro.workloads.paper_example import (
    PS_PER_EURO,
    carrier_store,
    factory_store,
)


def carrier_price_plan(transport: Articulation, query: Query):
    plans = reformulate(query, transport)
    return next(p for p in plans if p.source == "carrier")


class TestConversionInverse:
    def test_invertible_chain(self, transport: Articulation) -> None:
        query = Query.over("transport:Vehicle", select=["price"])
        plan = carrier_price_plan(transport, query)
        conversion = plan.conversions["price"]
        assert conversion.invertible
        assert conversion.apply_inverse(1.0) == pytest.approx(PS_PER_EURO)
        assert conversion.is_increasing()

    def test_two_hop_inverse(self, transport: Articulation) -> None:
        query = Query.over("carrier:Trucks", select=["price"])
        plans = reformulate(query, transport)
        factory_plan = next(p for p in plans if p.source == "factory")
        conversion = factory_plan.conversions["price"]
        assert conversion.invertible
        value = conversion.apply(500.0)
        assert conversion.apply_inverse(value) == pytest.approx(500.0)

    def test_decreasing_conversion_flips_operator(self) -> None:
        decreasing = Conversion(
            "temp",
            "a:U",
            "b:V",
            (
                FunctionalRule(
                    "Neg",
                    TermRef("a", "U"),
                    TermRef("b", "V"),
                    fn=lambda x: -x,
                    inverse=lambda x: -x,
                ),
            ),
        )

        class FakePlan:
            conversions = {"temp": decreasing}

        condition = Condition("temp", "<", 5)
        pushed = push_condition(condition, FakePlan())  # type: ignore[arg-type]
        assert pushed.op == ">"
        assert pushed.value == pytest.approx(-5.0)


class TestPushability:
    def test_range_ops_push(self, transport: Articulation) -> None:
        query = Query.over(
            "transport:Vehicle", where=[Condition("price", "<", 100)]
        )
        plan = carrier_price_plan(transport, query)
        assert pushable(query.where[0], plan)

    def test_equality_never_pushes_through_conversion(
        self, transport: Articulation
    ) -> None:
        query = Query.over(
            "transport:Vehicle", where=[Condition("price", "=", 100)]
        )
        plan = carrier_price_plan(transport, query)
        assert not pushable(query.where[0], plan)

    def test_unconverted_attribute_trivially_pushes(
        self, transport: Articulation
    ) -> None:
        query = Query.over(
            "transport:Vehicle", where=[Condition("model", "=", "T800")]
        )
        plan = carrier_price_plan(transport, query)
        assert pushable(query.where[0], plan)

    def test_non_numeric_constant_does_not_push(
        self, transport: Articulation
    ) -> None:
        query = Query.over(
            "transport:Vehicle", where=[Condition("price", "<", "cheap")]
        )
        plan = carrier_price_plan(transport, query)
        assert not pushable(query.where[0], plan)

    def test_source_predicate_splits_residual(
        self, transport: Articulation
    ) -> None:
        query = Query.over(
            "transport:Vehicle",
            where=[
                Condition("price", "<", 10000),
                Condition("price", "=", 42),
            ],
        )
        plan = carrier_price_plan(transport, query)
        predicate, residual = source_predicate(query, plan)
        assert predicate is not None
        assert residual == (Condition("price", "=", 42),)


class TestEndToEndEquivalence:
    @pytest.fixture
    def stores(self) -> dict[str, InstanceStore]:
        return {"carrier": carrier_store(), "factory": factory_store()}

    @pytest.mark.parametrize(
        "question",
        [
            "SELECT price FROM transport:Vehicle WHERE price < 10000",
            "SELECT price FROM transport:Vehicle WHERE price >= 10000",
            "SELECT price FROM carrier:Trucks WHERE price < 20000",
            "SELECT price FROM transport:Vehicle "
            "WHERE price > 4000 AND price <= 9000",
            "SELECT model FROM carrier:Trucks WHERE model = T800",
            "SELECT COUNT(*) FROM transport:Vehicle WHERE price < 10000",
        ],
    )
    def test_pushdown_equals_plain_execution(
        self, transport: Articulation, stores, question
    ) -> None:
        plain = QueryEngine(transport, stores)
        pushed = QueryEngine(transport, stores, pushdown=True)
        rows_plain = plain.execute(question)
        rows_pushed = pushed.execute(question)
        assert [
            (r.source, r.instance_id, sorted(r.values.items()))
            for r in rows_plain
        ] == [
            (r.source, r.instance_id, sorted(r.values.items()))
            for r in rows_pushed
        ]

    def test_pushdown_reduces_fetched_instances(
        self, transport: Articulation
    ) -> None:
        carrier_wrapper = InstanceStoreWrapper(carrier_store())
        factory_wrapper = InstanceStoreWrapper(factory_store())
        engine = QueryEngine(
            transport,
            {"carrier": carrier_wrapper, "factory": factory_wrapper},
            pushdown=True,
        )
        engine.execute(
            "SELECT price FROM transport:Vehicle WHERE price < 5000"
        )
        pushed_total = (
            carrier_wrapper.fetched_instances
            + factory_wrapper.fetched_instances
        )

        carrier_plain = InstanceStoreWrapper(carrier_store())
        factory_plain = InstanceStoreWrapper(factory_store())
        plain = QueryEngine(
            transport,
            {"carrier": carrier_plain, "factory": factory_plain},
        )
        plain.execute(
            "SELECT price FROM transport:Vehicle WHERE price < 5000"
        )
        plain_total = (
            carrier_plain.fetched_instances
            + factory_plain.fetched_instances
        )
        assert pushed_total < plain_total
