"""Unit tests for the external-representation wrappers (paper §2.1)."""

from __future__ import annotations

import pytest

from repro.core.articulation import Articulation
from repro.core.ontology import Ontology
from repro.errors import FormatError
from repro.formats import adjacency, dot, idl, rdf, xmlfmt


class TestAdjacency:
    def test_load_basic(self) -> None:
        onto = adjacency.loads(
            """
            ontology carrier
            Car -S-> Cars
            Price -A-> Cars
            MyCar -I-> Cars
            Car -drivenBy-> Driver
            """
        )
        assert onto.name == "carrier"
        assert onto.graph.has_edge("Car", "S", "Cars")
        assert onto.graph.has_edge("Car", "drivenBy", "Driver")

    def test_term_lines_and_comments(self) -> None:
        onto = adjacency.loads(
            """
            # a comment
            term Lonely
            A -S-> B   # trailing comment
            """
        )
        assert onto.has_term("Lonely")
        assert onto.graph.has_edge("A", "S", "B")

    def test_name_override(self) -> None:
        onto = adjacency.loads("ontology x\nA -S-> B", name="y")
        assert onto.name == "y"

    def test_header_must_come_first(self) -> None:
        with pytest.raises(FormatError):
            adjacency.loads("A -S-> B\nontology late")

    def test_bad_line_raises_with_lineno(self) -> None:
        with pytest.raises(FormatError, match="line 2"):
            adjacency.loads("A -S-> B\nthis is not a line")

    def test_round_trip(self, carrier: Ontology) -> None:
        rebuilt = adjacency.loads(adjacency.dumps(carrier))
        assert rebuilt.same_structure(carrier)
        assert rebuilt.name == carrier.name

    def test_file_round_trip(self, tmp_path, factory: Ontology) -> None:
        path = tmp_path / "factory.adj"
        adjacency.dump(factory, path)
        assert adjacency.load(path).same_structure(factory)


class TestXml:
    def test_flat_form_round_trip(self, carrier: Ontology) -> None:
        rebuilt = xmlfmt.loads(xmlfmt.dumps(carrier))
        assert rebuilt.same_structure(carrier)
        assert rebuilt.name == carrier.name

    def test_flat_form_requires_ontology_root(self) -> None:
        with pytest.raises(FormatError):
            xmlfmt.loads("<nope/>")

    def test_flat_form_rejects_unknown_elements(self) -> None:
        with pytest.raises(FormatError):
            xmlfmt.loads("<ontology><mystery/></ontology>")

    def test_flat_form_validates_attributes(self) -> None:
        with pytest.raises(FormatError):
            xmlfmt.loads('<ontology><relationship source="A"/></ontology>')
        with pytest.raises(FormatError):
            xmlfmt.loads("<ontology><term/></ontology>")

    def test_malformed_xml_raises(self) -> None:
        with pytest.raises(FormatError):
            xmlfmt.loads("<ontology><term")

    def test_nested_document_form(self) -> None:
        onto = xmlfmt.loads_nested(
            """
            <carrier>
              <Cars>
                <Car/>
                <SUV/>
              </Cars>
            </carrier>
            """
        )
        assert onto.name == "carrier"
        assert onto.graph.has_edge("Car", "S", "Cars")
        assert onto.graph.has_edge("SUV", "S", "Cars")

    def test_nested_repeated_tags_merge(self) -> None:
        onto = xmlfmt.loads_nested(
            "<o><A><B/></A><C><B/></C></o>"
        )
        assert onto.term_count() == 3
        assert onto.graph.has_edge("B", "S", "A")
        assert onto.graph.has_edge("B", "S", "C")

    def test_nested_custom_relation(self) -> None:
        onto = xmlfmt.loads_nested(
            "<o><Car><Price/></Car></o>", nested_relation="AttributeOf"
        )
        assert onto.graph.has_edge("Price", "A", "Car")

    def test_file_round_trip(self, tmp_path, factory: Ontology) -> None:
        path = tmp_path / "factory.xml"
        xmlfmt.dump(factory, path)
        assert xmlfmt.load(path).same_structure(factory)


class TestIdl:
    SPEC = """
    module carrier {
      interface Transportation {};
      interface Carrier : Transportation {};
      interface Person {};
      interface Cars : Carrier {
        attribute float price;
        attribute Person owner;
      };
    };
    """

    def test_interfaces_become_terms(self) -> None:
        onto = idl.loads(self.SPEC)
        assert onto.name == "carrier"
        for term in ("Transportation", "Carrier", "Cars", "Person"):
            assert onto.has_term(term)

    def test_inheritance_becomes_subclass(self) -> None:
        onto = idl.loads(self.SPEC)
        assert onto.graph.has_edge("Carrier", "S", "Transportation")
        assert onto.graph.has_edge("Cars", "S", "Carrier")

    def test_attributes_become_attribute_terms(self) -> None:
        onto = idl.loads(self.SPEC)
        assert onto.graph.has_edge("Price", "A", "Cars")
        assert onto.graph.has_edge("Owner", "A", "Cars")

    def test_interface_typed_attribute_links_type(self) -> None:
        onto = idl.loads(self.SPEC)
        assert onto.graph.has_edge("Owner", "typedAs", "Person")

    def test_comments_stripped(self) -> None:
        onto = idl.loads(
            "// leading\nmodule m { /* block */ interface X {}; };"
        )
        assert onto.has_term("X")

    def test_multiple_inheritance(self) -> None:
        onto = idl.loads(
            "module m { interface A {}; interface B {}; "
            "interface C : A, B {}; };"
        )
        assert onto.graph.has_edge("C", "S", "A")
        assert onto.graph.has_edge("C", "S", "B")

    def test_undeclared_base_raises(self) -> None:
        with pytest.raises(FormatError):
            idl.loads("module m { interface C : Ghost {}; };")

    def test_duplicate_interface_raises(self) -> None:
        with pytest.raises(FormatError):
            idl.loads("module m { interface A {}; interface A {}; };")

    def test_no_interfaces_raises(self) -> None:
        with pytest.raises(FormatError):
            idl.loads("module m { };")

    def test_dumps_round_trips_hierarchy(self) -> None:
        onto = idl.loads(self.SPEC)
        text = idl.dumps(onto)
        rebuilt = idl.loads(text)
        s_edges = {
            (e.source, e.target)
            for e in onto.graph.edges()
            if e.label == "S"
        }
        rebuilt_s = {
            (e.source, e.target)
            for e in rebuilt.graph.edges()
            if e.label == "S"
        }
        assert s_edges == rebuilt_s


class TestRdf:
    def test_round_trip(self, carrier: Ontology) -> None:
        rebuilt = rdf.loads(rdf.dumps(carrier))
        assert rebuilt.same_structure(carrier)
        assert rebuilt.name == carrier.name

    def test_isolated_terms_survive_round_trip(self) -> None:
        onto = Ontology("o")
        onto.add_term("Lonely")
        onto.add_term("A")
        onto.add_term("B")
        onto.relate("A", "S", "B")
        text = rdf.dumps(onto)
        assert "isolated-term" in text
        # Comments are skipped on load; only connected terms return.
        rebuilt = rdf.loads(text)
        assert rebuilt.has_term("A")
        assert not rebuilt.has_term("Lonely")

    def test_mixed_namespaces_rejected_for_ontology(self) -> None:
        with pytest.raises(FormatError):
            rdf.loads("<a:X> <S> <b:Y> .")

    def test_mixed_namespaces_as_graph(self) -> None:
        graph = rdf.loads_graph("<a:X> <S> <b:Y> .")
        assert graph.has_edge("a:X", "S", "b:Y")
        assert graph.label("a:X") == "X"

    def test_malformed_triple_raises(self) -> None:
        with pytest.raises(FormatError, match="line 1"):
            rdf.loads("this is not a triple")

    def test_graph_dump(self, transport: Articulation) -> None:
        text = rdf.dumps_graph(transport.unified_graph())
        graph = rdf.loads_graph(text)
        assert graph.edge_count() == transport.unified_graph().edge_count()


class TestDot:
    def test_ontology_dot_contains_all_terms(self, carrier: Ontology) -> None:
        text = dot.ontology_to_dot(carrier)
        assert text.startswith("digraph")
        for term in carrier.terms():
            assert f'"{term}"' in text

    def test_articulation_dot_has_clusters_and_bridges(
        self, transport: Articulation
    ) -> None:
        text = dot.articulation_to_dot(transport)
        assert "subgraph cluster_0" in text
        assert '"carrier:Car" -> "transport:Vehicle"' in text

    def test_quote_escaping(self) -> None:
        onto = Ontology("o")
        onto.add_term('Weird"Name')
        text = dot.ontology_to_dot(onto)
        assert '\\"' in text

    def test_write_dot_dispatches(
        self, tmp_path, carrier: Ontology, transport: Articulation
    ) -> None:
        p1 = tmp_path / "o.dot"
        p2 = tmp_path / "a.dot"
        dot.write_dot(carrier, p1)
        dot.write_dot(transport, p2)
        assert p1.read_text().startswith("digraph")
        assert "cluster" in p2.read_text()
