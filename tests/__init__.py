"""Test suite package (needed so property tests can use relative imports)."""
