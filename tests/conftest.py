"""Shared fixtures: the paper's Fig. 2 world, built fresh per test."""

from __future__ import annotations

import pytest

from repro.core.articulation import Articulation
from repro.core.ontology import Ontology
from repro.core.rules import ArticulationRuleSet
from repro.kb.instances import InstanceStore
from repro.workloads.paper_example import (
    carrier_ontology,
    carrier_store,
    factory_ontology,
    factory_store,
    generate_transport_articulation,
    paper_rules,
)


@pytest.fixture
def carrier() -> Ontology:
    return carrier_ontology()


@pytest.fixture
def factory() -> Ontology:
    return factory_ontology()


@pytest.fixture
def rules() -> ArticulationRuleSet:
    return paper_rules()


@pytest.fixture
def transport() -> Articulation:
    return generate_transport_articulation()


@pytest.fixture
def carrier_kb() -> InstanceStore:
    return carrier_store()


@pytest.fixture
def factory_kb() -> InstanceStore:
    return factory_store()


@pytest.fixture
def tiny() -> Ontology:
    """A minimal hand-built ontology for focused unit tests."""
    onto = Ontology("tiny")
    for term in ("Animal", "Dog", "Cat", "Name"):
        onto.add_term(term)
    onto.add_subclass("Dog", "Animal")
    onto.add_subclass("Cat", "Animal")
    onto.add_attribute("Name", "Animal")
    return onto
