"""Unit tests for the viewer: rendering and the expert session."""

from __future__ import annotations

import pytest

from repro.core.articulation import Articulation
from repro.core.ontology import Ontology
from repro.errors import OnionError
from repro.viewer.render import (
    render_articulation,
    render_hierarchy,
    render_ontology,
)
from repro.viewer.session import ExpertSession


class TestRenderHierarchy:
    def test_tree_shape(self, carrier: Ontology) -> None:
        text = render_hierarchy(carrier)
        lines = text.splitlines()
        assert lines[0] == "carrier"
        assert any("+- Transportation" in line for line in lines)
        # Car is indented under Cars under Carrier.
        car_line = next(line for line in lines if line.endswith("+- Car"))
        assert car_line.startswith("      ")

    def test_multi_parent_marker(self, factory: Ontology) -> None:
        text = render_hierarchy(factory)
        # GoodsVehicle appears under both Vehicle and CargoCarrier; the
        # second occurrence carries a star.
        assert text.count("+- GoodsVehicle") == 2
        assert "+- GoodsVehicle *" in text

    def test_cyclic_terms_still_listed(self) -> None:
        onto = Ontology("o")
        onto.add_term("A")
        onto.add_term("B")
        onto.relate("A", "S", "B")
        onto.relate("B", "S", "A")
        text = render_hierarchy(onto)
        assert "(cyclic)" in text

    def test_custom_relation(self, carrier: Ontology) -> None:
        text = render_hierarchy(carrier, relation="AttributeOf")
        assert "carrier" in text


class TestRenderSummaries:
    def test_render_ontology_counts(self, carrier: Ontology) -> None:
        text = render_ontology(carrier)
        assert f"{carrier.term_count()} terms" in text
        assert "other relationships:" in text
        assert "Car -drivenBy-> Driver" in text

    def test_render_articulation_sections(
        self, transport: Articulation
    ) -> None:
        text = render_articulation(transport)
        assert "articulation 'transport'" in text
        assert "bridges (17):" in text
        assert "conversion functions:" in text
        assert "PSToEuroFn()" in text
        assert "carrier:Car -SIBridge-> transport:Vehicle" in text


class TestExpertSession:
    @pytest.fixture
    def session(self, carrier: Ontology, factory: Ontology) -> ExpertSession:
        session = ExpertSession(articulation_name="transport")
        session.import_ontology(carrier)
        session.import_ontology(factory)
        return session

    def test_import_duplicate_rejected(
        self, session: ExpertSession, carrier: Ontology
    ) -> None:
        with pytest.raises(OnionError):
            session.import_ontology(carrier.copy())

    def test_drop_ontology(self, session: ExpertSession) -> None:
        session.drop_ontology("factory")
        assert "factory" not in session.ontologies
        with pytest.raises(OnionError):
            session.drop_ontology("factory")

    def test_view_ontology(self, session: ExpertSession) -> None:
        assert "carrier" in session.view("carrier")
        with pytest.raises(OnionError):
            session.view("nothing")

    def test_specify_rule_and_generate(self, session: ExpertSession) -> None:
        session.specify_rule("carrier:Car => factory:Vehicle")
        articulation = session.generate()
        assert articulation.ontology.has_term("Vehicle")
        assert "transport" in session.view("transport")

    def test_generate_requires_two_ontologies(self) -> None:
        session = ExpertSession()
        with pytest.raises(OnionError):
            session.generate()

    def test_suggest_accept_reject_flow(self, session: ExpertSession) -> None:
        candidates = session.suggest("carrier", "factory")
        assert candidates
        n_pending = len(session.pending())
        accepted = session.accept(0)
        assert accepted == 1
        assert len(session.pending()) < n_pending
        rejected = session.reject(0)
        assert rejected == 1
        articulation = session.generate()
        assert len(articulation.rules) >= 1

    def test_suggest_unknown_ontology(self, session: ExpertSession) -> None:
        with pytest.raises(OnionError):
            session.suggest("carrier", "nowhere")

    def test_rule_change_invalidates_articulation(
        self, session: ExpertSession
    ) -> None:
        session.specify_rule("carrier:Car => factory:Vehicle")
        session.generate()
        session.specify_rule("carrier:Trucks => factory:CargoCarrier")
        assert session.articulation is None

    def test_export_dot(self, tmp_path, session: ExpertSession) -> None:
        session.specify_rule("carrier:Car => factory:Vehicle")
        session.generate()
        path = tmp_path / "art.dot"
        session.export_dot(path)
        assert "cluster" in path.read_text()

    def test_export_dot_requires_generation(
        self, tmp_path, session: ExpertSession
    ) -> None:
        with pytest.raises(OnionError):
            session.export_dot(tmp_path / "art.dot")

    def test_export_dot_single_ontology(self, tmp_path, carrier) -> None:
        session = ExpertSession()
        session.import_ontology(carrier)
        path = tmp_path / "one.dot"
        session.export_dot(path)
        assert path.read_text().startswith("digraph")
