"""Batched churn: apply_batch parity, crossover routing, calibration.

``apply_batch`` must be a pure coalescing of per-op edits: for every
script, applying each checkpoint window's net fact diff as one batch
lands on exactly the state of (a) applying the ops one by one and
(b) saturating a fresh engine from scratch — whichever side of the
rebuild crossover the batch falls on.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest
from hypothesis import given, settings

from repro.core.rules import HornClause
from repro.errors import InferenceError
from repro.inference.goal import GoalDirectedEngine
from repro.inference.horn import (
    DEFAULT_REBUILD_CROSSOVER,
    Atom,
    HornEngine,
    seed_rebuild_crossover,
)
from tests.support.churn_scripts import (
    CLAUSE_POOL,
    churn_scripts,
    oracle_states,
    replay_incremental,
)

TRANS = HornClause(
    ("S", "?x", "?z"), (("S", "?x", "?y"), ("S", "?y", "?z"))
)


def replay_batched(
    script, *, batch: int = 4, crossover: int | None = None
) -> list[set[Atom]]:
    """Replay a churn script through apply_batch, one call per window.

    Fact ops coalesce last-op-wins per fact (the net diff of the
    window — exactly what a shrink+grow refresh hands the engine);
    clause ops apply immediately, as refresh_from_articulation does.
    """
    engine = HornEngine()
    if crossover is not None:
        engine.rebuild_crossover = crossover
    snapshots: list[set[Atom]] = []
    pending: dict[Atom, str] = {}

    def flush() -> None:
        adds = [f for f, k in pending.items() if k == "add_fact"]
        retracts = [f for f, k in pending.items() if k == "retract_fact"]
        pending.clear()
        engine.apply_batch(adds, retracts)
        snapshots.append(engine.facts())

    for index, op in enumerate(script):
        if op.kind in ("add_fact", "retract_fact"):
            pending[op.fact] = op.kind
        elif op.kind == "add_clause":
            engine.add_clause(CLAUSE_POOL[op.clause_index])
        else:
            engine.retract_clause(CLAUSE_POOL[op.clause_index])
        if (index + 1) % batch == 0:
            flush()
    flush()
    return snapshots


class TestBatchParity:
    @settings(max_examples=50, deadline=None)
    @given(script=churn_scripts())
    def test_batched_equals_stepwise_equals_oracle(self, script) -> None:
        expected = oracle_states(script, saturate_every=4)
        _, stepwise = replay_incremental(script, saturate_every=4)
        assert stepwise == expected
        assert replay_batched(script, batch=4) == expected

    @settings(max_examples=30, deadline=None)
    @given(script=churn_scripts())
    def test_parity_holds_on_both_sides_of_the_crossover(
        self, script
    ) -> None:
        """Forcing every batch through DRed (huge crossover) and
        forcing every retracting batch through a rebuild (crossover 1)
        must both land on the oracle — the switch is perf-only."""
        expected = oracle_states(script, saturate_every=4)
        assert replay_batched(script, crossover=10_000) == expected
        assert replay_batched(script, crossover=1) == expected

    def test_retract_then_add_same_fact_ends_asserted(self) -> None:
        engine = HornEngine()
        engine.add_clause(TRANS)
        engine.add_facts([("S", "a", "b"), ("S", "b", "c")])
        engine.saturate()
        report = engine.apply_batch(
            adds=[("S", "a", "b")], retracts=[("S", "a", "b")]
        )
        assert report["retracted"] == 1
        # The re-add is a store-level no-op (the fact never left the
        # store), but it restores base status: the fact must survive.
        assert engine.holds(("S", "a", "b"))
        assert engine.holds(("S", "a", "c"))


class TestBatchDecisions:
    def _saturated(self, crossover: int = 8) -> HornEngine:
        engine = HornEngine(rebuild_crossover=crossover)
        engine.add_clause(TRANS)
        engine.add_facts(
            ("S", f"n{i}", f"n{i + 1}") for i in range(12)
        )
        engine.saturate()
        return engine

    def test_empty_batch_is_a_noop(self) -> None:
        engine = self._saturated()
        report = engine.apply_batch()
        assert report["decision"] == "noop"
        assert report["derived"] == 0

    def test_adds_on_fresh_engine_decide_full(self) -> None:
        engine = HornEngine()
        engine.add_clause(TRANS)
        report = engine.apply_batch(
            adds=[("S", "a", "b"), ("S", "b", "c")]
        )
        assert report["decision"] == "full"
        assert engine.holds(("S", "a", "c"))

    def test_adds_on_saturated_engine_decide_delta(self) -> None:
        engine = self._saturated()
        report = engine.apply_batch(adds=[("S", "n12", "n13")])
        assert report["decision"] == "delta"
        assert report["mode"] == "incremental"

    def test_small_retraction_decides_dred(self) -> None:
        engine = self._saturated()
        report = engine.apply_batch(retracts=[("S", "n0", "n1")])
        assert report["decision"] == "dred"
        assert report["mode"] == "retract"
        oracle = HornEngine()
        oracle.add_clause(TRANS)
        oracle.add_facts(
            ("S", f"n{i}", f"n{i + 1}") for i in range(1, 12)
        )
        oracle.saturate()
        assert engine.facts() == oracle.facts()

    def test_crossover_reroutes_to_rebuild(self) -> None:
        engine = self._saturated(crossover=3)
        victims = [("S", f"n{i}", f"n{i + 1}") for i in range(3)]
        report = engine.apply_batch(retracts=victims)
        assert report["decision"] == "rebuild"
        oracle = HornEngine()
        oracle.add_clause(TRANS)
        oracle.add_facts(
            ("S", f"n{i}", f"n{i + 1}") for i in range(3, 12)
        )
        oracle.saturate()
        assert engine.facts() == oracle.facts()

    def test_none_crossover_disables_the_switch(self) -> None:
        engine = self._saturated()
        engine.rebuild_crossover = None
        victims = [("S", f"n{i}", f"n{i + 1}") for i in range(12)]
        report = engine.apply_batch(retracts=victims)
        assert report["decision"] == "dred"
        assert engine.facts() == set()

    def test_pre_fixpoint_retraction_decides_inplace(self) -> None:
        # Before the first fixpoint nothing was ever derived, so the
        # retraction is a plain store unlink — no DRed queue to drain.
        engine = HornEngine()
        engine.add_facts([("S", "a", "b"), ("S", "b", "c")])
        report = engine.apply_batch(retracts=[("S", "a", "b")])
        assert report["decision"] == "inplace"
        assert engine.facts() == {("S", "b", "c")}

    def test_saturate_false_defers_evaluation(self) -> None:
        engine = self._saturated()
        report = engine.apply_batch(
            adds=[("S", "n12", "n13")], saturate=False
        )
        assert "derived" not in report
        assert "mode" not in report
        assert engine.saturate() > 0  # the deferred delta pass
        assert engine.holds(("S", "n0", "n13"))


class TestCalibration:
    def test_calibration_measures_and_stores(self) -> None:
        engine = HornEngine()
        crossover = engine.calibrate_rebuild_crossover(
            chain=24, ks=(1, 4, 8)
        )
        assert crossover >= 2
        assert engine.rebuild_crossover == crossover
        assert [row["k"] for row in engine.last_calibration]
        for row in engine.last_calibration:
            assert row["dred_ms"] >= 0.0
            assert row["rebuild_ms"] >= 0.0


class TestSeededCrossover:
    def _record(self, series: dict) -> dict:
        return {"workloads": {"retract_vs_rebuild": series}}

    def test_smallest_winning_k(self, tmp_path: Path) -> None:
        path = tmp_path / "bench.json"
        path.write_text(
            json.dumps(
                self._record(
                    {
                        "1": {"retract_ms": 1.0, "rebuild_ms": 5.0},
                        "8": {"retract_ms": 9.0, "rebuild_ms": 2.0},
                        "40": {"retract_ms": 9.0, "rebuild_ms": 1.0},
                    }
                )
            )
        )
        assert seed_rebuild_crossover(path) == 8

    def test_floors_at_two(self, tmp_path: Path) -> None:
        path = tmp_path / "bench.json"
        path.write_text(
            json.dumps(
                self._record({"1": {"retract_ms": 9.0, "rebuild_ms": 1.0}})
            )
        )
        assert seed_rebuild_crossover(path) == 2

    def test_rebuild_never_wins_moves_past_the_range(
        self, tmp_path: Path
    ) -> None:
        path = tmp_path / "bench.json"
        path.write_text(
            json.dumps(
                self._record(
                    {
                        "1": {"retract_ms": 1.0, "rebuild_ms": 9.0},
                        "40": {"retract_ms": 1.0, "rebuild_ms": 9.0},
                    }
                )
            )
        )
        assert seed_rebuild_crossover(path) == 41

    def test_missing_or_malformed_falls_back(self, tmp_path: Path) -> None:
        assert (
            seed_rebuild_crossover(tmp_path / "absent.json")
            == DEFAULT_REBUILD_CROSSOVER
        )
        bad = tmp_path / "bad.json"
        bad.write_text("not json")
        assert seed_rebuild_crossover(bad) == DEFAULT_REBUILD_CROSSOVER

    def test_default_engine_uses_the_checked_in_seed(self) -> None:
        assert HornEngine().rebuild_crossover == seed_rebuild_crossover()


class TestGoalEngineBatch:
    def _engine(self) -> GoalDirectedEngine:
        engine = GoalDirectedEngine()
        engine.add_clause(TRANS)
        engine.add_facts([("S", "a", "b"), ("S", "b", "c")])
        return engine

    def test_batch_updates_answers(self) -> None:
        engine = self._engine()
        assert engine.holds(("S", "a", "c"))
        report = engine.apply_batch(
            adds=[("S", "c", "d")], retracts=[("S", "a", "b")]
        )
        assert report == {"added": 1, "retracted": 1}
        assert not engine.holds(("S", "a", "c"))
        assert engine.holds(("S", "b", "d"))

    def test_noop_batch_keeps_memoized_slices(self) -> None:
        engine = self._engine()
        engine.holds(("S", "a", "c"))  # build + memoize the slice
        assert engine._slices
        report = engine.apply_batch(
            adds=[("S", "a", "b")],  # already present
            retracts=[("S", "zz", "zz")],  # never asserted
        )
        assert report == {"added": 0, "retracted": 0}
        assert engine._slices  # untouched: no invalidation paid

    def test_batch_rejects_non_ground_atoms(self) -> None:
        engine = self._engine()
        with pytest.raises(InferenceError):
            engine.apply_batch(adds=[("S", "?x", "b")])
        with pytest.raises(InferenceError):
            engine.apply_batch(retracts=[("S", "?x", "b")])

    def test_workers_thread_through_to_slices(self) -> None:
        engine = GoalDirectedEngine(workers=2)
        engine.add_clause(TRANS)
        engine.add_facts([("S", "a", "b"), ("S", "b", "c")])
        assert engine.holds(("S", "a", "c"))
        assert engine._slice_for("S").workers == 2
