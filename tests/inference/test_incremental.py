"""Incremental (delta) saturation: parity with from-scratch evaluation.

The rebuilt Horn engine queues facts and clauses added after a
fixpoint and propagates only those deltas on the next query.  These
property-style suites assert the guarantee the module promises: for
randomized chain / tree / cyclic programs, incremental
``add_fact``-after-fixpoint is indistinguishable from building the
engine from scratch — same facts, same ``holds`` answers, same
``explain`` grounding — and every scheduling/strategy variant agrees.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.rules import HornClause
from repro.inference.horn import HornEngine

TRANS = HornClause(
    ("S", "?x", "?z"), (("S", "?x", "?y"), ("S", "?y", "?z"))
)
LIFT = HornClause(("implies", "?x", "?y"), (("S", "?x", "?y"),))
IMPL_TRANS = HornClause(
    ("implies", "?x", "?z"),
    (("implies", "?x", "?y"), ("implies", "?y", "?z")),
)
INSTANCE = HornClause(
    ("instance_of", "?o", "?c2"),
    (("instance_of", "?o", "?c1"), ("implies", "?c1", "?c2")),
)
PROGRAM = [TRANS, LIFT, IMPL_TRANS, INSTANCE]

# Random edge lists over 8 nodes cover chains, trees (fan-out), cycles
# and disconnected fragments; instance facts exercise the stratified
# layers above the closure.
edge_lists = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=7),
        st.integers(min_value=0, max_value=7),
    ),
    max_size=14,
)
instance_lists = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=3),
        st.integers(min_value=0, max_value=7),
    ),
    max_size=6,
)


def _facts_for(edges, instances):
    atoms = [("S", f"v{a}", f"v{b}") for a, b in edges]
    atoms += [("instance_of", f"o{o}", f"v{c}") for o, c in instances]
    return atoms


def _scratch(atoms, **kwargs) -> HornEngine:
    engine = HornEngine(**kwargs)
    engine.add_clauses(PROGRAM)
    engine.add_facts(atoms)
    engine.saturate()
    return engine


class TestIncrementalFactParity:
    @given(edge_lists, edge_lists, instance_lists)
    @settings(max_examples=60, deadline=None)
    def test_facts_and_holds_match_scratch(
        self, base_edges, extra_edges, instances
    ) -> None:
        base = _facts_for(base_edges, instances)
        extra = _facts_for(extra_edges, [])
        incremental = _scratch(base)
        assert incremental.last_stats["mode"] == "full"
        incremental.add_facts(extra)
        scratch = _scratch(base + extra)
        assert incremental.facts() == scratch.facts()
        for atom in list(scratch.iter_facts("implies"))[:5]:
            assert incremental.holds(atom)

    @given(edge_lists, edge_lists)
    @settings(max_examples=40, deadline=None)
    def test_explanations_ground_in_base_facts(
        self, base_edges, extra_edges
    ) -> None:
        base = _facts_for(base_edges, [])
        extra = _facts_for(extra_edges, [])
        engine = _scratch(base)
        engine.add_facts(extra)
        known = set(base) | set(extra)
        for atom in engine.facts("S"):
            explanation = engine.explain(atom)
            assert explanation
            assert set(explanation) <= known

    @given(edge_lists)
    @settings(max_examples=30, deadline=None)
    def test_one_fact_at_a_time_matches_batch(self, edges) -> None:
        """Saturating between every single insert equals one batch."""
        engine = HornEngine()
        engine.add_clauses(PROGRAM)
        engine.saturate()
        for atom in _facts_for(edges, []):
            engine.add_fact(atom)
            engine.saturate()
        batch = _scratch(_facts_for(edges, []))
        assert engine.facts() == batch.facts()


class TestIncrementalClauseParity:
    @given(edge_lists, instance_lists)
    @settings(max_examples=40, deadline=None)
    def test_clause_after_fixpoint_matches_scratch(
        self, edges, instances
    ) -> None:
        atoms = _facts_for(edges, instances)
        engine = HornEngine()
        engine.add_clauses([TRANS, LIFT])
        engine.add_facts(atoms)
        engine.saturate()
        # Two more layers arrive after the fixpoint.
        engine.add_clause(IMPL_TRANS)
        engine.add_clause(INSTANCE)
        scratch = _scratch(atoms)
        assert engine.facts() == scratch.facts()

    def test_new_clause_and_new_facts_together(self) -> None:
        engine = HornEngine()
        engine.add_clause(TRANS)
        engine.add_facts([("S", "a", "b"), ("S", "b", "c")])
        engine.saturate()
        engine.add_clause(LIFT)
        engine.add_fact(("S", "c", "d"))
        assert engine.holds(("implies", "a", "d"))


class TestSchedulingParity:
    @pytest.mark.parametrize("strategy", ["seminaive", "naive"])
    @pytest.mark.parametrize("scheduling", ["stratified", "flat"])
    def test_variant_matrix_agrees(self, strategy, scheduling) -> None:
        atoms = _facts_for(
            [(0, 1), (1, 2), (2, 0), (2, 3), (4, 4)], [(0, 0), (1, 3)]
        )
        engine = _scratch(
            atoms, strategy=strategy, scheduling=scheduling
        )
        reference = _scratch(atoms)
        assert engine.facts() == reference.facts()

    @given(edge_lists, instance_lists)
    @settings(max_examples=40, deadline=None)
    def test_stratified_equals_flat(self, edges, instances) -> None:
        atoms = _facts_for(edges, instances)
        stratified = _scratch(atoms, scheduling="stratified")
        flat = _scratch(atoms, scheduling="flat")
        assert stratified.facts() == flat.facts()

    @given(edge_lists)
    @settings(max_examples=30, deadline=None)
    def test_stratified_incremental_equals_flat_incremental(
        self, edges
    ) -> None:
        split = len(edges) // 2
        engines = []
        for scheduling in ("stratified", "flat"):
            engine = HornEngine(scheduling=scheduling)
            engine.add_clauses(PROGRAM)
            engine.add_facts(_facts_for(edges[:split], []))
            engine.saturate()
            engine.add_facts(_facts_for(edges[split:], []))
            engines.append(engine)
        assert engines[0].facts() == engines[1].facts()


class TestBoundedRounds:
    """``saturate(max_rounds=k)`` means the same thing under both
    strategies: k snapshot rounds (facts derived in round r join in
    round r + 1)."""

    @pytest.mark.parametrize("k", [1, 2, 3, 4])
    def test_strategies_agree_per_round(self, k) -> None:
        atoms = [("S", f"n{i}", f"n{i+1}") for i in range(9)]
        results = {}
        for strategy in ("seminaive", "naive"):
            engine = HornEngine(strategy=strategy)
            engine.add_clause(TRANS)
            engine.add_facts(atoms)
            engine.saturate(max_rounds=k)
            results[strategy] = set(engine._facts)
        assert results["seminaive"] == results["naive"]

    def test_bounded_run_resumes_to_fixpoint(self) -> None:
        engine = HornEngine()
        engine.add_clause(TRANS)
        engine.add_facts([("S", f"n{i}", f"n{i+1}") for i in range(9)])
        engine.saturate(max_rounds=1)
        assert not engine._saturated  # not yet at fixpoint
        engine.saturate()
        assert len(engine.facts("S")) == 10 * 9 // 2

    def test_bounded_fixpoint_marks_saturated(self) -> None:
        engine = HornEngine()
        engine.add_clause(TRANS)
        engine.add_facts([("S", "a", "b"), ("S", "b", "c")])
        engine.saturate(max_rounds=10)
        assert engine.saturate() == 0


class TestDeltaDedupe:
    def test_multi_occurrence_delta_joins_once(self) -> None:
        """The transitive clause reads its delta predicate at both body
        positions; the old/new discipline must enumerate each join
        exactly once per round.  Over a 2-cycle, round one joins the
        two delta facts in each role: 2 positions x (2 delta x 1
        match) + the (a,b,a)/(b,a,b) overlaps — bounded well below the
        naive double enumeration."""
        engine = HornEngine()
        engine.add_clause(TRANS)
        engine.add_facts([("S", "a", "b"), ("S", "b", "a")])
        engine.saturate()
        assert engine.facts("S") == {
            ("S", "a", "b"),
            ("S", "b", "a"),
            ("S", "a", "a"),
            ("S", "b", "b"),
        }

    def test_derived_counts_equal_across_strategies(self) -> None:
        atoms = [("S", f"n{i}", f"n{i+1}") for i in range(6)]
        counts = {}
        for strategy in ("seminaive", "naive"):
            engine = HornEngine(strategy=strategy)
            engine.add_clause(TRANS)
            engine.add_facts(atoms)
            counts[strategy] = engine.saturate()
        assert counts["seminaive"] == counts["naive"]

    def test_incremental_work_tracks_delta(self) -> None:
        """Join work after a single insert must be a small fraction of
        a from-scratch run (the §5.3 maintenance win, measured)."""
        n = 40
        engine = HornEngine()
        engine.add_clause(TRANS)
        engine.add_facts([("S", f"n{i}", f"n{i+1}") for i in range(n)])
        engine.saturate()
        full = dict(engine.last_stats)
        engine.add_fact(("S", f"n{n}", f"n{n+1}"))
        engine.saturate()
        incremental = dict(engine.last_stats)
        assert incremental["mode"] == "incremental"
        assert incremental["derived"] == n + 1 - 1
        assert incremental["candidates"] * 5 < full["candidates"]
