"""Unit tests for the goal-directed (relevance-sliced) engine."""

from __future__ import annotations

import pytest

from repro.core.rules import HornClause
from repro.errors import InferenceError
from repro.inference.goal import GoalDirectedEngine
from repro.inference.horn import HornEngine

TRANS = HornClause(
    ("S", "?x", "?z"), (("S", "?x", "?y"), ("S", "?y", "?z"))
)
LIFT = HornClause(("implies", "?x", "?y"), (("S", "?x", "?y"),))
INSTANCE = HornClause(
    ("instance_of", "?o", "?c2"),
    (("instance_of", "?o", "?c1"), ("implies", "?c1", "?c2")),
)


def multi_predicate_engine() -> GoalDirectedEngine:
    engine = GoalDirectedEngine()
    engine.add_clauses([TRANS, LIFT, INSTANCE])
    engine.add_facts(
        [
            ("S", "Car", "Cars"),
            ("S", "Cars", "Carrier"),
            ("instance_of", "MyCar", "Car"),
            # An unrelated predicate family that the goal never needs.
            ("A", "Price", "Cars"),
            ("A", "Weight", "Cars"),
        ]
    )
    return engine


class TestAnswers:
    def test_ground_goal(self) -> None:
        engine = multi_predicate_engine()
        assert engine.holds(("S", "Car", "Carrier"))
        assert not engine.holds(("S", "Carrier", "Car"))

    def test_layered_predicates(self) -> None:
        engine = multi_predicate_engine()
        assert engine.holds(("implies", "Car", "Carrier"))
        assert engine.holds(("instance_of", "MyCar", "Carrier"))

    def test_variable_query(self) -> None:
        engine = multi_predicate_engine()
        answers = engine.query(("S", "Car", "?x"))
        assert {a["?x"] for a in answers} == {"Cars", "Carrier"}

    def test_holds_requires_ground(self) -> None:
        with pytest.raises(InferenceError):
            multi_predicate_engine().holds(("S", "?x", "Carrier"))

    def test_cycles_terminate(self) -> None:
        engine = GoalDirectedEngine()
        engine.add_clause(TRANS)
        engine.add_fact(("S", "a", "b"))
        engine.add_fact(("S", "b", "a"))
        assert engine.holds(("S", "a", "a"))
        assert not engine.holds(("S", "a", "zzz"))

    def test_explain_delegates(self) -> None:
        engine = multi_predicate_engine()
        base = engine.explain(("S", "Car", "Carrier"))
        assert set(base) == {("S", "Car", "Cars"), ("S", "Cars", "Carrier")}


class TestSlicing:
    def test_relevant_predicates_backward_closure(self) -> None:
        engine = multi_predicate_engine()
        assert engine.relevant_predicates("S") == {"S"}
        assert engine.relevant_predicates("implies") == {"implies", "S"}
        assert engine.relevant_predicates("instance_of") == {
            "instance_of",
            "implies",
            "S",
        }

    def test_slice_excludes_irrelevant_facts(self) -> None:
        engine = multi_predicate_engine()
        engine.holds(("S", "Car", "Carrier"))
        stats = engine.last_slice_stats
        assert stats["facts"] == 2  # only the S facts
        assert stats["total_facts"] == 5
        assert stats["clauses"] == 1  # only TRANS

    def test_slice_memoized(self) -> None:
        engine = multi_predicate_engine()
        engine.holds(("S", "Car", "Cars"))
        first = engine.last_slice_stats
        engine.last_slice_stats = {}
        engine.holds(("S", "Cars", "Carrier"))
        # Second query reuses the slice: stats untouched.
        assert engine.last_slice_stats == {}
        assert first["facts"] == 2

    def test_new_fact_invalidates_slices(self) -> None:
        engine = multi_predicate_engine()
        assert not engine.holds(("S", "Car", "Transportation"))
        engine.add_fact(("S", "Carrier", "Transportation"))
        assert engine.holds(("S", "Car", "Transportation"))

    def test_bodiless_clause_becomes_fact(self) -> None:
        engine = GoalDirectedEngine()
        engine.add_clause(HornClause(("S", "a", "b")))
        assert engine.holds(("S", "a", "b"))

    def test_non_ground_fact_rejected(self) -> None:
        with pytest.raises(InferenceError):
            GoalDirectedEngine().add_fact(("S", "?x", "b"))


class TestAgreementWithForward:
    @pytest.mark.parametrize(
        "edges",
        [
            [(0, 1), (1, 2), (2, 3)],
            [(0, 1), (1, 0)],
            [(0, 1), (1, 2), (2, 0), (2, 4)],
            [],
        ],
    )
    def test_same_answers_per_predicate(self, edges) -> None:
        forward = HornEngine()
        sliced = GoalDirectedEngine()
        for engine in (forward, sliced):
            engine.add_clauses([TRANS, LIFT])
            for a, b in edges:
                engine.add_fact(("S", f"v{a}", f"v{b}"))
        forward.saturate()
        for predicate in ("S", "implies"):
            assert sliced.facts(predicate) == forward.facts(predicate)

    def test_fig2_agreement(self, transport) -> None:
        """The sliced engine answers the paper's questions identically
        to the full forward reasoner."""
        from repro.inference.engine import OntologyInferenceEngine

        full = OntologyInferenceEngine.from_articulation(transport)
        sliced = GoalDirectedEngine()
        # Rebuild the same program from the forward engine's inputs.
        full_engine = full.engine
        sliced.add_clauses(full_engine._clauses)
        for fact in full_engine._facts:
            if fact in full_engine._derivations:
                continue  # derived later; only base facts seed the program
            sliced.add_fact(fact)
        questions = [
            ("implies", "carrier:Car", "factory:Vehicle"),
            ("implies", "factory:Truck", "transport:CargoCarrierVehicle"),
            ("implies", "factory:Vehicle", "transport:CarsTrucks"),
            ("S", "transport:Owner", "transport:Person"),
        ]
        for question in questions:
            assert sliced.holds(question) == full_engine.holds(question)
