"""Unit tests for the Horn-clause forward-chaining engine."""

from __future__ import annotations

import pytest

from repro.core.rules import HornClause
from repro.errors import InferenceError
from repro.inference.horn import (
    FactStore,
    HornEngine,
    compile_clause,
    is_variable,
    substitute,
    unify_atom,
)

TRANS = HornClause(
    ("S", "?x", "?z"), (("S", "?x", "?y"), ("S", "?y", "?z"))
)


class TestAtoms:
    def test_is_variable(self) -> None:
        assert is_variable("?X")
        assert not is_variable("X")

    def test_substitute(self) -> None:
        atom = ("S", "?x", "b")
        assert substitute(atom, {"?x": "a"}) == ("S", "a", "b")

    def test_substitute_leaves_unbound(self) -> None:
        assert substitute(("S", "?x", "?y"), {"?x": "a"}) == ("S", "a", "?y")

    def test_unify_success(self) -> None:
        assert unify_atom(("S", "?x", "b"), ("S", "a", "b")) == {"?x": "a"}

    def test_unify_predicate_mismatch(self) -> None:
        assert unify_atom(("S", "?x", "b"), ("A", "a", "b")) is None

    def test_unify_constant_mismatch(self) -> None:
        assert unify_atom(("S", "a", "b"), ("S", "a", "c")) is None

    def test_unify_repeated_variable_must_agree(self) -> None:
        assert unify_atom(("S", "?x", "?x"), ("S", "a", "a")) == {"?x": "a"}
        assert unify_atom(("S", "?x", "?x"), ("S", "a", "b")) is None

    def test_unify_extends_binding(self) -> None:
        binding = {"?x": "a"}
        result = unify_atom(("S", "?x", "?y"), ("S", "a", "b"), binding)
        assert result == {"?x": "a", "?y": "b"}
        assert binding == {"?x": "a"}  # input untouched


@pytest.mark.parametrize("strategy", ["seminaive", "naive"])
class TestSaturation:
    def test_transitive_closure(self, strategy: str) -> None:
        engine = HornEngine(strategy=strategy)
        engine.add_clause(TRANS)
        engine.add_facts([("S", "a", "b"), ("S", "b", "c"), ("S", "c", "d")])
        engine.saturate()
        assert engine.holds(("S", "a", "d"))
        assert engine.holds(("S", "a", "c"))
        assert not engine.holds(("S", "d", "a"))

    def test_closure_size_on_chain(self, strategy: str) -> None:
        engine = HornEngine(strategy=strategy)
        engine.add_clause(TRANS)
        n = 12
        for i in range(n - 1):
            engine.add_fact(("S", f"n{i}", f"n{i+1}"))
        engine.saturate()
        assert len(engine.facts("S")) == n * (n - 1) // 2

    def test_symmetric_rule(self, strategy: str) -> None:
        engine = HornEngine(strategy=strategy)
        engine.add_clause(
            HornClause(("sib", "?y", "?x"), (("sib", "?x", "?y"),))
        )
        engine.add_fact(("sib", "a", "b"))
        assert engine.holds(("sib", "b", "a"))

    def test_multi_body_join(self, strategy: str) -> None:
        engine = HornEngine(strategy=strategy)
        engine.add_clause(
            HornClause(
                ("uncle", "?u", "?n"),
                (("brother", "?u", "?p"), ("parent", "?p", "?n")),
            )
        )
        engine.add_fact(("brother", "bob", "sue"))
        engine.add_fact(("parent", "sue", "kid"))
        assert engine.holds(("uncle", "bob", "kid"))

    def test_cycle_terminates(self, strategy: str) -> None:
        engine = HornEngine(strategy=strategy)
        engine.add_clause(TRANS)
        engine.add_facts([("S", "a", "b"), ("S", "b", "a")])
        engine.saturate()
        assert engine.holds(("S", "a", "a"))
        assert engine.holds(("S", "b", "b"))

    def test_saturate_returns_derived_count(self, strategy: str) -> None:
        engine = HornEngine(strategy=strategy)
        engine.add_clause(TRANS)
        engine.add_facts([("S", "a", "b"), ("S", "b", "c")])
        derived = engine.saturate()
        assert derived == 1  # only (a, c)

    def test_strategies_agree(self, strategy: str) -> None:
        # Build the same program under both strategies; compare closures.
        def build(s: str) -> set:
            engine = HornEngine(strategy=s)
            engine.add_clause(TRANS)
            engine.add_clause(
                HornClause(("R", "?x", "?y"), (("S", "?x", "?y"),))
            )
            engine.add_facts(
                [("S", "a", "b"), ("S", "b", "c"), ("S", "c", "a")]
            )
            engine.saturate()
            return engine.facts()

        assert build(strategy) == build("naive")


class TestProgramHygiene:
    def test_non_ground_fact_rejected(self) -> None:
        engine = HornEngine()
        with pytest.raises(InferenceError):
            engine.add_fact(("S", "?x", "b"))

    def test_unsafe_clause_rejected(self) -> None:
        engine = HornEngine()
        with pytest.raises(InferenceError):
            engine.add_clause(
                HornClause(("S", "?x", "?z"), (("S", "?x", "?y"),))
            )

    def test_bodiless_clause_becomes_fact(self) -> None:
        engine = HornEngine()
        engine.add_clause(HornClause(("S", "a", "b")))
        assert engine.holds(("S", "a", "b"))

    def test_duplicate_fact_reports_false(self) -> None:
        engine = HornEngine()
        assert engine.add_fact(("S", "a", "b"))
        assert not engine.add_fact(("S", "a", "b"))

    def test_unknown_strategy_rejected(self) -> None:
        with pytest.raises(InferenceError):
            HornEngine(strategy="magic")

    def test_unknown_scheduling_rejected(self) -> None:
        with pytest.raises(InferenceError):
            HornEngine(scheduling="psychic")

    def test_duplicate_clause_ignored(self) -> None:
        engine = HornEngine()
        engine.add_clause(TRANS)
        engine.add_clause(TRANS)
        engine.add_facts([("S", "a", "b"), ("S", "b", "c")])
        assert engine.saturate() == 1


class TestQueries:
    @pytest.fixture
    def engine(self) -> HornEngine:
        engine = HornEngine()
        engine.add_clause(TRANS)
        engine.add_facts([("S", "a", "b"), ("S", "b", "c")])
        return engine

    def test_query_with_variables(self, engine: HornEngine) -> None:
        bindings = engine.query(("S", "a", "?x"))
        assert {b["?x"] for b in bindings} == {"b", "c"}

    def test_query_all_pairs(self, engine: HornEngine) -> None:
        bindings = engine.query(("S", "?x", "?y"))
        assert len(bindings) == 3

    def test_query_ground_atom(self, engine: HornEngine) -> None:
        assert engine.query(("S", "a", "b")) == [{}]

    def test_query_saturates_lazily(self) -> None:
        engine = HornEngine()
        engine.add_clause(TRANS)
        engine.add_facts([("S", "a", "b"), ("S", "b", "c")])
        # No explicit saturate(): holds() must trigger it.
        assert engine.holds(("S", "a", "c"))

    def test_new_facts_invalidate_saturation(self, engine: HornEngine) -> None:
        assert engine.holds(("S", "a", "c"))
        engine.add_fact(("S", "c", "d"))
        assert engine.holds(("S", "a", "d"))

    def test_facts_by_predicate(self, engine: HornEngine) -> None:
        engine.add_fact(("other", "x", "y"))
        assert all(f[0] == "S" for f in engine.facts("S"))
        assert ("other", "x", "y") in engine.facts()

    def test_iter_facts_matches_facts_without_copying(
        self, engine: HornEngine
    ) -> None:
        assert set(engine.iter_facts("S")) == engine.facts("S")
        assert set(engine.iter_facts()) == engine.facts()

    def test_fact_count(self, engine: HornEngine) -> None:
        engine.add_fact(("other", "x", "y"))
        assert engine.fact_count("S") == 3
        assert engine.fact_count() == 4

    def test_query_uses_most_selective_index(self, engine: HornEngine) -> None:
        # Both a bound first and a bound second argument answer
        # identically regardless of which bucket gets probed.
        assert {b["?x"] for b in engine.query(("S", "?x", "c"))} == {"a", "b"}
        assert {b["?x"] for b in engine.query(("S", "a", "?x"))} == {"b", "c"}


class TestExplanations:
    def test_base_fact_explains_itself(self) -> None:
        engine = HornEngine()
        engine.add_fact(("S", "a", "b"))
        assert engine.explain(("S", "a", "b")) == [("S", "a", "b")]

    def test_derived_fact_traces_to_base_facts(self) -> None:
        engine = HornEngine()
        engine.add_clause(TRANS)
        engine.add_facts([("S", "a", "b"), ("S", "b", "c"), ("S", "c", "d")])
        base = set(engine.explain(("S", "a", "d")))
        assert base <= {("S", "a", "b"), ("S", "b", "c"), ("S", "c", "d")}
        assert len(base) >= 2

    def test_explain_unknown_fact_raises(self) -> None:
        engine = HornEngine()
        with pytest.raises(InferenceError):
            engine.explain(("S", "nope", "nope"))

    def test_no_explain_mode_raises_but_derives(self) -> None:
        engine = HornEngine(record_derivations=False)
        engine.add_clause(TRANS)
        engine.add_facts([("S", "a", "b"), ("S", "b", "c")])
        assert engine.holds(("S", "a", "c"))
        with pytest.raises(InferenceError):
            engine.explain(("S", "a", "c"))

    def test_explain_covers_incremental_derivations(self) -> None:
        engine = HornEngine()
        engine.add_clause(TRANS)
        engine.add_facts([("S", "a", "b"), ("S", "b", "c")])
        engine.saturate()
        engine.add_fact(("S", "c", "d"))
        base = set(engine.explain(("S", "a", "d")))
        assert base <= {("S", "a", "b"), ("S", "b", "c"), ("S", "c", "d")}
        assert ("S", "c", "d") in base


class TestCompilationAndStore:
    def test_compiled_clause_shared_across_engines(self) -> None:
        assert compile_clause(TRANS) is compile_clause(TRANS)

    def test_compiled_plan_reorders_for_selectivity(self) -> None:
        clause = HornClause(
            ("uncle", "?u", "?n"),
            (("parent", "?p", "?n"), ("brother", "?u", "?p")),
        )
        compiled = compile_clause(clause)
        # Each delta plan leads with its delta atom.
        for index, plan in enumerate(compiled.delta_plans):
            assert plan.steps[0].orig == index
        assert compiled.body_preds == {"parent", "brother"}

    def test_store_overlay_shares_base_without_copying(self) -> None:
        base = FactStore()
        base.add(("S", "a", "b"))
        base.add(("T", "a", "b"))
        overlay = FactStore(base=base, visible=frozenset({"S"}))
        assert ("S", "a", "b") in overlay
        assert ("T", "a", "b") not in overlay  # restricted away
        overlay.add(("S", "b", "c"))
        assert set(overlay.pool("S")) == {("S", "a", "b"), ("S", "b", "c")}
        assert set(base.pool("S")) == {("S", "a", "b")}  # base untouched
        assert overlay.probe_size("S", 2, "b") == 1
        assert len(overlay) == 2

    def test_engine_over_overlay_store_saturates_against_base(self) -> None:
        base = FactStore()
        base.add(("S", "a", "b"))
        base.add(("S", "b", "c"))
        engine = HornEngine(
            store=FactStore(base=base, visible=frozenset({"S"}))
        )
        engine.add_clause(TRANS)
        assert engine.holds(("S", "a", "c"))
        assert ("S", "a", "c") not in base  # derived facts stay local
