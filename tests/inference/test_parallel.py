"""Parallel stratum saturation: parity, DAG structure, worker tasks.

The contract is bit-for-bit: for every program and churn script, the
engine under ``workers`` ∈ {2, 4} derives exactly the fact set the
serial engine (and the naive-strategy oracle) derives — full
saturation, incremental delta propagation and DRed retraction alike.
The hypothesis suite drives that over random scripts; the unit tests
pin the stratum dependency DAG and exercise the pool task in-process.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.core.rules import HornClause
from repro.errors import InferenceError
from repro.inference.horn import (
    HornEngine,
    ParallelScheduler,
    _saturate_stratum_task,
    _stratum_dag,
)
from repro.workloads.generator import wide_program
from tests.support.churn_scripts import (
    churn_scripts,
    oracle_states,
    replay_incremental,
)


def _wide_engine(workers: int, *, record: bool = True) -> HornEngine:
    program = wide_program(3, 6)
    engine = HornEngine(workers=workers, record_derivations=record)
    engine.add_clauses(program.clauses)
    engine.add_facts(program.facts)
    return engine


class TestParallelParity:
    @settings(max_examples=20, deadline=None)
    @given(script=churn_scripts())
    def test_workers_match_serial_and_oracle(self, script) -> None:
        """workers ∈ {1, 2, 4} agree with each other, with the naive
        strategy, and with the from-scratch oracle at every checkpoint."""
        expected = oracle_states(script, saturate_every=3)
        _, serial = replay_incremental(script, saturate_every=3)
        assert serial == expected
        _, naive = replay_incremental(
            script, saturate_every=3, strategy="naive"
        )
        assert naive == expected
        for workers in (2, 4):
            _, parallel = replay_incremental(
                script, saturate_every=3, workers=workers
            )
            assert parallel == expected

    def test_full_saturation_parity_on_wide_program(self) -> None:
        serial = _wide_engine(1)
        serial.saturate()
        parallel = _wide_engine(4)
        parallel.saturate()
        assert parallel.facts() == serial.facts()
        assert parallel.last_stats["tasks"] >= 6  # every stratum shipped
        assert parallel.last_stats["shipped_facts"] > 0
        program = wide_program(3, 6)
        assert len(serial.facts()) == program.closure_size()

    def test_explanations_survive_the_pool(self) -> None:
        """Derivations recorded in workers replay through explain()."""
        serial = _wide_engine(1)
        serial.saturate()
        parallel = _wide_engine(4)
        parallel.saturate()
        derived = ("Q0", "c0_3", "c0_0")  # symmetric lift of P0 closure
        assert sorted(parallel.explain(derived)) == sorted(
            serial.explain(derived)
        )

    def test_incremental_delta_parity(self) -> None:
        serial = _wide_engine(1)
        serial.saturate()
        parallel = _wide_engine(4)
        parallel.saturate()
        new_fact = ("P1", "c1_6", "c1_99")
        serial.add_fact(new_fact)
        parallel.add_fact(new_fact)
        assert serial.saturate() == parallel.saturate()
        assert parallel.facts() == serial.facts()
        assert parallel.last_stats["mode"] == "incremental"

    def test_retraction_parity_under_workers(self) -> None:
        serial = _wide_engine(1)
        serial.saturate()
        parallel = _wide_engine(4)
        parallel.saturate()
        victim = ("P2", "c2_2", "c2_3")
        for engine in (serial, parallel):
            engine.retract_fact(victim)
            engine.saturate()
        assert parallel.facts() == serial.facts()


class TestSchedulerMechanics:
    def test_workers_must_be_positive(self) -> None:
        with pytest.raises(InferenceError):
            HornEngine(workers=0)
        with pytest.raises(InferenceError):
            ParallelScheduler(HornEngine(), 0)

    def test_single_stratum_program_stays_serial(self) -> None:
        """One stratum has no parallelism; the pool is never engaged."""
        engine = HornEngine(workers=4)
        engine.add_clause(
            HornClause(
                ("S", "?x", "?z"), (("S", "?x", "?y"), ("S", "?y", "?z"))
            )
        )
        engine.add_facts([("S", "a", "b"), ("S", "b", "c")])
        engine.saturate()
        assert engine.last_stats["strata"] == 1
        assert engine.last_stats["tasks"] == 0
        assert engine.holds(("S", "a", "c"))

    def test_scheduler_on_empty_program(self) -> None:
        engine = HornEngine(workers=2)
        assert ParallelScheduler(engine, 2).run() == 0


class TestStratumDag:
    def test_wide_program_dag_shape(self) -> None:
        program = wide_program(3, 4)
        engine = HornEngine()
        engine.add_clauses(program.clauses)
        strata, deps = _stratum_dag(engine._compiled)
        assert len(strata) == 6  # one P and one Q stratum per family
        heads = [{cc.head_pred for cc in stratum} for stratum in strata]
        # Each derived predicate is owned by exactly one stratum.
        assert all(len(h) == 1 for h in heads)
        owner = {next(iter(h)): i for i, h in enumerate(heads)}
        for family in range(3):
            p, q = owner[f"P{family}"], owner[f"Q{family}"]
            assert deps[q] == {p}  # Q depends only on its own P
            assert deps[p] == set()  # P strata are independent roots

    def test_flat_scheduling_has_no_dag(self) -> None:
        engine = HornEngine(scheduling="flat")
        engine.add_clauses(wide_program(2, 3).clauses)
        strata, deps = engine.stratum_dag()
        assert len(strata) == 1
        assert deps == [set()]


class TestStratumTaskInProcess:
    """The pool task, called directly: what each worker computes."""

    def _stratum(self) -> list:
        engine = HornEngine()
        engine.add_clause(
            HornClause(
                ("S", "?x", "?z"), (("S", "?x", "?y"), ("S", "?y", "?z"))
            )
        )
        return list(engine._compiled)

    def test_full_mode_saturates_the_partition(self) -> None:
        facts = [("S", "a", "b"), ("S", "b", "c"), ("S", "c", "d")]
        new, derivations, counters = _saturate_stratum_task(
            (tuple(self._stratum()), facts, None, True)
        )
        assert set(new) == {
            ("S", "a", "c"),
            ("S", "b", "d"),
            ("S", "a", "d"),
        }
        assert {fact for fact, _, _ in derivations} == set(new)
        assert all(index == 0 for _, index, _ in derivations)
        assert counters["rounds"] >= 2
        assert counters["candidates"] > 0

    def test_delta_mode_restricts_to_the_shard(self) -> None:
        facts = [("S", "a", "b"), ("S", "b", "c"), ("S", "a", "c")]
        delta_items = ((("S"), (("S", "b", "c"),)),)
        new, _, _ = _saturate_stratum_task(
            (tuple(self._stratum()), facts, delta_items, False)
        )
        # Only joins touching the delta run; a-b x b-c -> a-c exists
        # already, so nothing new arrives.
        assert new == []

    def test_no_record_means_no_derivations(self) -> None:
        facts = [("S", "a", "b"), ("S", "b", "c")]
        new, derivations, _ = _saturate_stratum_task(
            (tuple(self._stratum()), facts, None, False)
        )
        assert new == [("S", "a", "c")]
        assert derivations == []
