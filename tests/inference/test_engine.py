"""Unit tests for the ontology-level inference engine."""

from __future__ import annotations

import pytest

from repro.core.articulation import Articulation
from repro.core.ontology import Ontology
from repro.core.rules import ImplicationRule
from repro.errors import ContradictionError
from repro.inference.engine import OntologyInferenceEngine
from repro.workloads.paper_example import generate_transport_articulation


@pytest.fixture
def engine(transport: Articulation) -> OntologyInferenceEngine:
    return OntologyInferenceEngine.from_articulation(transport)


class TestSingleOntology:
    def test_transitive_subclass(self, carrier: Ontology) -> None:
        engine = OntologyInferenceEngine.from_ontology(carrier)
        assert engine.is_subclass("Car", "Transportation")
        assert engine.is_subclass("SUV", "Carrier")

    def test_subclass_reflexive_by_convention(self, carrier: Ontology) -> None:
        engine = OntologyInferenceEngine.from_ontology(carrier)
        assert engine.is_subclass("Car", "Car")

    def test_subclass_directed(self, carrier: Ontology) -> None:
        engine = OntologyInferenceEngine.from_ontology(carrier)
        assert not engine.is_subclass("Transportation", "Car")

    def test_superclasses_subclasses(self, carrier: Ontology) -> None:
        engine = OntologyInferenceEngine.from_ontology(carrier)
        assert engine.superclasses("Car") == {
            "Cars",
            "Carrier",
            "Transportation",
        }
        assert "SUV" in engine.subclasses("Carrier")

    def test_instances_lift_through_subclass(self, carrier: Ontology) -> None:
        engine = OntologyInferenceEngine.from_ontology(carrier)
        assert "MyCar" in engine.instances_of("Cars")
        assert "MyCar" in engine.instances_of("Transportation")

    def test_custom_symmetric_relation(self) -> None:
        from repro.core.relations import RelationType

        onto = Ontology("o")
        onto.registry.register(
            RelationType("AdjacentTo", "ADJ", symmetric=True)
        )
        onto.add_term("A")
        onto.add_term("B")
        onto.relate("A", "AdjacentTo", "B")
        engine = OntologyInferenceEngine.from_ontology(onto)
        assert engine.engine.holds(("ADJ", "B", "A"))


class TestArticulationReasoning:
    def test_cross_ontology_implication(
        self, engine: OntologyInferenceEngine
    ) -> None:
        assert engine.implies("carrier:Car", "factory:Vehicle")

    def test_local_plus_bridge_composition(
        self, engine: OntologyInferenceEngine
    ) -> None:
        assert engine.implies("factory:Truck", "transport:CargoCarrierVehicle")
        assert engine.implies("factory:Truck", "carrier:Trucks")

    def test_implies_reflexive(self, engine: OntologyInferenceEngine) -> None:
        assert engine.implies("carrier:Car", "carrier:Car")

    def test_functional_bridges_carry_no_subsumption(
        self, engine: OntologyInferenceEngine
    ) -> None:
        assert not engine.implies("carrier:PoundSterling", "transport:Euro")

    def test_specializations_generalizations(
        self, engine: OntologyInferenceEngine
    ) -> None:
        specs = engine.specializations("transport:Vehicle")
        assert "carrier:Car" in specs
        gens = engine.generalizations("carrier:Car")
        assert "factory:Vehicle" in gens

    def test_equivalence_classes_detect_si_cycle(
        self, engine: OntologyInferenceEngine
    ) -> None:
        groups = engine.equivalence_classes()
        assert any(
            {"factory:Vehicle", "transport:Vehicle"} <= group
            for group in groups
        )


class TestDerivedRules:
    def test_derived_rules_are_cross_ontology_and_new(
        self, engine: OntologyInferenceEngine
    ) -> None:
        derived = engine.derived_rules()
        assert derived, "expected the engine to derive new rules"
        for rule in derived:
            assert rule.source == "inferred"
            ontologies = rule.ontologies()
            assert len(ontologies) == 2

    def test_derived_rules_exclude_stated_rules(
        self, engine: OntologyInferenceEngine, transport: Articulation
    ) -> None:
        stated = {str(r) for r in transport.rules.implications()}
        derived = {str(r) for r in engine.derived_rules()}
        assert not (stated & derived)

    def test_specific_expected_derivation(
        self, engine: OntologyInferenceEngine
    ) -> None:
        """factory:Truck => carrier:Trucks follows from the conjunction
        rule + factory's local hierarchy; it was never stated."""
        derived = {str(r) for r in engine.derived_rules()}
        assert "factory:Truck => carrier:Trucks" in derived


class TestConsistency:
    def test_no_contradictions_without_disjointness(
        self, engine: OntologyInferenceEngine
    ) -> None:
        assert engine.contradictions() == []
        engine.check_consistency()  # must not raise

    def test_disjointness_violation_detected(
        self, engine: OntologyInferenceEngine
    ) -> None:
        # Cars and Trucks are declared disjoint, but the articulation
        # bridges factory:Vehicle under CarsTrucks and Truck under
        # Trucks while Truck also reaches Vehicle -> no single term
        # lands in both here; instead manufacture a violation:
        engine.declare_disjoint("carrier:Cars", "carrier:Trucks")
        engine.engine.add_fact(("implies", "carrier:SUV", "carrier:Trucks"))
        found = engine.contradictions()
        assert any(term == "carrier:SUV" for term, _a, _b in found)
        with pytest.raises(ContradictionError):
            engine.check_consistency()

    def test_disjointness_is_symmetric(
        self, engine: OntologyInferenceEngine
    ) -> None:
        engine.declare_disjoint("carrier:Cars", "carrier:Trucks")
        engine.engine.add_fact(("implies", "carrier:SUV", "carrier:Trucks"))
        pairs = {
            (a, b) for _t, a, b in engine.contradictions()
        }
        assert ("carrier:Cars", "carrier:Trucks") in pairs
        assert ("carrier:Trucks", "carrier:Cars") in pairs


class TestStrategiesAgree:
    def test_naive_matches_seminaive_on_articulation(
        self, transport: Articulation
    ) -> None:
        semi = OntologyInferenceEngine.from_articulation(
            transport, strategy="seminaive"
        )
        naive = OntologyInferenceEngine.from_articulation(
            transport, strategy="naive"
        )
        assert semi.engine.facts() == naive.engine.facts()

    def test_flat_matches_stratified_on_articulation(
        self, transport: Articulation
    ) -> None:
        flat = OntologyInferenceEngine.from_articulation(
            transport, scheduling="flat"
        )
        stratified = OntologyInferenceEngine.from_articulation(
            transport, scheduling="stratified"
        )
        assert flat.engine.facts() == stratified.engine.facts()


class TestIncrementalRefresh:
    def test_initial_refresh_mode(self, transport: Articulation) -> None:
        engine = OntologyInferenceEngine.from_articulation(transport)
        assert engine.last_refresh["mode"] == "initial"

    def test_grown_articulation_refreshes_incrementally(
        self, transport: Articulation
    ) -> None:
        from repro.core.articulation import ArticulationGenerator
        from repro.core.rules import ArticulationRuleSet, parse_rule

        engine = OntologyInferenceEngine.from_articulation(transport)
        assert not engine.implies("carrier:SUV", "factory:Vehicle")

        extra = ArticulationRuleSet()
        extra.add(parse_rule("carrier:SUV => factory:Vehicle"))
        generator = ArticulationGenerator(
            transport.sources.values(), name=transport.name
        )
        generator.extend(transport, extra)

        refresh = engine.refresh_from_articulation(transport)
        assert refresh["mode"] == "incremental"
        assert refresh["added"] >= 1
        assert engine.implies("carrier:SUV", "factory:Vehicle")
        # Parity with a from-scratch engine over the grown articulation.
        scratch = OntologyInferenceEngine.from_articulation(transport)
        assert engine.engine.facts() == scratch.engine.facts()

    def test_shrunk_articulation_serves_retraction(
        self, transport: Articulation
    ) -> None:
        """A shrink no longer forces a rebuild: the stale facts are
        retracted through the Horn engine's DRed pass and the result
        still equals a from-scratch build."""
        from repro.core.articulation import ArticulationGenerator
        from repro.core.rules import ArticulationRuleSet

        engine = OntologyInferenceEngine.from_articulation(transport)
        engine.fact_count()  # saturate once
        implications = list(transport.rules.implications())
        surviving = ArticulationRuleSet()
        for rule in transport.rules:
            if rule is not implications[0]:
                surviving.add(rule)
        generator = ArticulationGenerator(
            transport.sources.values(), name=transport.name
        )
        rebuilt = generator.generate(surviving)
        refresh = engine.refresh_from_articulation(rebuilt)
        assert refresh["mode"] == "retract"
        assert refresh["removed"] > 0
        scratch = OntologyInferenceEngine.from_articulation(rebuilt)
        assert engine.engine.facts() == scratch.engine.facts()

    def test_rebuild_replays_disjointness(
        self, transport: Articulation
    ) -> None:
        engine = OntologyInferenceEngine.from_articulation(transport)
        engine.declare_disjoint("carrier:Cars", "carrier:Trucks")
        # A rebuild-triggering refresh must keep the declaration alive.
        engine._program_facts = None
        engine.refresh_from_articulation(transport)
        engine.engine.add_fact(("implies", "carrier:SUV", "carrier:Trucks"))
        assert any(
            term == "carrier:SUV" for term, _a, _b in engine.contradictions()
        )

    def test_no_explain_mode_still_answers(
        self, transport: Articulation
    ) -> None:
        engine = OntologyInferenceEngine.from_articulation(
            transport, record_derivations=False
        )
        assert engine.implies("carrier:Car", "factory:Vehicle")
        assert engine.derived_rules()


class TestNoopRefresh:
    """The version-stamp fast path: refreshing an unchanged
    articulation skips program re-extraction entirely."""

    def test_unchanged_articulation_is_noop(
        self, transport: Articulation
    ) -> None:
        engine = OntologyInferenceEngine.from_articulation(transport)
        refresh = engine.refresh_from_articulation(transport)
        assert refresh["mode"] == "noop"
        assert refresh["added"] == 0

    def test_noop_skips_program_extraction(
        self, transport: Articulation, monkeypatch
    ) -> None:
        engine = OntologyInferenceEngine.from_articulation(transport)

        def boom(articulation):  # pragma: no cover - must not run
            raise AssertionError("program re-extracted on a no-op refresh")

        monkeypatch.setattr(engine, "_articulation_program", boom)
        assert engine.refresh_from_articulation(transport)["mode"] == "noop"

    def test_version_bump_defeats_noop(self, transport: Articulation) -> None:
        engine = OntologyInferenceEngine.from_articulation(transport)
        transport.bump_version()
        refresh = engine.refresh_from_articulation(transport)
        assert refresh["mode"] == "incremental"
        assert refresh["added"] == 0  # nothing actually changed

    def test_source_growth_defeats_noop(
        self, transport: Articulation
    ) -> None:
        engine = OntologyInferenceEngine.from_articulation(transport)
        carrier = transport.sources["carrier"]
        carrier.ensure_term("Tricycle")
        carrier.add_subclass("Tricycle", "Cars")
        refresh = engine.refresh_from_articulation(transport)
        assert refresh["mode"] == "incremental"
        assert refresh["added"] >= 1
        assert engine.implies("carrier:Tricycle", "carrier:Cars")

    def test_different_articulation_object_never_noop(
        self, transport: Articulation
    ) -> None:
        engine = OntologyInferenceEngine.from_articulation(transport)
        other = generate_transport_articulation()
        refresh = engine.refresh_from_articulation(other)
        assert refresh["mode"] != "noop"

    def test_stamp_pins_articulation_object(
        self, transport: Articulation
    ) -> None:
        """The noop stamp holds the articulation itself (not its id),
        so a recycled address can never false-match."""
        engine = OntologyInferenceEngine.from_articulation(transport)
        assert engine._stamp_articulation is transport
