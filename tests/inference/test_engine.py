"""Unit tests for the ontology-level inference engine."""

from __future__ import annotations

import pytest

from repro.core.articulation import Articulation
from repro.core.ontology import Ontology
from repro.core.rules import ImplicationRule
from repro.errors import ContradictionError
from repro.inference.engine import OntologyInferenceEngine


@pytest.fixture
def engine(transport: Articulation) -> OntologyInferenceEngine:
    return OntologyInferenceEngine.from_articulation(transport)


class TestSingleOntology:
    def test_transitive_subclass(self, carrier: Ontology) -> None:
        engine = OntologyInferenceEngine.from_ontology(carrier)
        assert engine.is_subclass("Car", "Transportation")
        assert engine.is_subclass("SUV", "Carrier")

    def test_subclass_reflexive_by_convention(self, carrier: Ontology) -> None:
        engine = OntologyInferenceEngine.from_ontology(carrier)
        assert engine.is_subclass("Car", "Car")

    def test_subclass_directed(self, carrier: Ontology) -> None:
        engine = OntologyInferenceEngine.from_ontology(carrier)
        assert not engine.is_subclass("Transportation", "Car")

    def test_superclasses_subclasses(self, carrier: Ontology) -> None:
        engine = OntologyInferenceEngine.from_ontology(carrier)
        assert engine.superclasses("Car") == {
            "Cars",
            "Carrier",
            "Transportation",
        }
        assert "SUV" in engine.subclasses("Carrier")

    def test_instances_lift_through_subclass(self, carrier: Ontology) -> None:
        engine = OntologyInferenceEngine.from_ontology(carrier)
        assert "MyCar" in engine.instances_of("Cars")
        assert "MyCar" in engine.instances_of("Transportation")

    def test_custom_symmetric_relation(self) -> None:
        from repro.core.relations import RelationType

        onto = Ontology("o")
        onto.registry.register(
            RelationType("AdjacentTo", "ADJ", symmetric=True)
        )
        onto.add_term("A")
        onto.add_term("B")
        onto.relate("A", "AdjacentTo", "B")
        engine = OntologyInferenceEngine.from_ontology(onto)
        assert engine.engine.holds(("ADJ", "B", "A"))


class TestArticulationReasoning:
    def test_cross_ontology_implication(
        self, engine: OntologyInferenceEngine
    ) -> None:
        assert engine.implies("carrier:Car", "factory:Vehicle")

    def test_local_plus_bridge_composition(
        self, engine: OntologyInferenceEngine
    ) -> None:
        assert engine.implies("factory:Truck", "transport:CargoCarrierVehicle")
        assert engine.implies("factory:Truck", "carrier:Trucks")

    def test_implies_reflexive(self, engine: OntologyInferenceEngine) -> None:
        assert engine.implies("carrier:Car", "carrier:Car")

    def test_functional_bridges_carry_no_subsumption(
        self, engine: OntologyInferenceEngine
    ) -> None:
        assert not engine.implies("carrier:PoundSterling", "transport:Euro")

    def test_specializations_generalizations(
        self, engine: OntologyInferenceEngine
    ) -> None:
        specs = engine.specializations("transport:Vehicle")
        assert "carrier:Car" in specs
        gens = engine.generalizations("carrier:Car")
        assert "factory:Vehicle" in gens

    def test_equivalence_classes_detect_si_cycle(
        self, engine: OntologyInferenceEngine
    ) -> None:
        groups = engine.equivalence_classes()
        assert any(
            {"factory:Vehicle", "transport:Vehicle"} <= group
            for group in groups
        )


class TestDerivedRules:
    def test_derived_rules_are_cross_ontology_and_new(
        self, engine: OntologyInferenceEngine
    ) -> None:
        derived = engine.derived_rules()
        assert derived, "expected the engine to derive new rules"
        for rule in derived:
            assert rule.source == "inferred"
            ontologies = rule.ontologies()
            assert len(ontologies) == 2

    def test_derived_rules_exclude_stated_rules(
        self, engine: OntologyInferenceEngine, transport: Articulation
    ) -> None:
        stated = {str(r) for r in transport.rules.implications()}
        derived = {str(r) for r in engine.derived_rules()}
        assert not (stated & derived)

    def test_specific_expected_derivation(
        self, engine: OntologyInferenceEngine
    ) -> None:
        """factory:Truck => carrier:Trucks follows from the conjunction
        rule + factory's local hierarchy; it was never stated."""
        derived = {str(r) for r in engine.derived_rules()}
        assert "factory:Truck => carrier:Trucks" in derived


class TestConsistency:
    def test_no_contradictions_without_disjointness(
        self, engine: OntologyInferenceEngine
    ) -> None:
        assert engine.contradictions() == []
        engine.check_consistency()  # must not raise

    def test_disjointness_violation_detected(
        self, engine: OntologyInferenceEngine
    ) -> None:
        # Cars and Trucks are declared disjoint, but the articulation
        # bridges factory:Vehicle under CarsTrucks and Truck under
        # Trucks while Truck also reaches Vehicle -> no single term
        # lands in both here; instead manufacture a violation:
        engine.declare_disjoint("carrier:Cars", "carrier:Trucks")
        engine.engine.add_fact(("implies", "carrier:SUV", "carrier:Trucks"))
        found = engine.contradictions()
        assert any(term == "carrier:SUV" for term, _a, _b in found)
        with pytest.raises(ContradictionError):
            engine.check_consistency()

    def test_disjointness_is_symmetric(
        self, engine: OntologyInferenceEngine
    ) -> None:
        engine.declare_disjoint("carrier:Cars", "carrier:Trucks")
        engine.engine.add_fact(("implies", "carrier:SUV", "carrier:Trucks"))
        pairs = {
            (a, b) for _t, a, b in engine.contradictions()
        }
        assert ("carrier:Cars", "carrier:Trucks") in pairs
        assert ("carrier:Trucks", "carrier:Cars") in pairs


class TestStrategiesAgree:
    def test_naive_matches_seminaive_on_articulation(
        self, transport: Articulation
    ) -> None:
        semi = OntologyInferenceEngine.from_articulation(
            transport, strategy="seminaive"
        )
        naive = OntologyInferenceEngine.from_articulation(
            transport, strategy="naive"
        )
        assert semi.engine.facts() == naive.engine.facts()
