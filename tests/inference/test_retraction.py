"""Incremental retraction (DRed): overdelete, rederive, and parity.

The contract under test: after any interleaving of fact/clause
additions and retractions, a long-lived engine answers exactly like a
fresh engine saturated from scratch over the surviving base facts and
clauses.  The hypothesis suites drive that with the reusable churn
script generator in :mod:`tests.support.churn_scripts`; the unit tests
nail the DRed-specific behaviors — alternate-proof survival, base
facts shielding their cone, clause retraction after fixpoint, index
maintenance in the store, and work proportional to the cone.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.core.rules import HornClause
from repro.errors import InferenceError
from repro.inference.goal import GoalDirectedEngine
from repro.inference.horn import FactStore, HornEngine

from tests.support.churn_scripts import (
    CLAUSE_POOL,
    TRANS,
    LIFT,
    IMPL_TRANS,
    INSTANCE,
    churn_scripts,
    oracle_engine,
    oracle_states,
    replay_incremental,
)

PROGRAM = (TRANS, LIFT, IMPL_TRANS, INSTANCE)


def chain(n: int, skip: int | None = None) -> list[tuple[str, str, str]]:
    return [
        ("S", f"n{i}", f"n{i+1}") for i in range(n) if i != skip
    ]


def saturated(facts, clauses=PROGRAM) -> HornEngine:
    engine = HornEngine()
    engine.add_clauses(clauses)
    engine.add_facts(facts)
    engine.saturate()
    return engine


# ----------------------------------------------------------------------
# FactStore.remove and the deletion-delta overlay
# ----------------------------------------------------------------------
class TestFactStoreRemove:
    def test_local_remove_maintains_every_index(self) -> None:
        store = FactStore()
        store.add(("S", "a", "b"))
        store.add(("S", "a", "c"))
        assert store.remove(("S", "a", "b"))
        assert ("S", "a", "b") not in store
        assert list(store.pool("S")) == [("S", "a", "c")]
        assert store.pool_size("S") == 1
        assert list(store.probe("S", 1, "a")) == [("S", "a", "c")]
        assert store.probe_size("S", 2, "b") == 0
        assert list(store.probe("S", 2, "b")) == []
        assert len(store) == 1

    def test_remove_absent_is_false(self) -> None:
        store = FactStore()
        assert not store.remove(("S", "a", "b"))
        store.add(("S", "a", "b"))
        assert store.remove(("S", "a", "b"))
        assert not store.remove(("S", "a", "b"))

    def test_removing_last_fact_of_predicate_drops_pools(self) -> None:
        store = FactStore()
        store.add(("S", "a", "b"))
        store.remove(("S", "a", "b"))
        assert store.predicates() == set()
        assert list(store.iter_facts()) == []

    def test_overlay_remove_is_a_tombstone(self) -> None:
        base = FactStore()
        base.add(("S", "a", "b"))
        base.add(("S", "b", "c"))
        overlay = FactStore(base=base)
        assert overlay.remove(("S", "a", "b"))
        # the overlay no longer sees the fact anywhere...
        assert ("S", "a", "b") not in overlay
        assert list(overlay.pool("S")) == [("S", "b", "c")]
        assert overlay.pool_size("S") == 1
        assert list(overlay.probe("S", 1, "a")) == []
        assert overlay.probe_size("S", 1, "a") == 0
        assert len(overlay) == 1
        assert set(overlay.iter_facts()) == {("S", "b", "c")}
        # ...but the base store is untouched.
        assert ("S", "a", "b") in base
        assert base.pool_size("S") == 2

    def test_overlay_add_lifts_the_tombstone(self) -> None:
        base = FactStore()
        base.add(("S", "a", "b"))
        overlay = FactStore(base=base)
        overlay.remove(("S", "a", "b"))
        assert overlay.add(("S", "a", "b"))
        assert ("S", "a", "b") in overlay
        assert overlay.pool_size("S") == 1
        assert overlay.probe_size("S", 2, "b") == 1
        assert len(overlay) == 1
        # lifting is not a local copy: nothing to unlink locally
        assert not overlay._facts

    def test_overlay_respects_visibility(self) -> None:
        base = FactStore()
        base.add(("S", "a", "b"))
        base.add(("T", "a", "b"))
        overlay = FactStore(base=base, visible=frozenset({"S"}))
        assert not overlay.remove(("T", "a", "b"))  # never visible
        assert overlay.remove(("S", "a", "b"))
        assert len(overlay) == 0


# ----------------------------------------------------------------------
# DRed unit behavior
# ----------------------------------------------------------------------
class TestRetractFact:
    def test_alternate_proof_survives(self) -> None:
        """The diamond: (a,d) keeps its second derivation."""
        engine = saturated(
            [
                ("S", "a", "b"),
                ("S", "b", "d"),
                ("S", "a", "c"),
                ("S", "c", "d"),
            ],
            clauses=(TRANS,),
        )
        assert engine.retract_fact(("S", "a", "b"))
        assert not engine.holds(("S", "a", "b"))
        assert engine.holds(("S", "a", "d"))
        assert engine.last_stats["mode"] == "retract"
        assert engine.last_stats["rederived"] >= 1

    def test_chain_retraction_matches_scratch(self) -> None:
        engine = saturated(chain(10), clauses=(TRANS,))
        engine.retract_fact(("S", "n4", "n5"))
        assert engine.facts() == saturated(
            chain(10, skip=4), clauses=(TRANS,)
        ).facts()

    def test_asserted_fact_shields_its_cone(self) -> None:
        """A fact asserted as base survives losing its derivation, and
        so does everything downstream of it."""
        engine = saturated(
            [("S", "a", "b"), ("S", "b", "c"), ("S", "c", "d")],
            clauses=(TRANS,),
        )
        engine.add_fact(("S", "a", "c"))  # already derived; now base too
        engine.retract_fact(("S", "a", "b"))
        assert engine.holds(("S", "a", "c"))
        assert engine.holds(("S", "a", "d"))
        assert not engine.holds(("S", "a", "b"))

    def test_retracting_derived_fact_is_refused(self) -> None:
        engine = saturated(chain(3), clauses=(TRANS,))
        assert engine.holds(("S", "n0", "n2"))
        assert not engine.retract_fact(("S", "n0", "n2"))  # never asserted
        assert engine.holds(("S", "n0", "n2"))

    def test_retract_then_readd_before_saturation(self) -> None:
        engine = saturated(chain(5), clauses=(TRANS,))
        engine.retract_fact(("S", "n2", "n3"))
        engine.add_fact(("S", "n2", "n3"))
        assert engine.facts() == saturated(chain(5), clauses=(TRANS,)).facts()

    def test_retract_and_add_in_one_batch(self) -> None:
        engine = saturated(chain(5), clauses=(TRANS,))
        engine.retract_fact(("S", "n2", "n3"))
        engine.add_fact(("S", "n2", "x"))
        expected = saturated(
            chain(5, skip=2) + [("S", "n2", "x")], clauses=(TRANS,)
        )
        assert engine.facts() == expected.facts()
        assert engine.last_stats["mode"] == "retract"

    def test_base_overlay_facts_are_shielded_from_overdeletion(
        self,
    ) -> None:
        """Facts supplied through a FactStore base overlay are
        extensional input too: the DRed cone must never swallow them
        (seminaive must agree with the replay-from-base fallback)."""
        for strategy in ("seminaive", "naive"):
            base = FactStore()
            base.add(("S", "a", "c"))
            engine = HornEngine(
                strategy=strategy, store=FactStore(base=base)
            )
            engine.add_clause(TRANS)
            engine.add_fact(("S", "a", "b"))
            engine.add_fact(("S", "b", "c"))
            engine.saturate()
            engine.retract_fact(("S", "b", "c"))
            assert engine.holds(("S", "a", "c")), strategy
            assert not engine.holds(("S", "b", "c")), strategy

    def test_non_ground_retraction_raises(self) -> None:
        engine = HornEngine()
        with pytest.raises(InferenceError):
            engine.retract_fact(("S", "?x", "b"))

    def test_shielded_base_fact_explains_itself(self) -> None:
        """A base-asserted fact whose recorded proof cites a retracted
        premise must fall back to self-explanation, never cite a fact
        that no longer holds."""
        engine = saturated(
            [("S", "a", "b"), ("S", "b", "c")], clauses=(TRANS,)
        )
        engine.add_fact(("S", "a", "c"))  # derived earlier, now base too
        engine.retract_fact(("S", "a", "b"))
        engine.saturate()
        assert engine.explain(("S", "a", "c")) == [("S", "a", "c")]

    def test_explanations_stay_grounded_in_surviving_base(self) -> None:
        engine = saturated(
            [
                ("S", "a", "b"),
                ("S", "b", "d"),
                ("S", "a", "c"),
                ("S", "c", "d"),
            ]
        )
        engine.retract_fact(("S", "a", "b"))
        for atom in engine.facts():
            explanation = engine.explain(atom)
            assert explanation
            assert set(explanation) <= engine.base_facts()


class TestRetractClause:
    def test_clause_retraction_after_fixpoint(self) -> None:
        engine = saturated(chain(4), clauses=(TRANS, LIFT))
        assert engine.holds(("implies", "n0", "n3"))
        assert engine.retract_clause(LIFT)
        assert engine.facts("implies") == set()
        assert engine.facts() == saturated(
            chain(4), clauses=(TRANS,)
        ).facts()
        assert engine.last_stats["mode"] == "retract"

    def test_unknown_clause_is_refused(self) -> None:
        engine = saturated(chain(3), clauses=(TRANS,))
        assert not engine.retract_clause(LIFT)
        assert engine.retract_clause(TRANS)
        assert not engine.retract_clause(TRANS)

    def test_pending_clause_is_dequeued(self) -> None:
        """Retracting a clause that was queued but never propagated
        must not cost an overdeletion pass."""
        engine = saturated(chain(4), clauses=(TRANS,))
        engine.add_clause(LIFT)
        assert engine.retract_clause(LIFT)
        assert engine.saturate() == 0  # nothing pending anymore
        assert engine.facts("implies") == set()

    def test_bodiless_clause_retracts_its_fact(self) -> None:
        engine = HornEngine()
        engine.add_clause(HornClause(("S", "a", "b"), ()))
        engine.saturate()
        assert engine.retract_clause(HornClause(("S", "a", "b"), ()))
        assert engine.facts() == set()

    def test_interleaved_clause_and_fact_churn(self) -> None:
        engine = saturated(chain(4), clauses=(TRANS, LIFT, IMPL_TRANS))
        engine.retract_clause(IMPL_TRANS)
        engine.retract_fact(("S", "n1", "n2"))
        engine.add_fact(("instance_of", "o1", "n0"))
        engine.add_clause(INSTANCE)
        expected = oracle_engine(
            set(chain(4, skip=1)) | {("instance_of", "o1", "n0")},
            [TRANS, LIFT, INSTANCE],
        )
        assert engine.facts() == expected.facts()


class TestFallbackPaths:
    def test_naive_strategy_replays_from_base(self) -> None:
        engine = HornEngine(strategy="naive")
        engine.add_clause(TRANS)
        engine.add_facts(chain(6))
        engine.saturate()
        engine.retract_fact(("S", "n2", "n3"))
        assert engine.facts() == saturated(
            chain(6, skip=2), clauses=(TRANS,)
        ).facts()

    def test_unsaturated_engine_retracts_exactly(self) -> None:
        engine = HornEngine()
        engine.add_clause(TRANS)
        engine.add_facts(chain(6))
        engine.retract_fact(("S", "n2", "n3"))  # before first fixpoint
        # Nothing was ever derived, so the fact is unlinked in place —
        # no store replay is queued.
        assert not engine._needs_rebuild
        assert ("S", "n2", "n3") not in engine.store
        assert engine.facts() == saturated(
            chain(6, skip=2), clauses=(TRANS,)
        ).facts()

    def test_bounded_rounds_after_retraction_replay_from_base(self) -> None:
        engine = saturated(chain(9), clauses=(TRANS,))
        engine.retract_fact(("S", "n0", "n1"))
        engine.saturate(max_rounds=1)
        fresh = HornEngine()
        fresh.add_clause(TRANS)
        fresh.add_facts(chain(9, skip=0))
        fresh.saturate(max_rounds=1)
        assert engine._facts == fresh._facts

    def test_replay_preserves_external_tombstones_and_store(self) -> None:
        """The replay fallback must not resurrect facts an external
        overlay owner tombstoned, nor detach the caller's store."""
        base = FactStore()
        base.add(("S", "a", "b"))
        overlay = FactStore(base=base)
        overlay.remove(("S", "a", "b"))  # owner's deletion delta
        engine = HornEngine(strategy="naive", store=overlay)
        engine.add_clause(TRANS)
        engine.add_facts([("S", "b", "c"), ("S", "x", "y")])
        engine.saturate()
        assert not engine.holds(("S", "a", "c"))
        engine.retract_fact(("S", "x", "y"))  # naive -> replay-from-base
        assert not engine.holds(("S", "a", "c"))  # tombstone survived
        assert not engine.holds(("S", "a", "b"))
        assert engine.store is overlay  # same object the caller owns

    def test_goal_directed_engine_forgets_removed_facts(self) -> None:
        engine = GoalDirectedEngine()
        engine.add_clauses([TRANS, LIFT])
        engine.add_facts(chain(5))
        assert engine.holds(("implies", "n0", "n4"))
        assert engine.remove_fact(("S", "n2", "n3"))
        assert not engine.holds(("implies", "n0", "n4"))
        assert engine.holds(("implies", "n0", "n2"))
        assert not engine.remove_fact(("S", "n2", "n3"))

    def test_goal_directed_engine_retracts_clauses(self) -> None:
        engine = GoalDirectedEngine()
        engine.add_clauses([TRANS, LIFT])
        engine.add_facts(chain(4))
        assert engine.holds(("implies", "n0", "n3"))
        assert engine.retract_clause(TRANS)
        assert not engine.holds(("implies", "n0", "n3"))
        assert engine.holds(("implies", "n0", "n1"))
        assert not engine.retract_clause(TRANS)

    def test_goal_directed_duplicate_adds_retract_fully(self) -> None:
        """add_clause dedups (HornEngine parity), so one retraction
        removes the clause no matter how often it was added."""
        engine = GoalDirectedEngine()
        engine.add_clause(TRANS)
        engine.add_clause(TRANS)
        engine.add_facts(chain(3))
        assert engine.holds(("S", "n0", "n2"))
        assert engine.retract_clause(TRANS)
        assert not engine.holds(("S", "n0", "n2"))


# ----------------------------------------------------------------------
# retraction must do work proportional to the cone, not the database
# ----------------------------------------------------------------------
class TestRetractionWork:
    def test_single_retraction_beats_rebuild_asymptotically(self) -> None:
        """Retracting one base fact from the saturated 80-node closure
        must examine a small fraction of a rebuild's join candidates
        (the acceptance-criteria counter check; the benchmark records
        the same numbers in BENCH_retraction.json)."""
        n = 80
        engine = saturated(chain(n), clauses=(TRANS,))
        engine.retract_fact(("S", f"n{n-1}", f"n{n}"))
        engine.saturate()
        retract_stats = dict(engine.last_stats)

        rebuild = saturated(chain(n, skip=n - 1), clauses=(TRANS,))
        rebuild_stats = dict(rebuild.last_stats)

        assert engine.facts() == rebuild.facts()
        assert retract_stats["mode"] == "retract"
        # the cone: the retracted edge plus every derived (i, n) span
        assert retract_stats["overdeleted"] == n
        assert retract_stats["rederived"] == 0
        assert (
            retract_stats["candidates"] * 5 < rebuild_stats["candidates"]
        )

    def test_middle_retraction_still_tracks_cone(self) -> None:
        n = 40
        engine = saturated(chain(n), clauses=(TRANS,))
        engine.retract_fact(("S", "n20", "n21"))
        engine.saturate()
        stats = dict(engine.last_stats)
        # spans crossing the cut: (i <= 20) x (j >= 21)
        assert stats["overdeleted"] == 21 * 20
        rebuild = saturated(chain(n, skip=20), clauses=(TRANS,))
        assert engine.facts() == rebuild.facts()


# ----------------------------------------------------------------------
# hypothesis churn parity: incremental == from-scratch, every step
# ----------------------------------------------------------------------
class TestChurnScriptParity:
    @given(churn_scripts())
    @settings(max_examples=50, deadline=None)
    def test_stepwise_parity_stratified(self, script) -> None:
        _, snapshots = replay_incremental(script, seed_clauses=(TRANS,))
        assert snapshots == oracle_states(script, seed_clauses=(TRANS,))

    @given(churn_scripts())
    @settings(max_examples=30, deadline=None)
    def test_stepwise_parity_flat(self, script) -> None:
        _, snapshots = replay_incremental(
            script, scheduling="flat", seed_clauses=(TRANS,)
        )
        assert snapshots == oracle_states(script, seed_clauses=(TRANS,))

    @given(churn_scripts())
    @settings(max_examples=25, deadline=None)
    def test_stepwise_parity_naive(self, script) -> None:
        _, snapshots = replay_incremental(
            script, strategy="naive", seed_clauses=(TRANS,)
        )
        assert snapshots == oracle_states(script, seed_clauses=(TRANS,))

    @given(churn_scripts(max_ops=20))
    @settings(max_examples=30, deadline=None)
    def test_batched_saturation_parity(self, script) -> None:
        """Saturating every third op exercises mixed pending queues —
        additions and retractions outstanding at once."""
        _, snapshots = replay_incremental(
            script, saturate_every=3, seed_clauses=CLAUSE_POOL
        )
        assert snapshots == oracle_states(
            script, saturate_every=3, seed_clauses=CLAUSE_POOL
        )

    @given(churn_scripts())
    @settings(max_examples=25, deadline=None)
    def test_holds_and_explain_after_churn(self, script) -> None:
        engine, _ = replay_incremental(script, seed_clauses=(TRANS, LIFT))
        base = engine.base_facts()
        for atom in sorted(engine.facts())[:10]:
            assert engine.holds(atom)
            assert set(engine.explain(atom)) <= base
