"""A hypothesis generator for churn scripts, plus replay harnesses.

A *churn script* is a random interleaving of the four mutations the
incremental Horn engine supports after a fixpoint — ``add_fact``,
``retract_fact``, ``add_clause``, ``retract_clause`` — over a small
universe of closure/lift/instance clauses and chain-ish facts.  The
harness replays a script two ways:

* :func:`replay_incremental` feeds every operation into one long-lived
  :class:`~repro.inference.horn.HornEngine`, saturating at the chosen
  checkpoints, so additions ride delta propagation and retractions
  ride the DRed overdelete/rederive pass;
* :func:`oracle_states` folds the same script into plain sets (the
  surviving base facts and clauses after each step) and saturates a
  **fresh** engine from scratch per checkpoint — the ground truth the
  incremental engine must match exactly.

Scripts deliberately include no-op edits (retracting facts that were
never asserted, re-adding live facts, retracting clauses twice): the
oracle defines their semantics, and the parity suites assert the
incremental engine agrees after *every* step, not just at the end.
"""

from __future__ import annotations

from dataclasses import dataclass

from hypothesis import strategies as st

from repro.core.rules import HornClause
from repro.inference.horn import Atom, HornEngine

__all__ = [
    "CLAUSE_POOL",
    "ChurnOp",
    "churn_scripts",
    "oracle_engine",
    "oracle_states",
    "replay_incremental",
]

TRANS = HornClause(
    ("S", "?x", "?z"), (("S", "?x", "?y"), ("S", "?y", "?z"))
)
LIFT = HornClause(("implies", "?x", "?y"), (("S", "?x", "?y"),))
IMPL_TRANS = HornClause(
    ("implies", "?x", "?z"),
    (("implies", "?x", "?y"), ("implies", "?y", "?z")),
)
INSTANCE = HornClause(
    ("instance_of", "?o", "?c2"),
    (("instance_of", "?o", "?c1"), ("implies", "?c1", "?c2")),
)
SYM = HornClause(("E", "?y", "?x"), (("E", "?x", "?y"),))
E_LIFT = HornClause(("S", "?x", "?y"), (("E", "?x", "?y"),))

CLAUSE_POOL: tuple[HornClause, ...] = (
    TRANS,
    LIFT,
    IMPL_TRANS,
    INSTANCE,
    SYM,
    E_LIFT,
)


@dataclass(frozen=True)
class ChurnOp:
    """One scripted edit: kind plus its fact or clause-pool payload."""

    kind: str  # add_fact | retract_fact | add_clause | retract_clause
    fact: Atom | None = None
    clause_index: int | None = None


def _node(i: int) -> str:
    return f"v{i}"


_fact_atoms = st.one_of(
    st.tuples(
        st.just("S"),
        st.integers(0, 5).map(_node),
        st.integers(0, 5).map(_node),
    ),
    st.tuples(
        st.just("E"),
        st.integers(0, 5).map(_node),
        st.integers(0, 5).map(_node),
    ),
    st.tuples(
        st.just("instance_of"),
        st.integers(0, 2).map(lambda i: f"o{i}"),
        st.integers(0, 5).map(_node),
    ),
)

_ops = st.one_of(
    st.builds(ChurnOp, kind=st.just("add_fact"), fact=_fact_atoms),
    st.builds(ChurnOp, kind=st.just("retract_fact"), fact=_fact_atoms),
    st.builds(
        ChurnOp,
        kind=st.just("add_clause"),
        clause_index=st.integers(0, len(CLAUSE_POOL) - 1),
    ),
    st.builds(
        ChurnOp,
        kind=st.just("retract_clause"),
        clause_index=st.integers(0, len(CLAUSE_POOL) - 1),
    ),
)


def churn_scripts(
    *, max_ops: int = 14, min_ops: int = 1
) -> st.SearchStrategy[list[ChurnOp]]:
    """Random add/retract interleavings over the clause pool.

    Retractions are drawn from the same distributions as additions, so
    scripts naturally mix genuine deletions with no-op retractions of
    facts and clauses that are not (or no longer) present.
    """
    return st.lists(_ops, min_size=min_ops, max_size=max_ops)


def _apply(engine: HornEngine, op: ChurnOp) -> None:
    if op.kind == "add_fact":
        engine.add_fact(op.fact)
    elif op.kind == "retract_fact":
        engine.retract_fact(op.fact)
    elif op.kind == "add_clause":
        engine.add_clause(CLAUSE_POOL[op.clause_index])
    elif op.kind == "retract_clause":
        engine.retract_clause(CLAUSE_POOL[op.clause_index])
    else:  # pragma: no cover - defensive
        raise ValueError(f"unknown churn op kind {op.kind!r}")


def replay_incremental(
    script: list[ChurnOp],
    *,
    strategy: str = "seminaive",
    scheduling: str = "stratified",
    saturate_every: int = 1,
    seed_clauses: tuple[HornClause, ...] = (),
    storage: str = "memory",
    workers: int = 1,
    retry_policy=None,
    fault_plan=None,
) -> tuple[HornEngine, list[set[Atom]]]:
    """Replay a script into one engine; snapshot facts per checkpoint.

    ``saturate_every=k`` saturates (and snapshots) after every ``k``-th
    operation and once more at the end, so parity is checked mid-flight
    — including states where additions and retractions are queued
    together — not only after the final op.  ``workers>1`` routes
    every saturation through the parallel stratum scheduler; a
    ``fault_plan`` injects seeded chaos into those saturations (the
    snapshots must still equal the fault-free oracle).
    ``storage="paged"`` runs the whole script against the disk-backed
    :class:`~repro.kb.pagestore.PagedFactStore` (a RAM-resident SQLite
    database, so the paging machinery is exercised at test speed).
    """
    engine = HornEngine(
        strategy=strategy,
        scheduling=scheduling,
        storage=storage,
        storage_path=":memory:" if storage == "paged" else None,
        workers=workers,
        retry_policy=retry_policy,
        fault_plan=fault_plan,
    )
    engine.add_clauses(seed_clauses)
    snapshots: list[set[Atom]] = []
    for index, op in enumerate(script):
        _apply(engine, op)
        if (index + 1) % saturate_every == 0:
            engine.saturate()
            snapshots.append(engine.facts())
    engine.saturate()
    snapshots.append(engine.facts())
    return engine, snapshots


def oracle_engine(
    base_facts: set[Atom], clauses: list[HornClause]
) -> HornEngine:
    """A fresh from-scratch saturation over exactly these inputs."""
    engine = HornEngine()
    engine.add_clauses(clauses)
    engine.add_facts(sorted(base_facts))
    engine.saturate()
    return engine


def oracle_states(
    script: list[ChurnOp],
    *,
    saturate_every: int = 1,
    seed_clauses: tuple[HornClause, ...] = (),
) -> list[set[Atom]]:
    """From-scratch ground truth at every checkpoint of the script.

    Folds the script into (base facts, clause list) with plain set
    semantics — an engine-free model of what should survive — and
    saturates a fresh engine per checkpoint.
    """
    base: set[Atom] = set()
    clauses: list[HornClause] = list(seed_clauses)
    states: list[set[Atom]] = []
    for index, op in enumerate(script):
        if op.kind == "add_fact":
            base.add(op.fact)
        elif op.kind == "retract_fact":
            base.discard(op.fact)
        elif op.kind == "add_clause":
            clause = CLAUSE_POOL[op.clause_index]
            if clause not in clauses:
                clauses.append(clause)
        elif op.kind == "retract_clause":
            clause = CLAUSE_POOL[op.clause_index]
            if clause in clauses:
                clauses.remove(clause)
        if (index + 1) % saturate_every == 0:
            states.append(oracle_engine(base, clauses).facts())
    states.append(oracle_engine(base, clauses).facts())
    return states
