"""Reusable test infrastructure shared across test packages."""
