"""The ``serve`` and ``loadgen`` CLI subcommands: argument parsing
plus a live round trip on an ephemeral port."""

from __future__ import annotations

import http.client
import json
from pathlib import Path

import pytest

from repro.cli import build_parser, build_server, main
from repro.formats import adjacency
from repro.kb.serialize import save_store
from repro.workloads.loadgen import run_load
from repro.workloads.paper_example import (
    carrier_ontology,
    carrier_store,
    factory_ontology,
    factory_store,
)

RULES_TEXT = "carrier:Car => factory:Vehicle\n"


@pytest.fixture
def world(tmp_path: Path) -> dict[str, Path]:
    paths = {}
    for onto in (carrier_ontology(), factory_ontology()):
        path = tmp_path / f"{onto.name}.adj"
        adjacency.dump(onto, path)
        paths[onto.name] = path
    rules = tmp_path / "rules.txt"
    rules.write_text(RULES_TEXT)
    paths["rules"] = rules
    carrier_json = tmp_path / "carrier.json"
    save_store(carrier_store(), carrier_json)
    paths["carrier_kb"] = carrier_json
    return paths


class TestArgParsing:
    def test_serve_defaults(self) -> None:
        args = build_parser().parse_args(["serve", "--workload", "paper"])
        assert args.host == "127.0.0.1"
        assert args.port == 8707
        assert args.sessions == 256
        assert args.cache_size == 512
        assert args.workers == 1
        assert args.journal is None
        assert args.pushdown is False

    def test_serve_overrides(self) -> None:
        args = build_parser().parse_args(
            [
                "serve",
                "a.adj",
                "b.adj",
                "--rules",
                "r.txt",
                "--port",
                "0",
                "--journal",
                "j.log",
                "--sessions",
                "16",
                "--cache-size",
                "64",
                "--pushdown",
            ]
        )
        assert args.sources == ["a.adj", "b.adj"]
        assert args.port == 0
        assert args.journal == "j.log"
        assert args.sessions == 16
        assert args.pushdown is True

    def test_serve_rejects_unknown_workload(self, capsys) -> None:
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--workload", "nope"])

    def test_loadgen_defaults(self) -> None:
        args = build_parser().parse_args(["loadgen"])
        assert args.port == 8707
        assert args.clients == 8
        assert args.requests == 40
        assert args.zipf_s == pytest.approx(1.1)
        assert args.churn_batches == 5
        assert args.json is False

    def test_loadgen_overrides(self) -> None:
        args = build_parser().parse_args(
            ["loadgen", "--clients", "2", "--requests", "5", "--json"]
        )
        assert args.clients == 2
        assert args.requests == 5
        assert args.json is True


class TestBuildServer:
    def test_paper_workload_server(self) -> None:
        args = build_parser().parse_args(
            ["serve", "--workload", "paper", "--port", "0"]
        )
        server = build_server(args)
        assert server.service.health()["status"] == "ok"
        server.httpd.server_close()

    def test_sources_and_rules_server(self, world) -> None:
        args = build_parser().parse_args(
            [
                "serve",
                str(world["carrier"]),
                str(world["factory"]),
                "--rules",
                str(world["rules"]),
                "--kb",
                f"carrier={world['carrier_kb']}",
                "--port",
                "0",
            ]
        )
        server = build_server(args)
        try:
            health = server.service.health()
            assert health["status"] == "ok"
            answer = server.service.infer(
                {"op": "generalizations", "term": "carrier:Car"}
            )
            assert "factory:Vehicle" in answer["terms"]
        finally:
            server.httpd.server_close()

    def test_empty_server_awaits_registration(self) -> None:
        args = build_parser().parse_args(["serve", "--port", "0"])
        server = build_server(args)
        assert server.service.health()["status"] == "empty"
        server.httpd.server_close()


class TestLiveRoundTrip:
    def test_serve_then_loadgen_over_http(self) -> None:
        args = build_parser().parse_args(
            ["serve", "--workload", "paper", "--port", "0"]
        )
        server = build_server(args)
        with server:
            report = run_load(
                server.host,
                server.port,
                clients=3,
                requests_per_client=6,
                churn_batches=1,
                churn_mutations=2,
            )
        assert report.errors == 0
        assert report.isolation_violations == 0
        assert report.requests == 3 * 6

    def test_loadgen_exit_codes_and_json(self, capsys) -> None:
        args = build_parser().parse_args(
            ["serve", "--workload", "paper", "--port", "0"]
        )
        server = build_server(args)
        with server:
            rc = main(
                [
                    "loadgen",
                    "--port",
                    str(server.port),
                    "--clients",
                    "2",
                    "--requests",
                    "4",
                    "--churn-batches",
                    "1",
                    "--json",
                ]
            )
        assert rc == 0
        report = json.loads(capsys.readouterr().out)
        assert report["errors"] == 0
        assert report["isolation_violations"] == 0

    def test_loadgen_against_dead_port_fails(self) -> None:
        # grab a port that nothing listens on
        import socket

        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        with pytest.raises(Exception):
            run_load(
                "127.0.0.1",
                port,
                clients=1,
                requests_per_client=1,
                churn_batches=0,
            )

    def test_health_over_http_from_cli_server(self) -> None:
        args = build_parser().parse_args(
            ["serve", "--workload", "paper", "--port", "0"]
        )
        server = build_server(args)
        with server:
            conn = http.client.HTTPConnection(
                server.host, server.port, timeout=10
            )
            try:
                conn.request("GET", "/health")
                response = conn.getresponse()
                body = json.loads(response.read())
                assert response.status == 200
                assert body["status"] == "ok"
            finally:
                conn.close()
