"""The server-wide query-result cache: LRU, keys, invalidation."""

from __future__ import annotations

import threading

import pytest

from repro.serving import QueryResultCache


class TestBasics:
    def test_miss_then_hit(self) -> None:
        cache = QueryResultCache(maxsize=4)
        key = QueryResultCache.key("query", "SELECT x", (1, 2), 0)
        assert cache.get(key) is None
        cache.put(key, ["row"])
        assert cache.get(key) == ["row"]
        stats = cache.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1

    def test_key_distinguishes_every_component(self) -> None:
        base = QueryResultCache.key("query", "q", (1,), 0)
        assert QueryResultCache.key("infer", "q", (1,), 0) != base
        assert QueryResultCache.key("query", "q2", (1,), 0) != base
        assert QueryResultCache.key("query", "q", (2,), 0) != base
        assert QueryResultCache.key("query", "q", (1,), 1) != base

    def test_lru_evicts_oldest(self) -> None:
        cache = QueryResultCache(maxsize=2)
        keys = [QueryResultCache.key("q", str(i), None, 0) for i in range(3)]
        cache.put(keys[0], 0)
        cache.put(keys[1], 1)
        assert cache.get(keys[0]) == 0  # refresh key 0
        cache.put(keys[2], 2)  # evicts key 1, not key 0
        assert cache.get(keys[1]) is None
        assert cache.get(keys[0]) == 0
        assert len(cache) == 2

    def test_invalidate_drops_everything(self) -> None:
        cache = QueryResultCache()
        for i in range(5):
            cache.put(QueryResultCache.key("q", str(i), None, 0), i)
        assert cache.invalidate() == 5
        assert len(cache) == 0
        assert cache.stats()["invalidations"] == 1

    def test_maxsize_validated(self) -> None:
        with pytest.raises(ValueError):
            QueryResultCache(maxsize=0)

    def test_hit_rate(self) -> None:
        cache = QueryResultCache()
        key = QueryResultCache.key("q", "x", None, 0)
        cache.get(key)
        cache.put(key, 1)
        cache.get(key)
        assert cache.stats()["hit_rate"] == 0.5


class TestThreadSafety:
    def test_concurrent_mixed_operations_stay_consistent(self) -> None:
        cache = QueryResultCache(maxsize=32)
        errors: list[BaseException] = []

        def worker(index: int) -> None:
            try:
                for i in range(300):
                    key = QueryResultCache.key("q", str(i % 40), None, index)
                    if i % 10 == 0:
                        cache.invalidate()
                    cache.put(key, i)
                    value = cache.get(key)
                    assert value is None or isinstance(value, int)
            except BaseException as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(t,)) for t in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert len(cache) <= 32
        stats = cache.stats()
        assert stats["hits"] + stats["misses"] == 8 * 300
