"""Session snapshot isolation: the old closure survives concurrent
churn until the session explicitly refreshes."""

from __future__ import annotations

import threading

import pytest

from repro.errors import ServingError
from repro.serving import ArticulationService, load_paper_workload
from repro.serving.session import SessionManager, snapshot_query
from repro.inference.horn import FactStore


@pytest.fixture
def service() -> ArticulationService:
    svc = ArticulationService()
    load_paper_workload(svc)
    return svc


def _session_terms(service: ArticulationService, sid: str, term: str):
    return service.infer(
        {"op": "generalizations", "term": term, "session": sid}
    )["terms"]


class TestIsolation:
    def test_session_pins_old_closure_across_fact_diff(self, service) -> None:
        sid = service.create_session()["session"]
        before = _session_terms(service, sid, "carrier:SUV")
        service.apply_facts(
            [("implies", "carrier:SUV", "factory:Vehicle")], []
        )
        # live engine sees the new implication...
        live = service.infer(
            {"op": "generalizations", "term": "carrier:SUV"}
        )["terms"]
        assert "factory:Vehicle" in live
        # ...the session still answers the frozen fixpoint
        assert _session_terms(service, sid, "carrier:SUV") == before
        assert "factory:Vehicle" not in before
        # explicit refresh re-pins onto the published state
        service.refresh_session(sid)
        assert "factory:Vehicle" in _session_terms(service, sid, "carrier:SUV")

    def test_session_pins_across_churn_batches(self, service) -> None:
        sid = service.create_session()["session"]
        baseline = _session_terms(service, sid, "carrier:Car")
        for batch in range(4):
            service.churn("carrier", mutations=4, seed=100 + batch)
            assert _session_terms(service, sid, "carrier:Car") == baseline

    def test_concurrent_session_reads_during_writes(self, service) -> None:
        """Readers hammer a session while a writer churns; every answer
        must equal the pinned baseline (the acceptance invariant)."""
        sid = service.create_session()["session"]
        baseline = _session_terms(service, sid, "carrier:Car")
        violations: list[tuple] = []
        stop = threading.Event()

        def reader() -> None:
            while not stop.is_set():
                answer = _session_terms(service, sid, "carrier:Car")
                if answer != baseline:
                    violations.append((baseline, answer))

        readers = [threading.Thread(target=reader) for _ in range(4)]
        for thread in readers:
            thread.start()
        try:
            for batch in range(5):
                service.apply_facts(
                    [("implies", f"t:New{batch}", "transport:Vehicle")], []
                )
                service.churn("factory", mutations=3, seed=500 + batch)
        finally:
            stop.set()
            for thread in readers:
                thread.join()
        assert violations == []

    def test_detach_counted_only_when_pinned(self, service) -> None:
        service.apply_facts([("implies", "x:A", "x:B")], [])
        assert service.stats()["counts"]["detaches"] == 0
        service.create_session()
        service.apply_facts([("implies", "x:B", "x:C")], [])
        assert service.stats()["counts"]["detaches"] == 1


class TestSessionLifecycle:
    def test_unknown_session_rejected(self, service) -> None:
        with pytest.raises(ServingError, match="unknown session"):
            service.refresh_session("deadbeef")
        with pytest.raises(ServingError, match="unknown session"):
            service.infer(
                {"op": "generalizations", "term": "x", "session": "deadbeef"}
            )

    def test_close_session(self, service) -> None:
        sid = service.create_session()["session"]
        assert service.close_session(sid)["closed"] is True
        assert service.close_session(sid)["closed"] is False

    def test_session_limit_evicts_oldest(self) -> None:
        manager = SessionManager(limit=2)
        store = FactStore()
        first = manager.create(store, 1)
        second = manager.create(store, 1)
        third = manager.create(store, 1)
        assert manager.stats()["evicted"] == 1
        with pytest.raises(ServingError):
            manager.get(first.session_id)
        assert manager.get(second.session_id) is second
        assert manager.get(third.session_id) is third

    def test_snapshot_query_probe_selection(self) -> None:
        store = FactStore()
        store.add(("p", "a", "b"))
        store.add(("p", "a", "c"))
        store.add(("p", "x", "b"))
        assert snapshot_query(store, ("p", "a", "?y")) == [
            {"?y": "b"},
            {"?y": "c"},
        ] or sorted(
            b["?y"] for b in snapshot_query(store, ("p", "a", "?y"))
        ) == ["b", "c"]
        assert len(snapshot_query(store, ("p", "?x", "?y"))) == 3
        assert snapshot_query(store, ("q", "?x", "?y")) == []
