"""The serving wire codec: envelopes, validation, atoms, JSON-lines."""

from __future__ import annotations

import json

import pytest

from repro.errors import ProtocolError
from repro.serving import protocol


class TestEnvelopes:
    def test_ok_merges_payload(self) -> None:
        assert protocol.ok({"a": 1}) == {"ok": True, "a": 1}
        assert protocol.ok() == {"ok": True}

    def test_error_envelope(self) -> None:
        body = protocol.error("protocol", "bad field")
        assert body == {"ok": False, "error": "protocol", "message": "bad field"}


class TestDecodeBody:
    def test_empty_body_is_empty_object(self) -> None:
        assert protocol.decode_body(b"") == {}

    def test_valid_json_object(self) -> None:
        assert protocol.decode_body(b'{"x": 1}') == {"x": 1}

    def test_malformed_json_raises(self) -> None:
        with pytest.raises(ProtocolError, match="not valid JSON"):
            protocol.decode_body(b"{nope")

    def test_non_object_raises(self) -> None:
        with pytest.raises(ProtocolError, match="must be a JSON object"):
            protocol.decode_body(b"[1, 2]")


class TestFields:
    def test_require_present(self) -> None:
        assert protocol.require({"q": "x"}, "q") == "x"

    def test_require_missing(self) -> None:
        with pytest.raises(ProtocolError, match="missing required field"):
            protocol.require({}, "q")

    def test_require_wrong_type(self) -> None:
        with pytest.raises(ProtocolError, match="must be str"):
            protocol.require({"q": 3}, "q")

    def test_require_int_rejects_bool(self) -> None:
        with pytest.raises(ProtocolError, match="must be int"):
            protocol.require({"n": True}, "n", int)

    def test_require_float_accepts_int(self) -> None:
        assert protocol.require({"w": 1}, "w", float) == 1.0

    def test_optional_default_and_null(self) -> None:
        assert protocol.optional({}, "s", int, 7) == 7
        assert protocol.optional({"s": None}, "s", int, 7) == 7
        assert protocol.optional({"s": 3}, "s", int, 7) == 3


class TestAtoms:
    def test_parse_atom(self) -> None:
        assert protocol.parse_atom(["implies", "a", "b"]) == (
            "implies",
            "a",
            "b",
        )

    @pytest.mark.parametrize(
        "bad", [["onlypred"], "implies", ["implies", 3], [], None]
    )
    def test_parse_atom_rejects(self, bad) -> None:
        with pytest.raises(ProtocolError, match="list of 2\\+ strings"):
            protocol.parse_atom(bad)

    def test_parse_atoms_missing_field_is_empty(self) -> None:
        assert protocol.parse_atoms({}, "adds") == []

    def test_parse_atoms_non_list_rejected(self) -> None:
        with pytest.raises(ProtocolError, match="must be a list"):
            protocol.parse_atoms({"adds": "x"}, "adds")


class TestJsonlStream:
    def test_rows_then_trailer(self) -> None:
        chunks = list(
            protocol.jsonl_stream(
                iter([{"a": 1}, {"b": 2}]), {"rows": 2, "cached": False}
            )
        )
        lines = [json.loads(c) for c in chunks]
        assert lines[0] == {"a": 1}
        assert lines[1] == {"b": 2}
        assert lines[2] == {"done": True, "rows": 2, "cached": False}

    def test_trailer_reads_late_mutations(self) -> None:
        trailer: dict = {}

        def rows():
            yield {"r": 1}
            trailer["rows"] = 1  # resolved only after rows drain

        lines = [json.loads(c) for c in protocol.jsonl_stream(rows(), trailer)]
        assert lines[-1] == {"done": True, "rows": 1}
