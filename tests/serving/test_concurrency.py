"""Thread-safety regressions for the shared hot-path caches the
serving tier hammers from concurrent request threads: the planner's
plan LRU, the per-graph MatchIndex cache, the articulation's memoized
unified graph, and the service itself under reads + churn."""

from __future__ import annotations

import threading

import pytest

from repro.core.articulation import Articulation
from repro.core.graph import LabeledGraph
from repro.core.patterns import MatchConfig, MatchIndex
from repro.query.ast import Query
from repro.query.planner import Planner
from repro.serving import ArticulationService, load_paper_workload
from repro.workloads.paper_example import generate_transport_articulation

THREADS = 8


def _hammer(worker, threads: int = THREADS) -> list[BaseException]:
    errors: list[BaseException] = []
    barrier = threading.Barrier(threads)

    def run(index: int) -> None:
        try:
            barrier.wait()
            worker(index)
        except BaseException as exc:  # pragma: no cover - failure path
            errors.append(exc)

    pool = [threading.Thread(target=run, args=(t,)) for t in range(threads)]
    for thread in pool:
        thread.start()
    for thread in pool:
        thread.join()
    return errors


class TestPlannerCache:
    def test_concurrent_plan_calls_share_one_cache(self) -> None:
        planner = Planner(generate_transport_articulation(), cache_size=4)
        queries = [
            Query.over("transport:Vehicle", select=[attr])
            for attr in ("price", "model", "owner")
        ]

        def worker(index: int) -> None:
            for i in range(60):
                plan = planner.plan(queries[(index + i) % len(queries)])
                assert plan.pipelines
                if i % 25 == 0:
                    planner.cache_clear()

        assert _hammer(worker) == []
        info = planner.cache_info()
        assert info.hits + info.misses == THREADS * 60
        assert info.size <= 4

    def test_same_query_from_all_threads_mostly_hits(self) -> None:
        planner = Planner(generate_transport_articulation())
        query = Query.over("transport:Vehicle", select=["price"])

        def worker(index: int) -> None:
            for _ in range(50):
                planner.plan(query)

        assert _hammer(worker) == []
        info = planner.cache_info()
        # A concurrent double-build is tolerated, a per-call rebuild is
        # not: misses must stay a sliver of the traffic.
        assert info.misses <= THREADS
        assert info.hits >= THREADS * 50 - info.misses


class TestMatchIndexCache:
    def test_for_graph_under_concurrent_mutation(self) -> None:
        graph = LabeledGraph()
        for i in range(20):
            graph.add_node(f"n{i}", label=f"Label{i}")
        config = MatchConfig(case_insensitive=True)
        lock = threading.Lock()
        counter = iter(range(10_000))

        def worker(index: int) -> None:
            for i in range(80):
                if index == 0 and i % 7 == 0:
                    with lock:
                        n = next(counter)
                    graph.add_node(f"extra{n}", label=f"Extra{n}")
                idx = MatchIndex.for_graph(graph, config)
                assert idx.graph is graph

        assert _hammer(worker) == []
        # The cache converged on one fresh entry for this config.
        final = MatchIndex.for_graph(graph, config)
        assert final.version == graph.version

    def test_distinct_configs_evict_within_limit(self) -> None:
        graph = LabeledGraph()
        graph.add_node("a", label="A")

        def worker(index: int) -> None:
            for i in range(40):
                config = MatchConfig(
                    case_insensitive=bool(i % 2),
                    synonyms={f"s{index}": (f"t{i % 12}",)},
                )
                MatchIndex.for_graph(graph, config)

        assert _hammer(worker) == []
        assert len(graph._match_indexes) <= MatchIndex._CACHE_LIMIT


class TestArticulationMemos:
    def test_unified_graph_built_once_across_threads(self) -> None:
        art = generate_transport_articulation()
        results: list[object] = []
        lock = threading.Lock()

        def worker(index: int) -> None:
            graph = art.unified_graph()
            covered = art.covered_source_terms()
            with lock:
                results.append((graph, frozenset(covered)))

        assert _hammer(worker) == []
        graphs = {id(graph) for graph, _ in results}
        assert len(graphs) == 1, "threads must share ONE memoized graph"
        assert len({covered for _, covered in results}) == 1


class TestInferCacheKeying:
    def test_session_answer_cached_under_pinned_version_only(self) -> None:
        """Regression: a publication landing between a session infer's
        version-read and its cache insert must not file the pinned-
        snapshot (now stale) answer where a live read at the new
        version can hit it.  The fix keys session answers by the
        session's *pinned* engine_version, read from the session
        state itself."""
        service = ArticulationService()
        load_paper_workload(service)
        sid = service.create_session()["session"]
        payload = {
            "op": "generalizations",
            "term": "carrier:Car",
            "session": sid,
        }

        original = service._infer_against
        in_session_eval = threading.Event()
        publish_done = threading.Event()

        def interleaved(body, op, session):
            if session is not None:
                # pause the session evaluation mid-flight, exactly
                # between the cache-key mint and the cache insert
                in_session_eval.set()
                assert publish_done.wait(5), "writer never published"
            return original(body, op, session)

        service._infer_against = interleaved
        answers: dict[str, dict] = {}
        errors: list[BaseException] = []

        def session_reader() -> None:
            try:
                answers["session"] = service.infer(payload)
            except BaseException as exc:  # pragma: no cover
                errors.append(exc)

        def writer() -> None:
            try:
                assert in_session_eval.wait(5), "session never started"
                service.apply_facts(
                    [("implies", "transport:Vehicle", "stress:Everything")],
                    [],
                )
                publish_done.set()
            except BaseException as exc:  # pragma: no cover
                errors.append(exc)
                publish_done.set()

        threads = [
            threading.Thread(target=session_reader),
            threading.Thread(target=writer),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        service._infer_against = original
        assert errors == []

        # the session answered from its pinned fixpoint...
        assert "stress:Everything" not in answers["session"]["terms"]
        # ...and that stale answer is NOT served to a live read at the
        # post-publication version
        live = service.infer({"op": "generalizations", "term": "carrier:Car"})
        assert "stress:Everything" in live["terms"]
        # while the session's own cache entry keeps its isolation
        again = service.infer(payload)
        assert again["cached"] is True
        assert again["terms"] == answers["session"]["terms"]

    def test_live_entry_not_served_to_sessions(self) -> None:
        """The reverse direction: live answers must never hit for a
        session pinned at an older fixpoint."""
        service = ArticulationService()
        load_paper_workload(service)
        sid = service.create_session()["session"]
        service.apply_facts(
            [("implies", "transport:Vehicle", "stress:Later")], []
        )
        live = service.infer({"op": "generalizations", "term": "carrier:Car"})
        assert "stress:Later" in live["terms"]
        pinned = service.infer(
            {"op": "generalizations", "term": "carrier:Car", "session": sid}
        )
        assert "stress:Later" not in pinned["terms"]


class TestServiceStress:
    def test_reads_survive_concurrent_churn(self) -> None:
        service = ArticulationService()
        load_paper_workload(service)
        stop = threading.Event()
        errors: list[BaseException] = []

        def reader(index: int) -> None:
            try:
                while not stop.is_set():
                    if index % 2:
                        answer = service.infer(
                            {"op": "generalizations", "term": "carrier:Car"}
                        )
                        assert "transport:Vehicle" in answer["terms"]
                    else:
                        rows, meta = service.query(
                            "SELECT price FROM transport:Vehicle"
                        )
                        assert meta["rows"] == len(rows)
            except BaseException as exc:  # pragma: no cover
                errors.append(exc)

        readers = [
            threading.Thread(target=reader, args=(t,)) for t in range(6)
        ]
        for thread in readers:
            thread.start()
        try:
            for batch in range(6):
                service.churn(
                    "factory", mutations=3, seed=batch, delete_weight=0.0
                )
                service.apply_facts(
                    [("implies", f"s:Stress{batch}", "transport:Vehicle")], []
                )
        finally:
            stop.set()
            for thread in readers:
                thread.join()
        assert errors == []
        assert service.stats()["counts"]["churn_batches"] == 6
