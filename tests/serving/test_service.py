"""The service core: install, reads, caching, churn invalidation."""

from __future__ import annotations

import pytest

from repro.errors import ProtocolError, ServingError
from repro.formats import adjacency
from repro.serving import ArticulationService, load_paper_workload
from repro.workloads.paper_example import (
    carrier_ontology,
    factory_ontology,
)

RULES_TEXT = """
carrier:Car => factory:Vehicle
carrier:Car => transport:PassengerCar => factory:Vehicle
"""


@pytest.fixture
def service() -> ArticulationService:
    svc = ArticulationService()
    load_paper_workload(svc)
    return svc


class TestInstall:
    def test_paper_workload_installs(self, service) -> None:
        health = service.health()
        assert health["status"] == "ok"
        assert health["articulation"] == "transport"
        assert health["facts"] > 0

    def test_empty_service_rejects_reads(self) -> None:
        svc = ArticulationService()
        assert svc.health()["status"] == "empty"
        with pytest.raises(ServingError, match="no articulation"):
            svc.infer({"op": "generalizations", "term": "x"})
        with pytest.raises(ServingError, match="no articulation"):
            svc.query("SELECT price FROM transport:Vehicle")

    def test_register_and_articulate_from_texts(self) -> None:
        svc = ArticulationService()
        for onto in (carrier_ontology(), factory_ontology()):
            report = svc.register_ontology(onto.name, adjacency.dumps(onto))
            assert report["terms"] > 0
        result = svc.articulate(
            "transport", ["carrier", "factory"], RULES_TEXT
        )
        assert result["articulation"] == "transport"
        answer = svc.infer(
            {"op": "generalizations", "term": "carrier:Car"}
        )
        assert "factory:Vehicle" in answer["terms"]

    def test_articulate_unknown_source_rejected(self) -> None:
        svc = ArticulationService()
        with pytest.raises(ServingError, match="unregistered"):
            svc.articulate("a", ["missing"], "")


class TestInfer:
    def test_generalizations_match_engine(self, service) -> None:
        answer = service.infer(
            {"op": "generalizations", "term": "carrier:Car"}
        )
        assert answer["terms"] == sorted(
            service._inference.generalizations("carrier:Car")
        )

    def test_implies_true_false_and_reflexive(self, service) -> None:
        assert service.infer(
            {"op": "implies", "term": "carrier:Car", "general": "transport:Vehicle"}
        )["holds"]
        assert service.infer(
            {"op": "implies", "term": "carrier:Car", "general": "carrier:Car"}
        )["holds"]
        assert not service.infer(
            {"op": "implies", "term": "transport:Vehicle", "general": "carrier:Car"}
        )["holds"]

    def test_pattern_ground_and_open(self, service) -> None:
        ground = service.infer(
            {
                "op": "pattern",
                "atom": ["implies", "carrier:Car", "transport:Vehicle"],
            }
        )
        assert ground["holds"] is True
        open_ = service.infer(
            {"op": "pattern", "atom": ["implies", "?x", "transport:Vehicle"]}
        )
        assert {"?x": "carrier:Car"} in open_["bindings"]

    def test_unknown_op_rejected(self, service) -> None:
        with pytest.raises(ProtocolError, match="unknown op"):
            service.infer({"op": "foo"})


class TestResultCache:
    def test_infer_caches(self, service) -> None:
        first = service.infer({"op": "generalizations", "term": "carrier:Car"})
        second = service.infer({"op": "generalizations", "term": "carrier:Car"})
        assert first["cached"] is False
        assert second["cached"] is True
        assert first["terms"] == second["terms"]

    def test_query_caches(self, service) -> None:
        _, meta1 = service.query("SELECT price FROM transport:Vehicle")
        rows, meta2 = service.query("SELECT price FROM transport:Vehicle")
        assert meta1["cached"] is False
        assert meta2["cached"] is True
        assert meta2["rows"] == len(rows)

    def test_churn_invalidates_results(self, service) -> None:
        service.query("SELECT price FROM transport:Vehicle")
        version = service.engine_version
        report = service.churn("carrier", mutations=3, seed=11)
        assert report["engine_version"] > version
        _, meta = service.query("SELECT price FROM transport:Vehicle")
        assert meta["cached"] is False  # new publication, fresh key

    def test_fact_diff_invalidates_infer(self, service) -> None:
        before = service.infer(
            {"op": "generalizations", "term": "carrier:SUV"}
        )
        service.apply_facts(
            [("implies", "carrier:SUV", "transport:Vehicle")], []
        )
        after = service.infer(
            {"op": "generalizations", "term": "carrier:SUV"}
        )
        assert after["cached"] is False
        assert "transport:Vehicle" in after["terms"]
        assert "transport:Vehicle" not in before["terms"]


class TestWriteValidation:
    def test_churn_unknown_source(self, service) -> None:
        with pytest.raises(ServingError, match="unknown source"):
            service.churn("nope", mutations=1)

    def test_churn_bad_mutation_count(self, service) -> None:
        with pytest.raises(ServingError, match="mutations"):
            service.churn("carrier", mutations=0)

    def test_apply_facts_requires_ground_atoms(self, service) -> None:
        with pytest.raises(ProtocolError, match="ground"):
            service.apply_facts([("implies", "?x", "b")], [])

    def test_apply_facts_retract(self, service) -> None:
        service.apply_facts([("implies", "aa:X", "aa:Y")], [])
        assert service.infer(
            {"op": "pattern", "atom": ["implies", "aa:X", "aa:Y"]}
        )["holds"]
        service.apply_facts([], [("implies", "aa:X", "aa:Y")])
        assert not service.infer(
            {"op": "pattern", "atom": ["implies", "aa:X", "aa:Y"]}
        )["holds"]

    def test_add_instances(self, service) -> None:
        rows_before, _ = service.query("SELECT price FROM carrier:Cars")
        report = service.add_instances(
            "carrier",
            [{"id": "NewCar9", "cls": "Car", "values": {"price": 4100}}],
        )
        assert report["added"] == 1
        rows_after, meta = service.query("SELECT price FROM carrier:Cars")
        assert meta["cached"] is False
        assert len(rows_after) == len(rows_before) + 1

    def test_add_instances_unknown_source(self, service) -> None:
        with pytest.raises(ServingError, match="no instance store"):
            service.add_instances("nope", [])


class TestStats:
    def test_stats_shape(self, service) -> None:
        service.query("SELECT price FROM transport:Vehicle")
        service.infer({"op": "generalizations", "term": "carrier:Car"})
        stats = service.stats()
        assert stats["counts"]["queries"] == 1
        assert stats["counts"]["infers"] == 1
        assert stats["cache"]["misses"] >= 2
        assert "plan_cache" in stats
        assert stats["sessions"]["active"] == 0

    def test_refresh_noop_keeps_version(self, service) -> None:
        version = service.engine_version
        report = service.refresh()
        assert report["refresh"]["mode"] == "noop"
        assert service.engine_version == version
