"""End-to-end HTTP round trips against a live server on an ephemeral port."""

from __future__ import annotations

import http.client
import json

import pytest

from repro.formats import adjacency
from repro.serving import (
    ArticulationServer,
    ArticulationService,
    load_paper_workload,
)
from repro.workloads.paper_example import carrier_ontology, factory_ontology


@pytest.fixture(scope="module")
def server():
    service = ArticulationService()
    load_paper_workload(service)
    with ArticulationServer(service, port=0) as srv:
        yield srv


@pytest.fixture
def conn(server):
    connection = http.client.HTTPConnection(server.host, server.port, timeout=10)
    yield connection
    connection.close()


def call(conn, method, path, payload=None):
    body = None if payload is None else json.dumps(payload).encode()
    headers = {"Content-Type": "application/json"} if body else {}
    conn.request(method, path, body=body, headers=headers)
    response = conn.getresponse()
    raw = response.read()
    return response.status, raw


def call_json(conn, method, path, payload=None):
    status, raw = call(conn, method, path, payload)
    return status, json.loads(raw)


class TestReadEndpoints:
    def test_health(self, conn) -> None:
        status, body = call_json(conn, "GET", "/health")
        assert status == 200
        assert body["ok"] is True
        assert body["status"] == "ok"

    def test_stats(self, conn) -> None:
        status, body = call_json(conn, "GET", "/stats")
        assert status == 200
        assert "cache" in body and "sessions" in body

    def test_infer_generalizations(self, conn) -> None:
        status, body = call_json(
            conn,
            "POST",
            "/infer",
            {"op": "generalizations", "term": "carrier:Car"},
        )
        assert status == 200
        assert "transport:Vehicle" in body["terms"]

    def test_query_streamed_jsonl(self, conn) -> None:
        status, raw = call(
            conn, "POST", "/query", {"query": "SELECT price FROM transport:Vehicle"}
        )
        assert status == 200
        lines = [json.loads(line) for line in raw.splitlines() if line]
        trailer = lines[-1]
        assert trailer["done"] is True
        assert trailer["rows"] == len(lines) - 1
        assert all("values" in line for line in lines[:-1])

    def test_query_non_streamed(self, conn) -> None:
        status, body = call_json(
            conn,
            "POST",
            "/query",
            {"query": "SELECT price FROM transport:Vehicle", "stream": False},
        )
        assert status == 200
        assert body["rows"] == len(body["row_data"])


class TestErrorMapping:
    def test_bad_json_is_400(self, conn) -> None:
        conn.request(
            "POST", "/infer", body=b"{nope", headers={"Content-Type": "application/json"}
        )
        response = conn.getresponse()
        body = json.loads(response.read())
        assert response.status == 400
        assert body["ok"] is False

    def test_unknown_route_is_404(self, conn) -> None:
        status, body = call_json(conn, "POST", "/nope", {})
        assert status == 404

    def test_unknown_session_is_404(self, conn) -> None:
        status, body = call_json(
            conn,
            "POST",
            "/infer",
            {"op": "generalizations", "term": "x", "session": "nope"},
        )
        assert status == 404
        assert "unknown session" in body["message"]

    def test_bad_query_is_422(self, conn) -> None:
        status, body = call_json(conn, "POST", "/query", {"query": "NOT SQL"})
        assert status == 422

    def test_missing_field_is_400(self, conn) -> None:
        status, body = call_json(conn, "POST", "/infer", {"term": "x"})
        assert status == 400
        assert "missing required field" in body["message"]


class TestSessionsOverHttp:
    def test_session_lifecycle_and_isolation(self, conn) -> None:
        _, created = call_json(conn, "POST", "/sessions", {})
        sid = created["session"]
        probe = {
            "op": "generalizations",
            "term": "carrier:SUV",
            "session": sid,
        }
        _, before = call_json(conn, "POST", "/infer", probe)
        status, _ = call_json(
            conn,
            "POST",
            "/facts",
            {"adds": [["implies", "carrier:SUV", "factory:Vehicle"]]},
        )
        assert status == 200
        _, pinned = call_json(conn, "POST", "/infer", probe)
        assert pinned["terms"] == before["terms"]
        status, _ = call_json(conn, "POST", f"/sessions/{sid}/refresh", {})
        assert status == 200
        _, fresh = call_json(conn, "POST", "/infer", probe)
        assert "factory:Vehicle" in fresh["terms"]
        status, closed = call_json(conn, "DELETE", f"/sessions/{sid}")
        assert status == 200 and closed["closed"] is True


class TestWriteEndpoints:
    def test_churn_roundtrip(self, conn) -> None:
        status, body = call_json(
            conn,
            "POST",
            "/churn",
            {"source": "factory", "mutations": 2, "seed": 3, "delete_weight": 0.0},
        )
        assert status == 200
        assert body["mutations"] == 2

    def test_kb_add_instances(self, conn) -> None:
        status, body = call_json(
            conn,
            "POST",
            "/kb",
            {
                "source": "carrier",
                "instances": [
                    {"id": "HttpCar1", "cls": "Car", "values": {"price": 5}}
                ],
            },
        )
        assert status == 200
        assert body["added"] == 1


class TestBootstrapOverHttp:
    def test_register_then_articulate(self) -> None:
        service = ArticulationService()
        with ArticulationServer(service, port=0) as srv:
            conn = http.client.HTTPConnection(srv.host, srv.port, timeout=10)
            try:
                for onto in (carrier_ontology(), factory_ontology()):
                    status, _ = call_json(
                        conn,
                        "POST",
                        "/ontologies",
                        {"name": onto.name, "adjacency": adjacency.dumps(onto)},
                    )
                    assert status == 200
                status, body = call_json(
                    conn,
                    "POST",
                    "/articulate",
                    {
                        "name": "transport",
                        "sources": ["carrier", "factory"],
                        "rules": "carrier:Car => factory:Vehicle",
                    },
                )
                assert status == 200
                status, answer = call_json(
                    conn,
                    "POST",
                    "/infer",
                    {"op": "generalizations", "term": "carrier:Car"},
                )
                assert status == 200
                assert "factory:Vehicle" in answer["terms"]
            finally:
                conn.close()
