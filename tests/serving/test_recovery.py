"""Kill-and-restart: a crashed server recovers its pre-crash fixpoint
from the churn journal."""

from __future__ import annotations

import pytest

from repro.reliability import FaultInjected, FaultPlan
from repro.serving import ArticulationService, load_paper_workload

ADDS = [
    ("implies", "crash:A", "crash:B"),
    ("implies", "crash:B", "transport:Vehicle"),
]


def _closure_probe(service: ArticulationService) -> dict:
    return {
        term: service.infer({"op": "generalizations", "term": term})["terms"]
        for term in ("crash:A", "crash:B", "carrier:Car")
    }


class TestJournalRecovery:
    def test_crash_during_apply_facts_recovers_to_committed_state(
        self, tmp_path
    ) -> None:
        journal = str(tmp_path / "serve.journal")

        # Oracle: same workload, same writes, no faults, no journal.
        oracle = ArticulationService()
        load_paper_workload(oracle)
        oracle.apply_facts(ADDS, [])

        # Service A journals everything, then dies mid-batch on the
        # write that *follows* the durable ones.
        crashed = ArticulationService(
            journal_path=journal,
            fault_plan=FaultPlan.scripted({"batch_crash": [1]}),
        )
        load_paper_workload(crashed)
        crashed.apply_facts(ADDS, [])
        with pytest.raises(FaultInjected):
            crashed.apply_facts([("implies", "crash:C", "crash:D")], [])

        # Service B boots over the same journal with no installer.
        recovered = ArticulationService(journal_path=journal)
        health = recovered.health()
        assert health["status"] == "ok"
        assert health["recovered"] is True
        assert recovered.recovery is not None

        # The durable batch (and the journaled-but-uncommitted one, which
        # recovery replays since it was logged before the crash) is back.
        probe = _closure_probe(recovered)
        assert probe["crash:A"] == _closure_probe(oracle)["crash:A"]
        assert "transport:Vehicle" in probe["crash:A"]
        assert "transport:Vehicle" in probe["crash:B"]

    def test_recovered_service_accepts_new_writes(self, tmp_path) -> None:
        journal = str(tmp_path / "serve.journal")
        first = ArticulationService(journal_path=journal)
        load_paper_workload(first)
        first.apply_facts(ADDS, [])

        second = ArticulationService(journal_path=journal)
        second.apply_facts([("implies", "crash:B", "crash:E")], [])
        assert second.infer(
            {"op": "pattern", "atom": ["implies", "crash:A", "crash:E"]}
        )["holds"]

        # A third boot sees writes from both prior lifetimes.
        third = ArticulationService(journal_path=journal)
        assert third.infer(
            {"op": "pattern", "atom": ["implies", "crash:A", "crash:E"]}
        )["holds"]

    def test_empty_journal_means_empty_service(self, tmp_path) -> None:
        service = ArticulationService(
            journal_path=str(tmp_path / "fresh.journal")
        )
        assert service.health()["status"] == "empty"

    def test_stats_expose_journal(self, tmp_path) -> None:
        journal = str(tmp_path / "serve.journal")
        service = ArticulationService(journal_path=journal)
        load_paper_workload(service)
        stats = service.stats()
        assert stats["journal"]["path"] == journal
