"""Property-based tests for query-layer invariants."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kb.instances import InstanceStore
from repro.query.ast import Condition, Query
from repro.query.engine import QueryEngine
from repro.workloads.paper_example import (
    carrier_ontology,
    factory_ontology,
    generate_transport_articulation,
)


def build_engine(seed: int, n: int, *, pushdown: bool = False) -> QueryEngine:
    rng = random.Random(seed)
    carrier_kb = InstanceStore(carrier_ontology())
    factory_kb = InstanceStore(factory_ontology())
    for i in range(n):
        carrier_kb.add(
            f"c{i}",
            rng.choice(["Car", "Cars", "SUV"]),
            price=rng.randint(100, 30_000),
            model=f"M{rng.randint(0, 5)}",
        )
        factory_kb.add(
            f"f{i}",
            rng.choice(["Vehicle", "GoodsVehicle", "Truck"]),
            price=rng.randint(100, 60_000),
            weight=rng.randint(500, 4_000),
        )
    return QueryEngine(
        generate_transport_articulation(),
        {"carrier": carrier_kb, "factory": factory_kb},
        pushdown=pushdown,
    )


conditions = st.lists(
    st.tuples(
        st.sampled_from(["price", "weight"]),
        st.sampled_from(["<", "<=", ">", ">="]),
        st.integers(min_value=0, max_value=40_000),
    ),
    max_size=2,
)


@given(st.integers(min_value=0, max_value=50), conditions)
@settings(max_examples=25, deadline=None)
def test_pushdown_agrees_with_plain(seed, raw_conditions) -> None:
    """For every random predicate set, pushdown changes nothing."""
    where = [Condition(a, op, v) for a, op, v in raw_conditions]
    query = Query.over("transport:Vehicle", select=["price"], where=where)
    plain = build_engine(seed, 30).execute(query)
    pushed = build_engine(seed, 30, pushdown=True).execute(query)
    assert [(r.source, r.instance_id) for r in plain] == [
        (r.source, r.instance_id) for r in pushed
    ]


@given(st.integers(min_value=0, max_value=50), conditions)
@settings(max_examples=25, deadline=None)
def test_where_narrowing_is_monotone(seed, raw_conditions) -> None:
    """Adding predicates never adds rows."""
    engine = build_engine(seed, 30)
    where = [Condition(a, op, v) for a, op, v in raw_conditions]
    wide = engine.execute(Query.over("transport:Vehicle"))
    narrow = engine.execute(Query.over("transport:Vehicle", where=where))
    wide_keys = {(r.source, r.instance_id) for r in wide}
    narrow_keys = {(r.source, r.instance_id) for r in narrow}
    assert narrow_keys <= wide_keys


@given(
    st.integers(min_value=0, max_value=50),
    st.integers(min_value=0, max_value=40),
)
@settings(max_examples=25, deadline=None)
def test_limit_is_a_prefix(seed, limit) -> None:
    engine = build_engine(seed, 25)
    ordered = engine.execute(
        Query.over("transport:Vehicle", select=["price"],
                   order_by=[("price", False)])
    )
    limited = engine.execute(
        Query.over("transport:Vehicle", select=["price"],
                   order_by=[("price", False)], limit=limit)
    )
    assert [(r.source, r.instance_id) for r in limited] == [
        (r.source, r.instance_id) for r in ordered[:limit]
    ]


@given(st.integers(min_value=0, max_value=50))
@settings(max_examples=20, deadline=None)
def test_count_star_equals_row_count(seed) -> None:
    engine = build_engine(seed, 20)
    rows = engine.execute(Query.over("transport:Vehicle"))
    from repro.query.ast import Aggregate

    counted = engine.execute(
        Query.over(
            "transport:Vehicle", aggregates=[Aggregate("count", "*")]
        )
    )
    assert counted[0].get("count(*)") == len(rows)


@given(st.integers(min_value=0, max_value=50))
@settings(max_examples=20, deadline=None)
def test_min_max_bound_every_converted_value(seed) -> None:
    from repro.query.ast import Aggregate

    engine = build_engine(seed, 20)
    rows = engine.execute(Query.over("transport:Vehicle", select=["price"]))
    prices = [
        r.get("price") for r in rows if isinstance(r.get("price"), float)
    ]
    agg = engine.execute(
        Query.over(
            "transport:Vehicle",
            aggregates=[Aggregate("min", "price"),
                        Aggregate("max", "price")],
        )
    )[0]
    if prices:
        assert agg.get("min(price)") == pytest.approx(min(prices))
        assert agg.get("max(price)") == pytest.approx(max(prices))
        for price in prices:
            assert agg.get("min(price)") <= price <= agg.get("max(price)")


@given(st.integers(min_value=0, max_value=50))
@settings(max_examples=15, deadline=None)
def test_mediated_rows_partition_by_source_plans(seed) -> None:
    """Every mediated row is traceable to exactly one source plan, and
    per-source row sets are disjoint by provenance."""
    engine = build_engine(seed, 20)
    plan = engine.plan(Query.over("transport:Vehicle"))
    rows = engine.run(plan)
    plan_sources = {p.source for p in plan.source_plans}
    for row in rows:
        assert row.source in plan_sources
    keys = [(r.source, r.instance_id) for r in rows]
    assert len(keys) == len(set(keys))
