"""Shared hypothesis strategies: random labeled graphs, ontologies and
rule sets with the invariants the library expects."""

from __future__ import annotations

from hypothesis import strategies as st

from repro.core.graph import LabeledGraph
from repro.core.ontology import Ontology

TERM_ALPHABET = "ABCDEFGH"
EDGE_LABELS = ("S", "A", "I", "rel")


@st.composite
def term_names(draw, prefix: str = "T") -> str:
    suffix = draw(st.integers(min_value=0, max_value=30))
    return f"{prefix}{suffix}"


@st.composite
def labeled_graphs(draw, max_nodes: int = 10, max_edges: int = 20):
    """A random labeled graph with unique node ids."""
    n = draw(st.integers(min_value=1, max_value=max_nodes))
    node_ids = [f"n{i}" for i in range(n)]
    graph = LabeledGraph()
    for node_id in node_ids:
        label = draw(st.sampled_from(TERM_ALPHABET))
        graph.add_node(node_id, label)
    edge_count = draw(st.integers(min_value=0, max_value=max_edges))
    for _ in range(edge_count):
        source = draw(st.sampled_from(node_ids))
        target = draw(st.sampled_from(node_ids))
        label = draw(st.sampled_from(EDGE_LABELS))
        graph.add_edge(source, label, target)
    return graph


@st.composite
def ontologies(draw, name: str = "o", max_terms: int = 12):
    """A random consistent ontology with an acyclic SubclassOf core
    plus a few free verb edges."""
    n = draw(st.integers(min_value=1, max_value=max_terms))
    terms = [f"{name.upper()}{i}" for i in range(n)]
    onto = Ontology(name)
    for term in terms:
        onto.add_term(term)
    # Acyclic S edges: child index > parent index.
    for child_index in range(1, n):
        if draw(st.booleans()):
            parent_index = draw(
                st.integers(min_value=0, max_value=child_index - 1)
            )
            onto.add_subclass(terms[child_index], terms[parent_index])
    n_extra = draw(st.integers(min_value=0, max_value=n))
    for _ in range(n_extra):
        source = draw(st.sampled_from(terms))
        target = draw(st.sampled_from(terms))
        label = draw(st.sampled_from(["A", "uses", "partOf"]))
        if source != target:
            onto.graph.add_edge(source, label, target)
    return onto


@st.composite
def simple_rule_texts(draw, left: str = "a", right: str = "b",
                      max_index: int = 11):
    """Textual simple rules between two ontology namespaces."""
    i = draw(st.integers(min_value=0, max_value=max_index))
    j = draw(st.integers(min_value=0, max_value=max_index))
    return f"{left}:{left.upper()}{i} => {right}:{right.upper()}{j}"
