"""Property-based tests for pattern matching semantics."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.patterns import (
    ANY_LABEL,
    MatchConfig,
    Pattern,
    find_matches,
)

from .strategies import labeled_graphs


@given(labeled_graphs())
@settings(max_examples=60, deadline=None)
def test_every_edge_matches_its_own_pattern(graph) -> None:
    """A pattern copied from a real edge always matches (soundness of
    the searcher on known-present structure)."""
    for edge in list(graph.edges())[:5]:
        pattern = Pattern()
        pattern.add_node("p0", graph.label(edge.source))
        pattern.add_node("p1", graph.label(edge.target))
        pattern.add_edge("p0", edge.label, "p1")
        bindings = list(find_matches(pattern, graph))
        assert any(
            b["p0"] == edge.source and b["p1"] == edge.target
            for b in bindings
        )


@given(labeled_graphs())
@settings(max_examples=60, deadline=None)
def test_bindings_satisfy_both_conditions(graph) -> None:
    """Every returned binding satisfies the paper's two conditions."""
    edges = list(graph.edges())
    if not edges:
        return
    edge = edges[0]
    pattern = Pattern()
    pattern.add_node("p0", graph.label(edge.source))
    pattern.add_node("p1", None, "X")
    pattern.add_edge("p0", ANY_LABEL, "p1")
    for binding in find_matches(pattern, graph):
        # Condition 1: labels agree for labeled pattern nodes.
        assert graph.label(binding["p0"]) == graph.label(edge.source)
        # Condition 2: a graph edge exists in the right direction.
        assert binding["p1"] in graph.successors(binding["p0"])


@given(labeled_graphs())
@settings(max_examples=60, deadline=None)
def test_relaxing_edge_labels_is_monotone(graph) -> None:
    """Fuzzy matching can only add matches, never remove them."""
    edges = list(graph.edges())
    if not edges:
        return
    edge = edges[0]
    pattern = Pattern()
    pattern.add_node("p0", graph.label(edge.source))
    pattern.add_node("p1", graph.label(edge.target))
    pattern.add_edge("p0", edge.label, "p1")
    strict = {
        tuple(sorted(b.mapping.items()))
        for b in find_matches(pattern, graph)
    }
    relaxed = {
        tuple(sorted(b.mapping.items()))
        for b in find_matches(
            pattern, graph, MatchConfig(relax_edge_labels=True)
        )
    }
    assert strict <= relaxed


@given(labeled_graphs())
@settings(max_examples=60, deadline=None)
def test_injective_matches_subset_of_homomorphic(graph) -> None:
    edges = list(graph.edges())
    if not edges:
        return
    edge = edges[0]
    pattern = Pattern()
    pattern.add_node("p0", graph.label(edge.source))
    pattern.add_node("p1", graph.label(edge.target))
    pattern.add_edge("p0", edge.label, "p1")
    injective = {
        tuple(sorted(b.mapping.items()))
        for b in find_matches(pattern, graph, MatchConfig(injective=True))
    }
    free = {
        tuple(sorted(b.mapping.items()))
        for b in find_matches(pattern, graph)
    }
    assert injective <= free
    for mapping in injective:
        values = [v for _k, v in mapping]
        assert len(values) == len(set(values))


@given(labeled_graphs(), st.integers(min_value=1, max_value=5))
@settings(max_examples=40, deadline=None)
def test_limit_respected(graph, limit) -> None:
    pattern = Pattern()
    pattern.add_node("p", None, "X")
    results = list(find_matches(pattern, graph, limit=limit))
    assert len(results) == min(limit, graph.node_count())
