"""Property-based tests for articulation-generator invariants."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.articulation import ArticulationGenerator
from repro.core.ontology import split_qualified
from repro.core.relations import SI_BRIDGE
from repro.core.rules import ArticulationRuleSet, parse_rule

from .strategies import ontologies, simple_rule_texts


def build(o1, o2, texts, name="mid"):
    rules = ArticulationRuleSet()
    for text in texts:
        rule = parse_rule(text)
        if all(
            (ref.ontology == o1.name and o1.has_term(ref.term))
            or (ref.ontology == o2.name and o2.has_term(ref.term))
            for ref in rule.terms()
        ):
            rules.add(rule)
    generator = ArticulationGenerator([o1, o2], name=name)
    return generator, generator.generate(rules)


@given(
    ontologies("a"),
    ontologies("b"),
    st.lists(simple_rule_texts("a", "b"), max_size=8),
)
@settings(max_examples=60, deadline=None)
def test_bridges_reference_existing_terms(o1, o2, texts) -> None:
    """Every bridge endpoint resolves to a live term somewhere."""
    _generator, articulation = build(o1, o2, texts)
    assert articulation.dangling_bridges() == []
    for edge in articulation.bridges:
        for endpoint in (edge.source, edge.target):
            onto_name, term = split_qualified(endpoint)
            if onto_name == articulation.name:
                assert articulation.ontology.has_term(term)
            else:
                assert articulation.sources[onto_name].has_term(term)


@given(
    ontologies("a"),
    ontologies("b"),
    st.lists(simple_rule_texts("a", "b"), max_size=8),
)
@settings(max_examples=60, deadline=None)
def test_every_bridge_crosses_or_touches_the_articulation(
    o1, o2, texts
) -> None:
    """Bridges connect a source to the articulation (never source to
    source directly — the articulation mediates, §4)."""
    _generator, articulation = build(o1, o2, texts)
    prefix = f"{articulation.name}:"
    for edge in articulation.bridges:
        assert edge.source.startswith(prefix) or edge.target.startswith(
            prefix
        )


@given(
    ontologies("a"),
    ontologies("b"),
    st.lists(simple_rule_texts("a", "b"), max_size=8),
)
@settings(max_examples=60, deadline=None)
def test_simple_rule_premise_bridged_into_articulation(
    o1, o2, texts
) -> None:
    """For every applied simple rule A => B there is an SIBridge from
    A into some articulation node (the §4.1 semantics)."""
    _generator, articulation = build(o1, o2, texts)
    prefix = f"{articulation.name}:"
    for rule in articulation.rules.implications():
        if not rule.is_simple():
            continue
        premise = next(iter(rule.premise.terms()))
        qualified = f"{premise.ontology}:{premise.term}"
        outgoing = [
            e
            for e in articulation.bridges
            if e.source == qualified
            and e.label == SI_BRIDGE.code
            and e.target.startswith(prefix)
        ]
        assert outgoing, f"premise {qualified} has no bridge"


@given(
    ontologies("a"),
    ontologies("b"),
    st.lists(simple_rule_texts("a", "b"), max_size=6),
    st.lists(simple_rule_texts("a", "b"), max_size=6),
)
@settings(max_examples=40, deadline=None)
def test_extend_in_batches_equals_one_shot(o1, o2, first, second) -> None:
    """Applying rules in two batches produces the same articulation as
    applying them all at once (the expert loop's incrementality)."""

    def valid(texts):
        keep = []
        for text in texts:
            rule = parse_rule(text)
            if all(
                (ref.ontology == o1.name and o1.has_term(ref.term))
                or (ref.ontology == o2.name and o2.has_term(ref.term))
                for ref in rule.terms()
            ):
                keep.append(text)
        return keep

    first, second = valid(first), valid(second)
    generator_a = ArticulationGenerator([o1, o2], name="mid")
    batched = generator_a.generate(
        ArticulationRuleSet(parse_rule(t) for t in first)
    )
    generator_a.extend(
        batched, ArticulationRuleSet(parse_rule(t) for t in second)
    )

    generator_b = ArticulationGenerator([o1, o2], name="mid")
    oneshot = generator_b.generate(
        ArticulationRuleSet(parse_rule(t) for t in first + second)
    )
    assert batched.ontology.same_structure(oneshot.ontology)
    assert batched.bridges == oneshot.bridges


@given(
    ontologies("a"),
    ontologies("b"),
    st.lists(simple_rule_texts("a", "b"), max_size=8),
)
@settings(max_examples=40, deadline=None)
def test_cost_monotone_in_rules(o1, o2, texts) -> None:
    """More rules never cost fewer graph operations."""
    _g1, small = build(o1, o2, texts[: len(texts) // 2])
    _g2, large = build(o1, o2, texts)
    assert small.cost() <= large.cost()


@given(
    ontologies("a"),
    ontologies("b"),
    st.lists(simple_rule_texts("a", "b"), max_size=8),
)
@settings(max_examples=40, deadline=None)
def test_covered_terms_exactly_bridge_endpoints(o1, o2, texts) -> None:
    _generator, articulation = build(o1, o2, texts)
    prefix = f"{articulation.name}:"
    expected = {
        endpoint
        for edge in articulation.bridges
        for endpoint in (edge.source, edge.target)
        if not endpoint.startswith(prefix)
    }
    assert articulation.covered_source_terms() == expected
