"""Hypothesis property tests; package context enables relative imports."""
