"""Property-based tests for the ontology algebra invariants (§5)."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.algebra import difference, intersection, union
from repro.core.ontology import Ontology
from repro.core.rules import ArticulationRuleSet, parse_rule

from .strategies import ontologies, simple_rule_texts


def valid_rules(o1: Ontology, o2: Ontology, texts: list[str]) -> ArticulationRuleSet:
    """Keep only rules whose terms exist in the generated ontologies."""
    rules = ArticulationRuleSet()
    for text in texts:
        rule = parse_rule(text)
        refs = list(rule.terms())
        ok = all(
            (ref.ontology == o1.name and o1.has_term(ref.term))
            or (ref.ontology == o2.name and o2.has_term(ref.term))
            for ref in refs
        )
        if ok:
            rules.add(rule)
    return rules


@given(
    ontologies("a"),
    ontologies("b"),
    st.lists(simple_rule_texts("a", "b"), max_size=6),
)
@settings(max_examples=50, deadline=None)
def test_union_node_count_is_sum(o1, o2, texts) -> None:
    """|N_union| = |N1| + |N2| + |NA| — qualified namespaces disjoint."""
    rules = valid_rules(o1, o2, texts)
    unified = union(o1, o2, rules, name="mid")
    graph = unified.graph()
    assert graph.node_count() == (
        o1.term_count()
        + o2.term_count()
        + unified.articulation.ontology.term_count()
    )


@given(
    ontologies("a"),
    ontologies("b"),
    st.lists(simple_rule_texts("a", "b"), max_size=6),
)
@settings(max_examples=50, deadline=None)
def test_union_leaves_sources_untouched(o1, o2, texts) -> None:
    before1, before2 = o1.graph.structure(), o2.graph.structure()
    union(o1, o2, valid_rules(o1, o2, texts), name="mid")
    assert o1.graph.structure() == before1
    assert o2.graph.structure() == before2


@given(
    ontologies("a"),
    ontologies("b"),
    st.lists(simple_rule_texts("a", "b"), max_size=6),
)
@settings(max_examples=50, deadline=None)
def test_intersection_edges_closed_over_its_terms(o1, o2, texts) -> None:
    """§5.2 pruning: every edge endpoint stays inside the result."""
    inter = intersection(o1, o2, valid_rules(o1, o2, texts), name="mid")
    terms = set(inter.terms())
    for edge in inter.graph.edges():
        assert edge.source in terms
        assert edge.target in terms


@given(
    ontologies("a"),
    ontologies("b"),
    st.lists(simple_rule_texts("a", "b"), max_size=6),
)
@settings(max_examples=50, deadline=None)
def test_intersection_terms_are_consequence_vocabulary(o1, o2, texts) -> None:
    """Articulation terms come from rule consequences (simple rules copy
    the consequence term into the articulation)."""
    rules = valid_rules(o1, o2, texts)
    inter = intersection(o1, o2, rules, name="mid")
    consequences = set()
    for rule in rules.implications():
        last = rule.steps[-1]
        from repro.core.rules import TermOperand

        if isinstance(last, TermOperand):
            consequences.add(last.ref.term)
    assert set(inter.terms()) <= consequences


@given(
    ontologies("a"),
    ontologies("b"),
    st.lists(simple_rule_texts("a", "b"), max_size=6),
)
@settings(max_examples=50, deadline=None)
def test_difference_is_subontology(o1, o2, texts) -> None:
    rules = valid_rules(o1, o2, texts)
    diff = difference(o1, o2, rules)
    assert set(diff.terms()) <= set(o1.terms())
    for edge in diff.graph.edges():
        assert o1.graph.has_edge(edge.source, edge.label, edge.target)


@given(
    ontologies("a"),
    ontologies("b"),
    st.lists(simple_rule_texts("a", "b"), max_size=6),
)
@settings(max_examples=50, deadline=None)
def test_formal_difference_contains_conservative(o1, o2, texts) -> None:
    """Conservative pruning only ever removes more."""
    rules = valid_rules(o1, o2, texts)
    conservative = difference(o1, o2, rules)
    formal = difference(o1, o2, rules, strategy="formal")
    assert set(conservative.terms()) <= set(formal.terms())


@given(
    ontologies("a"),
    ontologies("b"),
)
@settings(max_examples=30, deadline=None)
def test_difference_without_rules_is_identity(o1, o2) -> None:
    diff = difference(o1, o2, ArticulationRuleSet())
    assert diff.same_structure(o1)


@given(
    ontologies("a"),
    ontologies("b"),
    st.lists(simple_rule_texts("a", "b"), max_size=6),
)
@settings(max_examples=50, deadline=None)
def test_premise_terms_always_deleted(o1, o2, texts) -> None:
    """Every O1 term used as a simple-rule premise has, by
    construction, a bridge path into O2, so the difference drops it."""
    rules = valid_rules(o1, o2, texts)
    diff = difference(o1, o2, rules)
    from repro.core.rules import TermOperand

    for rule in rules.implications():
        first, last = rule.steps[0], rule.steps[-1]
        assert isinstance(first, TermOperand)
        assert isinstance(last, TermOperand)
        if first.ref.ontology == o1.name and last.ref.ontology == o2.name:
            assert not diff.has_term(first.ref.term)


@given(
    ontologies("a"),
    ontologies("b"),
    st.lists(simple_rule_texts("a", "b"), max_size=6),
)
@settings(max_examples=50, deadline=None)
def test_generation_deterministic(o1, o2, texts) -> None:
    rules = valid_rules(o1, o2, texts)
    first = union(o1, o2, rules, name="mid").articulation
    second = union(o1, o2, rules.copy(), name="mid").articulation
    assert first.ontology.same_structure(second.ontology)
    assert first.bridges == second.bridges
