"""Parity: indexed fuzzy matching ≡ the scanning baseline, and
blocked SKAT proposal ≡ the all-pairs baseline.

The indexed strategy resolves candidates through the cached
:class:`MatchIndex` and compiled edge checks; the scan strategy is the
preserved pre-index code path.  Both must emit *identical binding
sequences* — same matches, same order — across strict, synonym,
case-insensitive and relaxed-edge configurations, on randomized graphs
and patterns.  Likewise the blocked SKAT matchers must propose exactly
the candidates the all-pairs loops propose on randomized workloads.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.graph import LabeledGraph
from repro.core.patterns import (
    ANY_LABEL,
    MatchConfig,
    Pattern,
    find_matches,
)
from repro.lexicon.skat import (
    ExactLabelMatcher,
    HypernymMatcher,
    SkatEngine,
    StructuralMatcher,
    SynonymMatcher,
)
from repro.workloads.generator import WorkloadConfig, generate_workload

# ----------------------------------------------------------------------
# randomized graphs / patterns / configs
# ----------------------------------------------------------------------
# A small label alphabet with case variants so case folding has work
# to do, plus synonym pairs that chain (a ~ b ~ c) to exercise the
# transitive closure.
NODE_LABELS = ["alpha", "Alpha", "beta", "gamma", "Delta", "delta"]
EDGE_LABELS = ["S", "A", "r"]

graph_edges = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=6),
        st.sampled_from(EDGE_LABELS),
        st.integers(min_value=0, max_value=6),
    ),
    max_size=16,
)
node_labelings = st.lists(
    st.sampled_from(NODE_LABELS), min_size=7, max_size=7
)


def build_graph(labeling, edges, collide=False) -> LabeledGraph:
    # With ``collide``, node 0's id is drawn from the *label* alphabet:
    # a node id equal to some other node's label once hid a scan-path
    # bug (candidates dropped when a label tested `in` an id set).
    ids = [f"v{i}" for i in range(len(labeling))]
    if collide:
        ids[0] = "alpha"
    graph = LabeledGraph()
    for node_id, label in zip(ids, labeling):
        graph.add_node(node_id, label)
    for src, label, dst in edges:
        graph.add_edge(ids[src], label, ids[dst])
    return graph


pattern_nodes = st.lists(
    st.one_of(
        st.sampled_from(NODE_LABELS),  # labeled node
        st.none(),  # wildcard
    ),
    min_size=1,
    max_size=3,
)
pattern_edges = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=2),
        st.sampled_from([*EDGE_LABELS, ANY_LABEL]),
        st.integers(min_value=0, max_value=2),
    ),
    max_size=3,
)


def build_pattern(labels, edges) -> Pattern:
    pattern = Pattern()
    for i, label in enumerate(labels):
        variable = f"X{i}" if label is None else None
        pattern.add_node(f"p{i}", label, variable)
    for src, label, dst in edges:
        if src < len(labels) and dst < len(labels):
            pattern.add_edge(f"p{src}", label, f"p{dst}")
    return pattern


CONFIGS = {
    "strict": MatchConfig.strict(),
    "case": MatchConfig(case_insensitive=True),
    "synonyms": MatchConfig.with_synonyms(
        [("alpha", "beta"), ("beta", "gamma")]
    ),
    "relaxed": MatchConfig(relax_edge_labels=True),
    "injective": MatchConfig(injective=True),
    "everything": MatchConfig(
        synonyms=MatchConfig.with_synonyms(
            [("alpha", "beta"), ("Delta", "gamma")]
        ).synonyms,
        case_insensitive=True,
        relax_edge_labels=True,
    ),
    "node_equiv": MatchConfig(
        node_equiv=lambda p, g: p.startswith("a") and g.startswith("b")
    ),
    "edge_equiv": MatchConfig(edge_equiv=lambda p, g: {p, g} == {"S", "A"}),
}


def bindings(pattern, graph, config, strategy):
    return [
        (dict(b.mapping), dict(b.variables))
        for b in find_matches(pattern, graph, config, strategy=strategy)
    ]


class TestIndexedEqualsScan:
    @pytest.mark.parametrize("config_name", sorted(CONFIGS))
    @given(node_labelings, graph_edges, pattern_nodes, pattern_edges,
           st.booleans())
    @settings(max_examples=40, deadline=None)
    def test_same_bindings_same_order(
        self, config_name, labeling, edges, plabels, pedges, collide
    ) -> None:
        graph = build_graph(labeling, edges, collide=collide)
        pattern = build_pattern(plabels, pedges)
        config = CONFIGS[config_name]
        assert bindings(pattern, graph, config, "indexed") == bindings(
            pattern, graph, config, "scan"
        )

    @given(node_labelings, graph_edges, pattern_nodes, pattern_edges)
    @settings(max_examples=25, deadline=None)
    def test_limit_agrees(self, labeling, edges, plabels, pedges) -> None:
        graph = build_graph(labeling, edges)
        pattern = build_pattern(plabels, pedges)
        config = CONFIGS["everything"]
        for limit in (1, 2, 5):
            indexed = [
                dict(b.mapping)
                for b in find_matches(
                    pattern, graph, config, limit=limit, strategy="indexed"
                )
            ]
            scan = [
                dict(b.mapping)
                for b in find_matches(
                    pattern, graph, config, limit=limit, strategy="scan"
                )
            ]
            assert indexed == scan

    @given(node_labelings, graph_edges)
    @settings(max_examples=25, deadline=None)
    def test_index_survives_graph_mutation(self, labeling, edges) -> None:
        """The cached index self-invalidates when the graph moves."""
        graph = build_graph(labeling, edges)
        pattern = Pattern.single("alpha")
        config = CONFIGS["case"]
        before = bindings(pattern, graph, config, "indexed")
        assert before == bindings(pattern, graph, config, "scan")
        graph.add_node("fresh", "ALPHA")
        after = bindings(pattern, graph, config, "indexed")
        assert after == bindings(pattern, graph, config, "scan")
        assert len(after) == len(before) + 1


# ----------------------------------------------------------------------
# blocked SKAT ≡ all-pairs SKAT
# ----------------------------------------------------------------------
def proposal_fingerprint(candidates):
    return sorted(
        (c.key(), round(c.score, 9), c.matcher, c.reason) for c in candidates
    )


workload_params = st.tuples(
    st.integers(min_value=2, max_value=40),  # seed
    st.sampled_from([20, 35]),  # terms per source
    st.sampled_from([0.0, 0.4, 0.8]),  # identical_fraction
    st.sampled_from([0.0, 0.5]),  # lexicon noise
)


class TestBlockedSkatEqualsAllPairs:
    @given(workload_params)
    @settings(max_examples=15, deadline=None)
    def test_default_pipeline_parity(self, params) -> None:
        seed, terms, identical, noise = params
        workload = generate_workload(
            WorkloadConfig(
                universe_size=terms * 3,
                n_sources=2,
                terms_per_source=terms,
                overlap=0.5,
                identical_fraction=identical,
                seed=seed,
            )
        )
        lexicon = workload.lexicon(noise=noise, seed=seed)
        o1, o2 = workload.sources
        blocked = SkatEngine.default(lexicon, blocking=True)
        scan = SkatEngine.default(lexicon, blocking=False)
        assert proposal_fingerprint(
            blocked.propose(o1, o2)
        ) == proposal_fingerprint(scan.propose(o1, o2))
        # The blocking indexes must beat the all-pairs bound they are
        # compared against (4 matchers' worth of |o1| x |o2|).
        assert (
            blocked.last_stats["candidate_pairs"]
            < scan.last_stats["candidate_pairs"]
        )

    @given(workload_params)
    @settings(max_examples=10, deadline=None)
    def test_individual_matchers_parity(self, params) -> None:
        seed, terms, identical, noise = params
        workload = generate_workload(
            WorkloadConfig(
                universe_size=terms * 3,
                n_sources=2,
                terms_per_source=terms,
                overlap=0.6,
                identical_fraction=identical,
                seed=seed,
            )
        )
        lexicon = workload.lexicon(noise=noise, seed=seed)
        o1, o2 = workload.sources
        pairs = [
            (
                ExactLabelMatcher(blocking=True),
                ExactLabelMatcher(blocking=False),
            ),
            (
                SynonymMatcher(lexicon, blocking=True),
                SynonymMatcher(lexicon, blocking=False),
            ),
            (
                HypernymMatcher(lexicon, blocking=True),
                HypernymMatcher(lexicon, blocking=False),
            ),
            (
                StructuralMatcher(
                    seeds=[ExactLabelMatcher()], blocking=True
                ),
                StructuralMatcher(
                    seeds=[ExactLabelMatcher()], blocking=False
                ),
            ),
        ]
        for blocked, scan in pairs:
            assert proposal_fingerprint(
                blocked.propose(o1, o2)
            ) == proposal_fingerprint(scan.propose(o1, o2)), blocked.name

    def test_paper_example_parity(self) -> None:
        """The Fig. 2 carrier/factory pair through both pipelines."""
        from repro.workloads.paper_example import (
            carrier_ontology,
            factory_ontology,
        )

        carrier, factory = carrier_ontology(), factory_ontology()
        blocked = SkatEngine.default(blocking=True)
        scan = SkatEngine.default(blocking=False)
        assert proposal_fingerprint(
            blocked.propose(carrier, factory)
        ) == proposal_fingerprint(scan.propose(carrier, factory))
