"""Property-based tests for the Horn engine: the two evaluation
strategies agree, closures match graph reachability, explanations are
grounded."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.rules import HornClause
from repro.inference.horn import HornEngine

TRANS = HornClause(
    ("S", "?x", "?z"), (("S", "?x", "?y"), ("S", "?y", "?z"))
)

edge_lists = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=8),
        st.integers(min_value=0, max_value=8),
    ),
    max_size=16,
)


def closure_by_graph(edges: list[tuple[int, int]]) -> set[tuple[str, str]]:
    """Reference transitive closure via plain BFS."""
    adjacency: dict[str, set[str]] = {}
    for a, b in edges:
        adjacency.setdefault(f"v{a}", set()).add(f"v{b}")
    result: set[tuple[str, str]] = set()
    for start in adjacency:
        seen: set[str] = set()
        stack = list(adjacency.get(start, ()))
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            result.add((start, node))
            stack.extend(adjacency.get(node, ()))
    return result


@given(edge_lists)
@settings(max_examples=80, deadline=None)
def test_transitive_closure_matches_reachability(edges) -> None:
    engine = HornEngine()
    engine.add_clause(TRANS)
    for a, b in edges:
        engine.add_fact(("S", f"v{a}", f"v{b}"))
    engine.saturate()
    derived = {(f[1], f[2]) for f in engine.facts("S")}
    expected = closure_by_graph(edges) | {
        (f"v{a}", f"v{b}") for a, b in edges
    }
    assert derived == expected


@given(edge_lists)
@settings(max_examples=50, deadline=None)
def test_naive_and_seminaive_agree(edges) -> None:
    def run(strategy: str) -> set:
        engine = HornEngine(strategy=strategy)
        engine.add_clause(TRANS)
        engine.add_clause(
            HornClause(("R", "?y", "?x"), (("S", "?x", "?y"),))
        )
        for a, b in edges:
            engine.add_fact(("S", f"v{a}", f"v{b}"))
        engine.saturate()
        return engine.facts()

    assert run("naive") == run("seminaive")


@given(edge_lists)
@settings(max_examples=50, deadline=None)
def test_saturation_is_idempotent(edges) -> None:
    engine = HornEngine()
    engine.add_clause(TRANS)
    for a, b in edges:
        engine.add_fact(("S", f"v{a}", f"v{b}"))
    engine.saturate()
    first = engine.facts()
    derived_again = engine.saturate()
    assert derived_again == 0
    assert engine.facts() == first


@given(edge_lists)
@settings(max_examples=40, deadline=None)
def test_explanations_ground_in_base_facts(edges) -> None:
    engine = HornEngine()
    engine.add_clause(TRANS)
    base = {("S", f"v{a}", f"v{b}") for a, b in edges}
    for fact in base:
        engine.add_fact(fact)
    engine.saturate()
    for fact in engine.facts("S"):
        explanation = engine.explain(fact)
        assert explanation
        assert set(explanation) <= base


@given(edge_lists, edge_lists)
@settings(max_examples=40, deadline=None)
def test_monotonicity(edges_small, edges_extra) -> None:
    """Adding facts never removes conclusions (datalog is monotone)."""

    def run(pairs) -> set:
        engine = HornEngine()
        engine.add_clause(TRANS)
        for a, b in pairs:
            engine.add_fact(("S", f"v{a}", f"v{b}"))
        engine.saturate()
        return engine.facts()

    small = run(edges_small)
    big = run(edges_small + edges_extra)
    assert small <= big
