"""Property-based tests for the graph substrate and primitives."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.graph import LabeledGraph
from repro.core.transform import (
    EdgeAddition,
    NodeAddition,
    NodeDeletion,
    TransformLog,
)

from .strategies import labeled_graphs


@given(labeled_graphs())
def test_copy_equals_original(graph: LabeledGraph) -> None:
    assert graph.copy().same_structure(graph)


@given(labeled_graphs())
def test_dict_round_trip(graph: LabeledGraph) -> None:
    assert LabeledGraph.from_dict(graph.to_dict()).same_structure(graph)


@given(labeled_graphs())
def test_edge_indexes_consistent(graph: LabeledGraph) -> None:
    """Every edge appears in exactly the right out/in index buckets."""
    for edge in graph.edges():
        assert edge in graph.out_edges(edge.source)
        assert edge in graph.in_edges(edge.target)
    recount = sum(len(graph.out_edges(n)) for n in graph.nodes())
    assert recount == graph.edge_count()


@given(labeled_graphs())
def test_degree_sums_to_twice_edges(graph: LabeledGraph) -> None:
    total = sum(graph.degree(n) for n in graph.nodes())
    assert total == 2 * graph.edge_count()


@given(labeled_graphs())
def test_reachability_is_monotone_in_labels(graph: LabeledGraph) -> None:
    """Restricting traversal labels never grows the reachable set."""
    nodes = list(graph.nodes())
    start = nodes[0]
    unrestricted = graph.reachable_from(start)
    restricted = graph.reachable_from(start, labels={"S"})
    assert restricted <= unrestricted


@given(labeled_graphs())
def test_reverse_reachability_duality(graph: LabeledGraph) -> None:
    """b reachable from a  iff  a reverse-reachable from b."""
    nodes = sorted(graph.nodes())
    a = nodes[0]
    forward = graph.reachable_from(a)
    for b in nodes[: min(len(nodes), 5)]:
        backward = graph.reachable_from(b, reverse=True)
        assert (b in forward) == (a in backward)


@given(labeled_graphs())
def test_subgraph_nodes_subset(graph: LabeledGraph) -> None:
    keep = sorted(graph.nodes())[: max(1, graph.node_count() // 2)]
    sub = graph.subgraph(keep)
    assert set(sub.nodes()) == set(keep)
    for edge in sub.edges():
        assert graph.has_edge(edge.source, edge.label, edge.target)


@given(labeled_graphs())
def test_merge_is_idempotent(graph: LabeledGraph) -> None:
    clone = graph.copy()
    clone.merge(graph)
    assert clone.same_structure(graph)


@given(labeled_graphs(), labeled_graphs())
def test_merge_contains_both_operands(
    g1: LabeledGraph, g2: LabeledGraph
) -> None:
    # Relabel g2's nodes to avoid label conflicts on shared ids.
    merged = g1.copy()
    try:
        merged.merge(g2)
    except Exception:
        return  # conflicting labels on a shared id: rejection is correct
    for node in g1.nodes():
        assert merged.has_node(node)
    for edge in g2.edges():
        assert merged.has_edge(edge.source, edge.label, edge.target)


@given(labeled_graphs(), st.data())
@settings(max_examples=60)
def test_transform_log_rollback_restores_exactly(
    graph: LabeledGraph, data: st.DataObject
) -> None:
    """Any journaled mixture of primitives rolls back to the start."""
    snapshot = graph.structure()
    log = TransformLog()
    nodes = sorted(graph.nodes())
    n_ops = data.draw(st.integers(min_value=1, max_value=6))
    fresh = 0
    for _ in range(n_ops):
        choice = data.draw(st.integers(min_value=0, max_value=2))
        current = sorted(graph.nodes())
        if not current:
            choice = 0
        if choice == 0 and not current:
            log.apply(graph, NodeAddition(f"new{fresh}", f"new{fresh}"))
            fresh += 1
            continue
        if choice == 0:
            node_id = f"new{fresh}"
            fresh += 1
            anchor = data.draw(st.sampled_from(current))
            from repro.core.graph import Edge

            log.apply(
                graph,
                NodeAddition(node_id, node_id,
                             (Edge(node_id, "S", anchor),)),
            )
        elif choice == 1 and current:
            victim = data.draw(st.sampled_from(current))
            log.apply(graph, NodeDeletion(victim))
        else:
            from repro.core.graph import Edge

            source = data.draw(st.sampled_from(current))
            target = data.draw(st.sampled_from(current))
            log.apply(
                graph, EdgeAddition((Edge(source, "extra", target),))
            )
    log.rollback(graph)
    assert graph.structure() == snapshot
