"""Property-based round-trip tests for the format wrappers and parsers."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.rules import parse_rule
from repro.formats import adjacency, rdf, xmlfmt
from repro.query.ast import Condition, Query
from repro.query.parser import parse_query

from .strategies import ontologies


@given(ontologies("src"))
@settings(max_examples=60, deadline=None)
def test_adjacency_round_trip(onto) -> None:
    assert adjacency.loads(adjacency.dumps(onto)).same_structure(onto)


@given(ontologies("src"))
@settings(max_examples=60, deadline=None)
def test_xml_round_trip(onto) -> None:
    assert xmlfmt.loads(xmlfmt.dumps(onto)).same_structure(onto)


@given(ontologies("src"))
@settings(max_examples=60, deadline=None)
def test_rdf_round_trip_preserves_edges(onto) -> None:
    rebuilt = rdf.loads(rdf.dumps(onto))
    # Isolated terms are documented to be dropped; edges must survive.
    assert set(rebuilt.triples()) == set(onto.triples())


@given(
    st.integers(min_value=0, max_value=30),
    st.integers(min_value=0, max_value=30),
    st.sampled_from(["simple", "cascade", "conj", "disj"]),
)
def test_rule_text_round_trip(i, j, shape) -> None:
    if shape == "simple":
        text = f"a:T{i} => b:T{j}"
    elif shape == "cascade":
        text = f"a:T{i} => mid:M{i} => b:T{j}"
    elif shape == "conj":
        text = f"(a:T{i} ^ a:T{j}) => b:T{j}"
    else:
        text = f"a:T{i} => (b:T{i} | b:T{j})"
    rule = parse_rule(text)
    assert parse_rule(str(rule)) == rule


@given(
    st.lists(
        st.sampled_from(["price", "model", "owner", "weight"]),
        unique=True,
        max_size=3,
    ),
    st.lists(
        st.tuples(
            st.sampled_from(["price", "weight"]),
            st.sampled_from(["<", "<=", ">", ">=", "=", "!="]),
            st.integers(min_value=0, max_value=10_000),
        ),
        max_size=3,
    ),
)
def test_query_str_round_trip(select, conditions) -> None:
    query = Query.over(
        "transport:Vehicle",
        select=select,
        where=[Condition(a, op, v) for a, op, v in conditions],
    )
    assert parse_query(str(query)) == query
