"""Experiment FIG2: regenerate the paper's Fig. 2 articulation.

Measures the cost of generating the transport articulation from the
carrier/factory sources and the §4.1 rule set, and verifies the output
is bit-for-bit the paper's articulation (terms, internal edges,
bridges) every time the benchmark body runs.

The caching ablation measures the version-stamped unified-graph cache
and the inference engine's no-op refresh skip against uncached
rebuilds (recorded into ``BENCH_articulation.json``).
"""

from __future__ import annotations

import time

from repro.core.articulation import ArticulationGenerator
from repro.workloads.paper_example import (
    EXPECTED_ARTICULATION_TERMS,
    EXPECTED_BRIDGES,
    EXPECTED_INTERNAL_EDGES,
    carrier_ontology,
    factory_ontology,
    paper_rules,
)


def generate():
    generator = ArticulationGenerator(
        [carrier_ontology(), factory_ontology()], name="transport"
    )
    return generator.generate(paper_rules())


def check(articulation) -> None:
    assert (
        frozenset(articulation.ontology.terms())
        == EXPECTED_ARTICULATION_TERMS
    )
    assert (
        frozenset(
            (e.source, e.label, e.target)
            for e in articulation.ontology.graph.edges()
        )
        == EXPECTED_INTERNAL_EDGES
    )
    assert (
        frozenset((e.source, e.label, e.target) for e in articulation.bridges)
        == EXPECTED_BRIDGES
    )


def test_fig2_generation(benchmark, table) -> None:
    articulation = benchmark(generate)
    check(articulation)
    table(
        "FIG2 — the generated transport articulation",
        ["quantity", "value", "paper"],
        [
            ("articulation terms", len(list(articulation.ontology.terms())),
             len(EXPECTED_ARTICULATION_TERMS)),
            ("internal edges", articulation.ontology.graph.edge_count(),
             len(EXPECTED_INTERNAL_EDGES)),
            ("semantic bridges", len(articulation.bridges),
             len(EXPECTED_BRIDGES)),
            ("graph ops spent", articulation.cost(), "n/a"),
            ("conversion functions", len(articulation.functions), 4),
        ],
    )


def test_version_stamp_caching(table, record_bench) -> None:
    """Repeated algebra ops and inference refreshes over one
    articulation: the version-stamped caches must turn every repeat
    into a hit / no-op, and a mutation must invalidate them."""
    from repro.core.algebra import difference
    from repro.core.rules import ArticulationRuleSet, parse_rule
    from repro.inference.engine import OntologyInferenceEngine

    articulation = generate()
    carrier = articulation.sources["carrier"]
    factory = articulation.sources["factory"]
    rounds = 25

    # -- unified-graph reuse across algebra ops ------------------------
    articulation.cache_stats.clear()
    t0 = time.perf_counter()
    for _ in range(rounds):
        difference(carrier, factory, articulation)
    t_cached = time.perf_counter() - t0
    hits = articulation.cache_stats.get("unified_hits", 0)
    misses = articulation.cache_stats.get("unified_misses", 0)
    assert misses == 1 and hits == rounds - 1

    # The uncached baseline: bump the stamp each round so every call
    # rebuilds the unified graph from scratch.
    t0 = time.perf_counter()
    for _ in range(rounds):
        articulation.bump_version()
        difference(carrier, factory, articulation)
    t_uncached = time.perf_counter() - t0

    # -- refresh: no-op skip vs forced re-extraction -------------------
    engine = OntologyInferenceEngine.from_articulation(articulation)
    t0 = time.perf_counter()
    for _ in range(rounds):
        refresh = engine.refresh_from_articulation(articulation)
    t_noop = time.perf_counter() - t0
    assert refresh["mode"] == "noop"

    t0 = time.perf_counter()
    for _ in range(rounds):
        articulation.bump_version()
        refresh = engine.refresh_from_articulation(articulation)
    t_stamped = time.perf_counter() - t0
    assert refresh["mode"] == "incremental"

    # -- extend invalidates, then re-caches ----------------------------
    generator = ArticulationGenerator(
        articulation.sources.values(), name=articulation.name
    )
    extra = ArticulationRuleSet()
    extra.add(parse_rule("carrier:SUV => factory:Vehicle"))
    before = articulation.unified_graph()
    generator.extend(articulation, extra)
    after = articulation.unified_graph()
    assert after is not before
    assert articulation.unified_graph() is after
    assert engine.refresh_from_articulation(articulation)["mode"] == (
        "incremental"
    )
    assert engine.refresh_from_articulation(articulation)["mode"] == "noop"

    series = {
        "rounds": rounds,
        "difference_cached_ms": round(1e3 * t_cached, 2),
        "difference_uncached_ms": round(1e3 * t_uncached, 2),
        "difference_speedup": round(t_uncached / t_cached, 1),
        "unified_hits": hits,
        "unified_misses": misses,
        "refresh_noop_ms": round(1e3 * t_noop, 2),
        "refresh_stamped_ms": round(1e3 * t_stamped, 2),
        "refresh_speedup": round(t_stamped / t_noop, 1),
    }
    table(
        "FIG2 version-stamp caching (25 repeated ops)",
        ["metric", "cached/noop", "uncached", "speedup"],
        [
            (
                "difference()",
                f"{1e3 * t_cached:.1f}ms",
                f"{1e3 * t_uncached:.1f}ms",
                f"{t_uncached / t_cached:.1f}x",
            ),
            (
                "engine refresh",
                f"{1e3 * t_noop:.1f}ms",
                f"{1e3 * t_stamped:.1f}ms",
                f"{t_stamped / t_noop:.1f}x",
            ),
        ],
    )
    record_bench("articulation_cache", series)
    assert t_cached < t_uncached
    assert t_noop < t_stamped
