"""Experiment FIG2: regenerate the paper's Fig. 2 articulation.

Measures the cost of generating the transport articulation from the
carrier/factory sources and the §4.1 rule set, and verifies the output
is bit-for-bit the paper's articulation (terms, internal edges,
bridges) every time the benchmark body runs.
"""

from __future__ import annotations

from repro.core.articulation import ArticulationGenerator
from repro.workloads.paper_example import (
    EXPECTED_ARTICULATION_TERMS,
    EXPECTED_BRIDGES,
    EXPECTED_INTERNAL_EDGES,
    carrier_ontology,
    factory_ontology,
    paper_rules,
)


def generate():
    generator = ArticulationGenerator(
        [carrier_ontology(), factory_ontology()], name="transport"
    )
    return generator.generate(paper_rules())


def check(articulation) -> None:
    assert (
        frozenset(articulation.ontology.terms())
        == EXPECTED_ARTICULATION_TERMS
    )
    assert (
        frozenset(
            (e.source, e.label, e.target)
            for e in articulation.ontology.graph.edges()
        )
        == EXPECTED_INTERNAL_EDGES
    )
    assert (
        frozenset((e.source, e.label, e.target) for e in articulation.bridges)
        == EXPECTED_BRIDGES
    )


def test_fig2_generation(benchmark, table) -> None:
    articulation = benchmark(generate)
    check(articulation)
    table(
        "FIG2 — the generated transport articulation",
        ["quantity", "value", "paper"],
        [
            ("articulation terms", len(list(articulation.ontology.terms())),
             len(EXPECTED_ARTICULATION_TERMS)),
            ("internal edges", articulation.ontology.graph.edge_count(),
             len(EXPECTED_INTERNAL_EDGES)),
            ("semantic bridges", len(articulation.bridges),
             len(EXPECTED_BRIDGES)),
            ("graph ops spent", articulation.cost(), "n/a"),
            ("conversion functions", len(articulation.functions), 4),
        ],
    )
