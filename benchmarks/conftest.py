"""Shared helpers for the benchmark harness.

Each benchmark module covers one experiment id from DESIGN.md §3 and
prints a small table of the series the experiment reports (run pytest
with ``-s`` to see them alongside pytest-benchmark's timing table).
EXPERIMENTS.md records the measured outcomes against the paper's
claims.
"""

from __future__ import annotations

import pytest


def print_table(title: str, headers: list[str], rows: list[tuple]) -> None:
    """A plain fixed-width table for experiment series."""
    widths = [
        max(len(str(h)), max((len(f"{r[i]}") for r in rows), default=0))
        for i, h in enumerate(headers)
    ]
    print(f"\n### {title}")
    print("  " + "  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    for row in rows:
        print(
            "  "
            + "  ".join(f"{cell}".ljust(w) for cell, w in zip(row, widths))
        )


@pytest.fixture
def table():
    return print_table
