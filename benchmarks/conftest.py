"""Shared helpers for the benchmark harness.

Each benchmark module covers one experiment id from DESIGN.md §3 and
prints a small table of the series the experiment reports (run pytest
with ``-s`` to see them alongside pytest-benchmark's timing table).
EXPERIMENTS.md records the measured outcomes against the paper's
claims.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

_ARTICULATION_JSON = Path(__file__).resolve().parent / "BENCH_articulation.json"


def record_articulation_bench(section: str, payload: dict) -> None:
    """Merge one experiment's series into ``BENCH_articulation.json``.

    The articulation benchmarks span three modules
    (``bench_pattern_matching``, ``bench_skat``,
    ``bench_fig2_articulation``), each owning one section; merging by
    section keeps partial runs from clobbering the others' records.
    """
    record: dict = {"experiment": "ARTICULATION", "sections": {}}
    if _ARTICULATION_JSON.exists():
        try:
            existing = json.loads(_ARTICULATION_JSON.read_text())
        except json.JSONDecodeError:
            existing = {}
        if isinstance(existing.get("sections"), dict):
            record["sections"] = existing["sections"]
    record["sections"][section] = payload
    _ARTICULATION_JSON.write_text(
        json.dumps(record, indent=2, sort_keys=True) + "\n"
    )


def print_table(title: str, headers: list[str], rows: list[tuple]) -> None:
    """A plain fixed-width table for experiment series."""
    widths = [
        max(len(str(h)), max((len(f"{r[i]}") for r in rows), default=0))
        for i, h in enumerate(headers)
    ]
    print(f"\n### {title}")
    print("  " + "  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    for row in rows:
        print(
            "  "
            + "  ".join(f"{cell}".ljust(w) for cell, w in zip(row, widths))
        )


@pytest.fixture
def table():
    return print_table


@pytest.fixture
def record_bench():
    return record_articulation_bench
