"""Experiment QUERY: reformulation overhead and view acceleration
(§2.3, §2.6).

Measures (a) planning cost (reformulation across bridges + conversion-
path search), (b) execution over growing instance populations, direct
source query vs articulation-level query with currency conversion,
and (c) the materialized-view shortcut.
"""

from __future__ import annotations

import pytest

from repro.kb.instances import InstanceStore
from repro.query.engine import QueryEngine
from repro.query.views import ViewCatalog
from repro.workloads.paper_example import (
    carrier_ontology,
    factory_ontology,
    generate_transport_articulation,
)


def populated_stores(n_instances: int):
    carrier_kb = InstanceStore(carrier_ontology())
    factory_kb = InstanceStore(factory_ontology())
    for i in range(n_instances):
        carrier_kb.add(
            f"car{i}", "Car", price=1000 + 7 * (i % 900), model=f"M{i % 10}"
        )
        factory_kb.add(
            f"veh{i}", "Vehicle", price=2000 + 11 * (i % 1500),
            weight=800 + i % 300,
        )
    return carrier_kb, factory_kb


@pytest.fixture(scope="module")
def engine_small():
    articulation = generate_transport_articulation()
    carrier_kb, factory_kb = populated_stores(100)
    return QueryEngine(
        articulation, {"carrier": carrier_kb, "factory": factory_kb}
    )


def test_planning_cost(benchmark, engine_small) -> None:
    plan = benchmark(
        lambda: engine_small.plan(
            "SELECT price FROM transport:Vehicle WHERE price < 3000"
        )
    )
    assert len(plan.source_plans) == 2


@pytest.mark.parametrize("n_instances", [100, 1000, 5000])
def test_articulation_query_execution(benchmark, n_instances) -> None:
    articulation = generate_transport_articulation()
    carrier_kb, factory_kb = populated_stores(n_instances)
    engine = QueryEngine(
        articulation, {"carrier": carrier_kb, "factory": factory_kb}
    )
    plan = engine.plan(
        "SELECT price FROM transport:Vehicle WHERE price < 3000"
    )
    rows = benchmark(lambda: engine.run(plan))
    assert rows


@pytest.mark.parametrize("n_instances", [1000])
def test_reformulation_overhead_summary(benchmark, table, n_instances) -> None:
    """Direct source scan vs articulation query over the same data —
    the delta is reformulation + conversion, and should be a constant
    factor, not a blowup."""
    import time

    articulation = generate_transport_articulation()
    carrier_kb, factory_kb = populated_stores(n_instances)
    engine = QueryEngine(
        articulation, {"carrier": carrier_kb, "factory": factory_kb}
    )

    benchmark(lambda: engine.execute("SELECT price FROM transport:Vehicle"))
    t0 = time.perf_counter()
    direct = carrier_kb.select(["Car"])
    t1 = time.perf_counter()
    mediated = engine.execute("SELECT price FROM transport:Vehicle")
    t2 = time.perf_counter()

    table(
        f"QUERY reformulation overhead at n={n_instances}/source",
        ["path", "rows", "time"],
        [
            ("direct carrier scan", len(direct),
             f"{1e3 * (t1 - t0):.2f}ms"),
            ("articulation query (2 sources + conversion)", len(mediated),
             f"{1e3 * (t2 - t1):.2f}ms"),
        ],
    )
    assert len(mediated) == 2 * n_instances


@pytest.mark.parametrize("n_instances", [2000])
def test_pushdown_ablation(benchmark, table, n_instances) -> None:
    """DESIGN.md ablation: predicate pushdown through inverse
    conversions vs post-conversion filtering on a selective query."""
    import time

    articulation = generate_transport_articulation()
    question = "SELECT price FROM transport:Vehicle WHERE price < 2000"

    def run(pushdown: bool):
        carrier_kb, factory_kb = populated_stores(n_instances)
        engine = QueryEngine(
            articulation,
            {"carrier": carrier_kb, "factory": factory_kb},
            pushdown=pushdown,
        )
        return engine.execute(question)

    t0 = time.perf_counter()
    rows_plain = run(False)
    t_plain = time.perf_counter() - t0
    t0 = time.perf_counter()
    rows_pushed = run(True)
    t_pushed = time.perf_counter() - t0
    assert [r.instance_id for r in rows_plain] == [
        r.instance_id for r in rows_pushed
    ]
    benchmark(lambda: run(True))
    table(
        f"QUERY pushdown ablation at n={n_instances}/source",
        ["mode", "rows", "time"],
        [
            ("post-conversion filter", len(rows_plain),
             f"{1e3 * t_plain:.1f}ms"),
            ("pushdown", len(rows_pushed), f"{1e3 * t_pushed:.1f}ms"),
        ],
    )


def test_view_acceleration(benchmark, table, engine_small) -> None:
    catalog = ViewCatalog(engine_small)
    catalog.define("vehicles", "SELECT * FROM transport:Vehicle")
    question = "SELECT price FROM transport:Vehicle WHERE price < 3000"

    rows_view = benchmark(lambda: catalog.execute(question))
    rows_live = engine_small.execute(question)
    assert {r.instance_id for r in rows_view} == {
        r.instance_id for r in rows_live
    }
    table(
        "QUERY view acceleration",
        ["metric", "value"],
        [
            ("view hits", catalog.hits),
            ("view misses", catalog.misses),
            ("rows", len(rows_view)),
        ],
    )
