"""Experiment RETRACT: incremental deletion vs rebuild (§5.3).

The maintenance story is churn-heavy in both directions: sources shed
terms and experts revoke bridge rules as often as they add them.  PR 2
made additions incremental; this experiment measures the DRed
overdelete/rederive pass that makes *deletions* incremental too:

* **retract-vs-rebuild** — retract ``k`` of ``n`` base facts from the
  saturated 80-node closure and repair the fixpoint in place, against
  re-saturating the surviving facts from scratch.  Work is measured in
  join candidates and overdeleted/rederived counts (``last_stats``),
  not just wall clock; the single-fact retraction must clear a 5x
  candidate margin (the acceptance bar).
* **alternate-proof rederivation** — retraction on a diamond-closure
  workload where most overdeleted facts survive through alternate
  derivations: rederivation cost shows up as ``rederived`` counters.
* **articulation-churn** — the end-to-end paper-example campaign:
  one long-lived OntologyInferenceEngine refreshed through repairs
  (retraction deltas) vs a from-scratch engine build per batch, with
  identical probe answers asserted.

Running this module writes ``BENCH_retraction.json`` next to it; CI
uploads it as an artifact alongside the inference benchmarks.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import pytest

from repro.inference.horn import HornEngine
from repro.workloads.churn import run_churn_workload
from repro.workloads.paper_example import generate_transport_articulation

# One canonical closure clause for the chain workloads, shared with
# the inference benchmarks so the two series stay comparable.
from bench_inference import TRANS

RESULTS: dict[str, object] = {"experiment": "RETRACT", "workloads": {}}
_JSON_PATH = Path(__file__).resolve().parent / "BENCH_retraction.json"


def chain_facts(n: int, skip: set[int] = frozenset()) -> list[tuple]:
    return [("S", f"n{i}", f"n{i+1}") for i in range(n) if i not in skip]


def saturated_chain(n: int, skip: set[int] = frozenset()) -> HornEngine:
    engine = HornEngine()
    engine.add_clause(TRANS)
    engine.add_facts(chain_facts(n, skip))
    engine.saturate()
    return engine


def test_retract_vs_rebuild(table) -> None:
    """Retract k of n facts from a saturated closure: the DRed pass
    must do work proportional to the deleted cone, not the database."""
    n = 80
    rows = []
    series = {}
    for k in (1, 8, 40):
        victims = {int(i * n / k) for i in range(k)} if k > 1 else {n - 1}
        engine = saturated_chain(n)
        t0 = time.perf_counter()
        for index in sorted(victims):
            engine.retract_fact(("S", f"n{index}", f"n{index+1}"))
        engine.saturate()
        t_retract = time.perf_counter() - t0
        retract_stats = dict(engine.last_stats)

        t0 = time.perf_counter()
        rebuild = saturated_chain(n, skip=victims)
        t_rebuild = time.perf_counter() - t0
        rebuild_stats = dict(rebuild.last_stats)

        assert engine.facts() == rebuild.facts()
        assert retract_stats["mode"] == "retract"
        candidate_ratio = rebuild_stats["candidates"] / max(
            retract_stats["candidates"], 1
        )
        series[k] = {
            "retract_ms": round(1e3 * t_retract, 2),
            "rebuild_ms": round(1e3 * t_rebuild, 2),
            "retract_candidates": retract_stats["candidates"],
            "rebuild_candidates": rebuild_stats["candidates"],
            "overdeleted": retract_stats["overdeleted"],
            "rederived": retract_stats["rederived"],
            "candidate_ratio": round(candidate_ratio, 1),
        }
        rows.append(
            (
                f"{k}/{n}",
                f"{1e3 * t_retract:.1f}ms",
                f"{1e3 * t_rebuild:.1f}ms",
                retract_stats["candidates"],
                rebuild_stats["candidates"],
                retract_stats["overdeleted"],
                f"{candidate_ratio:.1f}x",
            )
        )
    table(
        "RETRACT retract k of n vs rebuild (80-node chain closure)",
        [
            "k/n",
            "retract",
            "rebuild",
            "retract cands",
            "rebuild cands",
            "overdeleted",
            "cand ratio",
        ],
        rows,
    )
    RESULTS["workloads"]["retract_vs_rebuild"] = series
    # Acceptance bar: a single-fact retraction examines a small
    # fraction of a rebuild's join candidates.
    assert series[1]["candidate_ratio"] >= 5.0, (
        f"single retraction ratio {series[1]['candidate_ratio']}x "
        "below the 5x bar"
    )


def test_alternate_proof_rederivation(table) -> None:
    """A ladder of diamonds: every span has two proofs, so retraction
    of one rail overdeletes a large cone and rederives most of it."""
    n = 30
    engine = HornEngine()
    engine.add_clause(TRANS)
    # two parallel rails a_i -> {b, c} -> a_{i+1}
    facts = []
    for i in range(n):
        facts += [
            ("S", f"a{i}", f"b{i}"),
            ("S", f"b{i}", f"a{i+1}"),
            ("S", f"a{i}", f"c{i}"),
            ("S", f"c{i}", f"a{i+1}"),
        ]
    engine.add_facts(facts)
    engine.saturate()
    total = engine.fact_count()
    t0 = time.perf_counter()
    engine.retract_fact(("S", "b0", "a1"))
    engine.saturate()
    t_retract = time.perf_counter() - t0
    stats = dict(engine.last_stats)
    scratch = HornEngine()
    scratch.add_clause(TRANS)
    scratch.add_facts(f for f in facts if f != ("S", "b0", "a1"))
    scratch.saturate()
    assert engine.facts() == scratch.facts()
    # all a0->... spans through b0 survive via c0: heavy rederivation
    assert stats["rederived"] > 0
    table(
        "RETRACT alternate-proof rederivation (diamond ladder)",
        ["metric", "value"],
        [
            ("saturated facts", total),
            ("overdeleted", stats["overdeleted"]),
            ("rederived", stats["rederived"]),
            ("survivor fraction", f"{stats['rederived']/max(stats['overdeleted'],1):.2f}"),
            ("time", f"{1e3 * t_retract:.1f}ms"),
        ],
    )
    RESULTS["workloads"]["alternate_proof_rederivation"] = {
        "saturated_facts": total,
        "overdeleted": stats["overdeleted"],
        "rederived": stats["rederived"],
        "retract_ms": round(1e3 * t_retract, 2),
    }


def test_articulation_churn(table) -> None:
    """The end-to-end §5.3 campaign: retraction-refreshed engine vs a
    rebuild per batch, identical probe answers required."""
    t0 = time.perf_counter()
    incremental = run_churn_workload(
        generate_transport_articulation(),
        batches=6,
        mutations_per_batch=6,
        seed=0,
        incremental=True,
    )
    t_incremental = time.perf_counter() - t0
    t0 = time.perf_counter()
    rebuild = run_churn_workload(
        generate_transport_articulation(),
        batches=6,
        mutations_per_batch=6,
        seed=0,
        incremental=False,
    )
    t_rebuild = time.perf_counter() - t0
    assert incremental.probe_results == rebuild.probe_results
    assert incremental.refresh_modes.get("retract", 0) > 0
    table(
        "RETRACT articulation churn campaign (6 batches, paper example)",
        ["driver", "time", "refresh modes"],
        [
            (
                "incremental (DRed)",
                f"{1e3 * t_incremental:.1f}ms",
                dict(sorted(incremental.refresh_modes.items())),
            ),
            (
                "rebuild per batch",
                f"{1e3 * t_rebuild:.1f}ms",
                dict(sorted(rebuild.refresh_modes.items())),
            ),
        ],
    )
    RESULTS["workloads"]["articulation_churn"] = {
        "incremental_ms": round(1e3 * t_incremental, 2),
        "rebuild_ms": round(1e3 * t_rebuild, 2),
        "incremental_modes": incremental.refresh_modes,
        "rebuild_modes": rebuild.refresh_modes,
        "work": incremental.work,
    }


_EXPECTED_WORKLOADS = {
    "retract_vs_rebuild",
    "alternate_proof_rederivation",
    "articulation_churn",
}


def test_write_bench_json(table) -> None:
    """Persist the collected series (runs last in this module).

    Only a complete run overwrites the checked-in record — a subset
    run (``-k``) or one with earlier failures must not clobber it with
    a partial series."""
    collected = set(RESULTS["workloads"])
    if collected != _EXPECTED_WORKLOADS:
        pytest.skip(
            "partial run (missing "
            f"{sorted(_EXPECTED_WORKLOADS - collected)}); "
            "not overwriting the checked-in record"
        )
    payload = json.dumps(RESULTS, indent=2, sort_keys=True)
    _JSON_PATH.write_text(payload + "\n")
    table(
        "RETRACT artifact",
        ["file", "workloads"],
        [(_JSON_PATH.name, len(RESULTS["workloads"]))],
    )
    assert _JSON_PATH.exists()
