"""Experiment MAINT: maintenance cost under source churn (§5.3, §6).

"If a change to a source ontology occurs in the difference of O1 with
other ontologies, no change needs to occur in any of the articulation
ontologies."

We churn one source and charge each integration strategy what it must
do per edit: ONION consults the covered-term set (the complement of
the difference) and repairs only bridges actually touched; the global
schema re-merges everything; manual views revise every view over the
changed source.  Includes the DESIGN.md ablation: conservative vs
formal difference as the maintenance oracle.
"""

from __future__ import annotations

import pytest

from repro.baselines.global_schema import GlobalSchemaIntegrator
from repro.baselines.manual_views import ManualViewIntegrator
from repro.core.algebra import difference
from repro.core.articulation import ArticulationGenerator
from repro.core.ontology import qualify
from repro.workloads.churn import apply_churn
from repro.workloads.generator import WorkloadConfig, generate_workload


def build_world(churn_seed: int = 3):
    workload = generate_workload(
        WorkloadConfig(
            universe_size=240,
            n_sources=2,
            terms_per_source=80,
            overlap=0.25,
            seed=31,
        )
    )
    generator = ArticulationGenerator(workload.sources, name="mid")
    articulation = generator.generate(workload.truth_rules(0, 1))
    return workload, articulation


def onion_maintenance(articulation, source, n_mutations: int, seed: int):
    """Returns (ops, free_edits, total_edits)."""
    covered = articulation.covered_source_terms()
    report = apply_churn(source, n_mutations=n_mutations, seed=seed)
    ops = 0
    free = 0
    for mutation in report.mutations:
        touched = {qualify(source.name, term) for term in mutation.touched}
        if touched & covered:
            ops += max(articulation.drop_dangling_bridges(), 1)
            covered = articulation.covered_source_terms()
        else:
            free += 1
    return ops, free, len(report)


@pytest.mark.parametrize("n_mutations", [10, 25, 50])
def test_maintenance_vs_baselines(benchmark, table, n_mutations) -> None:
    workload, articulation = build_world()
    source = articulation.sources["src0"]

    baseline_global = GlobalSchemaIntegrator(
        [workload.sources[0].copy(), workload.sources[1].copy()],
        workload.truth_alignment(0, 1),
    )
    baseline_global.build()
    baseline_views = ManualViewIntegrator()
    baseline_views.add_source(workload.sources[0].copy())
    baseline_views.define_views("src0")

    ops, free, total = onion_maintenance(
        articulation, source, n_mutations, seed=5
    )
    global_cost = sum(
        baseline_global.maintenance_cost_for([]) for _ in range(total)
    )
    view_cost = sum(
        baseline_views.source_changed("src0") for _ in range(total)
    )

    def run():
        wl, art = build_world()
        return onion_maintenance(art, art.sources["src0"], n_mutations, 5)

    benchmark(run)
    table(
        f"MAINT after {total} edits (overlap 0.25)",
        ["approach", "work", "free edits"],
        [
            ("ONION (difference-guided)", ops, f"{free}/{total}"),
            ("global re-merge", global_cost, f"0/{total}"),
            ("manual views", view_cost, f"0/{total}"),
        ],
    )
    assert ops < global_cost
    assert ops < view_cost
    assert free > 0  # §5.3's free-change region is non-empty


@pytest.mark.parametrize("overlap", [0.1, 0.3, 0.6])
def test_free_edit_fraction_tracks_overlap(benchmark, table, overlap) -> None:
    """The fraction of free edits should fall as the articulated
    (covered) region grows — the knob is the source overlap."""
    workload = generate_workload(
        WorkloadConfig(
            universe_size=240,
            n_sources=2,
            terms_per_source=80,
            overlap=overlap,
            seed=37,
        )
    )
    generator = ArticulationGenerator(workload.sources, name="mid")
    articulation = generator.generate(workload.truth_rules(0, 1))
    benchmark(articulation.covered_source_terms)
    ops, free, total = onion_maintenance(
        articulation, articulation.sources["src0"], 40, seed=11
    )
    table(
        f"MAINT free-edit fraction at overlap={overlap}",
        ["metric", "value"],
        [
            ("covered src0 terms",
             sum(1 for t in articulation.covered_source_terms()
                 if t.startswith("src0:"))),
            ("free edits", f"{free}/{total}"),
            ("repair ops", ops),
        ],
    )
    assert 0 <= free <= total


def test_ablation_difference_strategy(benchmark, table) -> None:
    """DESIGN.md ablation: conservative vs formal difference as the
    maintenance oracle.  Conservative removes more (orphans), so the
    'independent' region it reports is a subset of formal's."""
    workload, articulation = build_world()
    o1, o2 = workload.sources
    rules = workload.truth_rules(0, 1)
    benchmark(lambda: difference(o1, o2, rules, articulation_name="mid"))
    conservative = difference(o1, o2, rules, articulation_name="mid")
    formal = difference(
        o1, o2, rules, articulation_name="mid", strategy="formal"
    )
    table(
        "MAINT ablation: difference strategy",
        ["strategy", "independent terms"],
        [
            ("conservative (worked example)", len(conservative)),
            ("formal (definition only)", len(formal)),
        ],
    )
    assert set(conservative.terms()) <= set(formal.terms())
