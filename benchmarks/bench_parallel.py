"""Experiment PARALLEL: stratum-parallel saturation + batched churn.

PR 6 adds two perf layers to the Horn engine and this experiment
measures both:

* **speedup-vs-workers** — saturate a wide program (many mutually
  independent recursive predicate families, so the stratum DAG has
  real width) under ``workers`` ∈ {1, 2, 4}.  Fact sets must be
  bit-for-bit identical.  The headline figure is the **DAG makespan
  speedup**: list-scheduling the *measured* per-stratum serial times
  (``last_stats["stratum_ms"]``) over the stratum dependency DAG with
  W workers, against their serial sum.  Wall clock is recorded too,
  honestly — on a single-core CI runner process-pool wall time shows
  overhead, not speedup, which is why the acceptance bar is on the
  makespan model the scheduler provably follows (its dispatch *is*
  list scheduling over that DAG).
* **batched churn** — the §5.3 churn campaign with coalesced engine
  refreshes: ``batch_size`` ∈ {1, 2, 3, 6} against per-op refreshes
  and against a rebuild-per-batch driver, refresh phase time compared
  across the sweep (probe answers at shared rounds must agree).
* **crossover** — the auto-tuned DRed-vs-rebuild switch: calibrate on
  this machine, then validate that ``apply_batch`` routes a batch
  below the crossover through DRed and one at/above it through a
  rebuild, both landing on the from-scratch oracle's fact set.

Running this module writes ``BENCH_parallel.json`` next to it; the
perf-trajectory gate tracks its ratio metrics.
"""

from __future__ import annotations

import heapq
import json
import os
import time
from pathlib import Path

import pytest

from repro.inference.horn import HornEngine, seed_rebuild_crossover
from repro.workloads.churn import run_churn_workload
from repro.workloads.generator import wide_program
from repro.workloads.paper_example import generate_transport_articulation

RESULTS: dict[str, object] = {"experiment": "PARALLEL", "workloads": {}}
_JSON_PATH = Path(__file__).resolve().parent / "BENCH_parallel.json"

WORKER_COUNTS = (1, 2, 4)


def _makespan(times: list[float], deps: list[set[int]], workers: int) -> float:
    """List-schedule the stratum DAG on ``workers`` identical workers.

    Exactly the dispatch discipline ParallelScheduler implements
    (ready-queue over the dependency DAG), applied to the measured
    serial per-stratum times.
    """
    n = len(times)
    blockers = [len(dep) for dep in deps]
    dependents: list[list[int]] = [[] for _ in range(n)]
    for i, dep in enumerate(deps):
        for j in dep:
            dependents[j].append(i)
    ready = [i for i in range(n) if not blockers[i]]
    running: list[tuple[float, int]] = []
    clock = 0.0
    free = workers
    while ready or running:
        while ready and free:
            i = ready.pop()
            free -= 1
            heapq.heappush(running, (clock + times[i], i))
        clock, finished = heapq.heappop(running)
        free += 1
        for j in dependents[finished]:
            blockers[j] -= 1
            if not blockers[j]:
                ready.append(j)
    return clock


def _saturated_wide(workers: int) -> tuple[HornEngine, float]:
    program = wide_program(8, 14)
    engine = HornEngine(workers=workers, record_derivations=False)
    engine.add_clauses(program.clauses)
    engine.add_facts(program.facts)
    t0 = time.perf_counter()
    engine.saturate()
    return engine, (time.perf_counter() - t0) * 1000.0


def test_speedup_vs_workers(table) -> None:
    """Independent SCC strata overlap: the DAG makespan shrinks with
    worker count while the fact set stays bit-for-bit identical."""
    serial, serial_wall = _saturated_wide(1)
    serial_facts = serial.facts()
    stratum_ms = list(serial.last_stats["stratum_ms"])
    _, deps = serial.stratum_dag()
    serial_sum = sum(stratum_ms)

    series: dict[str, dict[str, float]] = {}
    rows = []
    for workers in WORKER_COUNTS:
        if workers == 1:
            wall_ms = serial_wall
        else:
            engine, wall_ms = _saturated_wide(workers)
            assert engine.facts() == serial_facts
            assert engine.last_stats["tasks"] >= len(stratum_ms)
        makespan = _makespan(stratum_ms, deps, workers)
        speedup = serial_sum / makespan if makespan else 1.0
        series[str(workers)] = {
            "wall_ms": round(wall_ms, 2),
            "makespan_ms": round(makespan, 2),
            "makespan_speedup": round(speedup, 2),
        }
        rows.append(
            (
                workers,
                f"{wall_ms:.1f}ms",
                f"{makespan:.1f}ms",
                f"{speedup:.2f}x",
            )
        )
    table(
        "PARALLEL speedup vs workers (wide_program(8, 14), "
        f"{len(stratum_ms)} strata, cpus={os.cpu_count()})",
        ["workers", "wall", "DAG makespan", "makespan speedup"],
        rows,
    )
    RESULTS["workloads"]["speedup_vs_workers"] = series
    RESULTS["workloads"]["speedup_vs_workers_meta"] = {
        "strata": len(stratum_ms),
        "cpu_count": os.cpu_count(),
        "serial_sum_ms": round(serial_sum, 2),
        "facts": len(serial_facts),
    }
    assert series["4"]["makespan_speedup"] >= 2.0, (
        f"4-worker makespan speedup {series['4']['makespan_speedup']}x "
        "below the 2x bar"
    )


def test_batched_churn(table) -> None:
    """Coalescing engine refreshes must beat per-op refreshes somewhere
    in the batch-size sweep, and crush the rebuild-per-batch baseline,
    with probe answers agreeing at every shared round."""
    batches, mutations, seed = 12, 6, 3

    def campaign(batch_size: int, incremental: bool = True):
        return run_churn_workload(
            generate_transport_articulation(),
            batches=batches,
            mutations_per_batch=mutations,
            seed=seed,
            incremental=incremental,
            batch_size=batch_size,
        )

    per_op = campaign(1)
    rebuild = campaign(1, incremental=False)
    assert per_op.probe_results == rebuild.probe_results

    series: dict[str, dict[str, object]] = {}
    rows = []
    best_speedup = 0.0
    for batch_size in (1, 2, 3, 6):
        run = per_op if batch_size == 1 else campaign(batch_size)
        if batch_size > 1:
            shared = {
                (r, term): answers
                for r, term, answers in per_op.probe_results
            }
            for r, term, answers in run.probe_results:
                assert shared[(r, term)] == answers
        refresh_ms = run.phase_ms["refresh"]
        speedup = per_op.phase_ms["refresh"] / max(refresh_ms, 1e-9)
        best_speedup = max(best_speedup, speedup)
        series[str(batch_size)] = {
            "refresh_ms": round(refresh_ms, 2),
            "refreshes": len(run.batch_work),
            "modes": dict(sorted(run.refresh_modes.items())),
            "speedup_vs_per_op": round(speedup, 2),
            "work": dict(run.work),
        }
        rows.append(
            (
                batch_size,
                len(run.batch_work),
                f"{refresh_ms:.1f}ms",
                f"{speedup:.2f}x",
                dict(sorted(run.refresh_modes.items())),
            )
        )
    rows.append(
        (
            "rebuild",
            len(rebuild.batch_work),
            f"{rebuild.phase_ms['refresh']:.1f}ms",
            f"{per_op.phase_ms['refresh'] / max(rebuild.phase_ms['refresh'], 1e-9):.2f}x",
            dict(sorted(rebuild.refresh_modes.items())),
        )
    )
    table(
        f"PARALLEL batched churn ({batches} rounds x {mutations} edits)",
        ["batch_size", "refreshes", "refresh time", "vs per-op", "modes"],
        rows,
    )
    RESULTS["workloads"]["batched_churn"] = {
        "series": series,
        "rebuild_per_batch_ms": round(rebuild.phase_ms["refresh"], 2),
        "best_speedup": round(best_speedup, 2),
    }
    assert best_speedup > 1.0, (
        f"no batch size beat per-op refreshes (best {best_speedup:.2f}x)"
    )


def test_crossover(table) -> None:
    """Calibrate the DRed-vs-rebuild crossover on this machine, then
    validate that apply_batch routes around it correctly."""
    chain = 48
    trans_facts = [("S", f"n{i}", f"n{i + 1}") for i in range(chain)]
    from repro.core.rules import HornClause

    trans = HornClause(
        ("S", "?x", "?z"), (("S", "?x", "?y"), ("S", "?y", "?z"))
    )

    def saturated() -> HornEngine:
        engine = HornEngine(record_derivations=False)
        engine.add_clause(trans)
        engine.add_facts(trans_facts)
        engine.saturate()
        return engine

    probe = saturated()
    seeded = probe.rebuild_crossover
    calibrated = probe.calibrate_rebuild_crossover(chain=chain)
    calibration = {
        str(row["k"]): {
            "dred_ms": round(row["dred_ms"], 2),
            "rebuild_ms": round(row["rebuild_ms"], 2),
        }
        for row in probe.last_calibration
    }

    def oracle(victims: list[tuple]) -> set:
        engine = HornEngine(record_derivations=False)
        engine.add_clause(trans)
        engine.add_facts(f for f in trans_facts if f not in victims)
        engine.saturate()
        return engine.facts()

    # Below the crossover: the batch must ride DRed.
    below = saturated()
    below.rebuild_crossover = max(calibrated, 2)
    victims = trans_facts[: below.rebuild_crossover - 1]
    report_below = below.apply_batch(retracts=victims)
    assert report_below["decision"] == "dred"
    assert below.facts() == oracle(victims)

    # At/above the crossover: the batch must reroute to a rebuild.
    above = saturated()
    above.rebuild_crossover = max(calibrated, 2)
    victims = trans_facts[: above.rebuild_crossover]
    report_above = above.apply_batch(retracts=victims)
    assert report_above["decision"] == "rebuild"
    assert above.facts() == oracle(victims)

    table(
        f"PARALLEL rebuild crossover (chain={chain})",
        ["k", "dred", "rebuild"],
        [
            (k, f"{v['dred_ms']}ms", f"{v['rebuild_ms']}ms")
            for k, v in sorted(calibration.items(), key=lambda kv: int(kv[0]))
        ]
        + [
            ("seeded", seeded, ""),
            ("calibrated", calibrated, ""),
        ],
    )
    RESULTS["workloads"]["crossover"] = {
        "seeded": seeded,
        "seeded_from_bench": seed_rebuild_crossover(),
        "calibrated": calibrated,
        "calibration": calibration,
        "below_decision": report_below["decision"],
        "above_decision": report_above["decision"],
    }


_EXPECTED_WORKLOADS = {
    "speedup_vs_workers",
    "speedup_vs_workers_meta",
    "batched_churn",
    "crossover",
}


def test_write_bench_json(table) -> None:
    """Persist the collected series (runs last in this module).

    Only a complete run overwrites the checked-in record — a subset
    run (``-k``) or one with earlier failures must not clobber it with
    a partial series."""
    collected = set(RESULTS["workloads"])
    if collected != _EXPECTED_WORKLOADS:
        pytest.skip(
            "partial run (missing "
            f"{sorted(_EXPECTED_WORKLOADS - collected)}); "
            "not overwriting the checked-in record"
        )
    payload = json.dumps(RESULTS, indent=2, sort_keys=True)
    _JSON_PATH.write_text(payload + "\n")
    table(
        "PARALLEL artifact",
        ["file", "workloads"],
        [(_JSON_PATH.name, len(RESULTS["workloads"]))],
    )
    assert _JSON_PATH.exists()
