"""Experiment INFER: the Horn engine, semi-naive vs naive (§4.1).

"Since inference engines for full first-order systems tend not to
scale up ... we will use simple Horn Clauses ... we can then plug in a
much lighter (and faster) inference engine."

The ablation compares naive re-evaluation against semi-naive (delta)
evaluation on transitive-closure workloads of growing size, plus the
full articulation-reasoning load (FIG2 rules + relationship axioms).
"""

from __future__ import annotations

import time

import pytest

from repro.core.rules import HornClause
from repro.inference.engine import OntologyInferenceEngine
from repro.inference.horn import HornEngine
from repro.workloads.paper_example import generate_transport_articulation

TRANS = HornClause(
    ("S", "?x", "?z"), (("S", "?x", "?y"), ("S", "?y", "?z"))
)


def chain_engine(n: int, strategy: str) -> HornEngine:
    engine = HornEngine(strategy=strategy)
    engine.add_clause(TRANS)
    for i in range(n - 1):
        engine.add_fact(("S", f"n{i}", f"n{i+1}"))
    return engine


@pytest.mark.parametrize("n", [20, 40, 80])
@pytest.mark.parametrize("strategy", ["seminaive", "naive"])
def test_transitive_closure(benchmark, n, strategy) -> None:
    def run():
        engine = chain_engine(n, strategy)
        engine.saturate()
        return len(engine.facts("S"))

    count = benchmark(run)
    assert count == n * (n - 1) // 2


def test_seminaive_beats_naive_summary(benchmark, table) -> None:
    benchmark(lambda: chain_engine(40, "seminaive").saturate())
    rows = []
    for n in (20, 40, 80):
        timings = {}
        for strategy in ("seminaive", "naive"):
            t0 = time.perf_counter()
            engine = chain_engine(n, strategy)
            engine.saturate()
            timings[strategy] = time.perf_counter() - t0
        speedup = timings["naive"] / timings["seminaive"]
        rows.append(
            (
                n,
                f"{1e3 * timings['seminaive']:.1f}ms",
                f"{1e3 * timings['naive']:.1f}ms",
                f"{speedup:.1f}x",
            )
        )
    table(
        "INFER semi-naive vs naive (chain closure)",
        ["chain n", "semi-naive", "naive", "speedup"],
        rows,
    )
    # On the largest chain the delta evaluation must win.
    assert float(rows[-1][3][:-1]) > 1.0


def test_goal_directed_slicing_ablation(benchmark, table) -> None:
    """DESIGN.md ablation: full saturation vs relevance-sliced goal
    answering when the program mixes many predicate families and the
    question touches only one."""
    from repro.inference.goal import GoalDirectedEngine

    def build_program(target):
        """A fat program: one S-chain plus many unrelated predicate
        families with their own transitive rules."""
        target.add_clause(TRANS)
        for family in range(8):
            pred = f"P{family}"
            target.add_clause(
                HornClause(
                    (pred, "?x", "?z"),
                    ((pred, "?x", "?y"), (pred, "?y", "?z")),
                )
            )
            for i in range(30):
                target.add_fact((pred, f"{pred}n{i}", f"{pred}n{i+1}"))
        for i in range(30):
            target.add_fact(("S", f"n{i}", f"n{i+1}"))

    def run_full() -> bool:
        engine = HornEngine()
        build_program(engine)
        return engine.holds(("S", "n0", "n29"))

    def run_sliced() -> bool:
        engine = GoalDirectedEngine()
        build_program(engine)
        return engine.holds(("S", "n0", "n29"))

    t0 = time.perf_counter()
    assert run_full()
    t_full = time.perf_counter() - t0
    t0 = time.perf_counter()
    assert run_sliced()
    t_sliced = time.perf_counter() - t0
    benchmark(run_sliced)
    table(
        "INFER goal-directed slicing (1 goal, 9 predicate families)",
        ["engine", "time", "speedup"],
        [
            ("full saturation", f"{1e3 * t_full:.1f}ms", "1.0x"),
            (
                "relevance-sliced",
                f"{1e3 * t_sliced:.1f}ms",
                f"{t_full / t_sliced:.1f}x",
            ),
        ],
    )
    # The slice touches 1 of 9 predicate families; it must win clearly.
    assert t_sliced < t_full


def test_articulation_reasoning_load(benchmark, table) -> None:
    """Full FIG2 reasoning: load sources + bridges + axioms, saturate,
    answer the §4.1 consequence questions."""

    def run():
        engine = OntologyInferenceEngine.from_articulation(
            generate_transport_articulation()
        )
        assert engine.implies("carrier:Car", "factory:Vehicle")
        assert engine.implies(
            "factory:Truck", "transport:CargoCarrierVehicle"
        )
        return engine.fact_count()

    facts = benchmark(run)
    table(
        "INFER articulation reasoning",
        ["metric", "value"],
        [("saturated facts", facts)],
    )
    assert facts > 100
