"""Experiment INFER: the Horn engine, rebuilt for speed (§4.1).

"Since inference engines for full first-order systems tend not to
scale up ... we will use simple Horn Clauses ... we can then plug in a
much lighter (and faster) inference engine."

Four ablations over the rebuilt evaluator:

* **indexed-vs-scan** — the compiled, argument-indexed engine against
  the pre-rebuild scan-based engine (``legacy_horn.LegacyHornEngine``)
  on transitive-closure chains; the 80-node workload must show at
  least a 5x speedup.
* **incremental-vs-rerun** — one fact added after a fixpoint: delta
  propagation against from-scratch re-saturation, measured in derived
  facts and join candidates (work proportional to the delta), not
  just wall clock.
* **stratified-vs-flat** — SCC-stratum scheduling against flat
  delta-driven rounds on a layered program: joins are enumerated once
  either way (semi-naive), but stratification cuts the delta-plan
  activations.
* **semi-naive-vs-naive** — the classic delta ablation, retained from
  the original experiment, plus goal-directed slicing and the full
  articulation-reasoning load.

Running this module writes ``BENCH_inference.json`` next to it with
the measured timings and work counts; CI uploads it as an artifact to
seed the perf trajectory.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import pytest

from repro.core.rules import HornClause
from repro.inference.engine import OntologyInferenceEngine
from repro.inference.horn import HornEngine
from repro.workloads.paper_example import generate_transport_articulation

from legacy_horn import LegacyHornEngine

TRANS = HornClause(
    ("S", "?x", "?z"), (("S", "?x", "?y"), ("S", "?y", "?z"))
)

RESULTS: dict[str, object] = {"experiment": "INFER", "workloads": {}}
_JSON_PATH = Path(__file__).resolve().parent / "BENCH_inference.json"


def chain_engine(n: int, strategy: str = "seminaive", **kwargs) -> HornEngine:
    engine = HornEngine(strategy=strategy, **kwargs)
    engine.add_clause(TRANS)
    for i in range(n - 1):
        engine.add_fact(("S", f"n{i}", f"n{i+1}"))
    return engine


def legacy_chain_engine(n: int, strategy: str = "seminaive") -> LegacyHornEngine:
    engine = LegacyHornEngine(strategy=strategy)
    engine.add_clause(TRANS)
    for i in range(n - 1):
        engine.add_fact(("S", f"n{i}", f"n{i+1}"))
    return engine


@pytest.mark.parametrize("n", [20, 40, 80])
@pytest.mark.parametrize("strategy", ["seminaive", "naive"])
def test_transitive_closure(benchmark, n, strategy) -> None:
    def run():
        engine = chain_engine(n, strategy)
        engine.saturate()
        return len(engine.facts("S"))

    count = benchmark(run)
    assert count == n * (n - 1) // 2


def test_indexed_vs_scan(table) -> None:
    """The acceptance ablation: compiled+indexed joins against the
    pre-rebuild per-predicate scans with dict-copied bindings.  The
    80-node chain must clear a 5x speedup."""
    rows = []
    series = {}
    for n in (20, 40, 80):
        t0 = time.perf_counter()
        legacy = legacy_chain_engine(n)
        legacy.saturate()
        t_scan = time.perf_counter() - t0
        t0 = time.perf_counter()
        indexed = chain_engine(n)
        indexed.saturate()
        t_indexed = time.perf_counter() - t0
        assert indexed.facts("S") == legacy.facts("S")
        speedup = t_scan / t_indexed
        series[n] = {
            "scan_ms": round(1e3 * t_scan, 2),
            "indexed_ms": round(1e3 * t_indexed, 2),
            "speedup": round(speedup, 1),
        }
        rows.append(
            (
                n,
                f"{1e3 * t_scan:.1f}ms",
                f"{1e3 * t_indexed:.1f}ms",
                f"{speedup:.1f}x",
            )
        )
    table(
        "INFER indexed vs scan (chain closure, pre-rebuild baseline)",
        ["chain n", "scan (legacy)", "indexed", "speedup"],
        rows,
    )
    RESULTS["workloads"]["indexed_vs_scan"] = series
    assert series[80]["speedup"] >= 5.0, (
        f"80-node closure speedup {series[80]['speedup']}x below the 5x bar"
    )


def test_incremental_vs_rerun(table) -> None:
    """One fact after a fixpoint: delta propagation must do work
    proportional to the delta — measured in derived facts and join
    candidates, not just wall clock."""
    n = 80
    engine = chain_engine(n)
    engine.saturate()
    full_stats = dict(engine.last_stats)

    t0 = time.perf_counter()
    engine.add_fact(("S", f"n{n-1}", f"n{n}"))
    engine.saturate()
    t_incremental = time.perf_counter() - t0
    inc_stats = dict(engine.last_stats)

    t0 = time.perf_counter()
    rerun = chain_engine(n + 1)
    rerun.saturate()
    t_rerun = time.perf_counter() - t0
    rerun_stats = dict(rerun.last_stats)

    # Parity: incremental == from-scratch.
    assert engine.facts() == rerun.facts()
    assert inc_stats["mode"] == "incremental"
    # The insert extends the chain by one node: exactly n new closure
    # facts hold, n-1 of them derived.  Work must track that delta.
    assert inc_stats["derived"] == n - 1
    candidate_ratio = rerun_stats["candidates"] / max(
        inc_stats["candidates"], 1
    )
    derived_ratio = rerun_stats["derived"] / max(inc_stats["derived"], 1)
    assert candidate_ratio >= 5.0
    table(
        "INFER incremental vs re-run (insert 1 fact into 80-node closure)",
        ["metric", "incremental", "re-run", "ratio"],
        [
            (
                "wall clock",
                f"{1e3 * t_incremental:.1f}ms",
                f"{1e3 * t_rerun:.1f}ms",
                f"{t_rerun / t_incremental:.1f}x",
            ),
            (
                "join candidates",
                inc_stats["candidates"],
                rerun_stats["candidates"],
                f"{candidate_ratio:.1f}x",
            ),
            (
                "derived facts",
                inc_stats["derived"],
                rerun_stats["derived"],
                f"{derived_ratio:.1f}x",
            ),
        ],
    )
    RESULTS["workloads"]["incremental_vs_rerun"] = {
        "chain_n": n,
        "incremental_ms": round(1e3 * t_incremental, 2),
        "rerun_ms": round(1e3 * t_rerun, 2),
        "incremental_candidates": inc_stats["candidates"],
        "rerun_candidates": rerun_stats["candidates"],
        "incremental_derived": inc_stats["derived"],
        "rerun_derived": rerun_stats["derived"],
        "full_before_insert": full_stats,
    }


LAYERED = [
    TRANS,
    HornClause(("implies", "?x", "?y"), (("S", "?x", "?y"),)),
    HornClause(
        ("implies", "?x", "?z"),
        (("implies", "?x", "?y"), ("implies", "?y", "?z")),
    ),
    HornClause(
        ("instance_of", "?o", "?c2"),
        (("instance_of", "?o", "?c1"), ("implies", "?c1", "?c2")),
    ),
]


def layered_engine(scheduling: str, n: int = 50, m: int = 40) -> HornEngine:
    engine = HornEngine(scheduling=scheduling)
    engine.add_clauses(LAYERED)
    for i in range(n - 1):
        engine.add_fact(("S", f"n{i}", f"n{i+1}"))
    for j in range(m):
        engine.add_fact(("instance_of", f"obj{j}", f"n{j % (n - 1)}"))
    return engine


def test_stratified_vs_flat(table) -> None:
    """Layered program (S closure -> implies -> instances): strata in
    topological order activate far fewer delta plans than flat rounds,
    at identical join counts (semi-naive enumerates each join once)."""
    stats = {}
    timing = {}
    engines = {}
    for scheduling in ("stratified", "flat"):
        t0 = time.perf_counter()
        engine = layered_engine(scheduling)
        engine.saturate()
        timing[scheduling] = time.perf_counter() - t0
        stats[scheduling] = dict(engine.last_stats)
        engines[scheduling] = engine
    assert engines["stratified"].facts() == engines["flat"].facts()
    assert (
        stats["stratified"]["activations"] < stats["flat"]["activations"]
    )
    assert stats["stratified"]["candidates"] <= stats["flat"]["candidates"]
    table(
        "INFER stratified vs flat scheduling (3-layer program)",
        ["metric", "stratified", "flat"],
        [
            ("strata", stats["stratified"]["strata"], stats["flat"]["strata"]),
            (
                "plan activations",
                stats["stratified"]["activations"],
                stats["flat"]["activations"],
            ),
            (
                "join candidates",
                stats["stratified"]["candidates"],
                stats["flat"]["candidates"],
            ),
            (
                "time",
                f"{1e3 * timing['stratified']:.1f}ms",
                f"{1e3 * timing['flat']:.1f}ms",
            ),
        ],
    )
    RESULTS["workloads"]["stratified_vs_flat"] = {
        "stratified": stats["stratified"],
        "flat": stats["flat"],
        "stratified_ms": round(1e3 * timing["stratified"], 2),
        "flat_ms": round(1e3 * timing["flat"], 2),
    }


def test_seminaive_beats_naive_summary(benchmark, table) -> None:
    benchmark(lambda: chain_engine(40, "seminaive").saturate())
    rows = []
    series = {}
    for n in (20, 40, 80):
        timings = {}
        for strategy in ("seminaive", "naive"):
            t0 = time.perf_counter()
            engine = chain_engine(n, strategy)
            engine.saturate()
            timings[strategy] = time.perf_counter() - t0
        speedup = timings["naive"] / timings["seminaive"]
        series[n] = {
            "seminaive_ms": round(1e3 * timings["seminaive"], 2),
            "naive_ms": round(1e3 * timings["naive"], 2),
            "speedup": round(speedup, 1),
        }
        rows.append(
            (
                n,
                f"{1e3 * timings['seminaive']:.1f}ms",
                f"{1e3 * timings['naive']:.1f}ms",
                f"{speedup:.1f}x",
            )
        )
    table(
        "INFER semi-naive vs naive (chain closure)",
        ["chain n", "semi-naive", "naive", "speedup"],
        rows,
    )
    RESULTS["workloads"]["seminaive_vs_naive"] = series
    # On the largest chain the delta evaluation must win.
    assert float(rows[-1][3][:-1]) > 1.0


def test_goal_directed_slicing_ablation(benchmark, table) -> None:
    """DESIGN.md ablation: full saturation vs relevance-sliced goal
    answering when the program mixes many predicate families and the
    question touches only one.  Slices overlay the master fact store,
    so building one copies no base facts."""
    from repro.inference.goal import GoalDirectedEngine

    def build_program(target):
        """A fat program: one S-chain plus many unrelated predicate
        families with their own transitive rules."""
        target.add_clause(TRANS)
        for family in range(8):
            pred = f"P{family}"
            target.add_clause(
                HornClause(
                    (pred, "?x", "?z"),
                    ((pred, "?x", "?y"), (pred, "?y", "?z")),
                )
            )
            for i in range(30):
                target.add_fact((pred, f"{pred}n{i}", f"{pred}n{i+1}"))
        for i in range(30):
            target.add_fact(("S", f"n{i}", f"n{i+1}"))

    def run_full() -> bool:
        engine = HornEngine()
        build_program(engine)
        return engine.holds(("S", "n0", "n29"))

    def run_sliced() -> bool:
        engine = GoalDirectedEngine()
        build_program(engine)
        return engine.holds(("S", "n0", "n29"))

    t0 = time.perf_counter()
    assert run_full()
    t_full = time.perf_counter() - t0
    t0 = time.perf_counter()
    assert run_sliced()
    t_sliced = time.perf_counter() - t0
    benchmark(run_sliced)
    table(
        "INFER goal-directed slicing (1 goal, 9 predicate families)",
        ["engine", "time", "speedup"],
        [
            ("full saturation", f"{1e3 * t_full:.1f}ms", "1.0x"),
            (
                "relevance-sliced",
                f"{1e3 * t_sliced:.1f}ms",
                f"{t_full / t_sliced:.1f}x",
            ),
        ],
    )
    RESULTS["workloads"]["goal_directed_slicing"] = {
        "full_ms": round(1e3 * t_full, 2),
        "sliced_ms": round(1e3 * t_sliced, 2),
    }
    # The slice touches 1 of 9 predicate families; it must win clearly.
    assert t_sliced < t_full


def test_articulation_reasoning_load(benchmark, table) -> None:
    """Full FIG2 reasoning: load sources + bridges + axioms, saturate,
    answer the §4.1 consequence questions."""

    def run():
        engine = OntologyInferenceEngine.from_articulation(
            generate_transport_articulation()
        )
        assert engine.implies("carrier:Car", "factory:Vehicle")
        assert engine.implies(
            "factory:Truck", "transport:CargoCarrierVehicle"
        )
        return engine.fact_count()

    facts = benchmark(run)
    table(
        "INFER articulation reasoning",
        ["metric", "value"],
        [("saturated facts", facts)],
    )
    RESULTS["workloads"]["articulation_reasoning"] = {
        "saturated_facts": facts
    }
    assert facts > 100


_EXPECTED_WORKLOADS = {
    "indexed_vs_scan",
    "incremental_vs_rerun",
    "stratified_vs_flat",
    "seminaive_vs_naive",
    "goal_directed_slicing",
    "articulation_reasoning",
}


def test_write_bench_json(table) -> None:
    """Persist the collected series (runs last in this module).

    Only a complete run overwrites the checked-in record — a subset
    run (``-k``) or one with earlier failures must not clobber it with
    a partial series."""
    collected = set(RESULTS["workloads"])
    if collected != _EXPECTED_WORKLOADS:
        pytest.skip(
            "partial run (missing "
            f"{sorted(_EXPECTED_WORKLOADS - collected)}); "
            "not overwriting the checked-in record"
        )
    payload = json.dumps(RESULTS, indent=2, sort_keys=True)
    _JSON_PATH.write_text(payload + "\n")
    table(
        "INFER artifact",
        ["file", "workloads"],
        [(_JSON_PATH.name, len(RESULTS["workloads"]))],
    )
    assert _JSON_PATH.exists()
