"""The pre-index Horn engine, preserved as the benchmark baseline.

This is the scan-based evaluator the repository shipped before the
inference subsystem was rebuilt: body atoms scan every fact of their
predicate, each candidate match copies the whole binding dict, every
round visits every clause at every body position, and any fact added
after a fixpoint forces a full re-saturation.  ``bench_inference.py``
joins it against the indexed/compiled engine for the indexed-vs-scan
ablation; it is not part of the library.
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Iterable, Iterator, Mapping

from repro.core.rules import HornClause
from repro.errors import InferenceError
from repro.inference.horn import Atom, is_ground, substitute, unify_atom


class LegacyHornEngine:
    """Forward chaining via per-predicate scans and dict-copy bindings."""

    def __init__(self, *, strategy: str = "seminaive") -> None:
        if strategy not in ("seminaive", "naive"):
            raise InferenceError(f"unknown evaluation strategy {strategy!r}")
        self.strategy = strategy
        self._facts: set[Atom] = set()
        self._by_predicate: dict[str, set[Atom]] = defaultdict(set)
        self._clauses: list[HornClause] = []
        self._saturated = False

    def add_fact(self, atom: Atom) -> bool:
        if not is_ground(atom):
            raise InferenceError(f"facts must be ground: {atom!r}")
        if atom in self._facts:
            return False
        self._facts.add(atom)
        self._by_predicate[atom[0]].add(atom)
        self._saturated = False
        return True

    def add_facts(self, atoms: Iterable[Atom]) -> int:
        return sum(1 for atom in atoms if self.add_fact(atom))

    def add_clause(self, clause: HornClause) -> None:
        if not clause.body:
            self.add_fact(clause.head)
            return
        self._clauses.append(clause)
        self._saturated = False

    def saturate(self, *, max_rounds: int | None = None) -> int:
        if self.strategy == "seminaive":
            derived_total = self._saturate_seminaive(max_rounds)
        else:
            derived_total = self._saturate_naive(max_rounds)
        self._saturated = True
        return derived_total

    def _match_body(
        self,
        body: tuple[Atom, ...],
        binding: dict[str, str],
        index: int,
        *,
        required: tuple[int, set[Atom]] | None = None,
    ) -> Iterator[dict[str, str]]:
        if index == len(body):
            yield dict(binding)
            return
        pattern = substitute(body[index], binding)
        if required is not None and required[0] == index:
            pool: Iterable[Atom] = required[1]
        else:
            pool = self._by_predicate.get(pattern[0], ())
        for fact in pool:
            extended = unify_atom(pattern, fact, binding)
            if extended is None:
                continue
            yield from self._match_body(
                body, extended, index + 1, required=required
            )

    def _fire(
        self,
        clause: HornClause,
        *,
        required: tuple[int, set[Atom]] | None = None,
    ) -> list[Atom]:
        new: list[Atom] = []
        matches = list(
            self._match_body(clause.body, {}, 0, required=required)
        )
        for binding in matches:
            head = substitute(clause.head, binding)
            if head not in self._facts:
                new.append(head)
                self._facts.add(head)
                self._by_predicate[head[0]].add(head)
        return new

    def _saturate_naive(self, max_rounds: int | None) -> int:
        derived_total = 0
        rounds = 0
        while True:
            rounds += 1
            new_this_round = 0
            for clause in self._clauses:
                new_this_round += len(self._fire(clause))
            derived_total += new_this_round
            if new_this_round == 0:
                break
            if max_rounds is not None and rounds >= max_rounds:
                break
        return derived_total

    def _saturate_seminaive(self, max_rounds: int | None) -> int:
        delta: dict[str, set[Atom]] = {
            pred: set(facts) for pred, facts in self._by_predicate.items()
        }
        derived_total = 0
        rounds = 0
        while delta:
            rounds += 1
            new_facts: list[Atom] = []
            for clause in self._clauses:
                for index, atom in enumerate(clause.body):
                    pool = delta.get(atom[0])
                    if not pool:
                        continue
                    new_facts.extend(
                        self._fire(clause, required=(index, pool))
                    )
            derived_total += len(new_facts)
            if max_rounds is not None and rounds >= max_rounds:
                break
            grouped: dict[str, set[Atom]] = defaultdict(set)
            for fact in new_facts:
                grouped[fact[0]].add(fact)
            delta = {p: s for p, s in grouped.items() if s}
        return derived_total

    def holds(self, atom: Atom) -> bool:
        if not self._saturated:
            self.saturate()
        return atom in self._facts

    def facts(self, predicate: str | None = None) -> set[Atom]:
        if not self._saturated:
            self.saturate()
        if predicate is None:
            return set(self._facts)
        return set(self._by_predicate.get(predicate, ()))

    def __len__(self) -> int:
        return len(self._facts)
