"""Experiment PATTERN: pattern matching cost, strict vs fuzzy (§3).

Matches the paper's two textual pattern shapes (a path and a node-with-
attributes) against synthetic ontologies of growing size, under strict
label equality and under fuzzy (synonym + relaxed-edge) configurations
— fuzzy matching pays a label-scan, which is the measured gap.
"""

from __future__ import annotations

import pytest

from repro.core.patterns import ANY_LABEL, MatchConfig, Pattern, find_matches
from repro.workloads.generator import WorkloadConfig, generate_workload


def build_graph(n_terms: int):
    workload = generate_workload(
        WorkloadConfig(
            universe_size=n_terms,
            n_sources=1,
            terms_per_source=n_terms,
            overlap=0.0,
            identical_fraction=1.0,
            seed=47,
        )
    )
    return workload.sources[0].graph


def path_pattern(graph) -> Pattern:
    """A two-hop S-path pattern anchored at a real edge."""
    edge = next(e for e in graph.edges() if e.label == "S")
    return Pattern.path(
        [graph.label(edge.source), graph.label(edge.target)],
        edge_label="S",
    )


def star_pattern(graph) -> Pattern:
    """node(X: anything) — one labeled node, one wildcard attribute."""
    edge = next(e for e in graph.edges() if e.label == "A")
    pattern = Pattern()
    pattern.add_node("owner", graph.label(edge.target))
    pattern.add_node("attr", None, "X")
    pattern.add_edge("attr", ANY_LABEL, "owner")
    return pattern


@pytest.mark.parametrize("n_terms", [100, 400, 1600])
def test_strict_path_match(benchmark, n_terms) -> None:
    graph = build_graph(n_terms)
    pattern = path_pattern(graph)
    results = benchmark(lambda: list(find_matches(pattern, graph)))
    assert results


@pytest.mark.parametrize("n_terms", [100, 400, 1600])
def test_fuzzy_path_match(benchmark, n_terms) -> None:
    graph = build_graph(n_terms)
    pattern = path_pattern(graph)
    config = MatchConfig(case_insensitive=True, relax_edge_labels=True)
    results = benchmark(lambda: list(find_matches(pattern, graph, config)))
    assert results


@pytest.mark.parametrize("n_terms", [100, 400, 1600])
def test_wildcard_star_match(benchmark, n_terms) -> None:
    graph = build_graph(n_terms)
    pattern = star_pattern(graph)
    results = benchmark(lambda: list(find_matches(pattern, graph)))
    assert results


def test_strict_vs_fuzzy_summary(benchmark, table) -> None:
    import time

    reference = build_graph(400)
    reference_pattern = path_pattern(reference)
    benchmark(lambda: sum(1 for _ in find_matches(reference_pattern,
                                                  reference)))
    rows = []
    for n_terms in (100, 400, 1600):
        graph = build_graph(n_terms)
        pattern = path_pattern(graph)
        t0 = time.perf_counter()
        strict_count = sum(1 for _ in find_matches(pattern, graph))
        t1 = time.perf_counter()
        config = MatchConfig(
            case_insensitive=True, relax_edge_labels=True
        )
        fuzzy_count = sum(1 for _ in find_matches(pattern, graph, config))
        t2 = time.perf_counter()
        rows.append(
            (
                n_terms,
                strict_count,
                f"{1e3 * (t1 - t0):.2f}ms",
                fuzzy_count,
                f"{1e3 * (t2 - t1):.2f}ms",
            )
        )
        assert fuzzy_count >= strict_count  # fuzzy is monotone
    table(
        "PATTERN strict vs fuzzy",
        ["n", "strict matches", "strict t", "fuzzy matches", "fuzzy t"],
        rows,
    )
