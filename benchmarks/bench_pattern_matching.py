"""Experiment PATTERN: pattern matching cost, strict vs fuzzy (§3).

Matches the paper's two textual pattern shapes (a path and a node-with-
attributes) against synthetic ontologies of growing size, under strict
label equality and under fuzzy (synonym + relaxed-edge) configurations.
The fuzzy baseline pays a Python-level label scan per pattern node per
call; the indexed strategy resolves the same candidates through the
cached :class:`MatchIndex`, and the ablation at the bottom measures
the gap (recorded into ``BENCH_articulation.json``).
"""

from __future__ import annotations

import time

import pytest

from repro.core.patterns import ANY_LABEL, MatchConfig, Pattern, find_matches
from repro.workloads.generator import WorkloadConfig, generate_workload

# How many times each articulation-rule application re-matches against
# one (graph, config) pair in the generation loop; the ablation repeats
# each measurement this often so index amortization is visible the way
# production sees it.
REPEATS = 20


def build_graph(n_terms: int):
    workload = generate_workload(
        WorkloadConfig(
            universe_size=n_terms,
            n_sources=1,
            terms_per_source=n_terms,
            overlap=0.0,
            identical_fraction=1.0,
            seed=47,
        )
    )
    return workload.sources[0].graph


def path_pattern(graph) -> Pattern:
    """A two-hop S-path pattern anchored at a real edge."""
    edge = next(e for e in graph.edges() if e.label == "S")
    return Pattern.path(
        [graph.label(edge.source), graph.label(edge.target)],
        edge_label="S",
    )


def star_pattern(graph) -> Pattern:
    """node(X: anything) — one labeled node, one wildcard attribute."""
    edge = next(e for e in graph.edges() if e.label == "A")
    pattern = Pattern()
    pattern.add_node("owner", graph.label(edge.target))
    pattern.add_node("attr", None, "X")
    pattern.add_edge("attr", ANY_LABEL, "owner")
    return pattern


@pytest.mark.parametrize("n_terms", [100, 400, 1600])
def test_strict_path_match(benchmark, n_terms) -> None:
    graph = build_graph(n_terms)
    pattern = path_pattern(graph)
    results = benchmark(lambda: list(find_matches(pattern, graph)))
    assert results


@pytest.mark.parametrize("n_terms", [100, 400, 1600])
def test_fuzzy_path_match(benchmark, n_terms) -> None:
    graph = build_graph(n_terms)
    pattern = path_pattern(graph)
    config = MatchConfig(case_insensitive=True, relax_edge_labels=True)
    results = benchmark(lambda: list(find_matches(pattern, graph, config)))
    assert results


@pytest.mark.parametrize("n_terms", [100, 400, 1600])
def test_wildcard_star_match(benchmark, n_terms) -> None:
    graph = build_graph(n_terms)
    pattern = star_pattern(graph)
    results = benchmark(lambda: list(find_matches(pattern, graph)))
    assert results


def test_strict_vs_fuzzy_summary(benchmark, table) -> None:
    import time

    reference = build_graph(400)
    reference_pattern = path_pattern(reference)
    benchmark(lambda: sum(1 for _ in find_matches(reference_pattern,
                                                  reference)))
    rows = []
    for n_terms in (100, 400, 1600):
        graph = build_graph(n_terms)
        pattern = path_pattern(graph)
        t0 = time.perf_counter()
        strict_count = sum(1 for _ in find_matches(pattern, graph))
        t1 = time.perf_counter()
        config = MatchConfig(
            case_insensitive=True, relax_edge_labels=True
        )
        fuzzy_count = sum(1 for _ in find_matches(pattern, graph, config))
        t2 = time.perf_counter()
        rows.append(
            (
                n_terms,
                strict_count,
                f"{1e3 * (t1 - t0):.2f}ms",
                fuzzy_count,
                f"{1e3 * (t2 - t1):.2f}ms",
            )
        )
        assert fuzzy_count >= strict_count  # fuzzy is monotone
    table(
        "PATTERN strict vs fuzzy",
        ["n", "strict matches", "strict t", "fuzzy matches", "fuzzy t"],
        rows,
    )


def fuzzy_config(graph) -> MatchConfig:
    """Case + relaxed edges + a synonym table over real graph labels."""
    labels = sorted(graph.labels())
    pairs = [
        (labels[i], labels[i + 1]) for i in range(0, len(labels) - 1, 7)
    ]
    return MatchConfig(
        synonyms=MatchConfig.with_synonyms(pairs).synonyms,
        case_insensitive=True,
        relax_edge_labels=True,
    )


def test_indexed_vs_scan_fuzzy(table, record_bench) -> None:
    """The acceptance ablation: indexed fuzzy matching against the
    per-call label-scan baseline.  At the largest ontology the indexed
    strategy must clear a 10x speedup."""
    rows = []
    series = {}
    for n_terms in (100, 400, 1600):
        graph = build_graph(n_terms)
        pattern = path_pattern(graph)
        config = fuzzy_config(graph)

        # Untimed warmup: the index is built once per (graph, config)
        # in the generation loop; time the steady state of both paths.
        sum(1 for _ in find_matches(pattern, graph, config,
                                    strategy="scan"))
        sum(1 for _ in find_matches(pattern, graph, config,
                                    strategy="indexed"))

        t0 = time.perf_counter()
        for _ in range(REPEATS):
            scan_matches = sum(
                1 for _ in find_matches(pattern, graph, config,
                                        strategy="scan")
            )
        t_scan = time.perf_counter() - t0

        t0 = time.perf_counter()
        for _ in range(REPEATS):
            indexed_matches = sum(
                1 for _ in find_matches(pattern, graph, config,
                                        strategy="indexed")
            )
        t_indexed = time.perf_counter() - t0

        assert indexed_matches == scan_matches
        speedup = t_scan / t_indexed
        series[n_terms] = {
            "scan_ms": round(1e3 * t_scan, 2),
            "indexed_ms": round(1e3 * t_indexed, 2),
            "speedup": round(speedup, 1),
            "matches": indexed_matches,
            "repeats": REPEATS,
        }
        rows.append(
            (
                n_terms,
                indexed_matches,
                f"{1e3 * t_scan:.1f}ms",
                f"{1e3 * t_indexed:.1f}ms",
                f"{speedup:.1f}x",
            )
        )
    table(
        "PATTERN indexed vs scan (fuzzy: synonyms + case + relaxed edges)",
        ["n", "matches", "scan", "indexed", "speedup"],
        rows,
    )
    record_bench("pattern_matching", {"indexed_vs_scan_fuzzy": series})
    assert series[1600]["speedup"] >= 10.0, (
        f"fuzzy find_matches speedup {series[1600]['speedup']}x at the "
        "largest ontology is below the 10x bar"
    )
