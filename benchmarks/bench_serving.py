"""Experiment SERVING: what the articulation service delivers under
concurrent load.

PR 8 puts the mediator behind a ThreadingHTTPServer with session
snapshots, a server-wide result cache keyed on the articulation
fingerprint, and journal-backed crash recovery.  This experiment
measures the serving story end to end:

* **load under churn** — the headline: ≥ 8 concurrent HTTP clients
  replaying a Zipfian request mix while a churn thread mutates the
  sources in the background.  Reports p50/p99 latency, throughput,
  and the result-cache hit rate (bar: ≥ 50% under a Zipfian mix),
  and asserts ZERO cross-session isolation violations observed by
  the load generator's auditor session.
* **cache speedup** — the same query answered from the result cache
  against the full plan-and-execute path (cache invalidated before
  every call), the ratio the perf-trajectory gate tracks.
* **recovery boot** — a service lifetime's writes folded into the
  churn journal, then the wall-clock cost of booting a fresh
  service at the recovered fixpoint, with answer parity asserted
  against the live pre-crash service.

Running this module writes ``BENCH_serving.json`` next to it.
"""

from __future__ import annotations

import json
import statistics
import time
from pathlib import Path

import pytest

from repro.serving import (
    ArticulationServer,
    ArticulationService,
    load_paper_workload,
)
from repro.workloads.loadgen import run_load

RESULTS: dict[str, object] = {"experiment": "SERVING", "workloads": {}}
_JSON_PATH = Path(__file__).resolve().parent / "BENCH_serving.json"

CLIENTS = 8
REQUESTS_PER_CLIENT = 40
CHURN_BATCHES = 5


def test_load_under_churn(table) -> None:
    """The acceptance headline: 8 concurrent Zipfian clients, churn in
    the background, ≥ 50% cache hit rate, zero isolation violations."""
    service = ArticulationService()
    load_paper_workload(service)
    with ArticulationServer(service, port=0) as server:
        report = run_load(
            server.host,
            server.port,
            clients=CLIENTS,
            requests_per_client=REQUESTS_PER_CLIENT,
            seed=0,
            churn_batches=CHURN_BATCHES,
            churn_mutations=3,
        )
    table(
        f"SERVING load under churn ({CLIENTS} clients x "
        f"{REQUESTS_PER_CLIENT} requests, {CHURN_BATCHES} churn batches)",
        ["measure", "value"],
        [
            ("requests", report.requests),
            ("errors", report.errors),
            ("p50", f"{report.p50_ms:.2f}ms"),
            ("p99", f"{report.p99_ms:.2f}ms"),
            ("throughput", f"{report.throughput_rps:.0f} req/s"),
            ("cache hit rate", f"{report.cache.get('hit_rate', 0.0):.2f}"),
            ("isolation probes", report.isolation_probes),
            ("isolation violations", report.isolation_violations),
        ],
    )
    hit_rate = float(report.cache.get("hit_rate", 0.0))
    RESULTS["workloads"]["load_under_churn"] = {
        "clients": CLIENTS,
        "requests": report.requests,
        "errors": report.errors,
        "p50_ms": round(report.p50_ms, 3),
        "p99_ms": round(report.p99_ms, 3),
        "throughput_rps": round(report.throughput_rps, 1),
        "hit_rate": round(hit_rate, 4),
        "churn_batches": report.churn_batches,
        "isolation_probes": report.isolation_probes,
        "isolation_violations": report.isolation_violations,
    }
    assert report.errors == 0, f"{report.errors} requests failed under load"
    assert report.isolation_violations == 0, (
        "a pinned session observed concurrent churn"
    )
    assert hit_rate >= 0.5, (
        f"Zipfian mix should re-hit the result cache (rate {hit_rate:.2f})"
    )


def test_cache_speedup(table) -> None:
    """The result cache must beat re-planning and re-executing the
    same cross-source query by a wide margin."""
    service = ArticulationService()
    load_paper_workload(service)
    query = "SELECT price FROM transport:Vehicle"
    repeats = 40
    service.query(query)  # warm plan + result caches

    uncached: list[float] = []
    for _ in range(repeats):
        service.cache.invalidate()
        t0 = time.perf_counter()
        service.query(query)
        uncached.append((time.perf_counter() - t0) * 1000.0)

    service.query(query)  # re-warm
    cached: list[float] = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        _, meta = service.query(query)
        cached.append((time.perf_counter() - t0) * 1000.0)
        assert meta["cached"] is True

    uncached_ms = statistics.median(uncached)
    cached_ms = statistics.median(cached)
    speedup = uncached_ms / cached_ms if cached_ms else float("inf")
    table(
        f"SERVING cache speedup (median of {repeats})",
        ["path", "median", "speedup"],
        [
            ("plan + execute", f"{uncached_ms:.3f}ms", "-"),
            ("result cache", f"{cached_ms:.3f}ms", f"{speedup:.1f}x"),
        ],
    )
    RESULTS["workloads"]["cache_speedup"] = {
        "uncached_ms": round(uncached_ms, 4),
        "cached_ms": round(cached_ms, 4),
        "speedup": round(speedup, 2),
        "repeats": repeats,
    }
    assert speedup > 1.0, "the result cache must not cost more than it saves"


def test_recovery_boot(table, tmp_path) -> None:
    """Booting from the journal lands on the pre-crash fixpoint."""
    journal = str(tmp_path / "serve.journal")
    live = ArticulationService(journal_path=journal)
    load_paper_workload(live)
    batches = 12
    for i in range(batches):
        live.apply_facts(
            [
                ("implies", f"boot:A{i}", f"boot:B{i}"),
                ("implies", f"boot:B{i}", "transport:Vehicle"),
            ],
            [] if i % 3 else [("implies", f"boot:A{i - 1}", f"boot:B{i - 1}")]
            if i
            else [],
        )
    probe = {"op": "generalizations", "term": f"boot:A{batches - 1}"}
    expected = live.infer(probe)["terms"]

    t0 = time.perf_counter()
    recovered = ArticulationService(journal_path=journal)
    boot_ms = (time.perf_counter() - t0) * 1000.0
    answer = recovered.infer(probe)["terms"]
    parity = 1.0 if answer == expected else 0.0

    table(
        f"SERVING recovery boot ({batches} journaled batches)",
        ["measure", "value"],
        [
            ("boot", f"{boot_ms:.1f}ms"),
            ("facts", recovered.health()["facts"]),
            ("answer parity", parity),
        ],
    )
    RESULTS["workloads"]["recovery_boot"] = {
        "boot_ms": round(boot_ms, 2),
        "batches": batches,
        "facts": recovered.health()["facts"],
        "parity": parity,
    }
    assert parity == 1.0, "recovered service diverged from the live one"


_EXPECTED_WORKLOADS = {"load_under_churn", "cache_speedup", "recovery_boot"}


def test_write_bench_json(table) -> None:
    """Persist the collected series (runs last in this module).

    Only a complete run overwrites the checked-in record — a subset
    run (``-k``) or one with earlier failures must not clobber it with
    a partial series."""
    collected = set(RESULTS["workloads"])
    if collected != _EXPECTED_WORKLOADS:
        pytest.skip(
            "partial run (missing "
            f"{sorted(_EXPECTED_WORKLOADS - collected)}); "
            "not overwriting the checked-in record"
        )
    payload = json.dumps(RESULTS, indent=2, sort_keys=True)
    _JSON_PATH.write_text(payload + "\n")
    table(
        "SERVING artifact",
        ["file", "workloads"],
        [(_JSON_PATH.name, len(RESULTS["workloads"]))],
    )
    assert _JSON_PATH.exists()
