"""Experiment SCALE-N: articulation vs global-schema integration as the
number of sources grows (the paper's §1 scalability claim).

Integrating k sources pairwise-with-a-hub via articulations costs work
proportional to the *overlap* each new source shares with the hub;
merging everything into one global schema costs work proportional to
the *total* vocabulary, and the merged artifact must be rebuilt
whenever anything changes.  The crossing the paper predicts: ONION's
advantage widens with k and with source size.
"""

from __future__ import annotations

import pytest

from repro.baselines.global_schema import GlobalSchemaIntegrator
from repro.core.articulation import ArticulationGenerator
from repro.workloads.generator import WorkloadConfig, generate_workload


def integrate_with_articulations(workload) -> int:
    """Hub-and-spoke articulation: source 0 is articulated with each
    later source; returns total graph ops.

    Uses the minimal (one rule per shared concept) rule set — the
    generator's simple-rule semantics already makes the articulation
    copy equivalent to the consequence term, so a single directed rule
    per co-reference suffices for interoperation.
    """
    total = 0
    hub = workload.sources[0]
    for index in range(1, len(workload.sources)):
        generator = ArticulationGenerator(
            [hub, workload.sources[index]], name=f"art{index}"
        )
        articulation = generator.generate(
            workload.truth_rules(0, index, bidirectional=False)
        )
        total += articulation.cost()
    return total


def integrate_globally(workload) -> int:
    alignment = []
    for index in range(1, len(workload.sources)):
        alignment.extend(workload.truth_alignment(0, index))
    integrator = GlobalSchemaIntegrator(workload.sources, alignment)
    integrator.build()
    return integrator.total_cost


@pytest.mark.parametrize("n_sources", [2, 4, 8, 16])
def test_scalability_in_source_count(benchmark, table, n_sources) -> None:
    workload = generate_workload(
        WorkloadConfig(
            universe_size=300,
            n_sources=n_sources,
            terms_per_source=80,
            overlap=0.25,
            seed=23,
        )
    )
    articulation_cost = integrate_with_articulations(workload)
    global_cost = integrate_globally(workload)
    benchmark(lambda: integrate_with_articulations(workload))
    table(
        f"SCALE-N at k={n_sources} sources (80 terms each, overlap 0.25)",
        ["approach", "graph ops", "per source"],
        [
            ("ONION articulations", articulation_cost,
             articulation_cost // max(n_sources - 1, 1)),
            ("global schema merge", global_cost,
             global_cost // n_sources),
        ],
    )
    # The paper's claim: articulation work tracks the overlap, which is
    # far below total vocabulary.
    assert articulation_cost < global_cost


@pytest.mark.parametrize("n_terms", [40, 80, 160, 320])
def test_scalability_in_source_size(benchmark, table, n_terms) -> None:
    """Fix k=4 sources, grow each source: articulation cost should grow
    with the (fixed-fraction) overlap, global merge with total size —
    the gap stays roughly constant as a ratio."""
    workload = generate_workload(
        WorkloadConfig(
            universe_size=4 * n_terms,
            n_sources=4,
            terms_per_source=n_terms,
            overlap=0.2,
            seed=29,
        )
    )
    articulation_cost = integrate_with_articulations(workload)
    global_cost = integrate_globally(workload)
    benchmark(lambda: integrate_with_articulations(workload))
    table(
        f"SCALE-N at {n_terms} terms/source (k=4, overlap 0.2)",
        ["approach", "graph ops"],
        [
            ("ONION articulations", articulation_cost),
            ("global schema merge", global_cost),
        ],
    )
    assert articulation_cost < global_cost
