"""Experiment SKAT: suggestion quality vs lexicon coverage (§2.4).

SKAT proposes bridges between two synthetic sources whose true
alignment is known.  We degrade the lexicon (fraction of concept
families unknown to it) and report precision/recall of the raw
suggestions, plus the DESIGN.md ablation: lexical matchers alone vs
lexical + structural.
"""

from __future__ import annotations

import pytest

from repro.core.rules import ImplicationRule
from repro.lexicon.skat import (
    ExactLabelMatcher,
    SkatEngine,
    StructuralMatcher,
    SynonymMatcher,
)
from repro.workloads.generator import WorkloadConfig, generate_workload


def make_workload():
    return generate_workload(
        WorkloadConfig(
            universe_size=120,
            n_sources=2,
            terms_per_source=50,
            overlap=0.5,
            identical_fraction=0.3,
            seed=53,
        )
    )


def simple_pairs(candidates) -> set[tuple[str, str]]:
    pairs = set()
    for candidate in candidates:
        rule = candidate.rule
        if isinstance(rule, ImplicationRule) and rule.is_simple():
            refs = list(rule.terms())
            pairs.add((str(refs[0]), str(refs[1])))
    return pairs


def truth_pairs(workload) -> set[tuple[str, str]]:
    pairs = set()
    for t0, t1 in workload.co_referring(0, 1):
        pairs.add((f"src0:{t0}", f"src1:{t1}"))
        pairs.add((f"src1:{t1}", f"src0:{t0}"))
    return pairs


def precision_recall(suggested, truth) -> tuple[float, float]:
    if not suggested:
        return 0.0, 0.0
    hit = len(suggested & truth)
    return hit / len(suggested), hit / len(truth)


@pytest.mark.parametrize("noise", [0.0, 0.3, 0.6])
def test_skat_quality_vs_lexicon_noise(benchmark, table, noise) -> None:
    workload = make_workload()
    lexicon = workload.lexicon(noise=noise, seed=7)
    skat = SkatEngine(
        matchers=[ExactLabelMatcher(), SynonymMatcher(lexicon)]
    )
    candidates = benchmark(
        lambda: skat.propose(workload.sources[0], workload.sources[1])
    )
    precision, recall = precision_recall(
        simple_pairs(candidates), truth_pairs(workload)
    )
    table(
        f"SKAT quality at lexicon noise={noise}",
        ["metric", "value"],
        [
            ("suggestions", len(candidates)),
            ("precision", f"{precision:.2f}"),
            ("recall", f"{recall:.2f}"),
        ],
    )
    # Synthetic labels embed concept ids, so lexical matches are exact:
    # precision stays perfect; recall degrades with noise.
    assert precision == pytest.approx(1.0)
    if noise == 0.0:
        assert recall > 0.9


def test_ablation_structural_matcher(benchmark, table) -> None:
    """Lexical-only vs lexical+structural at heavy lexicon noise: the
    structural matcher recovers pairs the lexicon lost."""
    workload = make_workload()
    noisy_lexicon = workload.lexicon(noise=0.6, seed=7)
    truth = truth_pairs(workload)

    lexical = [ExactLabelMatcher(), SynonymMatcher(noisy_lexicon)]
    skat_lexical = SkatEngine(matchers=list(lexical))
    benchmark(
        lambda: skat_lexical.propose(workload.sources[0],
                                     workload.sources[1])
    )
    skat_full = SkatEngine(
        matchers=[*lexical, StructuralMatcher(seeds=lexical)]
    )

    pairs_lexical = simple_pairs(
        skat_lexical.propose(workload.sources[0], workload.sources[1])
    )
    pairs_full = simple_pairs(
        skat_full.propose(workload.sources[0], workload.sources[1])
    )
    _, recall_lexical = precision_recall(pairs_lexical, truth)
    precision_full, recall_full = precision_recall(pairs_full, truth)

    table(
        "SKAT ablation: +structural matcher (lexicon noise 0.6)",
        ["pipeline", "recall", "precision"],
        [
            ("lexical only", f"{recall_lexical:.2f}", "1.00"),
            ("lexical + structural", f"{recall_full:.2f}",
             f"{precision_full:.2f}"),
        ],
    )
    assert recall_full >= recall_lexical
