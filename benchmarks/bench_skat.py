"""Experiment SKAT: suggestion quality vs lexicon coverage (§2.4).

SKAT proposes bridges between two synthetic sources whose true
alignment is known.  We degrade the lexicon (fraction of concept
families unknown to it) and report precision/recall of the raw
suggestions, plus the DESIGN.md ablation: lexical matchers alone vs
lexical + structural.

The blocking ablation at the bottom measures the inverted-index
candidate generation against the preserved all-pairs loops: identical
proposals, candidate-pair counts proportional to output instead of
``|o1| x |o2|`` (recorded into ``BENCH_articulation.json``).
"""

from __future__ import annotations

import time

import pytest

from repro.core.rules import ImplicationRule
from repro.lexicon.skat import (
    ExactLabelMatcher,
    SkatEngine,
    StructuralMatcher,
    SynonymMatcher,
)
from repro.workloads.generator import WorkloadConfig, generate_workload


def make_workload():
    return generate_workload(
        WorkloadConfig(
            universe_size=120,
            n_sources=2,
            terms_per_source=50,
            overlap=0.5,
            identical_fraction=0.3,
            seed=53,
        )
    )


def simple_pairs(candidates) -> set[tuple[str, str]]:
    pairs = set()
    for candidate in candidates:
        rule = candidate.rule
        if isinstance(rule, ImplicationRule) and rule.is_simple():
            refs = list(rule.terms())
            pairs.add((str(refs[0]), str(refs[1])))
    return pairs


def truth_pairs(workload) -> set[tuple[str, str]]:
    pairs = set()
    for t0, t1 in workload.co_referring(0, 1):
        pairs.add((f"src0:{t0}", f"src1:{t1}"))
        pairs.add((f"src1:{t1}", f"src0:{t0}"))
    return pairs


def precision_recall(suggested, truth) -> tuple[float, float]:
    if not suggested:
        return 0.0, 0.0
    hit = len(suggested & truth)
    return hit / len(suggested), hit / len(truth)


@pytest.mark.parametrize("noise", [0.0, 0.3, 0.6])
def test_skat_quality_vs_lexicon_noise(benchmark, table, noise) -> None:
    workload = make_workload()
    lexicon = workload.lexicon(noise=noise, seed=7)
    skat = SkatEngine(
        matchers=[ExactLabelMatcher(), SynonymMatcher(lexicon)]
    )
    candidates = benchmark(
        lambda: skat.propose(workload.sources[0], workload.sources[1])
    )
    precision, recall = precision_recall(
        simple_pairs(candidates), truth_pairs(workload)
    )
    table(
        f"SKAT quality at lexicon noise={noise}",
        ["metric", "value"],
        [
            ("suggestions", len(candidates)),
            ("precision", f"{precision:.2f}"),
            ("recall", f"{recall:.2f}"),
        ],
    )
    # Synthetic labels embed concept ids, so lexical matches are exact:
    # precision stays perfect; recall degrades with noise.
    assert precision == pytest.approx(1.0)
    if noise == 0.0:
        assert recall > 0.9


def test_ablation_structural_matcher(benchmark, table) -> None:
    """Lexical-only vs lexical+structural at heavy lexicon noise: the
    structural matcher recovers pairs the lexicon lost."""
    workload = make_workload()
    noisy_lexicon = workload.lexicon(noise=0.6, seed=7)
    truth = truth_pairs(workload)

    lexical = [ExactLabelMatcher(), SynonymMatcher(noisy_lexicon)]
    skat_lexical = SkatEngine(matchers=list(lexical))
    benchmark(
        lambda: skat_lexical.propose(workload.sources[0],
                                     workload.sources[1])
    )
    skat_full = SkatEngine(
        matchers=[*lexical, StructuralMatcher(seeds=lexical)]
    )

    pairs_lexical = simple_pairs(
        skat_lexical.propose(workload.sources[0], workload.sources[1])
    )
    pairs_full = simple_pairs(
        skat_full.propose(workload.sources[0], workload.sources[1])
    )
    _, recall_lexical = precision_recall(pairs_lexical, truth)
    precision_full, recall_full = precision_recall(pairs_full, truth)

    table(
        "SKAT ablation: +structural matcher (lexicon noise 0.6)",
        ["pipeline", "recall", "precision"],
        [
            ("lexical only", f"{recall_lexical:.2f}", "1.00"),
            ("lexical + structural", f"{recall_full:.2f}",
             f"{precision_full:.2f}"),
        ],
    )
    assert recall_full >= recall_lexical


def sized_workload(terms_per_source: int):
    return generate_workload(
        WorkloadConfig(
            universe_size=terms_per_source * 3,
            n_sources=2,
            terms_per_source=terms_per_source,
            overlap=0.5,
            identical_fraction=0.3,
            seed=53,
        )
    )


def test_blocked_vs_all_pairs(table, record_bench) -> None:
    """The acceptance ablation: blocked candidate generation against
    the all-pairs baseline at growing source sizes.  Proposals must be
    identical; the pairs the blocked pipeline examines must stay a
    small, shrinking fraction of |o1| x |o2|."""
    rows = []
    series = {}
    for terms in (50, 100, 200):
        workload = sized_workload(terms)
        lexicon = workload.lexicon(noise=0.0, seed=7)
        o1, o2 = workload.sources

        blocked = SkatEngine.default(lexicon, blocking=True)
        scan = SkatEngine.default(lexicon, blocking=False)

        t0 = time.perf_counter()
        scan_proposals = scan.propose(o1, o2)
        t_scan = time.perf_counter() - t0
        t0 = time.perf_counter()
        blocked_proposals = blocked.propose(o1, o2)
        t_blocked = time.perf_counter() - t0

        assert [
            (c.key(), c.score, c.matcher) for c in blocked_proposals
        ] == [(c.key(), c.score, c.matcher) for c in scan_proposals]

        all_pairs = o1.term_count() * o2.term_count()
        blocked_pairs = blocked.last_stats["candidate_pairs"]
        scan_pairs = scan.last_stats["candidate_pairs"]
        fraction = blocked_pairs / all_pairs
        series[terms] = {
            "all_pairs_bound": all_pairs,
            "blocked_pairs": blocked_pairs,
            "scan_pairs": scan_pairs,
            "pair_fraction": round(fraction, 4),
            "pairs_by_matcher": blocked.last_stats["pairs_by_matcher"],
            "blocked_ms": round(1e3 * t_blocked, 2),
            "scan_ms": round(1e3 * t_scan, 2),
            "proposals": len(blocked_proposals),
            "speedup": round(t_scan / t_blocked, 1),
        }
        rows.append(
            (
                terms,
                all_pairs,
                scan_pairs,
                blocked_pairs,
                f"{100 * fraction:.1f}%",
                f"{1e3 * t_scan:.1f}ms",
                f"{1e3 * t_blocked:.1f}ms",
            )
        )
    table(
        "SKAT blocked vs all-pairs candidate generation",
        ["terms/src", "|o1|x|o2|", "scan pairs", "blocked pairs",
         "fraction", "scan t", "blocked t"],
        rows,
    )
    record_bench("skat", {"blocked_vs_all_pairs": series})
    # Sub-quadratic growth: the examined fraction of the cross product
    # must shrink as the sources grow, and stay well below it.
    fractions = [series[t]["pair_fraction"] for t in (50, 100, 200)]
    assert fractions[-1] < fractions[0]
    assert fractions[-1] < 0.2, (
        f"blocked pipeline examined {100 * fractions[-1]:.1f}% of the "
        "cross product at the largest size"
    )
