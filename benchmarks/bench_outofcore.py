"""Experiment OUTOFCORE: disk-backed closure beyond RAM.

PR 10 adds the paged fact store — the same (predicate, position,
value) index contract as the in-memory ``FactStore``, backed by
SQLite pages behind a bounded LRU buffer pool — and this experiment
substantiates its two claims:

* **parity + overhead** — at sizes both stores can hold, the paged
  engine's closure is **bit-for-bit identical** to the in-memory
  engine's, and the constant-factor slowdown is recorded honestly
  (SQL probes against dict probes), along with the buffer pool's hit
  rate under a deliberately tight cap.  The trajectory gate tracks
  the *efficiency* ratio ``memory_ms / paged_ms`` — higher is better,
  so buffer-pool or batching regressions drag it down and fail CI.
* **million-fact closure under a memory cap** — a subprocess with
  ``RLIMIT_AS`` capped runs bulk ingest of 10^6 facts plus a
  recursive closure on the paged store and completes; the identical
  workload on the in-memory store dies of ``MemoryError`` under the
  same cap.  The big predicate appears in no rule body, so semi-naive
  evaluation never materializes its pool — exactly the access pattern
  the buffer pool is built for.

Running this module writes ``BENCH_outofcore.json`` next to it; the
perf-trajectory gate tracks its ratio metrics.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.core.rules import HornClause
from repro.inference.horn import HornEngine

RESULTS: dict[str, object] = {"experiment": "OUTOFCORE", "workloads": {}}
_JSON_PATH = Path(__file__).resolve().parent / "BENCH_outofcore.json"
_REPO_SRC = Path(__file__).resolve().parent.parent / "src"

TRANS = HornClause(
    ("S", "?x", "?z"), (("S", "?x", "?y"), ("S", "?y", "?z"))
)

PARITY_SIZES = (2_000, 10_000, 50_000)
PARITY_BUFFER_FACTS = 4_096  # deliberately tight: forces paging
MILLION_FACTS = 1_000_000
MEMORY_CAP_BYTES = 384 * 1024 * 1024


def _chain_facts(n: int, *, length: int = 8) -> list[tuple[str, str, str]]:
    """``n`` base edges as many short chains: closure stays linear in
    ``n`` (each 8-edge chain closes to 36 pairs), so the sweep scales
    without the O(n^2) blowup a single chain's closure would hit."""
    facts = []
    chain = 0
    while len(facts) < n:
        for i in range(length):
            facts.append(("S", f"c{chain}_n{i}", f"c{chain}_n{i + 1}"))
            if len(facts) == n:
                break
        chain += 1
    return facts


def _saturate(storage: str, facts, **kwargs) -> tuple[HornEngine, float]:
    engine = HornEngine(storage=storage, **kwargs)
    engine.add_clause(TRANS)
    engine.add_facts(facts)
    start = time.perf_counter()
    engine.saturate()
    return engine, (time.perf_counter() - start) * 1000.0


def test_parity_and_overhead(table) -> None:
    """Bit-for-bit closure parity at shared sizes + honest overhead."""
    series: dict[str, dict] = {}
    rows = []
    for n in PARITY_SIZES:
        facts = _chain_facts(n)
        mem_engine, memory_ms = _saturate("memory", facts)
        paged_engine, paged_ms = _saturate(
            "paged",
            facts,
            storage_path=":memory:",
            buffer_facts=PARITY_BUFFER_FACTS,
        )
        assert paged_engine.facts() == mem_engine.facts(), (
            f"closure divergence at n={n}"
        )
        stats = paged_engine.store.buffer_stats()
        paged_engine.store.close()
        series[str(n)] = {
            "base_facts": n,
            "closure_facts": len(mem_engine.facts()),
            "memory_ms": round(memory_ms, 3),
            "paged_ms": round(paged_ms, 3),
            "overhead": round(paged_ms / memory_ms, 3) if memory_ms else None,
            "buffer_hit_rate": round(stats["hit_rate"], 4),
            "buffer_evictions": stats["evictions"],
            "buffer_facts_cap": PARITY_BUFFER_FACTS,
            "parity": 1.0,
        }
        rows.append(
            (
                n,
                series[str(n)]["closure_facts"],
                series[str(n)]["memory_ms"],
                series[str(n)]["paged_ms"],
                series[str(n)]["overhead"],
                series[str(n)]["buffer_hit_rate"],
            )
        )
    RESULTS["workloads"]["parity_overhead"] = series
    table(
        "OUTOFCORE parity + overhead (tight buffer)",
        ["n", "closure", "memory_ms", "paged_ms", "overhead", "hit_rate"],
        rows,
    )


# One self-contained child per storage mode: RLIMIT_AS is set before
# the engine imports so the cap covers everything the run allocates.
_CHILD = r"""
import json, resource, sys, time

mode, cap, n, db, buffer_facts = (
    sys.argv[1],
    int(sys.argv[2]),
    int(sys.argv[3]),
    sys.argv[4],
    int(sys.argv[5]),
)
resource.setrlimit(resource.RLIMIT_AS, (cap, cap))
out = {"mode": mode, "completed": False}
try:
    from repro.core.rules import HornClause
    from repro.inference.horn import HornEngine

    TRANS = HornClause(
        ("S", "?x", "?z"), (("S", "?x", "?y"), ("S", "?y", "?z"))
    )

    def attr_facts():
        for i in range(n):
            yield ("attr", "o%d" % i, "v%d" % i)

    start = time.perf_counter()
    if mode == "paged":
        engine = HornEngine(
            storage="paged", storage_path=db, buffer_facts=buffer_facts
        )
        report = engine.store.bulk_load(attr_facts())
        out["ingest"] = {
            k: report[k]
            for k in ("staged", "added", "deduplicated", "batches", "reindexed")
        }
        out["ingest_ms"] = round((time.perf_counter() - start) * 1000.0, 1)
    else:
        engine = HornEngine()
        for atom in attr_facts():
            engine.add_fact(atom)
    engine.add_clause(TRANS)
    edges = [
        ("S", "c%d_n%d" % (c, i), "c%d_n%d" % (c, i + 1))
        for c in range(200)
        for i in range(8)
    ]
    engine.add_facts(edges)
    sat_start = time.perf_counter()
    engine.saturate()
    out["saturate_ms"] = round((time.perf_counter() - sat_start) * 1000.0, 1)
    store = engine.store
    assert ("attr", "o%d" % (n // 2), "v%d" % (n // 2)) in store
    assert ("S", "c7_n0", "c7_n8") in store  # a full-chain closure edge
    assert set(store.probe("attr", 1, "o33")) == {("attr", "o33", "v33")}
    out["facts_total"] = len(store)
    out["elapsed_ms"] = round((time.perf_counter() - start) * 1000.0, 1)
    if mode == "paged":
        out["buffer"] = store.buffer_stats()
        store.close()
    out["completed"] = True
except MemoryError:
    out["error"] = "MemoryError"
print(json.dumps(out))
"""


def _run_child(mode: str, db: str, tmp_path) -> dict:
    env = dict(os.environ, PYTHONPATH=str(_REPO_SRC))
    proc = subprocess.run(
        [
            sys.executable,
            "-c",
            _CHILD,
            mode,
            str(MEMORY_CAP_BYTES),
            str(MILLION_FACTS),
            db,
            "65536",
        ],
        capture_output=True,
        text=True,
        env=env,
        timeout=900,
    )
    lines = [line for line in proc.stdout.splitlines() if line.strip()]
    if proc.returncode != 0 or not lines:
        # the cap killed the child before it could even report — an
        # infeasibility result, as long as it was the memory mode
        return {
            "mode": mode,
            "completed": False,
            "exit_code": proc.returncode,
            "error": (proc.stderr or "killed")[-300:],
        }
    return json.loads(lines[-1])


def test_million_fact_closure_under_cap(table, tmp_path) -> None:
    """>=10^6-fact closure completes paged under a hard RLIMIT_AS cap
    where the identical in-memory workload is infeasible."""
    db = str(tmp_path / "outofcore.sqlite")
    paged = _run_child("paged", db, tmp_path)
    assert paged["completed"], f"paged run failed under cap: {paged}"
    assert paged["facts_total"] >= MILLION_FACTS
    assert paged["ingest"]["added"] == MILLION_FACTS

    memory = _run_child("memory", db + ".unused", tmp_path)
    assert not memory["completed"], (
        "in-memory store unexpectedly fit the capped address space; "
        "raise MILLION_FACTS or lower MEMORY_CAP_BYTES"
    )

    RESULTS["workloads"]["million_fact_closure"] = {
        "facts": MILLION_FACTS,
        "cap_bytes": MEMORY_CAP_BYTES,
        "paged": paged,
        "memory_infeasible": True,
        "memory": memory,
    }
    table(
        "OUTOFCORE million-fact closure (RLIMIT_AS "
        f"{MEMORY_CAP_BYTES // (1024 * 1024)} MiB)",
        ["mode", "completed", "facts", "elapsed_ms", "hit_rate"],
        [
            (
                "paged",
                paged["completed"],
                paged["facts_total"],
                paged["elapsed_ms"],
                round(paged["buffer"]["hit_rate"], 4),
            ),
            (
                "memory",
                memory["completed"],
                "-",
                "-",
                "-",
            ),
        ],
    )


_EXPECTED_WORKLOADS = {"parity_overhead", "million_fact_closure"}


def test_write_bench_json(table) -> None:
    """Persist the collected series (runs last in this module).

    Only a complete run overwrites the checked-in record — a subset
    run (``-k``) or one with earlier failures must not clobber it with
    a partial series."""
    collected = set(RESULTS["workloads"])
    if collected != _EXPECTED_WORKLOADS:
        pytest.skip(
            "partial run (missing "
            f"{sorted(_EXPECTED_WORKLOADS - collected)}); "
            "not overwriting the checked-in record"
        )
    payload = json.dumps(RESULTS, indent=2, sort_keys=True)
    _JSON_PATH.write_text(payload + "\n")
    table(
        "OUTOFCORE artifact",
        ["file", "workloads"],
        [(_JSON_PATH.name, len(RESULTS["workloads"]))],
    )
    assert _JSON_PATH.exists()
