"""Experiment COMPOSE: incremental articulation reuse (§4.2).

"The articulation ontology of two ontologies can be composed with
another source ontology ... with the addition of new sources, we do
not need to restructure existing ontologies or articulations."

Bring sources online one at a time.  Incremental ONION articulates
each newcomer against the *previous articulation ontology* (small);
the from-scratch strategies redo work proportional to everything seen
so far.
"""

from __future__ import annotations

import pytest

from repro.baselines.global_schema import GlobalSchemaIntegrator
from repro.core.articulation import Articulation, ArticulationGenerator
from repro.core.rules import (
    ArticulationRuleSet,
    ImplicationRule,
    TermOperand,
    TermRef,
)
from repro.workloads.generator import (
    SyntheticWorkload,
    WorkloadConfig,
    generate_workload,
)


def rules_against_articulation(
    workload: SyntheticWorkload,
    articulation: Articulation,
    new_index: int,
) -> ArticulationRuleSet:
    """Bridge a new source to the articulation ontology directly: for
    every concept the newcomer shares with an already-articulated
    source, point its term at the articulation's copy if one exists."""
    rules = ArticulationRuleSet()
    art_terms = set(articulation.ontology.terms())
    labels_new = workload.labels_by_source[new_index]
    for concept_index, label in labels_new.items():
        # The articulation copies consequence labels; look for any
        # variant label of this concept among the articulation terms.
        for variant in workload.concepts[concept_index].labels:
            if variant in art_terms:
                rules.add(
                    ImplicationRule(
                        (
                            TermOperand(
                                TermRef(f"src{new_index}", label)
                            ),
                            TermOperand(
                                TermRef(articulation.name, variant)
                            ),
                        ),
                        source="truth",
                    )
                )
                break
    return rules


def incremental_costs(workload: SyntheticWorkload) -> list[int]:
    """Cost of adding each source incrementally via composition."""
    costs = []
    generator = ArticulationGenerator(
        workload.sources[:2], name="art1"
    )
    articulation = generator.generate(workload.truth_rules(0, 1))
    costs.append(articulation.cost())
    for index in range(2, len(workload.sources)):
        rules = rules_against_articulation(workload, articulation, index)
        next_generator = ArticulationGenerator(
            [articulation.ontology, workload.sources[index]],
            name=f"art{index}",
        )
        articulation = next_generator.generate(rules)
        costs.append(articulation.cost())
    return costs


def from_scratch_costs(workload: SyntheticWorkload) -> list[int]:
    """Cost of re-integrating all sources globally at each arrival."""
    costs = []
    for k in range(2, len(workload.sources) + 1):
        alignment = []
        for index in range(1, k):
            alignment.extend(workload.truth_alignment(0, index))
        integrator = GlobalSchemaIntegrator(
            workload.sources[:k], alignment
        )
        integrator.build()
        costs.append(integrator.total_cost)
    return costs


@pytest.mark.parametrize("n_sources", [4, 6, 8])
def test_composition_reuse(benchmark, table, n_sources) -> None:
    workload = generate_workload(
        WorkloadConfig(
            universe_size=200,
            n_sources=n_sources,
            terms_per_source=60,
            overlap=0.35,
            seed=41,
        )
    )
    incremental = incremental_costs(workload)
    scratch = from_scratch_costs(workload)
    benchmark(lambda: incremental_costs(workload))
    rows = [
        (f"add source {k + 2}", incremental[k], scratch[k])
        for k in range(len(incremental))
    ]
    table(
        f"COMPOSE with k={n_sources} sources",
        ["step", "incremental (ONION)", "from scratch (global)"],
        rows,
    )
    # After the first pair, every incremental step is cheaper than the
    # from-scratch integration at that stage.
    for k in range(1, len(incremental)):
        assert incremental[k] < scratch[k]
    # And the incremental step cost does not grow with the number of
    # sources already integrated (reuse), while from-scratch does.
    assert scratch[-1] > scratch[0]
