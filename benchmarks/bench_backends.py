"""Experiment BACKENDS: the layered query path over pluggable storage.

Measures (a) memory vs SQLite scan/query throughput on the workload
generator's populations, (b) eager (materialize-per-stage) vs
streaming execution via the executor's peak-rows instrumentation, and
(c) plan-cache hit vs miss planning cost — the three wins the
planner/executor/backend split was built for.
"""

from __future__ import annotations

import time

import pytest

from repro.kb.backends import InMemoryBackend, SQLiteBackend
from repro.kb.instances import InstanceStore
from repro.query.engine import QueryEngine
from repro.workloads.paper_example import (
    carrier_ontology,
    factory_ontology,
    generate_transport_articulation,
)


def populated_stores(n_instances: int, backend_factory=InMemoryBackend):
    carrier_kb = InstanceStore(
        carrier_ontology(), backend=backend_factory()
    )
    factory_kb = InstanceStore(
        factory_ontology(), backend=backend_factory()
    )
    for i in range(n_instances):
        carrier_kb.add(
            f"car{i}", "Car", price=1000 + 7 * (i % 900), model=f"M{i % 10}"
        )
        factory_kb.add(
            f"veh{i}", "Vehicle", price=2000 + 11 * (i % 1500),
            weight=800 + i % 300,
        )
    return carrier_kb, factory_kb


def make_engine(n_instances: int, backend_factory, **kwargs) -> QueryEngine:
    articulation = generate_transport_articulation()
    carrier_kb, factory_kb = populated_stores(n_instances, backend_factory)
    return QueryEngine(
        articulation,
        {"carrier": carrier_kb, "factory": factory_kb},
        **kwargs,
    )


@pytest.mark.parametrize("backend", ["memory", "sqlite"])
@pytest.mark.parametrize("n_instances", [1000])
def test_backend_query_throughput(benchmark, backend, n_instances) -> None:
    factory = InMemoryBackend if backend == "memory" else SQLiteBackend
    engine = make_engine(n_instances, factory, pushdown=True)
    question = "SELECT price FROM transport:Vehicle WHERE price < 3000"
    rows = benchmark(lambda: engine.execute(question))
    assert rows


@pytest.mark.parametrize("n_instances", [2000])
def test_sql_pushdown_vs_python_filter(table, n_instances) -> None:
    """With the SQLite backend, pushdown means the predicate runs in
    SQL and non-matching rows never cross into Python at all."""
    question = "SELECT price FROM transport:Vehicle WHERE price < 2100"

    results = []
    for pushdown in (False, True):
        engine = make_engine(n_instances, SQLiteBackend, pushdown=pushdown)
        t0 = time.perf_counter()
        rows = engine.execute(question)
        elapsed = time.perf_counter() - t0
        results.append(
            (
                "sql pushdown" if pushdown else "python filter",
                len(rows),
                engine.last_stats.rows_scanned,
                f"{1e3 * elapsed:.1f}ms",
            )
        )
    table(
        f"BACKENDS sql pushdown at n={n_instances}/source",
        ["mode", "rows out", "rows crossed SQL boundary", "time"],
        results,
    )
    # identical answers, far fewer rows surfaced from SQL
    assert results[0][1] == results[1][1]
    assert results[1][2] < results[0][2]


@pytest.mark.parametrize("n_instances", [5000])
def test_streaming_does_not_materialize_intermediates(
    table, n_instances
) -> None:
    """Peak-rows instrumentation: aggregates and LIMIT queries hold a
    constant number of rows regardless of population size — the whole
    point of the iterator pipelines."""
    engine = make_engine(n_instances, InMemoryBackend)
    workloads = [
        ("COUNT(*) fold", "SELECT COUNT(*) FROM transport:Vehicle"),
        ("LIMIT early-exit", "SELECT price FROM transport:Vehicle LIMIT 5"),
        ("full scan", "SELECT price FROM transport:Vehicle"),
        (
            "ORDER BY (sort barrier)",
            "SELECT price FROM transport:Vehicle ORDER BY price LIMIT 5",
        ),
    ]
    rows_available = 2 * n_instances
    results = []
    for label, question in workloads:
        engine.execute(question)
        stats = engine.last_stats
        results.append(
            (
                label,
                stats.rows_scanned,
                stats.peak_rows,
                "yes" if stats.streamed else "no (sort)",
            )
        )
    table(
        f"BACKENDS streaming peak-rows at n={n_instances}/source "
        f"({rows_available} rows available)",
        ["workload", "rows scanned", "peak rows held", "streamed"],
        results,
    )
    by_label = {r[0]: r for r in results}
    # aggregation folds the full stream into one row
    assert by_label["COUNT(*) fold"][1] == rows_available
    assert by_label["COUNT(*) fold"][2] == 1
    # LIMIT without ORDER BY never pulls more than it needs
    assert by_label["LIMIT early-exit"][1] == 5
    assert by_label["LIMIT early-exit"][2] == 5
    # only ORDER BY pays the materialization
    assert by_label["ORDER BY (sort barrier)"][2] == rows_available


@pytest.mark.parametrize("n_instances", [500])
def test_plan_cache_hit_vs_miss(benchmark, table, n_instances) -> None:
    """Plan-cache hits skip reformulation (class fan-out + conversion
    path search) entirely."""
    engine = make_engine(n_instances, InMemoryBackend)
    question = "SELECT price FROM transport:Vehicle WHERE price < 3000"

    t0 = time.perf_counter()
    engine.plan(question)
    t_miss = time.perf_counter() - t0
    t0 = time.perf_counter()
    engine.plan(question)
    t_hit = time.perf_counter() - t0

    info = engine.plan_cache_info()
    assert info.hits >= 1 and info.misses == 1
    benchmark(lambda: engine.plan(question))
    table(
        "BACKENDS plan cache",
        ["event", "time"],
        [
            ("miss (reformulate + build ops)", f"{1e6 * t_miss:.0f}us"),
            ("hit (LRU lookup + fingerprint)", f"{1e6 * t_hit:.0f}us"),
            ("hits", info.hits + 1),
        ],
    )


@pytest.mark.parametrize("n_instances", [1000])
def test_sqlite_bulk_load(benchmark, n_instances) -> None:
    """Bulk transaction loading a memory store into SQLite."""
    mem, _ = populated_stores(n_instances)
    store = benchmark(lambda: mem.clone(SQLiteBackend()))
    assert len(store) == n_instances
