"""Experiment RESILIENCE: what fault tolerance costs and buys.

PR 7 hardens the runtime — per-task deadlines, bounded retries, pool
respawn, serial degradation in the parallel scheduler; a write-ahead
journal under batched churn; lock retry in the SQLite backend.  This
experiment prices the armor and proves it works:

* **fault-free overhead** — the hardened scheduler (deadline tracking
  + retry machinery armed, no faults) against the same engine with
  deadline tracking disabled (``task_timeout=None``, the pre-PR wait-
  forever behavior).  The acceptance bar: < 5% median overhead.
* **journal overhead** — fault-free batched churn with and without a
  :class:`~repro.reliability.journal.ChurnJournal` attached (each
  batch pays one fsynced begin + one commit append).
* **recovery latency** — a scripted mid-batch crash, then
  :meth:`ChurnJournal.recover`; how long until a fresh engine stands
  at the fixpoint the crashed batch was driving toward, compared to
  what a fault-free run of the same campaign cost.
* **chaos campaign** — the headline: crashes, hangs, task errors and
  process deaths injected at realistic rates, final state bit-for-bit
  equal to the fault-free oracle (``resil.chaos_parity`` is 1.0 or
  the perf-trajectory gate fails).

Running this module writes ``BENCH_resilience.json`` next to it.
"""

from __future__ import annotations

import json
import statistics
import time
from pathlib import Path

import pytest

from repro.inference.horn import HornEngine
from repro.reliability import ChurnJournal, FaultPlan, RetryPolicy
from repro.workloads import chaos_batches, run_chaos_campaign
from repro.workloads.chaos import CHAOS_CLAUSES
from repro.workloads.generator import wide_program

RESULTS: dict[str, object] = {"experiment": "RESILIENCE", "workloads": {}}
_JSON_PATH = Path(__file__).resolve().parent / "BENCH_resilience.json"

HARDENED = RetryPolicy(task_timeout=30.0)
WAIT_FOREVER = RetryPolicy(task_timeout=None)


def _saturate_wide(policy: RetryPolicy) -> float:
    program = wide_program(8, 14)
    engine = HornEngine(
        workers=2, record_derivations=False, retry_policy=policy
    )
    engine.add_clauses(program.clauses)
    engine.add_facts(program.facts)
    t0 = time.perf_counter()
    engine.saturate()
    return (time.perf_counter() - t0) * 1000.0


def test_fault_free_overhead(table) -> None:
    """Deadline tracking + retry bookkeeping must be nearly free when
    nothing fails: < 5% median overhead over the wait-forever path."""
    repeats = 7
    _saturate_wide(WAIT_FOREVER)  # warm the shared pool once
    baseline: list[float] = []
    hardened: list[float] = []
    for _ in range(repeats):  # interleave to cancel machine drift
        baseline.append(_saturate_wide(WAIT_FOREVER))
        hardened.append(_saturate_wide(HARDENED))
    baseline_ms = statistics.median(baseline)
    hardened_ms = statistics.median(hardened)
    overhead_pct = (hardened_ms / baseline_ms - 1.0) * 100.0
    table(
        f"RESILIENCE fault-free overhead (wide_program(8, 14), "
        f"workers=2, median of {repeats})",
        ["variant", "median", "overhead"],
        [
            ("wait-forever", f"{baseline_ms:.1f}ms", "-"),
            ("hardened", f"{hardened_ms:.1f}ms", f"{overhead_pct:+.1f}%"),
        ],
    )
    RESULTS["workloads"]["fault_free_overhead"] = {
        "baseline_ms": round(baseline_ms, 2),
        "hardened_ms": round(hardened_ms, 2),
        "overhead_pct": round(overhead_pct, 2),
        "repeats": repeats,
    }
    assert overhead_pct < 5.0, (
        f"hardened scheduler costs {overhead_pct:.1f}% fault-free "
        "(bar: 5%)"
    )


def _churn_campaign(journal: ChurnJournal | None) -> float:
    batches = chaos_batches(batches=12, ops_per_batch=10, seed=4)
    engine = HornEngine(journal=journal)
    engine.add_clauses(CHAOS_CLAUSES)
    engine.saturate()
    if journal is not None:
        journal.snapshot(engine)
    t0 = time.perf_counter()
    for adds, retracts in batches:
        engine.apply_batch(adds, retracts)
    return (time.perf_counter() - t0) * 1000.0


def test_journal_overhead(table, tmp_path) -> None:
    """Crash safety costs one fsynced begin + commit per batch."""
    repeats = 5
    plain: list[float] = []
    journaled: list[float] = []
    for i in range(repeats):
        plain.append(_churn_campaign(None))
        journaled.append(
            _churn_campaign(ChurnJournal(tmp_path / f"j{i}.jsonl"))
        )
    plain_ms = statistics.median(plain)
    journal_ms = statistics.median(journaled)
    overhead_pct = (journal_ms / plain_ms - 1.0) * 100.0
    table(
        f"RESILIENCE journal overhead (12 batches, median of {repeats})",
        ["variant", "median", "overhead"],
        [
            ("no journal", f"{plain_ms:.1f}ms", "-"),
            ("journaled", f"{journal_ms:.1f}ms", f"{overhead_pct:+.1f}%"),
        ],
    )
    RESULTS["workloads"]["journal_overhead"] = {
        "plain_ms": round(plain_ms, 2),
        "journal_ms": round(journal_ms, 2),
        "overhead_pct": round(overhead_pct, 2),
        "repeats": repeats,
    }


def test_recovery_latency(table, tmp_path) -> None:
    """From journaled crash to recovered fixpoint, priced against the
    fault-free cost of the same campaign."""
    # fault-free reference
    t0 = time.perf_counter()
    fault_free = run_chaos_campaign(
        tmp_path / "ref.jsonl", seed=9, workers=1
    )
    fault_free_ms = (time.perf_counter() - t0) * 1000.0
    assert fault_free.parity and fault_free.recoveries == 0

    # crash the 6th batch, time the recovery alone
    journal = ChurnJournal(tmp_path / "crash.jsonl")
    plan = FaultPlan.scripted({"batch_crash": [0]})
    engine = HornEngine(journal=journal, fault_plan=plan)
    engine.add_clauses(CHAOS_CLAUSES)
    engine.saturate()
    journal.snapshot(engine)
    batches = chaos_batches(batches=12, ops_per_batch=10, seed=9)
    crashed_at = None
    for index, (adds, retracts) in enumerate(batches):
        try:
            engine.apply_batch(adds, retracts)
        except Exception:  # FaultInjected — the simulated process death
            crashed_at = index
            break
    assert crashed_at is not None
    t0 = time.perf_counter()
    recovered, report = journal.recover()
    recover_ms = (time.perf_counter() - t0) * 1000.0
    assert report["replayed_pending"] == 1
    for adds, retracts in batches[crashed_at + 1 :]:
        recovered.apply_batch(adds, retracts)

    # the recovered campaign still lands on the fault-free oracle
    oracle = HornEngine()
    oracle.add_clauses(CHAOS_CLAUSES)
    base: set = set()
    for adds, retracts in batches:
        for fact in retracts:
            base.discard(fact)
        for fact in adds:
            base.add(fact)
    oracle.add_facts(sorted(base))
    oracle.saturate()
    assert recovered.facts() == oracle.facts()

    table(
        "RESILIENCE recovery latency (crash at batch "
        f"{crashed_at + 1}/12)",
        ["phase", "time"],
        [
            ("fault-free campaign", f"{fault_free_ms:.1f}ms"),
            ("journal.recover()", f"{recover_ms:.1f}ms"),
        ],
    )
    RESULTS["workloads"]["recovery"] = {
        "fault_free_campaign_ms": round(fault_free_ms, 2),
        "recover_ms": round(recover_ms, 2),
        "crashed_at_batch": crashed_at,
        "batches_replayed": report["batches"],
        "parity": True,
    }


def test_chaos_campaign(table, tmp_path) -> None:
    """The headline: realistic fault rates, bit-for-bit parity."""
    plan = FaultPlan(
        seed=13,
        rates={
            "worker_crash": 0.12,
            "task_error": 0.15,
            "task_slow": 0.25,
            "batch_crash": 0.2,
        },
    )
    result = run_chaos_campaign(
        tmp_path / "chaos.jsonl",
        seed=6,
        workers=2,
        batches=10,
        fault_plan=plan,
        retry_policy=RetryPolicy(
            max_retries=2,
            backoff_base=0.001,
            backoff_cap=0.01,
            task_timeout=5.0,
        ),
    )
    assert result.parity, "chaos campaign diverged from the oracle"
    injected = result.fault_summary.get("fired", {})
    assert injected, "no fault fired — the campaign proved nothing"
    table(
        "RESILIENCE chaos campaign (10 batches, workers=2)",
        ["measure", "value"],
        [
            ("parity", result.parity),
            ("facts (== oracle)", result.facts),
            ("journal recoveries", result.recoveries),
            ("scheduler retries", result.scheduler_stats["retries"]),
            ("pool respawns", result.scheduler_stats["pool_respawns"]),
            ("degraded strata", result.scheduler_stats["degraded_strata"]),
            ("faults fired", dict(sorted(injected.items()))),
            ("elapsed", f"{result.elapsed_ms:.1f}ms"),
        ],
    )
    RESULTS["workloads"]["chaos_campaign"] = {
        "parity": 1.0 if result.parity else 0.0,
        "facts": result.facts,
        "oracle_facts": result.oracle_facts,
        "recoveries": result.recoveries,
        "scheduler_stats": dict(result.scheduler_stats),
        "faults_fired": dict(sorted(injected.items())),
        "elapsed_ms": round(result.elapsed_ms, 2),
    }


_EXPECTED_WORKLOADS = {
    "fault_free_overhead",
    "journal_overhead",
    "recovery",
    "chaos_campaign",
}


def test_write_bench_json(table) -> None:
    """Persist the collected series (runs last in this module).

    Only a complete run overwrites the checked-in record — a subset
    run (``-k``) or one with earlier failures must not clobber it with
    a partial series."""
    collected = set(RESULTS["workloads"])
    if collected != _EXPECTED_WORKLOADS:
        pytest.skip(
            "partial run (missing "
            f"{sorted(_EXPECTED_WORKLOADS - collected)}); "
            "not overwriting the checked-in record"
        )
    payload = json.dumps(RESULTS, indent=2, sort_keys=True)
    _JSON_PATH.write_text(payload + "\n")
    table(
        "RESILIENCE artifact",
        ["file", "workloads"],
        [(_JSON_PATH.name, len(RESULTS["workloads"]))],
    )
    assert _JSON_PATH.exists()
