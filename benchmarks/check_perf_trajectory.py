"""Perf-trajectory gate over the checked-in benchmark records.

The repo's perf story lives in the ``BENCH_*.json`` records the
benchmark suites write.  Raw milliseconds are machine-bound, so the
gate tracks the *ratio* metrics inside them — speedups of the
optimized path over its baseline (indexed vs scan, incremental vs
rerun, DRed vs rebuild, parallel makespan vs serial, ...) — which
cancel machine speed to first order and therefore compare across CI
runners.

Two subcommands:

``snapshot --out FILE``
    Extract every headline metric from the ``BENCH_*.json`` files in
    ``--dir`` (default: this directory) and write them to ``FILE``.
    CI snapshots the *checked-in* records before re-running the
    suites, so the snapshot is the trajectory the repo claims.

``compare --baseline FILE``
    Re-extract the metrics from ``--dir`` (now holding the freshly
    re-run records), print a trend table against the snapshot, and
    exit non-zero when any metric regressed by more than
    ``--tolerance`` (default 0.25, i.e. a >25% drop).  Metrics new on
    either side are reported but never fail the gate.

Run it from anywhere: paths resolve relative to ``--dir``.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

_HERE = Path(__file__).resolve().parent
DEFAULT_TOLERANCE = 0.25


# ----------------------------------------------------------------------
# metric extraction (one extractor per BENCH record)
# ----------------------------------------------------------------------
def _ratio(numerator, denominator) -> float | None:
    try:
        numerator = float(numerator)
        denominator = float(denominator)
    except (TypeError, ValueError):
        return None
    if denominator <= 0.0:
        return None
    return numerator / denominator


def _metrics_inference(payload: dict) -> dict[str, float]:
    w = payload.get("workloads", {})
    out: dict[str, float | None] = {}
    slicing = w.get("goal_directed_slicing", {})
    out["infer.goal_slicing_speedup"] = _ratio(
        slicing.get("full_ms"), slicing.get("sliced_ms")
    )
    incr = w.get("incremental_vs_rerun", {})
    out["infer.incremental_speedup"] = _ratio(
        incr.get("rerun_ms"), incr.get("incremental_ms")
    )
    for family, name in (
        ("indexed_vs_scan", "infer.indexed_vs_scan"),
        ("seminaive_vs_naive", "infer.seminaive_vs_naive"),
    ):
        series = w.get(family, {})
        if series:
            top = max(series, key=lambda k: int(k))
            out[f"{name}@{top}"] = series[top].get("speedup")
    return {k: v for k, v in out.items() if v is not None}


def _metrics_retraction(payload: dict) -> dict[str, float]:
    w = payload.get("workloads", {})
    out: dict[str, float | None] = {}
    churn = w.get("articulation_churn", {})
    out["retract.churn_speedup"] = _ratio(
        churn.get("rebuild_ms"), churn.get("incremental_ms")
    )
    point = w.get("retract_vs_rebuild", {}).get("1", {})
    out["retract.small_retract_speedup"] = _ratio(
        point.get("rebuild_ms"), point.get("retract_ms")
    )
    return {k: v for k, v in out.items() if v is not None}


def _metrics_parallel(payload: dict) -> dict[str, float]:
    w = payload.get("workloads", {})
    out: dict[str, float | None] = {}
    series = w.get("speedup_vs_workers", {})
    if series:
        top = max(series, key=lambda k: int(k))
        out[f"parallel.makespan_speedup@{top}"] = series[top].get(
            "makespan_speedup"
        )
    churn = w.get("batched_churn", {})
    out["parallel.batched_churn_speedup"] = churn.get("best_speedup")
    return {k: v for k, v in out.items() if v is not None}


def _metrics_articulation(payload: dict) -> dict[str, float]:
    s = payload.get("sections", {})
    out: dict[str, float | None] = {}
    fuzzy = s.get("pattern_matching", {}).get("indexed_vs_scan_fuzzy", {})
    if fuzzy:
        top = max(fuzzy, key=lambda k: int(k))
        out[f"artic.pattern_indexed_speedup@{top}"] = fuzzy[top].get(
            "speedup"
        )
    skat = s.get("skat", {}).get("blocked_vs_all_pairs", {})
    if skat:
        top = max(skat, key=lambda k: int(k))
        out[f"artic.skat_blocked_speedup@{top}"] = skat[top].get("speedup")
    cache = s.get("articulation_cache", {})
    out["artic.cache_refresh_speedup"] = cache.get("refresh_speedup")
    return {k: v for k, v in out.items() if v is not None}


def _metrics_resilience(payload: dict) -> dict[str, float]:
    w = payload.get("workloads", {})
    out: dict[str, float | None] = {}
    overhead = w.get("fault_free_overhead", {})
    # ~1.0 when the armor is free; drops as deadline/retry machinery
    # starts costing fault-free saturations real time
    out["resil.faultfree_efficiency"] = _ratio(
        overhead.get("baseline_ms"), overhead.get("hardened_ms")
    )
    chaos = w.get("chaos_campaign", {})
    # 1.0 or the gate fails: parity under chaos is a correctness
    # property wearing a metric's clothes
    out["resil.chaos_parity"] = chaos.get("parity")
    return {k: v for k, v in out.items() if v is not None}


def _metrics_serving(payload: dict) -> dict[str, float]:
    w = payload.get("workloads", {})
    out: dict[str, float | None] = {}
    cache = w.get("cache_speedup", {})
    out["serving.cache_speedup"] = _ratio(
        cache.get("uncached_ms"), cache.get("cached_ms")
    )
    load = w.get("load_under_churn", {})
    # the Zipfian mix's hit rate is machine-independent: it depends on
    # key distribution and invalidation frequency, not on clock speed
    out["serving.hit_rate"] = load.get("hit_rate")
    # 1.0 or the gate fails: a pinned session observing concurrent
    # churn is a correctness bug, not a slowdown
    if load.get("isolation_probes"):
        out["serving.isolation_parity"] = (
            1.0 if load.get("isolation_violations") == 0 else 0.0
        )
    boot = w.get("recovery_boot", {})
    out["serving.recovery_parity"] = boot.get("parity")
    return {k: v for k, v in out.items() if v is not None}


def _metrics_outofcore(payload: dict) -> dict[str, float]:
    w = payload.get("workloads", {})
    out: dict[str, float | None] = {}
    series = w.get("parity_overhead", {})
    if series:
        top = max(series, key=lambda k: int(k))
        point = series[top]
        # inverted on purpose: the gate fails on *drops*, so the
        # tracked number is the paged store's efficiency against the
        # in-memory store (1/overhead) — buffer-pool or batching
        # regressions make the paged side slower and drag it down
        out[f"outofcore.paged_overhead@{top}"] = _ratio(
            point.get("memory_ms"), point.get("paged_ms")
        )
        # parity is correctness wearing a metric's clothes: 1.0 or fail
        out["outofcore.closure_parity"] = min(
            (p.get("parity", 0.0) for p in series.values()), default=None
        )
    million = w.get("million_fact_closure", {})
    buffer = million.get("paged", {}).get("buffer", {})
    # machine-independent: the hit rate depends on the access pattern
    # and eviction policy, not on clock speed
    out["outofcore.buffer_hit_rate"] = buffer.get("hit_rate")
    return {k: v for k, v in out.items() if v is not None}


EXTRACTORS = {
    "BENCH_inference.json": _metrics_inference,
    "BENCH_retraction.json": _metrics_retraction,
    "BENCH_parallel.json": _metrics_parallel,
    "BENCH_articulation.json": _metrics_articulation,
    "BENCH_resilience.json": _metrics_resilience,
    "BENCH_serving.json": _metrics_serving,
    "BENCH_outofcore.json": _metrics_outofcore,
}


def collect_metrics(
    directory: Path, files: list[str] | None = None
) -> dict[str, float]:
    """Headline ratio metrics from the BENCH records in ``directory``.

    Missing files and malformed records are skipped — a metric only
    exists when its record does, and :func:`compare` treats one-sided
    metrics as informational, not failures.
    """
    metrics: dict[str, float] = {}
    for filename, extract in EXTRACTORS.items():
        if files is not None and filename not in files:
            continue
        path = directory / filename
        if not path.exists():
            continue
        try:
            payload = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            continue
        if isinstance(payload, dict):
            metrics.update(extract(payload))
    return metrics


# ----------------------------------------------------------------------
# the trend table + gate
# ----------------------------------------------------------------------
def compare(
    baseline: dict[str, float],
    current: dict[str, float],
    tolerance: float = DEFAULT_TOLERANCE,
) -> tuple[list[tuple[str, str, str, str, str]], list[str]]:
    """(trend table rows, regressed metric names)."""
    rows: list[tuple[str, str, str, str, str]] = []
    regressions: list[str] = []
    for name in sorted(set(baseline) | set(current)):
        base = baseline.get(name)
        cur = current.get(name)
        if base is None:
            rows.append((name, "-", f"{cur:.2f}", "-", "new"))
            continue
        if cur is None:
            rows.append((name, f"{base:.2f}", "-", "-", "not re-run"))
            continue
        change = (cur - base) / base if base else 0.0
        status = "ok"
        if cur < base * (1.0 - tolerance):
            status = "REGRESSION"
            regressions.append(name)
        rows.append(
            (name, f"{base:.2f}", f"{cur:.2f}", f"{change:+.1%}", status)
        )
    return rows, regressions


def print_trend_table(rows: list[tuple[str, str, str, str, str]]) -> None:
    headers = ("metric", "baseline", "current", "change", "status")
    widths = [
        max(len(headers[i]), max((len(r[i]) for r in rows), default=0))
        for i in range(len(headers))
    ]
    print("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    for row in rows:
        print("  ".join(c.ljust(w) for c, w in zip(row, widths)))


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    snap = sub.add_parser("snapshot", help="record the current metrics")
    snap.add_argument("--out", type=Path, required=True)
    snap.add_argument("--dir", type=Path, default=_HERE)
    snap.add_argument("--files", nargs="*", default=None)

    comp = sub.add_parser("compare", help="gate against a snapshot")
    comp.add_argument("--baseline", type=Path, required=True)
    comp.add_argument("--dir", type=Path, default=_HERE)
    comp.add_argument("--files", nargs="*", default=None)
    comp.add_argument(
        "--tolerance", type=float, default=DEFAULT_TOLERANCE
    )

    args = parser.parse_args(argv)

    if args.command == "snapshot":
        metrics = collect_metrics(args.dir, args.files)
        if not metrics:
            print("no benchmark records found — nothing to snapshot")
            return 1
        args.out.write_text(
            json.dumps({"metrics": metrics}, indent=2, sort_keys=True) + "\n"
        )
        print(f"snapshotted {len(metrics)} metrics to {args.out}")
        return 0

    try:
        baseline = json.loads(args.baseline.read_text())["metrics"]
    except (OSError, json.JSONDecodeError, KeyError) as exc:
        print(f"cannot read baseline snapshot {args.baseline}: {exc}")
        return 1
    current = collect_metrics(args.dir, args.files)
    rows, regressions = compare(baseline, current, args.tolerance)
    print_trend_table(rows)
    if regressions:
        print(
            f"\nFAIL: {len(regressions)} metric(s) regressed more than "
            f"{args.tolerance:.0%}: {', '.join(regressions)}"
        )
        return 1
    print(f"\nOK: no metric regressed more than {args.tolerance:.0%}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
