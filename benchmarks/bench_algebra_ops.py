"""Experiments ALG-UNION / ALG-INTER / ALG-DIFF: the §5 operators.

Times each binary operator on the Fig. 2 inputs (semantics asserted
against the paper's worked examples) and then charts how each scales
with source ontology size on synthetic workloads.
"""

from __future__ import annotations

import pytest

from repro.core.algebra import difference, intersection, union
from repro.workloads.generator import WorkloadConfig, generate_workload
from repro.workloads.paper_example import (
    carrier_ontology,
    factory_ontology,
    paper_rules,
)


@pytest.fixture(scope="module")
def fig2():
    return carrier_ontology(), factory_ontology(), paper_rules()


def test_union_fig2(benchmark, fig2) -> None:
    carrier, factory, rules = fig2
    unified = benchmark(
        lambda: union(carrier, factory, rules, name="transport")
    )
    graph = unified.graph()
    assert graph.node_count() == 30
    assert graph.edge_count() == 42


def test_intersection_fig2(benchmark, fig2) -> None:
    carrier, factory, rules = fig2
    inter = benchmark(
        lambda: intersection(carrier, factory, rules, name="transport")
    )
    assert len(inter) == 7  # the transportation ontology


def test_difference_fig2(benchmark, fig2) -> None:
    carrier, factory, rules = fig2
    diff = benchmark(
        lambda: difference(
            carrier, factory, rules, articulation_name="transport"
        )
    )
    assert not diff.has_term("Car")


@pytest.mark.parametrize("n_terms", [50, 100, 200, 400])
def test_algebra_scaling(benchmark, table, n_terms) -> None:
    """Operator cost grows with source size; the intersection's output
    stays proportional to the *overlap*, which is the paper's point."""
    workload = generate_workload(
        WorkloadConfig(
            universe_size=2 * n_terms,
            n_sources=2,
            terms_per_source=n_terms,
            overlap=0.25,
            seed=17,
        )
    )
    o1, o2 = workload.sources
    rules = workload.truth_rules(0, 1)

    def run_all():
        unified = union(o1, o2, rules, name="mid")
        inter = intersection(o1, o2, rules, name="mid")
        diff = difference(o1, o2, rules, articulation_name="mid")
        return unified, inter, diff

    unified, inter, diff = benchmark(run_all)
    table(
        f"ALG scaling at n={n_terms}/source",
        ["metric", "value"],
        [
            ("union nodes", unified.graph().node_count()),
            ("intersection terms (≈ overlap)", len(inter)),
            ("difference terms", len(diff)),
            ("truth-rule count", len(rules)),
        ],
    )
    assert unified.graph().node_count() >= 2 * n_terms
    assert 0 < len(inter) <= n_terms
