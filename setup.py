"""Legacy shim: lets `pip install -e . --no-use-pep517` work offline
(the environment ships setuptools but not `wheel`)."""

from setuptools import setup

setup()
