"""Inference: Horn-clause engine and ontology-level reasoning (§2.4, §4)."""

from repro.inference.engine import DISJOINT, IMPLIES, OntologyInferenceEngine
from repro.inference.goal import GoalDirectedEngine
from repro.inference.horn import (
    Atom,
    CompiledClause,
    FactStore,
    HornEngine,
    compile_clause,
    is_variable,
    substitute,
    unify_atom,
)

__all__ = [
    "Atom",
    "CompiledClause",
    "DISJOINT",
    "FactStore",
    "GoalDirectedEngine",
    "HornEngine",
    "IMPLIES",
    "OntologyInferenceEngine",
    "compile_clause",
    "is_variable",
    "substitute",
    "unify_atom",
]
