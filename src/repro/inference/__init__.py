"""Inference: Horn-clause engine and ontology-level reasoning (§2.4, §4)."""

from repro.inference.engine import DISJOINT, IMPLIES, OntologyInferenceEngine
from repro.inference.goal import GoalDirectedEngine
from repro.inference.horn import (
    Atom,
    HornEngine,
    is_variable,
    substitute,
    unify_atom,
)

__all__ = [
    "Atom",
    "DISJOINT",
    "GoalDirectedEngine",
    "HornEngine",
    "IMPLIES",
    "OntologyInferenceEngine",
    "is_variable",
    "substitute",
    "unify_atom",
]
