"""A Horn-clause forward-chaining engine.

The paper (§4.1): "Since inference engines for full first-order systems
tend not to scale up to large knowledge bases, for performance reasons,
we envisage that for a lot of applications, we will use simple Horn
Clauses to represent articulation rules.  The modular design of the
onion system implies that we can then plug in a much lighter (and
faster) inference engine."

This module is that lighter engine — rebuilt for speed around four
ideas:

* **Argument-position indexes** (:class:`FactStore`): facts are hashed
  under ``(predicate, position, value)`` so a body atom with any bound
  argument probes a hash bucket instead of scanning every fact of its
  predicate.  A store can overlay a read-only *base* store, which lets
  goal-directed slices share the master indexes without copying.
* **Clause compilation** (:func:`compile_clause`): each
  :class:`~repro.core.rules.HornClause` is analyzed once into join
  plans.  Variables map to fixed integer slots, body atoms are
  reordered by bound-variable connectivity, and every step knows
  statically which positions are constants, already-bound variables,
  or fresh bindings — so evaluation fills a preallocated slot array
  instead of copying a binding dict per candidate fact.
* **Stratified scheduling**: the predicate dependency graph is split
  into SCC strata evaluated in topological order, and within a round
  only the ``(clause, body-position)`` pairs whose predicate actually
  appears in the delta are visited.
* **Incremental (delta) saturation**: after a fixpoint,
  :meth:`HornEngine.add_fact` / :meth:`HornEngine.add_clause` enqueue
  deltas; the next query propagates only those deltas through the
  strata instead of re-running saturation from scratch.  The result is
  guaranteed (and property-tested) to equal from-scratch saturation.
* **Parallel saturation over independent strata**
  (:class:`ParallelScheduler`): the Tarjan stratification is extended
  to a stratum *dependency DAG*; strata with no path between them are
  dispatched to a process pool (compiled plans and the relevant fact
  partition are pickled across; every head predicate belongs to
  exactly one stratum, so partitions never conflict) and their
  conclusions merge into the master store at the join points.
  ``workers=1`` — the default — keeps everything serial and
  allocation-free; the parallel result is property-tested equal to the
  serial one.
* **Batched churn with an auto-tuned rebuild crossover**
  (:meth:`HornEngine.apply_batch`): a whole shrink+grow batch queues
  first and pays *one* overdelete/rederive/propagate pass instead of
  one per operation; when the batch's retraction count reaches the
  measured DRed-vs-rebuild crossover (seeded from the checked-in
  retraction benchmark, re-measurable per machine via
  :meth:`HornEngine.calibrate_rebuild_crossover`), the batch abandons
  the deletion cone and replays from base instead.
* **Incremental retraction (DRed)**: :meth:`HornEngine.retract_fact` /
  :meth:`HornEngine.retract_clause` queue deletions; the next query
  *overdeletes* the downstream cone of the retracted facts using the
  same compiled per-delta join plans, then *rederives* the survivors —
  overdeleted facts with an alternate proof among the remaining facts
  — via a head-bound support check per clause followed by semi-naive
  re-saturation restricted to the overdeleted set.  Work scales with
  the retraction's cone, not the database, and the result is
  property-tested equal to from-scratch saturation over the surviving
  base facts.

Semi-naive rounds follow the textbook *old/new* discipline: for a
clause with body atoms ``b_1 .. b_n`` and round delta ``Δ ⊆ F``, the
occurrence plan for position ``i`` joins ``b_i ∈ Δ``, ``b_j ∈ F`` for
``j < i`` and ``b_j ∈ F \\ Δ`` for ``j > i`` — each join is enumerated
exactly once even when the same delta predicate occurs at several body
positions (the transitive-closure clause).  Rounds are snapshots for
both strategies: facts derived in round ``r`` become joinable in round
``r + 1``, which makes ``saturate(max_rounds=k)`` produce identical
fact sets under ``naive`` and ``seminaive``.

Derivations are recorded (optionally — disable for a faster
no-``explain`` mode) so every inferred fact can be explained back to
the expert; §2.4 requires the expert to vet what the system concluded.
"""

from __future__ import annotations

import atexit
import json
import os
import time
from collections import defaultdict
from collections.abc import Iterable, Iterator, Mapping
from concurrent import futures as _futures
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from pathlib import Path
from time import monotonic, perf_counter

from repro.core.rules import HornClause
from repro.errors import InferenceError
from repro.reliability.faults import FaultInjected, FaultPlan, TaskFault
from repro.reliability.journal import ChurnJournal
from repro.reliability.policy import DEFAULT_RETRY_POLICY, RetryPolicy

__all__ = [
    "Atom",
    "CompiledClause",
    "DEFAULT_REBUILD_CROSSOVER",
    "FactStore",
    "HornEngine",
    "ParallelScheduler",
    "compile_clause",
    "is_variable",
    "seed_rebuild_crossover",
    "substitute",
    "unify_atom",
]

Atom = tuple[str, ...]
"""A predicate application ``(predicate, arg1, ..., argN)``."""


def is_variable(symbol: str) -> bool:
    """Variables are spelled ``?Name``."""
    return symbol.startswith("?")


def is_ground(atom: Atom) -> bool:
    return not any(is_variable(arg) for arg in atom[1:])


def substitute(atom: Atom, binding: Mapping[str, str]) -> Atom:
    """Apply a variable binding to an atom's arguments."""
    return (atom[0],) + tuple(
        binding.get(arg, arg) if is_variable(arg) else arg for arg in atom[1:]
    )


def unify_atom(
    pattern: Atom, fact: Atom, binding: Mapping[str, str] | None = None
) -> dict[str, str] | None:
    """Match a (possibly non-ground) atom against a ground fact.

    Returns the extended binding, or None on mismatch.  ``fact`` must
    be ground; repeated variables in the pattern must agree.
    """
    if pattern[0] != fact[0] or len(pattern) != len(fact):
        return None
    result = dict(binding) if binding else {}
    for pat_arg, fact_arg in zip(pattern[1:], fact[1:]):
        if is_variable(pat_arg):
            bound = result.get(pat_arg)
            if bound is None:
                result[pat_arg] = fact_arg
            elif bound != fact_arg:
                return None
        elif pat_arg != fact_arg:
            return None
    return result


def _check_safe(clause: HornClause) -> None:
    """Safe datalog: every head variable must occur in the body."""
    body_vars = {
        arg for atom in clause.body for arg in atom[1:] if is_variable(arg)
    }
    for arg in clause.head[1:]:
        if is_variable(arg) and arg not in body_vars:
            raise InferenceError(
                f"unsafe clause: head variable {arg!r} not bound by body "
                f"in {clause}"
            )


@dataclass(frozen=True, slots=True)
class Derivation:
    """Why a fact holds: the clause used and the body facts consumed."""

    clause: HornClause
    premises: tuple[Atom, ...]


# ----------------------------------------------------------------------
# fact storage: argument-position hash indexes, sharable via overlays
# ----------------------------------------------------------------------
class FactStore:
    """Ground facts indexed by ``(predicate, position, value)``.

    ``base`` makes this store a copy-free overlay: reads consult the
    base store (restricted to ``visible`` predicates) plus the local
    facts, writes land locally.  Goal-directed slices use this to share
    the master store's indexes while keeping their derived facts
    private.

    Pools and index buckets are insertion-ordered dicts, so
    :meth:`remove` maintains every index in O(arity) without scanning.
    Removing a fact that is only *visible* through the base store
    records a tombstone in the overlay's deletion delta — reads filter
    it out, the base store itself is untouched, and a later :meth:`add`
    of the same atom just lifts the tombstone.  The engine's own DRed
    pass never tombstones (overlay-supplied facts are extensional and
    shielded from overdeletion); the deletion delta is API surface for
    external overlay owners, and tombstone-free overlays pay only a
    counter lookup on the read path.
    """

    __slots__ = (
        "_base",
        "_visible",
        "_facts",
        "_by_pred",
        "_index",
        "_deleted",
        "_deleted_by_pred",
        "_deleted_by_key",
    )

    def __init__(
        self,
        *,
        base: "FactStore | None" = None,
        visible: frozenset[str] | None = None,
    ) -> None:
        self._base = base
        self._visible = visible
        self._facts: set[Atom] = set()
        self._by_pred: dict[str, dict[Atom, None]] = {}
        self._index: dict[tuple[str, int, str], dict[Atom, None]] = {}
        # deletion delta over the (read-only) base store
        self._deleted: set[Atom] = set()
        self._deleted_by_pred: dict[str, int] = {}
        self._deleted_by_key: dict[tuple[str, int, str], int] = {}

    def _sees(self, predicate: str) -> bool:
        return self._base is not None and (
            self._visible is None or predicate in self._visible
        )

    def __contains__(self, atom: Atom) -> bool:
        if atom in self._facts:
            return True
        return (
            self._sees(atom[0])
            and atom in self._base
            and atom not in self._deleted
        )

    def __len__(self) -> int:
        total = len(self._facts)
        if self._base is not None:
            if self._visible is None:
                total += len(self._base) - len(self._deleted)
            else:
                total += sum(
                    self._base.pool_size(p)
                    - self._deleted_by_pred.get(p, 0)
                    for p in self._visible
                )
        return total

    def add(self, atom: Atom) -> bool:
        """Insert a ground fact; False if already present (or visible)."""
        if atom in self._facts:
            return False
        if self._sees(atom[0]) and atom in self._base:
            if atom in self._deleted:
                self._lift_tombstone(atom)
                return True
            return False
        self._facts.add(atom)
        predicate = atom[0]
        pool = self._by_pred.get(predicate)
        if pool is None:
            pool = self._by_pred[predicate] = {}
        pool[atom] = None
        index = self._index
        for position in range(1, len(atom)):
            key = (predicate, position, atom[position])
            bucket = index.get(key)
            if bucket is None:
                index[key] = {atom: None}
            else:
                bucket[atom] = None
        return True

    def remove(self, atom: Atom) -> bool:
        """Delete a fact, maintaining every index; False if absent.

        Local facts are unlinked from their pool and index buckets in
        O(arity); facts visible through the base store get a tombstone
        in the deletion delta instead (the base is shared, read-only).
        """
        if atom in self._facts:
            self._facts.discard(atom)
            predicate = atom[0]
            pool = self._by_pred[predicate]
            del pool[atom]
            if not pool:
                del self._by_pred[predicate]
            index = self._index
            for position in range(1, len(atom)):
                key = (predicate, position, atom[position])
                bucket = index[key]
                del bucket[atom]
                if not bucket:
                    del index[key]
            return True
        if (
            self._sees(atom[0])
            and atom in self._base
            and atom not in self._deleted
        ):
            self._deleted.add(atom)
            predicate = atom[0]
            self._deleted_by_pred[predicate] = (
                self._deleted_by_pred.get(predicate, 0) + 1
            )
            for position in range(1, len(atom)):
                key = (predicate, position, atom[position])
                self._deleted_by_key[key] = (
                    self._deleted_by_key.get(key, 0) + 1
                )
            return True
        return False

    def _lift_tombstone(self, atom: Atom) -> None:
        self._deleted.discard(atom)
        predicate = atom[0]
        remaining = self._deleted_by_pred[predicate] - 1
        if remaining:
            self._deleted_by_pred[predicate] = remaining
        else:
            del self._deleted_by_pred[predicate]
        for position in range(1, len(atom)):
            key = (predicate, position, atom[position])
            count = self._deleted_by_key[key] - 1
            if count:
                self._deleted_by_key[key] = count
            else:
                del self._deleted_by_key[key]

    def in_base(self, atom: Atom) -> bool:
        """Is this fact supplied by the (read-only) base overlay?

        True even when locally tombstoned — the base still asserts it.
        """
        return self._sees(atom[0]) and atom in self._base

    def _base_view(
        self, base_facts: Iterable[Atom], tombstones: int
    ) -> Iterable[Atom]:
        """A base-store read with this overlay's deletion delta applied
        (pass-through when nothing relevant is tombstoned)."""
        if not tombstones:
            return base_facts
        deleted = self._deleted
        return (f for f in base_facts if f not in deleted)

    def pool(self, predicate: str) -> Iterator[Atom]:
        """All facts of one predicate (base first, then local)."""
        if self._sees(predicate):
            yield from self._base_view(
                self._base.pool(predicate),
                self._deleted_by_pred.get(predicate, 0),
            )
        yield from self._by_pred.get(predicate, ())

    def pool_size(self, predicate: str) -> int:
        size = len(self._by_pred.get(predicate, ()))
        if self._sees(predicate):
            size += self._base.pool_size(
                predicate
            ) - self._deleted_by_pred.get(predicate, 0)
        return size

    def probe(self, predicate: str, position: int, value: str) -> Iterator[Atom]:
        """Facts with ``value`` at ``position`` — one index bucket."""
        if self._sees(predicate):
            yield from self._base_view(
                self._base.probe(predicate, position, value),
                self._deleted_by_key.get((predicate, position, value), 0),
            )
        yield from self._index.get((predicate, position, value), ())

    def probe_size(self, predicate: str, position: int, value: str) -> int:
        size = len(self._index.get((predicate, position, value), ()))
        if self._sees(predicate):
            size += self._base.probe_size(
                predicate, position, value
            ) - self._deleted_by_key.get((predicate, position, value), 0)
        return size

    def predicates(self) -> set[str]:
        preds = set(self._by_pred)
        if self._base is not None:
            base_preds = self._base.predicates()
            if self._visible is not None:
                base_preds &= self._visible
            preds |= {p for p in base_preds if self.pool_size(p)}
        return preds

    def iter_facts(self, predicate: str | None = None) -> Iterator[Atom]:
        if predicate is not None:
            yield from self.pool(predicate)
            return
        if self._base is not None:
            if self._visible is None:
                preds = self._base.predicates()
            else:
                preds = self._visible
            for pred in preds:
                if self._sees(pred):
                    yield from self._base_view(
                        self._base.pool(pred),
                        self._deleted_by_pred.get(pred, 0),
                    )
        yield from self._facts


# ----------------------------------------------------------------------
# clause compilation: slot-mapped, reordered join plans
# ----------------------------------------------------------------------
_POOL_ALL = 0
_POOL_DELTA = 1
_POOL_OLD = 2


@dataclass(frozen=True, slots=True)
class _Step:
    """One body atom in a join plan, fully analyzed at compile time."""

    pred: str
    arity: int  # full tuple length, predicate included
    orig: int  # position in the clause body (for old/new pools)
    pool: int  # _POOL_ALL / _POOL_DELTA / _POOL_OLD
    const_checks: tuple[tuple[int, str], ...]  # (position, constant)
    bound_checks: tuple[tuple[int, int], ...]  # (position, slot)
    same_checks: tuple[tuple[int, int], ...]  # (position, earlier position)
    binds: tuple[tuple[int, int], ...]  # (position, slot)


@dataclass(frozen=True, slots=True)
class _JoinPlan:
    steps: tuple[_Step, ...]
    delta_pred: str | None  # predicate of the delta step (None = full plan)
    body_order: tuple[int, ...]  # step index -> rank in original body order


@dataclass(frozen=True, slots=True)
class CompiledClause:
    """A clause analyzed into slot assignments and join plans.

    ``full_plan`` joins every body atom against the whole store (naive
    rounds, round-0 of a fresh stratum, new-clause catch-up).
    ``delta_plans`` has one plan per body position for semi-naive
    rounds; plan ``i`` reads position ``i`` from the delta, positions
    before it from the full store and positions after it from
    store-minus-delta, so each join is enumerated exactly once per
    round.
    """

    clause: HornClause
    head_pred: str
    head_parts: tuple[object, ...]  # str constant or int slot, per head arg
    nslots: int
    body_preds: frozenset[str]
    full_plan: _JoinPlan
    delta_plans: tuple[_JoinPlan, ...]
    # join plan with the head variables pre-bound: given a ground head,
    # checks in one backward pass whether any body instantiation still
    # supports it (the DRed rederivation probe).
    support_plan: _JoinPlan


def _analyze_atom(
    atom: Atom,
    orig: int,
    pool: int,
    slot_of: dict[str, int],
    bound_vars: set[str],
) -> _Step:
    const_checks: list[tuple[int, str]] = []
    bound_checks: list[tuple[int, int]] = []
    same_checks: list[tuple[int, int]] = []
    binds: list[tuple[int, int]] = []
    first_pos: dict[str, int] = {}
    for position in range(1, len(atom)):
        arg = atom[position]
        if not is_variable(arg):
            const_checks.append((position, arg))
        elif arg in bound_vars:
            bound_checks.append((position, slot_of[arg]))
        elif arg in first_pos:
            same_checks.append((position, first_pos[arg]))
        else:
            first_pos[arg] = position
            binds.append((position, slot_of[arg]))
    return _Step(
        atom[0],
        len(atom),
        orig,
        pool,
        tuple(const_checks),
        tuple(bound_checks),
        tuple(same_checks),
        tuple(binds),
    )


def _atom_vars(atom: Atom) -> set[str]:
    return {arg for arg in atom[1:] if is_variable(arg)}


def _order_atoms(
    body: tuple[Atom, ...],
    first: int | None,
    initial_bound: frozenset[str] = frozenset(),
) -> list[int]:
    """Greedy join order: most-bound, most-selective atom next.

    ``first`` pins the delta atom to the front (it is the small set).
    ``initial_bound`` seeds the bound-variable set (support plans start
    with the head variables bound).  Ties fall back to the original
    body order, which keeps plans deterministic.
    """
    remaining = [i for i in range(len(body)) if i != first]
    ordered = [] if first is None else [first]
    bound: set[str] = set(initial_bound)
    if first is not None:
        bound |= _atom_vars(body[first])
    while remaining:
        def score(i: int) -> tuple[int, int, int]:
            atom = body[i]
            variables = _atom_vars(atom)
            n_bound = len(variables & bound)
            n_const = sum(
                1 for arg in atom[1:] if not is_variable(arg)
            )
            n_free = len(variables - bound)
            # maximize bound connections and constants, minimize frees
            return (-(n_bound + n_const), n_free, i)

        best = min(remaining, key=score)
        remaining.remove(best)
        ordered.append(best)
        bound |= _atom_vars(body[best])
    return ordered


def _build_plan(
    clause: HornClause,
    slot_of: dict[str, int],
    delta_index: int | None,
    initial_bound: frozenset[str] = frozenset(),
) -> _JoinPlan:
    order = _order_atoms(clause.body, delta_index, initial_bound)
    steps: list[_Step] = []
    bound: set[str] = set(initial_bound)
    for atom_index in order:
        atom = clause.body[atom_index]
        if delta_index is None:
            pool = _POOL_ALL
        elif atom_index == delta_index:
            pool = _POOL_DELTA
        elif atom_index < delta_index:
            pool = _POOL_ALL
        else:
            pool = _POOL_OLD
        steps.append(
            _analyze_atom(atom, atom_index, pool, slot_of, bound)
        )
        bound |= _atom_vars(atom)
    # ``order`` is a permutation of range(len(body)), so each step's
    # rank in body order is its body index itself.
    body_order = tuple(order)
    delta_pred = (
        clause.body[delta_index][0] if delta_index is not None else None
    )
    return _JoinPlan(tuple(steps), delta_pred, body_order)


_COMPILE_CACHE: dict[HornClause, CompiledClause] = {}


def compile_clause(clause: HornClause) -> CompiledClause:
    """Analyze a clause into join plans (cached and shared globally).

    The cache is keyed on the (frozen, hashable) clause, so every
    engine and every goal-directed slice using the same clause shares
    one compiled form.  Programs hold a handful of axiom clauses, so
    the cache is unbounded.
    """
    cached = _COMPILE_CACHE.get(clause)
    if cached is not None:
        return cached
    _check_safe(clause)
    slot_of: dict[str, int] = {}
    for atom in clause.body:
        for arg in atom[1:]:
            if is_variable(arg) and arg not in slot_of:
                slot_of[arg] = len(slot_of)
    head_parts: list[object] = []
    for arg in clause.head[1:]:
        head_parts.append(slot_of[arg] if is_variable(arg) else arg)
    head_vars = frozenset(
        arg for arg in clause.head[1:] if is_variable(arg)
    )
    compiled = CompiledClause(
        clause=clause,
        head_pred=clause.head[0],
        head_parts=tuple(head_parts),
        nslots=len(slot_of),
        body_preds=frozenset(atom[0] for atom in clause.body),
        full_plan=_build_plan(clause, slot_of, None),
        delta_plans=tuple(
            _build_plan(clause, slot_of, i)
            for i in range(len(clause.body))
        ),
        support_plan=_build_plan(clause, slot_of, None, head_vars),
    )
    _COMPILE_CACHE[clause] = compiled
    return compiled


# ----------------------------------------------------------------------
# stratification: SCC strata of the predicate dependency graph
# ----------------------------------------------------------------------
def _stratify(compiled: list[CompiledClause]) -> list[list[CompiledClause]]:
    """Group clauses into SCC strata, dependencies first.

    Nodes are predicates; an edge ``head -> body-pred`` records that
    deriving the head needs the body predicate.  Tarjan emits SCCs
    children-first, which for this edge direction is exactly the
    evaluation order: a stratum only runs once everything it reads
    from is complete (mutually recursive predicates share a stratum).
    """
    edges: dict[str, list[str]] = defaultdict(list)
    nodes: set[str] = set()
    for cc in compiled:
        nodes.add(cc.head_pred)
        for pred in cc.body_preds:
            nodes.add(pred)
            edges[cc.head_pred].append(pred)

    scc_of: dict[str, int] = {}
    order: list[list[str]] = []
    index_of: dict[str, int] = {}
    low: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    counter = 0
    for root in sorted(nodes):
        if root in index_of:
            continue
        # iterative Tarjan: (node, iterator over successors)
        work = [(root, iter(edges.get(root, ())))]
        index_of[root] = low[root] = counter
        counter += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, successors = work[-1]
            advanced = False
            for succ in successors:
                if succ not in index_of:
                    index_of[succ] = low[succ] = counter
                    counter += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append((succ, iter(edges.get(succ, ()))))
                    advanced = True
                    break
                if succ in on_stack:
                    low[node] = min(low[node], index_of[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
            if low[node] == index_of[node]:
                component: list[str] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                for member in component:
                    scc_of[member] = len(order)
                order.append(component)

    strata: list[list[CompiledClause]] = [[] for _ in order]
    for cc in compiled:
        strata[scc_of[cc.head_pred]].append(cc)
    return [stratum for stratum in strata if stratum]


def _stratum_dag(
    compiled: list[CompiledClause],
) -> tuple[list[list[CompiledClause]], list[set[int]]]:
    """The SCC strata plus their dependency DAG.

    ``deps[i]`` holds the indices of the (earlier, by topological
    construction) strata whose head predicates feed stratum ``i``'s
    bodies.  Strata with no path between them in this DAG touch
    disjoint derived predicates and may saturate concurrently; a
    stratum is runnable once every index in ``deps[i]`` has completed.
    Every clause lands in the stratum of its head predicate, so each
    derived predicate has exactly one owning stratum — the property
    that makes parallel partitions write-conflict-free.
    """
    strata = _stratify(compiled)
    owner: dict[str, int] = {}
    for i, stratum in enumerate(strata):
        for cc in stratum:
            owner[cc.head_pred] = i
    deps: list[set[int]] = []
    for i, stratum in enumerate(strata):
        need: set[int] = set()
        for cc in stratum:
            for pred in cc.body_preds:
                j = owner.get(pred)
                if j is not None and j != i:
                    need.add(j)
        deps.append(need)
    return strata, deps


# ----------------------------------------------------------------------
# parallel saturation: process-pool dispatch over independent strata
# ----------------------------------------------------------------------
def _saturate_stratum_task(
    payload: tuple,
) -> tuple[list[Atom], list[tuple[Atom, int, tuple[Atom, ...]]], dict[str, int]]:
    """Process-pool task: saturate one stratum over a shipped partition.

    The payload carries the stratum's compiled clauses, the facts of
    every predicate the stratum reads or writes, an optional delta
    shard (incremental mode), and whether to report derivations.  A
    private store/engine pair evaluates the stratum to its fixpoint;
    back across the pickle boundary go the new facts, their
    derivations as ``(fact, clause-index-in-stratum, premises)``
    triples (clause objects stay on the parent side), and the work
    counters to fold into the parent's stats.

    An optional fifth payload element is a chaos-testing
    :class:`~repro.reliability.faults.TaskFault` directive: ``crash``
    hard-exits the worker (the parent sees ``BrokenProcessPool``),
    ``hang``/``slow`` sleep (tripping — or staying inside — the
    scheduler's per-task deadline), ``error`` raises (the stand-in for
    pickle/transport failures, which surface identically).
    """
    stratum, facts, delta_items, record, *rest = payload
    fault: TaskFault | None = rest[0] if rest else None
    if fault is not None:
        if fault.kind == "crash":
            os._exit(13)  # simulate the worker process dying mid-task
        if fault.kind in ("hang", "slow"):
            time.sleep(fault.seconds)
        elif fault.kind == "error":
            raise FaultInjected("injected stratum-task failure")
    stratum = list(stratum)
    store = FactStore()
    for atom in facts:
        store.add(atom)
    engine = HornEngine(record_derivations=record, store=store)
    if delta_items is None:
        delta0 = engine._initial_delta(stratum)
    else:
        delta0 = {pred: set(members) for pred, members in delta_items}
    new, _ = engine._eval_stratum(stratum, delta0)
    derivations: list[tuple[Atom, int, tuple[Atom, ...]]] = []
    if record:
        index_of = {cc.clause: i for i, cc in enumerate(stratum)}
        for fact in new:
            derivation = engine._derivations.get(fact)
            if derivation is not None:
                derivations.append(
                    (fact, index_of[derivation.clause], derivation.premises)
                )
    stats = engine.last_stats
    counters = {
        key: stats[key]
        for key in ("rounds", "activations", "index_probes", "candidates")
    }
    return new, derivations, counters


_POOL_CACHE: dict[int, _futures.ProcessPoolExecutor] = {}


def _pool_unusable(pool: _futures.ProcessPoolExecutor) -> bool:
    """Is this executor broken or shut down (submit would raise)?

    ``_broken`` carries the BrokenProcessPool message after a worker
    died; ``_shutdown_thread`` flips once shutdown() ran.  Both are
    CPython implementation details, so absence reads as healthy — the
    worst case is the pre-check behavior (submit raises and the
    scheduler's recovery path respawns).
    """
    return bool(getattr(pool, "_broken", False)) or bool(
        getattr(pool, "_shutdown_thread", False)
    )


def _shared_pool(workers: int) -> _futures.ProcessPoolExecutor:
    """One process pool per worker count, reused across saturations.

    Workers are stateless (every task ships its whole input), so the
    pool can be shared by every engine in the process and the fork
    cost is paid once per worker count, not once per query.  A cached
    pool that broke (a worker crashed) or was shut down is evicted and
    replaced here, so one crash never poisons later parallel runs.
    """
    pool = _POOL_CACHE.get(workers)
    if pool is not None and _pool_unusable(pool):
        _evict_pool(workers, pool)
        pool = None
    if pool is None:
        pool = _futures.ProcessPoolExecutor(max_workers=workers)
        _POOL_CACHE[workers] = pool
    return pool


def _evict_pool(
    workers: int, pool: _futures.ProcessPoolExecutor | None = None
) -> bool:
    """Drop (and shut down) the cached pool for ``workers``.

    When ``pool`` is given, evict only if the cache still holds that
    exact executor — two schedulers discovering the same broken pool
    must not tear down its freshly spawned replacement.  Returns True
    when an entry was evicted.
    """
    cached = _POOL_CACHE.get(workers)
    if cached is None or (pool is not None and cached is not pool):
        return False
    del _POOL_CACHE[workers]
    cached.shutdown(wait=False, cancel_futures=True)
    return True


def _shutdown_pools() -> None:
    """Tear the cached pools down before interpreter shutdown.

    Executors left to die with the process race module teardown in
    their management threads; an explicit early shutdown keeps exits
    clean."""
    for pool in _POOL_CACHE.values():
        pool.shutdown(wait=False, cancel_futures=True)
    _POOL_CACHE.clear()


atexit.register(_shutdown_pools)


class ParallelScheduler:
    """Dispatch independent SCC strata of an engine to a process pool.

    Drives the stratum dependency DAG as a ready-queue: any stratum
    whose dependencies have all completed is submitted immediately, so
    independent chains overlap and the makespan is bounded by the
    DAG's critical path rather than the serial sum.  Each task ships
    the stratum's compiled plans plus the fact partition its body and
    head predicates touch; completions merge new conclusions into the
    master store at the join points, which unblocks dependents.

    In delta mode (``run(by_pred)``) each stratum receives only its
    shard of the queued deltas and its conclusions extend the shared
    delta map — the parallel twin of
    :meth:`HornEngine._push_stratum`, with the same topological
    guarantee: a stratum's input shard is final once its dependencies
    have completed, because only they (or the EDB seeds) can feed its
    body predicates.

    The scheduler survives its workers.  Every task carries a
    deadline (:attr:`RetryPolicy.task_timeout`); a task that times
    out, dies with its worker (``BrokenProcessPool``), is cancelled by
    a pool respawn, or raises is retried up to
    :attr:`RetryPolicy.max_retries` times with exponential backoff —
    respawning the shared pool when it broke or when a hung worker may
    never free its slot.  A stratum that exhausts its retries is
    *degraded*: re-run serially in-process through the exact code path
    the ``workers=1`` engine uses, so ``workers=N`` can only ever
    change speed, never results.  ``last_stats`` reports the ride
    honestly: ``retries`` / ``timeouts`` / ``pool_respawns`` /
    ``degraded_strata``.
    """

    def __init__(self, engine: HornEngine, workers: int) -> None:
        if workers < 1:
            raise InferenceError(f"workers must be >= 1, got {workers!r}")
        self.engine = engine
        self.workers = workers
        self.retry_policy = engine.retry_policy or DEFAULT_RETRY_POLICY
        self.fault_plan = engine.fault_plan

    def run(self, by_pred: dict[str, set[Atom]] | None = None) -> int:
        """Saturate (``by_pred=None``) or push deltas; returns #derived."""
        engine = self.engine
        store = engine._store
        stats = engine.last_stats
        strata, deps = engine.stratum_dag()
        stats["strata"] = len(strata)
        if not strata:
            return 0
        incremental = by_pred is not None
        record = engine.record_derivations
        policy = self.retry_policy
        plan = self.fault_plan
        n = len(strata)
        blockers = [len(dep) for dep in deps]
        dependents: list[list[int]] = [[] for _ in range(n)]
        for i, dep in enumerate(deps):
            for j in dep:
                dependents[j].append(i)
        body_preds: list[set[str]] = []
        ship_preds: list[list[str]] = []
        for stratum in strata:
            body: set[str] = set()
            for cc in stratum:
                body |= cc.body_preds
            body_preds.append(body)
            ship_preds.append(
                sorted(body | {cc.head_pred for cc in stratum})
            )
        derived = 0
        ready = [i for i in range(n) if not blockers[i]]
        in_flight: dict[_futures.Future, int] = {}
        deadlines: dict[_futures.Future, float] = {}
        attempts = [0] * n
        pool = _shared_pool(self.workers)

        def release(i: int) -> None:
            for j in dependents[i]:
                blockers[j] -= 1
                if not blockers[j]:
                    ready.append(j)

        def respawn() -> None:
            """Replace the (broken or hung) shared pool with a fresh one.

            Eviction is identity-guarded, so two discoveries of the
            same dead pool respawn once; pending tasks on the old pool
            are cancelled (their strata retry on the new pool) while
            already-running ones may still complete and merge normally.
            """
            nonlocal pool
            if _evict_pool(self.workers, pool):
                stats["pool_respawns"] += 1
            pool = _shared_pool(self.workers)

        def degrade(i: int) -> None:
            """Retries exhausted: run the stratum serially in-process.

            Exactly the serial engine's own evaluation — same store,
            same delta discipline — so degradation preserves the
            parity contract by construction.
            """
            nonlocal derived
            stats["degraded_strata"] += 1
            if incremental:
                derived += engine._push_stratum(strata[i], by_pred)
            else:
                new, _ = engine._eval_stratum(
                    strata[i], engine._initial_delta(strata[i])
                )
                derived += len(new)
            release(i)

        def failed(i: int) -> None:
            attempts[i] += 1
            if attempts[i] > policy.max_retries:
                degrade(i)
                return
            stats["retries"] += 1
            delay = policy.delay(attempts[i] - 1)
            if delay:
                time.sleep(delay)
            ready.append(i)

        def dispatch(i: int) -> None:
            delta_items = None
            if incremental:
                delta_items = tuple(
                    (pred, tuple(sorted(by_pred[pred])))
                    for pred in sorted(body_preds[i])
                    if by_pred.get(pred)
                )
                if not delta_items:  # no delta reaches this stratum
                    release(i)
                    return
            facts = [
                fact
                for pred in ship_preds[i]
                for fact in store.pool(pred)
            ]
            stats["tasks"] += 1
            stats["shipped_facts"] += len(facts)
            fault = plan.task_fault() if plan is not None else None
            payload = (tuple(strata[i]), facts, delta_items, record, fault)
            try:
                future = pool.submit(_saturate_stratum_task, payload)
            except (BrokenProcessPool, RuntimeError):
                # the pool died between health check and submit
                respawn()
                failed(i)
                return
            in_flight[future] = i
            if policy.task_timeout is not None:
                deadlines[future] = monotonic() + policy.task_timeout

        while ready or in_flight:
            while ready:
                dispatch(ready.pop())
            if not in_flight:
                continue  # releases/degradations may have refilled ready
            timeout = None
            if deadlines:
                timeout = max(0.0, min(deadlines.values()) - monotonic())
            done, _ = _futures.wait(
                in_flight, timeout=timeout,
                return_when=_futures.FIRST_COMPLETED,
            )
            if not done:
                # nothing completed before the nearest deadline: time
                # out every overdue task and retry it elsewhere
                now = monotonic()
                expired = [
                    future
                    for future, deadline in deadlines.items()
                    if future in in_flight and deadline <= now
                ]
                if expired and policy.respawn_on_timeout:
                    # a hung worker may never free its slot — tear the
                    # pool down so retries do not queue behind it
                    respawn()
                for future in expired:
                    i = in_flight.pop(future)
                    deadlines.pop(future, None)
                    stats["timeouts"] += 1
                    failed(i)
                continue
            for future in done:
                i = in_flight.pop(future)
                deadlines.pop(future, None)
                try:
                    new, derivations, counters = future.result()
                except BrokenProcessPool:
                    respawn()
                    failed(i)
                    continue
                except _futures.CancelledError:
                    # collateral of a respawn's cancel_futures
                    failed(i)
                    continue
                except Exception:
                    # injected task error, pickle/transport failure, or
                    # a genuine bug — retries first, and the serial
                    # degradation pass will surface anything
                    # deterministic in-process
                    failed(i)
                    continue
                for fact in new:
                    if store.add(fact):
                        derived += 1
                        if incremental:
                            by_pred.setdefault(fact[0], set()).add(fact)
                for fact, clause_index, premises in derivations:
                    engine._record_new(
                        strata[i][clause_index], fact, premises
                    )
                for key, value in counters.items():
                    stats[key] += value
                release(i)
        if derived:
            engine._derived_ever = True
        return derived


# ----------------------------------------------------------------------
# the DRed-vs-rebuild crossover: seeded from the benchmark, tunable
# ----------------------------------------------------------------------
DEFAULT_REBUILD_CROSSOVER = 8
"""Fallback batch-retraction count past which a rebuild beats DRed."""

_BENCH_RETRACTION_JSON = (
    Path(__file__).resolve().parents[3]
    / "benchmarks"
    / "BENCH_retraction.json"
)
_seeded_crossover: int | None = None


def seed_rebuild_crossover(path: Path | str | None = None) -> int:
    """The DRed-vs-rebuild crossover recorded by the retraction bench.

    Reads the checked-in ``BENCH_retraction.json`` retract-vs-rebuild
    sweep and returns the smallest retraction count at which the full
    rebuild measured faster than the DRed pass — the point where
    :meth:`HornEngine.apply_batch` should stop chasing deletion cones.
    Floors at 2 (a crossover of 1 would deny DRed entirely) and falls
    back to :data:`DEFAULT_REBUILD_CROSSOVER` when the file or series
    is missing or malformed.  The default lookup is cached per process.
    """
    global _seeded_crossover
    if path is None and _seeded_crossover is not None:
        return _seeded_crossover
    target = Path(path) if path is not None else _BENCH_RETRACTION_JSON
    crossover = DEFAULT_REBUILD_CROSSOVER
    try:
        payload = json.loads(target.read_text())
        series = payload["workloads"]["retract_vs_rebuild"]
        ks = sorted(int(k) for k in series)
        for k in ks:
            row = series[str(k)]
            if float(row["rebuild_ms"]) < float(row["retract_ms"]):
                crossover = max(k, 2)
                break
        else:
            if ks:  # rebuild never won in the measured range
                crossover = ks[-1] + 1
    except (OSError, ValueError, KeyError, TypeError):
        pass
    if path is None:
        _seeded_crossover = crossover
    return crossover


# ----------------------------------------------------------------------
# the engine
# ----------------------------------------------------------------------
def _new_stats(mode: str) -> dict[str, int | str]:
    return {
        "mode": mode,
        "rounds": 0,
        "strata": 0,
        "activations": 0,  # delta-plan runs scheduled
        "index_probes": 0,
        "candidates": 0,
        "derived": 0,
        "overdeleted": 0,  # facts removed by the DRed overdelete pass
        "rederived": 0,  # overdeleted facts restored by rederivation
        "tasks": 0,  # strata dispatched to the process pool
        "shipped_facts": 0,  # facts pickled across to workers
        "retries": 0,  # failed/timed-out tasks re-dispatched
        "timeouts": 0,  # tasks that blew their per-task deadline
        "pool_respawns": 0,  # broken/hung pools torn down and replaced
        "degraded_strata": 0,  # strata re-run serially after retries
    }


class HornEngine:
    """Forward-chaining evaluation of Horn clauses over ground facts.

    ``strategy`` picks ``seminaive`` (delta) or ``naive`` (full
    re-join) rounds; ``scheduling`` picks ``stratified`` (SCC strata
    in topological order) or ``flat`` (all clauses every round) and
    only affects the semi-naive strategy — naive evaluation is
    inherently flat, so the knob is inert there.
    ``record_derivations=False`` skips provenance bookkeeping for a
    faster engine whose :meth:`explain` raises.  ``store`` lets a
    caller supply a (possibly overlay) :class:`FactStore`; absent
    that, ``storage`` picks who builds it — ``"memory"`` (dict-backed
    :class:`FactStore`) or ``"paged"`` (a disk-backed
    :class:`~repro.kb.pagestore.PagedFactStore` whose index buckets
    page through a buffer pool of at most ``buffer_facts`` facts,
    living at ``storage_path`` or a private temporary file).  The
    engine never looks at which one it got: both stores answer the
    same (predicate, position, value) index contract.

    ``workers`` above 1 dispatches independent SCC strata to a shared
    process pool (:class:`ParallelScheduler`) during full and
    incremental semi-naive saturation; the derived-fact set is
    identical to the serial engine's.  ``rebuild_crossover`` is the
    batch-retraction count at which :meth:`apply_batch` switches from
    the DRed pass to a full rebuild — defaults to the figure recorded
    in the checked-in retraction benchmark
    (:func:`seed_rebuild_crossover`), and
    :meth:`calibrate_rebuild_crossover` re-measures it on the current
    machine.

    Reliability knobs: ``retry_policy`` governs the parallel
    scheduler's per-task timeout, bounded retries, and backoff
    (``None`` takes :data:`~repro.reliability.policy.DEFAULT_RETRY_POLICY`);
    ``fault_plan`` threads seeded chaos-testing faults through the
    runtime's injection hooks (``None`` — the default — injects
    nothing and costs a single identity check per site); ``journal``
    attaches a :class:`~repro.reliability.journal.ChurnJournal` that
    makes :meth:`apply_batch` crash-safe by write-ahead logging every
    diff before it mutates the engine.
    """

    def __init__(
        self,
        *,
        strategy: str = "seminaive",
        scheduling: str = "stratified",
        record_derivations: bool = True,
        store: FactStore | None = None,
        storage: str = "memory",
        storage_path: str | None = None,
        buffer_facts: int | None = None,
        workers: int = 1,
        rebuild_crossover: int | None = None,
        retry_policy: RetryPolicy | None = None,
        fault_plan: FaultPlan | None = None,
        journal: ChurnJournal | None = None,
    ) -> None:
        if strategy not in ("seminaive", "naive"):
            raise InferenceError(f"unknown evaluation strategy {strategy!r}")
        if scheduling not in ("stratified", "flat"):
            raise InferenceError(f"unknown scheduling {scheduling!r}")
        if storage not in ("memory", "paged"):
            raise InferenceError(f"unknown storage backend {storage!r}")
        if workers < 1:
            raise InferenceError(f"workers must be >= 1, got {workers!r}")
        self.strategy = strategy
        self.scheduling = scheduling
        self.record_derivations = record_derivations
        self.storage = storage
        self.storage_path = storage_path
        self.buffer_facts = buffer_facts
        self.workers = workers
        self.rebuild_crossover = (
            seed_rebuild_crossover()
            if rebuild_crossover is None
            else rebuild_crossover
        )
        self.retry_policy = retry_policy
        self.fault_plan = fault_plan
        self.journal = journal
        self.last_calibration: list[dict[str, float]] = []
        self._store = store if store is not None else self._new_store(
            initial=True
        )
        self._clauses: list[HornClause] = []
        self._clause_set: set[HornClause] = set()
        self._compiled: list[CompiledClause] = []
        self._derivations: dict[Atom, Derivation] = {}
        self._saturated = False
        # the asserted (extensional) facts: retraction semantics are
        # defined against this set — the engine always answers as if
        # saturated from scratch over exactly these facts.
        self._base_facts: set[Atom] = set()
        # False until evaluation first adds a derived fact: while the
        # store holds only asserted facts, retraction is a plain
        # store.remove instead of a replay or a DRed pass.
        self._derived_ever = False
        self._pending_facts: list[Atom] = []
        self._pending_clauses: list[CompiledClause] = []
        self._pending_retractions: list[Atom] = []
        self._pending_clause_retractions: list[CompiledClause] = []
        self._needs_rebuild = False
        self._strata: list[list[CompiledClause]] | None = None
        self._stratum_deps: list[set[int]] | None = None
        self.last_stats: dict[str, int | str] = _new_stats("idle")

    def _new_store(self, *, initial: bool = False) -> FactStore:
        """A fresh empty store honoring the engine's ``storage`` choice.

        ``initial`` is True only for the constructor's store: an
        explicit ``storage_path`` names *that* database, so later
        stores (``detach_store`` replacements) always get private
        temporary files rather than clobbering the original.
        """
        if self.storage == "paged":
            # local import: kb.pagestore depends on nothing in the
            # inference layer, but importing it eagerly would make the
            # in-memory fast path pay for sqlite3 at import time
            from repro.kb.pagestore import PagedFactStore

            kwargs: dict[str, int] = {}
            if self.buffer_facts is not None:
                kwargs["buffer_facts"] = self.buffer_facts
            path = self.storage_path if initial else None
            return PagedFactStore(path, **kwargs)  # type: ignore[return-value]
        return FactStore()

    # ------------------------------------------------------------------
    # program construction
    # ------------------------------------------------------------------
    @property
    def _facts(self) -> set[Atom]:
        """The full fact set (compat accessor for pre-rewrite callers).

        On overlay-backed engines this copies base + local facts so
        the view matches what the old attribute held; plain engines
        return their store's set directly.
        """
        if self._store._base is not None:
            return set(self._store.iter_facts())
        return self._store._facts

    @property
    def store(self) -> FactStore:
        return self._store

    def add_fact(self, atom: Atom) -> bool:
        """Add a ground fact; returns False if it was already known.

        After a fixpoint, new facts are queued as deltas: the next
        query propagates just them instead of re-saturating.  The atom
        is recorded as a *base* fact either way — asserting a fact
        that currently happens to be derived makes it survive the
        retraction of its premises.
        """
        if not is_ground(atom):
            raise InferenceError(f"facts must be ground: {atom!r}")
        self._base_facts.add(atom)
        if not self._store.add(atom):
            return False
        if self._saturated:
            if self.strategy == "seminaive":
                self._pending_facts.append(atom)
            else:
                self._saturated = False
        return True

    def add_facts(self, atoms: Iterable[Atom]) -> int:
        return sum(1 for atom in atoms if self.add_fact(atom))

    def retract_fact(self, atom: Atom) -> bool:
        """Retract a base fact; returns False if it was never asserted.

        Only *asserted* facts can be retracted (a derived fact holds
        exactly as long as its premises do).  On a saturated semi-naive
        engine the retraction is queued and the next query runs the
        DRed overdelete/rederive pass; otherwise the engine replays
        from its base facts on the next saturation.  A retracted fact
        that is still derivable from the surviving base facts comes
        back through rederivation.
        """
        if not is_ground(atom):
            raise InferenceError(f"facts must be ground: {atom!r}")
        if atom not in self._base_facts:
            return False
        self._base_facts.discard(atom)
        if self._saturated and self.strategy == "seminaive":
            self._pending_retractions.append(atom)
        elif not self._derived_ever:
            # Nothing has ever been derived: the store holds exactly
            # the asserted facts, so unlink in place.  Facts the base
            # overlay supplies stay visible (as in the DRed shield).
            if not self._store.in_base(atom):
                self._store.remove(atom)
        else:
            self._needs_rebuild = True
        return True

    def retract_facts(self, atoms: Iterable[Atom]) -> int:
        return sum(1 for atom in atoms if self.retract_fact(atom))

    def retract_clause(self, clause: HornClause) -> bool:
        """Remove a clause; returns False if it was never added.

        Facts only derivable through the clause are overdeleted (its
        full join plan enumerates everything it ever concluded) and
        survivors with alternate proofs are rederived, exactly like
        fact retraction.  A clause still queued from
        :meth:`add_clause` is simply dequeued — it never concluded
        anything.
        """
        if not clause.body:
            return self.retract_fact(clause.head)
        if clause not in self._clause_set:
            return False
        self._clause_set.discard(clause)
        position = self._clauses.index(clause)
        del self._clauses[position]
        compiled = self._compiled.pop(position)
        self._strata = None
        self._stratum_deps = None
        if compiled in self._pending_clauses:
            self._pending_clauses.remove(compiled)
            return True
        if self._saturated and self.strategy == "seminaive":
            self._pending_clause_retractions.append(compiled)
        elif self._derived_ever:
            self._needs_rebuild = True
        # else: the clause never concluded anything — removal suffices
        return True

    def base_facts(self) -> set[Atom]:
        """A fresh copy of the asserted (extensional) fact set."""
        return set(self._base_facts)

    def clauses(self) -> tuple[HornClause, ...]:
        """The program's clauses, in insertion order (a copy)."""
        return tuple(self._clauses)

    @property
    def is_saturated(self) -> bool:
        """At a fixpoint that incremental deltas can repair in place.

        False before the first saturation and after a retraction took
        the replay-from-base fallback (naive strategy, unsaturated
        engine) — in those states the next query runs a full
        saturation, not delta propagation.
        """
        return self._saturated and not self._needs_rebuild

    def add_clause(self, clause: HornClause) -> None:
        if not clause.body:
            # A bodiless clause is just a fact.
            self.add_fact(clause.head)
            return
        compiled = compile_clause(clause)  # raises on unsafe clauses
        if clause in self._clause_set:
            return  # duplicate clauses only repeat work
        self._clause_set.add(clause)
        self._clauses.append(clause)
        self._compiled.append(compiled)
        self._strata = None
        self._stratum_deps = None
        if self._saturated:
            if self.strategy == "seminaive":
                self._pending_clauses.append(compiled)
            else:
                self._saturated = False

    def add_clauses(self, clauses: Iterable[HornClause]) -> None:
        for clause in clauses:
            self.add_clause(clause)

    # ------------------------------------------------------------------
    # join-plan runtime
    # ------------------------------------------------------------------
    def _candidates(
        self,
        step: _Step,
        delta: Mapping[str, set[Atom]] | None,
        slots: list,
    ) -> Iterable[Atom]:
        """The fact pool one step scans, via the cheapest index probe."""
        if step.pool == _POOL_DELTA:
            return delta.get(step.pred, ())
        store = self._store
        stats = self.last_stats
        best_key: tuple[int, str] | None = None
        best_size = -1
        for position, value in step.const_checks:
            size = store.probe_size(step.pred, position, value)
            if best_size < 0 or size < best_size:
                best_size, best_key = size, (position, value)
        for position, slot in step.bound_checks:
            value = slots[slot]
            size = store.probe_size(step.pred, position, value)
            if best_size < 0 or size < best_size:
                best_size, best_key = size, (position, value)
        if best_key is None:
            candidates: Iterable[Atom] = store.pool(step.pred)
        else:
            stats["index_probes"] += 1
            candidates = store.probe(step.pred, best_key[0], best_key[1])
        if step.pool == _POOL_OLD and delta:
            delta_set = delta.get(step.pred)
            if delta_set:
                return (f for f in candidates if f not in delta_set)
        return candidates

    def _run_plan(
        self,
        cc: CompiledClause,
        plan: _JoinPlan,
        delta: Mapping[str, set[Atom]] | None,
        slots: list | None = None,
    ) -> Iterator[tuple[Atom, tuple[Atom, ...] | None]]:
        """Yield ``(head, premises-in-body-order)`` for every join.

        ``slots`` pre-binds variables (the support probe passes the
        head binding); the plan must have been compiled with those
        variables in its initial bound set.
        """
        steps = plan.steps
        n_steps = len(steps)
        if slots is None:
            slots = [None] * cc.nslots
        premises: list = [None] * n_steps
        record = self.record_derivations
        stats = self.last_stats
        head_pred = cc.head_pred
        head_parts = cc.head_parts
        body_order = plan.body_order

        def recurse(i: int) -> Iterator[tuple[Atom, tuple[Atom, ...] | None]]:
            if i == n_steps:
                head = (head_pred,) + tuple(
                    slots[part] if part.__class__ is int else part
                    for part in head_parts
                )
                if record:
                    ordered = [None] * n_steps
                    for step_index in range(n_steps):
                        ordered[body_order[step_index]] = premises[step_index]
                    yield head, tuple(ordered)
                else:
                    yield head, None
                return
            step = steps[i]
            arity = step.arity
            const_checks = step.const_checks
            bound_checks = step.bound_checks
            same_checks = step.same_checks
            binds = step.binds
            examined = 0
            for fact in self._candidates(step, delta, slots):
                examined += 1
                if len(fact) != arity:
                    continue
                ok = True
                for position, value in const_checks:
                    if fact[position] != value:
                        ok = False
                        break
                if ok:
                    for position, slot in bound_checks:
                        if fact[position] != slots[slot]:
                            ok = False
                            break
                if ok:
                    for position, earlier in same_checks:
                        if fact[position] != fact[earlier]:
                            ok = False
                            break
                if not ok:
                    continue
                for position, slot in binds:
                    slots[slot] = fact[position]
                premises[i] = fact
                yield from recurse(i + 1)
            stats["candidates"] += examined

        yield from recurse(0)

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------
    def _schedule(self) -> list[list[CompiledClause]]:
        return self.stratum_dag()[0]

    def stratum_dag(
        self,
    ) -> tuple[list[list[CompiledClause]], list[set[int]]]:
        """The stratum schedule and its dependency DAG (cached).

        Under ``flat`` scheduling the whole program is one stratum with
        no dependencies; under ``stratified`` this is
        :func:`_stratum_dag` over the compiled program.
        """
        if self._strata is None or self._stratum_deps is None:
            if self.scheduling == "stratified":
                self._strata, self._stratum_deps = _stratum_dag(
                    self._compiled
                )
            else:
                self._strata = (
                    [list(self._compiled)] if self._compiled else []
                )
                self._stratum_deps = [set() for _ in self._strata]
        return self._strata, self._stratum_deps

    def _record_new(
        self,
        cc: CompiledClause,
        head: Atom,
        premises: tuple[Atom, ...] | None,
    ) -> None:
        if self.record_derivations and head not in self._derivations:
            self._derivations[head] = Derivation(cc.clause, premises)

    def _eval_stratum(
        self,
        stratum: list[CompiledClause],
        delta0: dict[str, set[Atom]],
        max_rounds: int | None = None,
    ) -> tuple[list[Atom], bool]:
        """Semi-naive rounds over one stratum; returns (new facts, at
        fixpoint).  Only (clause, position) pairs whose predicate is in
        the round's delta are visited; facts derived in a round join in
        the next one (snapshot semantics)."""
        store = self._store
        stats = self.last_stats
        schedule: dict[str, list[tuple[CompiledClause, _JoinPlan]]] = {}
        for cc in stratum:
            for plan in cc.delta_plans:
                schedule.setdefault(plan.delta_pred, []).append((cc, plan))
        delta = {
            pred: facts
            for pred, facts in delta0.items()
            if facts and pred in schedule
        }
        all_new: list[Atom] = []
        rounds = 0
        while delta:
            rounds += 1
            stats["rounds"] += 1
            round_new: list[Atom] = []
            round_set: set[Atom] = set()
            for pred in delta:
                for cc, plan in schedule[pred]:
                    stats["activations"] += 1
                    for head, premises in self._run_plan(cc, plan, delta):
                        if head in round_set or head in store:
                            continue
                        round_set.add(head)
                        round_new.append(head)
                        self._record_new(cc, head, premises)
            if round_new:
                self._derived_ever = True
            for fact in round_new:
                store.add(fact)
            all_new.extend(round_new)
            if not round_new:
                return all_new, True
            if max_rounds is not None and rounds >= max_rounds:
                return all_new, False
            next_delta: dict[str, set[Atom]] = {}
            for fact in round_new:
                if fact[0] in schedule:
                    next_delta.setdefault(fact[0], set()).add(fact)
            delta = next_delta
        return all_new, True

    def _initial_delta(
        self, stratum: list[CompiledClause]
    ) -> dict[str, set[Atom]]:
        body_preds: set[str] = set()
        for cc in stratum:
            body_preds |= cc.body_preds
        return {
            pred: set(self._store.pool(pred))
            for pred in body_preds
            if self._store.pool_size(pred)
        }

    def _saturate_seminaive(self, max_rounds: int | None) -> tuple[int, bool]:
        derived = 0
        at_fixpoint = True
        if max_rounds is None:
            strata = self._schedule()
            if self.workers > 1 and len(strata) > 1:
                derived = ParallelScheduler(self, self.workers).run()
                return derived, True
        else:
            # bounded runs use flat scheduling so "a round" means the
            # same thing under both strategies (see saturate()).
            strata = [list(self._compiled)] if self._compiled else []
        self.last_stats["strata"] = len(strata)
        stratum_ms: list[float] = []
        for stratum in strata:
            started = perf_counter()
            new, fixed = self._eval_stratum(
                stratum, self._initial_delta(stratum), max_rounds
            )
            stratum_ms.append((perf_counter() - started) * 1000.0)
            derived += len(new)
            at_fixpoint = at_fixpoint and fixed
        # per-stratum wall time: the parallel scheduler's makespan is
        # bounded by the critical path over exactly these figures.
        self.last_stats["stratum_ms"] = stratum_ms
        return derived, at_fixpoint

    def _saturate_naive(self, max_rounds: int | None) -> tuple[int, bool]:
        store = self._store
        stats = self.last_stats
        stats["strata"] = 1 if self._compiled else 0  # naive is flat
        derived_total = 0
        rounds = 0
        while True:
            rounds += 1
            stats["rounds"] += 1
            round_new: list[Atom] = []
            round_set: set[Atom] = set()
            for cc in self._compiled:
                stats["activations"] += 1
                for head, premises in self._run_plan(cc, cc.full_plan, None):
                    if head in round_set or head in store:
                        continue
                    round_set.add(head)
                    round_new.append(head)
                    self._record_new(cc, head, premises)
            if round_new:
                self._derived_ever = True
            for fact in round_new:
                store.add(fact)
            derived_total += len(round_new)
            if not round_new:
                return derived_total, True
            if max_rounds is not None and rounds >= max_rounds:
                return derived_total, False

    def _propagate_pending(self) -> int:
        """Incremental saturation: push only the queued deltas.

        Queued clauses first run their full plan once (they have never
        seen the database); their conclusions join the queued facts,
        and the combined delta flows through the strata in topological
        order.  Equivalent to — and property-tested against — a
        from-scratch saturation."""
        store = self._store
        # A pending fact can have been retracted (and overdeleted) in
        # the same batch; only facts still standing propagate.
        seeds = [f for f in self._pending_facts if f in store]
        new_clauses = self._pending_clauses
        self._pending_facts = []
        self._pending_clauses = []
        derived = 0
        for cc in new_clauses:
            # Materialize before inserting: adding heads would mutate
            # the pool/index lists the join is iterating over.
            matches = list(self._run_plan(cc, cc.full_plan, None))
            for head, premises in matches:
                if head in store:
                    continue
                store.add(head)
                self._derived_ever = True
                self._record_new(cc, head, premises)
                seeds.append(head)
                derived += 1
        by_pred: dict[str, set[Atom]] = {}
        for fact in seeds:
            by_pred.setdefault(fact[0], set()).add(fact)
        strata = self._schedule()
        self.last_stats["strata"] = len(strata)
        if self.workers > 1 and len(strata) > 1 and by_pred:
            return derived + ParallelScheduler(self, self.workers).run(
                by_pred
            )
        for stratum in strata:
            derived += self._push_stratum(stratum, by_pred)
        return derived

    def _push_stratum(
        self,
        stratum: list[CompiledClause],
        by_pred: dict[str, set[Atom]],
    ) -> int:
        """Propagate the accumulated deltas through one stratum.

        Restricts ``by_pred`` to the stratum's body predicates, runs
        the semi-naive rounds, folds the new conclusions back into
        ``by_pred`` for downstream strata, and returns how many facts
        the stratum derived.  Shared by incremental addition and the
        DRed rederive pass so the delta discipline cannot diverge.
        """
        body_preds: set[str] = set()
        for cc in stratum:
            body_preds |= cc.body_preds
        delta0 = {
            pred: by_pred[pred] for pred in body_preds if pred in by_pred
        }
        if not delta0:
            return 0
        new, _ = self._eval_stratum(stratum, delta0)
        for fact in new:
            by_pred.setdefault(fact[0], set()).add(fact)
        return len(new)

    # ------------------------------------------------------------------
    # incremental retraction (DRed: overdelete, then rederive)
    # ------------------------------------------------------------------
    def _first_support(
        self, cc: CompiledClause, fact: Atom
    ) -> tuple[Atom, ...] | None:
        """One surviving body instantiation deriving ``fact``, or None.

        Binds the clause head against the ground fact and runs the
        compiled support plan (head variables pre-bound, so every step
        starts from an index probe) through the shared join runtime,
        stopping at the first match.  Returns the premises in body
        order (``()`` when derivation recording is off); None means no
        surviving proof.
        """
        if len(fact) != len(cc.clause.head):
            return None
        slots: list = [None] * cc.nslots
        for part, value in zip(cc.head_parts, fact[1:]):
            if part.__class__ is int:
                bound = slots[part]
                if bound is None:
                    slots[part] = value
                elif bound != value:
                    return None
            elif part != value:
                return None
        for _, premises in self._run_plan(cc, cc.support_plan, None, slots):
            return premises if premises is not None else ()
        return None

    def _retract_pending(self) -> None:
        """The DRed pass over the queued retractions.

        *Overdelete*: the downstream cone of the retracted facts (and
        every conclusion of a retracted clause), computed with the same
        compiled per-delta join plans semi-naive rounds use — each
        join enumerated once per round, against the not-yet-shrunk
        store, so derivations through other to-be-deleted facts are
        still seen.  Facts (re)asserted as base are never overdeleted.

        *Rederive*: stratum by stratum in topological order, each
        overdeleted fact with a surviving one-step proof (the
        head-bound support probe) is restored and the restored set is
        propagated semi-naive — restricted, by construction, to the
        overdeleted set, since deletion cannot make new facts
        derivable.
        """
        store = self._store
        stats = self.last_stats
        retracted = self._pending_retractions
        retracted_clauses = self._pending_clause_retractions
        self._pending_retractions = []
        self._pending_clause_retractions = []

        derivations = self._derivations

        def shield(atom: Atom) -> bool:
            """Extensional facts are never overdeleted — asserted on
            this engine or supplied by the store's base overlay.  Their
            recorded proof may cite facts this pass is deleting, so
            they fall back to explaining themselves."""
            if atom in self._base_facts or store.in_base(atom):
                derivations.pop(atom, None)
                return True
            return False

        frontier: set[Atom] = set()
        for atom in retracted:
            if shield(atom) or atom not in store:
                continue
            frontier.add(atom)
        for cc in retracted_clauses:
            # Materialized first: _run_plan iterates live store pools.
            conclusions = list(self._run_plan(cc, cc.full_plan, None))
            for head, _ in conclusions:
                if head in store and not shield(head):
                    frontier.add(head)

        schedule: dict[str, list[tuple[CompiledClause, _JoinPlan]]] = {}
        for cc in self._compiled:
            for plan in cc.delta_plans:
                schedule.setdefault(plan.delta_pred, []).append((cc, plan))

        overdeleted: set[Atom] = set(frontier)
        while frontier:
            stats["rounds"] += 1
            delta: dict[str, set[Atom]] = {}
            for fact in frontier:
                delta.setdefault(fact[0], set()).add(fact)
            next_frontier: set[Atom] = set()
            for pred in delta:
                for cc, plan in schedule.get(pred, ()):
                    stats["activations"] += 1
                    for head, _ in self._run_plan(cc, plan, delta):
                        if (
                            head in overdeleted
                            or head in next_frontier
                            or shield(head)
                            or head not in store
                        ):
                            continue
                        next_frontier.add(head)
            overdeleted |= next_frontier
            frontier = next_frontier

        for atom in overdeleted:
            store.remove(atom)
            self._derivations.pop(atom, None)
        stats["overdeleted"] = len(overdeleted)
        if not overdeleted or not self._compiled:
            return

        remaining: dict[str, list[Atom]] = {}
        for atom in sorted(overdeleted):
            remaining.setdefault(atom[0], []).append(atom)
        by_head: dict[str, list[CompiledClause]] = {}
        for cc in self._compiled:
            by_head.setdefault(cc.head_pred, []).append(cc)

        rederived = 0
        by_pred: dict[str, set[Atom]] = {}
        strata = self._schedule()
        stats["strata"] = len(strata)
        for stratum in strata:
            seeds: list[Atom] = []
            head_preds = sorted({cc.head_pred for cc in stratum})
            for pred in head_preds:
                for fact in remaining.get(pred, ()):
                    if fact in store:
                        continue
                    for cc in by_head[pred]:
                        premises = self._first_support(cc, fact)
                        if premises is not None:
                            store.add(fact)
                            self._record_new(cc, fact, premises)
                            seeds.append(fact)
                            break
            rederived += len(seeds)
            for fact in seeds:
                by_pred.setdefault(fact[0], set()).add(fact)
            rederived += self._push_stratum(stratum, by_pred)
        stats["rederived"] = rederived

    def _reset_to_base(self) -> None:
        """Replay the store from the asserted facts (retraction fallback
        for naive / not-yet-saturated engines).

        In place: the store object (possibly caller-supplied) keeps its
        identity and any deletion tombstones an external overlay owner
        recorded — only this engine's derived/retracted local facts
        are unlinked.
        """
        store = self._store
        for atom in [f for f in store._facts if f not in self._base_facts]:
            store.remove(atom)
        for atom in self._base_facts:
            store.add(atom)
        self._derivations = {}
        self._saturated = False
        self._derived_ever = False
        self._pending_facts = []
        self._pending_clauses = []
        self._pending_retractions = []
        self._pending_clause_retractions = []
        self._needs_rebuild = False

    def saturate(self, *, max_rounds: int | None = None) -> int:
        """Run forward chaining; return the number of new facts.

        Unbounded (``max_rounds=None``) runs reach the fixpoint —
        incrementally when only queued deltas are outstanding: queued
        retractions run the DRed overdelete/rederive pass first
        (``mode == "retract"``), then queued additions propagate.
        Bounded runs evaluate ``max_rounds`` flat snapshot rounds
        (facts derived in round *r* join in round *r + 1*), which makes
        the result identical under ``naive`` and ``seminaive``; the
        engine stays unsaturated unless the bound happened to reach
        the fixpoint.  Datalog saturation always terminates because
        the Herbrand base over the finite constants is finite.
        """
        if self._needs_rebuild or (
            max_rounds is not None
            and (self._pending_retractions or self._pending_clause_retractions)
        ):
            # Retractions cannot fold into a bounded round-0 delta, and
            # naive / unsaturated engines have no cone to chase: replay
            # the store from the asserted facts and saturate fresh.
            self._reset_to_base()
        if max_rounds is not None:
            self.last_stats = _new_stats("bounded")
            # Queued deltas fold into the bounded run's round-0 delta.
            self._pending_facts = []
            self._pending_clauses = []
            if self.strategy == "seminaive":
                derived, at_fixpoint = self._saturate_seminaive(max_rounds)
            else:
                derived, at_fixpoint = self._saturate_naive(max_rounds)
            self._saturated = at_fixpoint
            self.last_stats["derived"] = derived
            return derived
        if self._saturated:
            has_retractions = bool(
                self._pending_retractions or self._pending_clause_retractions
            )
            if not (
                has_retractions
                or self._pending_facts
                or self._pending_clauses
            ):
                return 0
            derived = 0
            if has_retractions:
                self.last_stats = _new_stats("retract")
                self._retract_pending()
                if self._pending_facts or self._pending_clauses:
                    derived = self._propagate_pending()
            else:
                self.last_stats = _new_stats("incremental")
                derived = self._propagate_pending()
        else:
            self.last_stats = _new_stats("full")
            self._pending_facts = []
            self._pending_clauses = []
            if self.strategy == "seminaive":
                derived, _ = self._saturate_seminaive(None)
            else:
                derived, _ = self._saturate_naive(None)
        self._saturated = True
        self.last_stats["derived"] = derived
        return derived

    # ------------------------------------------------------------------
    # batched churn
    # ------------------------------------------------------------------
    def apply_batch(
        self,
        adds: Iterable[Atom] = (),
        retracts: Iterable[Atom] = (),
        *,
        saturate: bool = True,
    ) -> dict[str, object]:
        """Apply a churn batch — retractions, then additions — as one pass.

        Instead of one DRed pass per retraction, the whole batch queues
        first and the single :meth:`saturate` that follows pays one
        overdelete/rederive pass over the union cone plus one
        semi-naive propagation of the additions.  A fact appearing in
        both lists ends up asserted (retract-then-add order — exactly
        the shrink/grow diffs ``refresh_from_articulation`` produces).
        When the queued retraction count reaches
        :attr:`rebuild_crossover`, chasing the deletion cone is a
        measured loss and the batch schedules a replay-from-base
        rebuild instead (``decision == "rebuild"``).

        Returns a report: ``added``/``retracted`` counts, the
        ``decision`` (``dred`` / ``rebuild`` / ``delta`` / ``full`` /
        ``replay`` / ``inplace`` / ``noop``), the queued retraction
        count it was based on, the crossover in force, and — unless
        ``saturate=False`` defers evaluation to the caller —
        ``derived`` plus the resulting stats ``mode``.

        With a :class:`~repro.reliability.journal.ChurnJournal`
        attached the batch is crash-safe: the coalesced diff is
        durably journaled *before* any mutation, and committed once
        the batch (and its saturation) completed — so a process dying
        anywhere inside this method loses nothing;
        :meth:`ChurnJournal.recover` replays the journal to the
        fixpoint this batch was driving toward.  The report then
        carries the batch's ``journal_seq``.
        """
        journal = self.journal
        seq: int | None = None
        if journal is not None:
            # materialize before journaling: the iterables are
            # consumed twice (once to disk, once into the engine)
            adds = list(adds)
            retracts = list(retracts)
            seq = journal.begin(adds, retracts)
        if self.fault_plan is not None and self.fault_plan.batch_crash():
            # chaos hook: the diff is journaled, the engine untouched —
            # exactly the state a process crash here would leave behind
            raise FaultInjected(
                "injected process crash mid-apply_batch (diff journaled, "
                "engine not yet mutated)"
            )
        retracted = self.retract_facts(retracts)
        added = self.add_facts(adds)
        queued = len(self._pending_retractions) + len(
            self._pending_clause_retractions
        )
        crossover = self.rebuild_crossover
        if queued and crossover is not None and queued >= crossover:
            # saturate() will replay from base; the queues die with it.
            self._needs_rebuild = True
            decision = "rebuild"
        elif queued:
            decision = "dred"
        elif retracted:
            decision = "replay" if self._needs_rebuild else "inplace"
        elif added:
            decision = "delta" if self._saturated else "full"
        else:
            decision = "noop"
        report: dict[str, object] = {
            "added": added,
            "retracted": retracted,
            "queued_retractions": queued,
            "crossover": crossover,
            "decision": decision,
        }
        if saturate:
            report["derived"] = self.saturate()
            report["mode"] = self.last_stats["mode"]
        if seq is not None:
            # the batch is fully folded in (and, when saturate=True, at
            # its fixpoint): a recovery from here on replays it as
            # committed history instead of a crash victim
            journal.commit(seq)
            report["journal_seq"] = seq
        return report

    def calibrate_rebuild_crossover(
        self,
        *,
        chain: int = 48,
        ks: tuple[int, ...] = (1, 2, 4, 8, 16, 32),
    ) -> int:
        """Measure this machine's DRed-vs-rebuild crossover; store it.

        Times, on a synthetic transitive-closure chain, a ``k``-fact
        batched DRed retraction against a from-scratch rebuild of the
        surviving program for each ``k``; the first ``k`` where the
        rebuild wins (floored at 2) becomes :attr:`rebuild_crossover`.
        If the rebuild never wins in the measured range the crossover
        moves past it.  Per-``k`` measurements land in
        :attr:`last_calibration` for inspection and benchmarks.  The
        seeded default comes from the checked-in retraction benchmark;
        calibration replaces it with a figure from *this* machine.
        """
        trans = HornClause(
            ("S", "?x", "?z"), (("S", "?x", "?y"), ("S", "?y", "?z"))
        )

        def fresh(skip: frozenset[int] = frozenset()) -> HornEngine:
            engine = HornEngine(record_derivations=False)
            engine.add_clause(trans)
            engine.add_facts(
                ("S", f"n{i}", f"n{i + 1}")
                for i in range(chain)
                if i not in skip
            )
            return engine

        self.last_calibration = []
        crossover: int | None = None
        for k in ks:
            if k >= chain:
                break
            victims = frozenset((i * chain) // k for i in range(k))
            atoms = [("S", f"n{i}", f"n{i + 1}") for i in sorted(victims)]
            engine = fresh()
            engine.saturate()
            started = perf_counter()
            engine.retract_facts(atoms)
            engine.saturate()
            dred_ms = (perf_counter() - started) * 1000.0
            started = perf_counter()
            fresh(victims).saturate()
            rebuild_ms = (perf_counter() - started) * 1000.0
            self.last_calibration.append(
                {
                    "k": k,
                    "dred_ms": round(dred_ms, 3),
                    "rebuild_ms": round(rebuild_ms, 3),
                }
            )
            if crossover is None and rebuild_ms < dred_ms:
                crossover = max(k, 2)
        if crossover is None:
            crossover = (max(ks) if ks else DEFAULT_REBUILD_CROSSOVER) + 1
        self.rebuild_crossover = crossover
        return crossover

    def _ensure_current(self) -> None:
        if (
            not self._saturated
            or self._needs_rebuild
            or self._pending_facts
            or self._pending_clauses
            or self._pending_retractions
            or self._pending_clause_retractions
        ):
            self.saturate()

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def holds(self, atom: Atom) -> bool:
        """Is this ground atom derivable?  Saturates lazily."""
        self._ensure_current()
        return atom in self._store

    def query(self, pattern: Atom) -> list[dict[str, str]]:
        """All bindings of a (possibly non-ground) atom.

        Ground argument positions probe the argument index; the most
        selective bucket is scanned.
        """
        self._ensure_current()
        predicate = pattern[0]
        store = self._store
        bound = [
            (position, arg)
            for position, arg in enumerate(pattern)
            if position and not is_variable(arg)
        ]
        if bound:
            position, value = min(
                bound,
                key=lambda pv: store.probe_size(predicate, pv[0], pv[1]),
            )
            pool: Iterable[Atom] = store.probe(predicate, position, value)
        else:
            pool = store.pool(predicate)
        results: list[dict[str, str]] = []
        for fact in pool:
            binding = unify_atom(pattern, fact)
            if binding is not None:
                results.append(binding)
        return results

    def facts(self, predicate: str | None = None) -> set[Atom]:
        """A fresh set of (all or one predicate's) derivable facts.

        Copies; use :meth:`iter_facts` / :meth:`fact_count` on hot
        paths.
        """
        self._ensure_current()
        return set(self._store.iter_facts(predicate))

    def iter_facts(self, predicate: str | None = None) -> Iterator[Atom]:
        """Iterate derivable facts without copying the fact set."""
        self._ensure_current()
        return self._store.iter_facts(predicate)

    def detach_store(self) -> FactStore:
        """Freeze the current store as a snapshot; keep working on a copy.

        Saturates first, then swaps a fact-for-fact copy of the store
        into the engine and returns the original, which this engine
        will never touch again — the caller may publish it as a
        consistent read-only snapshot (the serving tier's session
        stores overlay it).  The copy is flat even when the current
        store is overlay-backed, so repeated detaches never deepen a
        chain.  Cost is O(closure) once per detach, paid by the
        *writer* at a churn boundary — readers stay copy-free.
        """
        self._ensure_current()
        old = self._store
        fresh = self._new_store()
        for atom in old.iter_facts():
            fresh.add(atom)
        self._store = fresh
        return old

    def fact_count(self, predicate: str | None = None) -> int:
        self._ensure_current()
        if predicate is None:
            return len(self._store)
        return self._store.pool_size(predicate)

    def explain(self, atom: Atom) -> list[Atom]:
        """The base facts supporting ``atom`` (transitive premises).

        Base facts explain themselves as a singleton list.  Unknown
        atoms raise :class:`InferenceError`, as does an engine built
        with ``record_derivations=False``.
        """
        if not self.record_derivations:
            raise InferenceError(
                "derivation recording is disabled on this engine"
            )
        self._ensure_current()
        if atom not in self._store:
            raise InferenceError(f"fact does not hold: {atom!r}")
        base: list[Atom] = []
        seen: set[Atom] = set()
        stack = [atom]
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            derivation = self._derivations.get(current)
            if derivation is None:
                base.append(current)
            else:
                stack.extend(derivation.premises)
        return base

    def __len__(self) -> int:
        return len(self._store)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<HornEngine facts={len(self._store)} "
            f"clauses={len(self._clauses)} strategy={self.strategy} "
            f"scheduling={self.scheduling}>"
        )
