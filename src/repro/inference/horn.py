"""A Horn-clause forward-chaining engine.

The paper (§4.1): "Since inference engines for full first-order systems
tend not to scale up to large knowledge bases, for performance reasons,
we envisage that for a lot of applications, we will use simple Horn
Clauses to represent articulation rules.  The modular design of the
onion system implies that we can then plug in a much lighter (and
faster) inference engine."

This module is that lighter engine: a safe-datalog evaluator with
ground facts, variables written ``?X``, predicate indexing, and both
naive and semi-naive evaluation (the benchmark ablates the two).
Derivations are recorded so every inferred fact can be explained back
to the expert — §2.4 requires the expert to vet what the system
concluded.
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Iterable, Iterator, Mapping
from dataclasses import dataclass

from repro.core.rules import HornClause
from repro.errors import InferenceError

__all__ = ["Atom", "HornEngine", "is_variable", "substitute", "unify_atom"]

Atom = tuple[str, ...]
"""A predicate application ``(predicate, arg1, ..., argN)``."""


def is_variable(symbol: str) -> bool:
    """Variables are spelled ``?Name``."""
    return symbol.startswith("?")


def is_ground(atom: Atom) -> bool:
    return not any(is_variable(arg) for arg in atom[1:])


def substitute(atom: Atom, binding: Mapping[str, str]) -> Atom:
    """Apply a variable binding to an atom's arguments."""
    return (atom[0],) + tuple(
        binding.get(arg, arg) if is_variable(arg) else arg for arg in atom[1:]
    )


def unify_atom(
    pattern: Atom, fact: Atom, binding: Mapping[str, str] | None = None
) -> dict[str, str] | None:
    """Match a (possibly non-ground) atom against a ground fact.

    Returns the extended binding, or None on mismatch.  ``fact`` must
    be ground; repeated variables in the pattern must agree.
    """
    if pattern[0] != fact[0] or len(pattern) != len(fact):
        return None
    result = dict(binding) if binding else {}
    for pat_arg, fact_arg in zip(pattern[1:], fact[1:]):
        if is_variable(pat_arg):
            bound = result.get(pat_arg)
            if bound is None:
                result[pat_arg] = fact_arg
            elif bound != fact_arg:
                return None
        elif pat_arg != fact_arg:
            return None
    return result


def _check_safe(clause: HornClause) -> None:
    """Safe datalog: every head variable must occur in the body."""
    body_vars = {
        arg for atom in clause.body for arg in atom[1:] if is_variable(arg)
    }
    for arg in clause.head[1:]:
        if is_variable(arg) and arg not in body_vars:
            raise InferenceError(
                f"unsafe clause: head variable {arg!r} not bound by body "
                f"in {clause}"
            )


@dataclass(frozen=True, slots=True)
class Derivation:
    """Why a fact holds: the clause used and the body facts consumed."""

    clause: HornClause
    premises: tuple[Atom, ...]


class HornEngine:
    """Forward-chaining evaluation of Horn clauses over ground facts."""

    def __init__(self, *, strategy: str = "seminaive") -> None:
        if strategy not in ("seminaive", "naive"):
            raise InferenceError(f"unknown evaluation strategy {strategy!r}")
        self.strategy = strategy
        self._facts: set[Atom] = set()
        self._by_predicate: dict[str, set[Atom]] = defaultdict(set)
        self._clauses: list[HornClause] = []
        self._derivations: dict[Atom, Derivation] = {}
        self._saturated = False

    # ------------------------------------------------------------------
    # program construction
    # ------------------------------------------------------------------
    def add_fact(self, atom: Atom) -> bool:
        """Add a ground fact; returns False if it was already known."""
        if not is_ground(atom):
            raise InferenceError(f"facts must be ground: {atom!r}")
        if atom in self._facts:
            return False
        self._facts.add(atom)
        self._by_predicate[atom[0]].add(atom)
        self._saturated = False
        return True

    def add_facts(self, atoms: Iterable[Atom]) -> int:
        return sum(1 for atom in atoms if self.add_fact(atom))

    def add_clause(self, clause: HornClause) -> None:
        if not clause.body:
            # A bodiless clause is just a fact.
            self.add_fact(clause.head)
            return
        _check_safe(clause)
        self._clauses.append(clause)
        self._saturated = False

    def add_clauses(self, clauses: Iterable[HornClause]) -> None:
        for clause in clauses:
            self.add_clause(clause)

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------
    def saturate(self, *, max_rounds: int | None = None) -> int:
        """Run forward chaining to fixpoint; return new facts derived.

        ``max_rounds`` bounds the number of iterations (None = until
        fixpoint); datalog saturation always terminates because the
        Herbrand base over the finite constants is finite.
        """
        derived_total = 0
        if self.strategy == "seminaive":
            derived_total = self._saturate_seminaive(max_rounds)
        else:
            derived_total = self._saturate_naive(max_rounds)
        self._saturated = True
        return derived_total

    def _match_body(
        self,
        body: tuple[Atom, ...],
        binding: dict[str, str],
        index: int,
        *,
        required: tuple[int, set[Atom]] | None = None,
    ) -> Iterator[tuple[dict[str, str], tuple[Atom, ...]]]:
        """Enumerate bindings satisfying ``body[index:]``.

        ``required`` pins one body position to a restricted fact set —
        the semi-naive delta.  Yields ``(binding, premises)`` pairs.
        """
        if index == len(body):
            yield dict(binding), ()
            return
        pattern = substitute(body[index], binding)
        if required is not None and required[0] == index:
            pool: Iterable[Atom] = required[1]
        else:
            pool = self._by_predicate.get(pattern[0], ())
        for fact in pool:
            extended = unify_atom(pattern, fact, binding)
            if extended is None:
                continue
            for final, rest in self._match_body(
                body, extended, index + 1, required=required
            ):
                yield final, (fact,) + rest

    def _fire(
        self,
        clause: HornClause,
        *,
        required: tuple[int, set[Atom]] | None = None,
    ) -> list[Atom]:
        """All new head facts derivable from one clause right now."""
        new: list[Atom] = []
        # Materialize matches before inserting: insertion mutates the
        # per-predicate fact sets the body matcher is iterating over.
        matches = list(
            self._match_body(clause.body, {}, 0, required=required)
        )
        for binding, premises in matches:
            head = substitute(clause.head, binding)
            if head not in self._facts:
                new.append(head)
                self._facts.add(head)
                self._by_predicate[head[0]].add(head)
                self._derivations.setdefault(
                    head, Derivation(clause, premises)
                )
        return new

    def _saturate_naive(self, max_rounds: int | None) -> int:
        derived_total = 0
        rounds = 0
        while True:
            rounds += 1
            new_this_round = 0
            for clause in self._clauses:
                new_this_round += len(self._fire(clause))
            derived_total += new_this_round
            if new_this_round == 0:
                break
            if max_rounds is not None and rounds >= max_rounds:
                break
        return derived_total

    def _saturate_seminaive(self, max_rounds: int | None) -> int:
        # Round 0 treats every existing fact as the delta.
        delta: dict[str, set[Atom]] = {
            pred: set(facts) for pred, facts in self._by_predicate.items()
        }
        derived_total = 0
        rounds = 0
        while delta:
            rounds += 1
            new_facts: list[Atom] = []
            for clause in self._clauses:
                for index, atom in enumerate(clause.body):
                    pool = delta.get(atom[0])
                    if not pool:
                        continue
                    new_facts.extend(
                        self._fire(clause, required=(index, pool))
                    )
            derived_total += len(new_facts)
            if max_rounds is not None and rounds >= max_rounds:
                break
            delta = defaultdict(set)
            for fact in new_facts:
                delta[fact[0]].add(fact)
            delta = {p: s for p, s in delta.items() if s}
        return derived_total

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def holds(self, atom: Atom) -> bool:
        """Is this ground atom derivable?  Saturates lazily."""
        if not self._saturated:
            self.saturate()
        return atom in self._facts

    def query(self, pattern: Atom) -> list[dict[str, str]]:
        """All bindings of a (possibly non-ground) atom."""
        if not self._saturated:
            self.saturate()
        results: list[dict[str, str]] = []
        for fact in self._by_predicate.get(pattern[0], ()):
            binding = unify_atom(pattern, fact)
            if binding is not None:
                results.append(binding)
        return results

    def facts(self, predicate: str | None = None) -> set[Atom]:
        if not self._saturated:
            self.saturate()
        if predicate is None:
            return set(self._facts)
        return set(self._by_predicate.get(predicate, ()))

    def explain(self, atom: Atom) -> list[Atom]:
        """The base facts supporting ``atom`` (transitive premises).

        Base facts explain themselves as a singleton list.  Unknown
        atoms raise :class:`InferenceError`.
        """
        if not self._saturated:
            self.saturate()
        if atom not in self._facts:
            raise InferenceError(f"fact does not hold: {atom!r}")
        base: list[Atom] = []
        seen: set[Atom] = set()
        stack = [atom]
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            derivation = self._derivations.get(current)
            if derivation is None:
                base.append(current)
            else:
                stack.extend(derivation.premises)
        return base

    def __len__(self) -> int:
        return len(self._facts)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<HornEngine facts={len(self._facts)} "
            f"clauses={len(self._clauses)} strategy={self.strategy}>"
        )
