"""Goal-directed Horn evaluation by relevance slicing.

The ONION architecture promises "the ability to plug in different
semantic reasoning components and inference engines" (§6).  The
forward engine in :mod:`repro.inference.horn` saturates the *whole*
program — right when many queries will follow, wasteful when the
expert asks one subsumption question over a big unified graph whose
program mixes many predicates (``S``, ``A``, ``I``, ``SI``,
``SIBridge``, ``implies``, ``instance_of``, ...).

:class:`GoalDirectedEngine` is the second pluggable engine.  To answer
a goal it:

1. computes the set of predicates *relevant* to the goal — the
   backward closure of the goal's predicate over the clause dependency
   graph (a head depends on its body predicates);
2. saturates (semi-naive) only the clauses whose head is relevant,
   over only the facts of relevant predicates;
3. memoizes that slice, so later goals over the same predicate family
   are answered from the cache.

Slices are cheap to build: base facts live in one master
:class:`~repro.inference.horn.FactStore` whose argument-position
indexes every slice shares through a copy-free overlay (the slice adds
only its *derived* facts to a private layer), and compiled clause
plans are shared process-wide through the compilation cache — so
building a slice does no per-fact copying and no re-analysis of
clauses.

Because the slice is closed under the rules that can derive goal-
predicate facts, the answers equal full saturation restricted to the
goal predicate — the agreement property the test suite checks — while
untouched predicate families cost nothing.  The INFER benchmark
quantifies the saving on articulation-scale programs.
"""

from __future__ import annotations

from collections import defaultdict, deque
from collections.abc import Iterable

from repro.core.rules import HornClause
from repro.errors import InferenceError
from repro.inference.horn import Atom, FactStore, HornEngine, is_ground

__all__ = ["GoalDirectedEngine"]


class GoalDirectedEngine:
    """Answers goals by saturating only the relevant program slice."""

    def __init__(
        self,
        *,
        strategy: str = "seminaive",
        storage: str = "memory",
        storage_path: str | None = None,
        buffer_facts: int | None = None,
        workers: int = 1,
        retry_policy=None,
        fault_plan=None,
    ) -> None:
        self.strategy = strategy
        self.workers = workers
        # reliability knobs, threaded into every goal slice so a
        # parallel slice saturation rides the same hardened scheduler
        self.retry_policy = retry_policy
        self.fault_plan = fault_plan
        if storage == "paged":
            from repro.kb.pagestore import PagedFactStore

            kwargs: dict[str, int] = {}
            if buffer_facts is not None:
                kwargs["buffer_facts"] = buffer_facts
            # the master base store pages through SQLite; each goal
            # slice stays a copy-free in-memory overlay on top of it,
            # so slice saturation writes never touch the disk store
            self._store: FactStore = PagedFactStore(  # type: ignore[assignment]
                storage_path, **kwargs
            )
        elif storage == "memory":
            self._store = FactStore()  # master base facts, shared indexes
        else:
            raise InferenceError(f"unknown storage backend {storage!r}")
        self._clauses: list[HornClause] = []
        self._clause_set: set[HornClause] = set()
        # predicate -> predicates its derivation may depend on (direct)
        self._depends: dict[str, set[str]] = defaultdict(set)
        # memo: frozen relevant-predicate set -> saturated sub-engine
        self._slices: dict[frozenset[str], HornEngine] = {}
        self.last_slice_stats: dict[str, int] = {}

    # ------------------------------------------------------------------
    # program construction (mirrors HornEngine's API)
    # ------------------------------------------------------------------
    def add_fact(self, atom: Atom) -> bool:
        if not is_ground(atom):
            raise InferenceError(f"facts must be ground: {atom!r}")
        if not self._store.add(atom):
            return False
        self._slices.clear()
        return True

    def add_facts(self, atoms: Iterable[Atom]) -> int:
        return sum(1 for atom in atoms if self.add_fact(atom))

    def remove_fact(self, atom: Atom) -> bool:
        """Retract a base fact from the master store.

        Every memoized slice overlays the master store, so a shrink
        invalidates them all: the next goal rebuilds its slice against
        the surviving base facts — by construction equal to
        saturating the shrunk program from scratch.
        """
        if not self._store.remove(atom):
            return False
        self._slices.clear()
        return True

    def remove_facts(self, atoms: Iterable[Atom]) -> int:
        return sum(1 for atom in atoms if self.remove_fact(atom))

    def apply_batch(
        self, adds: Iterable[Atom] = (), retracts: Iterable[Atom] = ()
    ) -> dict[str, int]:
        """Batched fact churn: retractions first, then additions.

        Per-op :meth:`add_fact` / :meth:`remove_fact` each invalidate
        the memo, so interleaved churn rebuilds slices that the next
        edit throws away again; a batch pays one invalidation for the
        whole diff — and none at all when every edit was a no-op.
        Returns ``{"added", "retracted"}`` counts.
        """
        retracted = 0
        for atom in retracts:
            if not is_ground(atom):
                raise InferenceError(f"facts must be ground: {atom!r}")
            if self._store.remove(atom):
                retracted += 1
        added = 0
        for atom in adds:
            if not is_ground(atom):
                raise InferenceError(f"facts must be ground: {atom!r}")
            if self._store.add(atom):
                added += 1
        if added or retracted:
            self._slices.clear()
        return {"added": added, "retracted": retracted}

    def add_clause(self, clause: HornClause) -> None:
        if not clause.body:
            self.add_fact(clause.head)
            return
        if clause in self._clause_set:
            return  # duplicates only repeat work (HornEngine parity)
        self._clause_set.add(clause)
        self._clauses.append(clause)
        for atom in clause.body:
            self._depends[clause.head[0]].add(atom[0])
        self._slices.clear()

    def add_clauses(self, clauses: Iterable[HornClause]) -> None:
        for clause in clauses:
            self.add_clause(clause)

    def retract_clause(self, clause: HornClause) -> bool:
        """Remove a clause from the program (and invalidate slices)."""
        if not clause.body:
            return self.remove_fact(clause.head)
        if clause not in self._clause_set:
            return False
        self._clause_set.discard(clause)
        self._clauses.remove(clause)
        self._depends = defaultdict(set)
        for remaining in self._clauses:
            for atom in remaining.body:
                self._depends[remaining.head[0]].add(atom[0])
        self._slices.clear()
        return True

    # ------------------------------------------------------------------
    # relevance slicing
    # ------------------------------------------------------------------
    def relevant_predicates(self, goal_predicate: str) -> frozenset[str]:
        """Backward closure of the goal predicate over clause heads."""
        seen = {goal_predicate}
        frontier: deque[str] = deque([goal_predicate])
        while frontier:
            predicate = frontier.popleft()
            for dependency in self._depends.get(predicate, ()):
                if dependency not in seen:
                    seen.add(dependency)
                    frontier.append(dependency)
        return frozenset(seen)

    def _slice_for(self, goal_predicate: str) -> HornEngine:
        relevant = self.relevant_predicates(goal_predicate)
        cached = self._slices.get(relevant)
        if cached is not None:
            return cached
        # The slice overlays the master store: base facts and their
        # argument indexes are read in place, derived facts land in
        # the slice's private layer.  Compiled clause plans come from
        # the process-wide compilation cache.
        engine = HornEngine(
            strategy=self.strategy,
            workers=self.workers,
            retry_policy=self.retry_policy,
            fault_plan=self.fault_plan,
            store=FactStore(base=self._store, visible=relevant),
        )
        n_clauses = 0
        for clause in self._clauses:
            if clause.head[0] in relevant:
                engine.add_clause(clause)
                n_clauses += 1
        engine.saturate()
        self._slices[relevant] = engine
        self.last_slice_stats = {
            "predicates": len(relevant),
            "facts": sum(
                self._store.pool_size(pred) for pred in relevant
            ),
            "clauses": n_clauses,
            "total_facts": len(self._store),
            "total_clauses": len(self._clauses),
        }
        return engine

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def holds(self, atom: Atom) -> bool:
        if not is_ground(atom):
            raise InferenceError(
                f"holds() needs a ground atom, got {atom!r}; use query()"
            )
        return self._slice_for(atom[0]).holds(atom)

    def query(self, pattern: Atom) -> list[dict[str, str]]:
        return self._slice_for(pattern[0]).query(pattern)

    def facts(self, predicate: str) -> set[Atom]:
        """All derivable facts of one predicate (its slice's view)."""
        return self._slice_for(predicate).facts(predicate)

    def iter_facts(self, predicate: str):
        """Non-copying iterator over one predicate's derivable facts."""
        return self._slice_for(predicate).iter_facts(predicate)

    def explain(self, atom: Atom) -> list[Atom]:
        """Base facts supporting a derivable atom (delegated)."""
        return self._slice_for(atom[0]).explain(atom)

    def fact_count(self) -> int:
        return len(self._store)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<GoalDirectedEngine facts={self.fact_count()} "
            f"clauses={len(self._clauses)} slices={len(self._slices)}>"
        )
