"""IDL-style ontology specifications (paper §2.1: "We accept ontologies
based on IDL specifications").

A pragmatic subset of OMG IDL interface syntax, which is how
ODMG-flavored sources of the paper's era described their schemas::

    module carrier {
      interface Transportation {};
      interface Carrier : Transportation {};
      interface Cars : Carrier {
        attribute float price;
        attribute Person owner;
      };
      interface Person {};
    };

* ``module`` names the ontology (optional; one module per file);
* each ``interface`` becomes a term;
* inheritance (``: Base1, Base2``) becomes SubclassOf edges;
* each ``attribute <type> <name>;`` declares a term for the attribute
  name (capitalized) with an AttributeOf edge into the interface; when
  the attribute *type* names another interface, a ``typedAs`` edge
  records it.
"""

from __future__ import annotations

import re
from pathlib import Path

from repro.core.ontology import Ontology
from repro.errors import FormatError

__all__ = ["loads", "load", "dumps"]

_MODULE = re.compile(r"module\s+(?P<name>\w+)\s*\{", re.S)
_INTERFACE = re.compile(
    r"interface\s+(?P<name>\w+)\s*(?::\s*(?P<bases>[\w\s,]+?))?\s*"
    r"\{(?P<body>.*?)\}\s*;",
    re.S,
)
_ATTRIBUTE = re.compile(
    r"attribute\s+(?P<type>\w+)\s+(?P<name>\w+)\s*;"
)
_PRIMITIVES = frozenset(
    {
        "float",
        "double",
        "short",
        "long",
        "string",
        "boolean",
        "char",
        "octet",
        "any",
        "void",
        "unsigned",
    }
)


def _strip_comments(text: str) -> str:
    text = re.sub(r"//[^\n]*", "", text)
    return re.sub(r"/\*.*?\*/", "", text, flags=re.S)


def loads(text: str, *, name: str | None = None) -> Ontology:
    """Parse an IDL-subset specification into an ontology."""
    text = _strip_comments(text)
    module = _MODULE.search(text)
    onto = Ontology(name or (module.group("name") if module else "ontology"))

    interfaces = list(_INTERFACE.finditer(text))
    if not interfaces:
        raise FormatError("no interface declarations found")

    # First pass: declare every interface term so bases can be checked.
    declared: set[str] = set()
    for match in interfaces:
        interface = match.group("name")
        if interface in declared:
            raise FormatError(f"duplicate interface {interface!r}")
        declared.add(interface)
        onto.ensure_term(interface)

    for match in interfaces:
        interface = match.group("name")
        bases = match.group("bases")
        if bases:
            for base in (b.strip() for b in bases.split(",")):
                if not base:
                    continue
                if base not in declared:
                    raise FormatError(
                        f"interface {interface!r} inherits from undeclared "
                        f"{base!r}"
                    )
                onto.add_subclass(interface, base)
        for attr in _ATTRIBUTE.finditer(match.group("body")):
            attr_term = attr.group("name")[0].upper() + attr.group("name")[1:]
            onto.ensure_term(attr_term)
            if not onto.graph.has_edge(
                attr_term, onto.registry.code_for("AttributeOf"), interface
            ):
                onto.add_attribute(attr_term, interface)
            attr_type = attr.group("type")
            if attr_type not in _PRIMITIVES and attr_type in declared:
                onto.relate(attr_term, "typedAs", attr_type)
    return onto


def dumps(ontology: Ontology) -> str:
    """Serialize interfaces + inheritance + attributes back to IDL.

    Relationships outside the S/A vocabulary have no IDL counterpart
    and are emitted as comments so nothing is silently lost.
    """
    s_code = ontology.registry.code_for("SubclassOf")
    a_code = ontology.registry.code_for("AttributeOf")
    lines = [f"module {ontology.name} {{"]
    for term in sorted(ontology.terms()):
        bases = sorted(ontology.graph.successors(term, s_code))
        suffix = f" : {', '.join(bases)}" if bases else ""
        attrs = sorted(ontology.graph.predecessors(term, a_code))
        if attrs:
            lines.append(f"  interface {term}{suffix} {{")
            for attr in attrs:
                typed = sorted(ontology.graph.successors(attr, "typedAs"))
                attr_type = typed[0] if typed else "any"
                lines.append(
                    f"    attribute {attr_type} {attr[0].lower()}{attr[1:]};"
                )
            lines.append("  };")
        else:
            lines.append(f"  interface {term}{suffix} {{}};")
    for edge in sorted(
        ontology.graph.edges(), key=lambda e: (e.source, e.label, e.target)
    ):
        if edge.label not in (s_code, a_code, "typedAs"):
            lines.append(
                f"  // relationship: {edge.source} -{edge.label}-> "
                f"{edge.target}"
            )
    lines.append("};")
    return "\n".join(lines) + "\n"


def load(path: str | Path, *, name: str | None = None) -> Ontology:
    return loads(Path(path).read_text(), name=name)
