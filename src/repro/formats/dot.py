"""Graphviz DOT export — the viewer's drawing backend (paper §2.2).

The ONION viewer presents ontology graphs and articulations to the
expert.  :func:`ontology_to_dot` renders one ontology;
:func:`articulation_to_dot` renders the whole Fig. 2-style picture:
each source ontology in its own cluster, the articulation ontology in
the middle, bridges crossing between clusters (dashed, like the SI
edges in the paper's figure).
"""

from __future__ import annotations

from pathlib import Path

from repro.core.articulation import Articulation
from repro.core.ontology import Ontology, qualify, split_qualified

__all__ = ["ontology_to_dot", "articulation_to_dot", "write_dot"]

# Render the standard semantic relationships distinctly.
_EDGE_STYLE = {
    "S": 'color="black"',
    "A": 'color="gray40", arrowhead="open"',
    "I": 'color="gray40", style="dotted"',
    "SI": 'color="blue", style="dashed"',
    "SIBridge": 'color="blue", style="dashed"',
}


def _quote(identifier: str) -> str:
    escaped = identifier.replace("\\", "\\\\").replace('"', '\\"')
    return f'"{escaped}"'


def _edge_attrs(label: str) -> str:
    style = _EDGE_STYLE.get(label, 'color="gray25"')
    return f'[label={_quote(label)}, {style}]'


def ontology_to_dot(ontology: Ontology) -> str:
    """One ontology as a standalone digraph."""
    lines = [f"digraph {_quote(ontology.name)} {{"]
    lines.append('  rankdir="BT";')
    lines.append('  node [shape="box", fontsize=10];')
    for term in sorted(ontology.terms()):
        lines.append(f"  {_quote(term)};")
    for edge in sorted(
        ontology.graph.edges(), key=lambda e: (e.source, e.label, e.target)
    ):
        lines.append(
            f"  {_quote(edge.source)} -> {_quote(edge.target)} "
            f"{_edge_attrs(edge.label)};"
        )
    lines.append("}")
    return "\n".join(lines) + "\n"


def _cluster(name: str, ontology: Ontology, *, index: int) -> list[str]:
    lines = [f"  subgraph cluster_{index} {{"]
    lines.append(f"    label={_quote(name)};")
    lines.append('    style="rounded";')
    for term in sorted(ontology.terms()):
        node_id = qualify(name, term)
        lines.append(f"    {_quote(node_id)} [label={_quote(term)}];")
    for edge in sorted(
        ontology.graph.edges(), key=lambda e: (e.source, e.label, e.target)
    ):
        lines.append(
            f"    {_quote(qualify(name, edge.source))} -> "
            f"{_quote(qualify(name, edge.target))} {_edge_attrs(edge.label)};"
        )
    lines.append("  }")
    return lines


def articulation_to_dot(articulation: Articulation) -> str:
    """The full Fig. 2 picture: source clusters + articulation + bridges."""
    lines = ["digraph articulation {"]
    lines.append('  rankdir="BT";')
    lines.append('  node [shape="box", fontsize=10];')
    lines.append("  compound=true;")
    index = 0
    for name, source in sorted(articulation.sources.items()):
        lines.extend(_cluster(name, source, index=index))
        index += 1
    lines.extend(
        _cluster(articulation.name, articulation.ontology, index=index)
    )
    for edge in sorted(
        articulation.bridges, key=lambda e: (e.source, e.label, e.target)
    ):
        lines.append(
            f"  {_quote(edge.source)} -> {_quote(edge.target)} "
            f"{_edge_attrs(edge.label)};"
        )
    lines.append("}")
    return "\n".join(lines) + "\n"


def write_dot(target: Ontology | Articulation, path: str | Path) -> None:
    """Render either an ontology or a whole articulation to a .dot file."""
    if isinstance(target, Articulation):
        text = articulation_to_dot(target)
    else:
        text = ontology_to_dot(target)
    Path(path).write_text(text)
