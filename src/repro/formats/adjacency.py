"""Adjacency-list text format (paper §2.1: "simple adjacency list
representations" are one of the accepted ontology inputs).

Line syntax::

    ontology <name>            # header, optional (defaults to "ontology")
    term <Term>                # declare a bare term
    <Source> -<Label>-> <Target>   # a relationship (declares terms too)
    # comment

Example::

    ontology carrier
    Car -S-> Cars
    Price -A-> Cars
    MyCar -I-> Cars
    Car -drivenBy-> Driver
"""

from __future__ import annotations

import re
from pathlib import Path

from repro.core.ontology import Ontology
from repro.errors import FormatError

__all__ = ["loads", "dumps", "load", "dump"]

_HEADER = re.compile(r"^ontology\s+(?P<name>\S+)\s*$")
_TERM = re.compile(r"^term\s+(?P<term>\S+)\s*$")
_EDGE = re.compile(
    r"^(?P<source>\S+)\s+-(?P<label>[^-><\s][^>]*?)->\s+(?P<target>\S+)\s*$"
)


def loads(text: str, *, name: str | None = None) -> Ontology:
    """Parse the adjacency-list format into an ontology.

    ``name`` overrides any ``ontology`` header line.
    """
    resolved_name = name
    pending: list[tuple[int, str]] = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        header = _HEADER.match(line)
        if header:
            if pending:
                raise FormatError(
                    f"line {lineno}: ontology header must come first"
                )
            if resolved_name is None:
                resolved_name = header.group("name")
            continue
        pending.append((lineno, line))

    onto = Ontology(resolved_name or "ontology")
    for lineno, line in pending:
        term_match = _TERM.match(line)
        if term_match:
            onto.ensure_term(term_match.group("term"))
            continue
        edge_match = _EDGE.match(line)
        if edge_match:
            source = edge_match.group("source")
            target = edge_match.group("target")
            label = edge_match.group("label").strip()
            onto.ensure_term(source)
            onto.ensure_term(target)
            onto.relate(source, label, target)
            continue
        raise FormatError(f"line {lineno}: cannot parse {line!r}")
    return onto


def dumps(ontology: Ontology) -> str:
    """Serialize an ontology to the adjacency-list format.

    Isolated terms get explicit ``term`` lines so round-trips are exact.
    """
    lines = [f"ontology {ontology.name}"]
    connected: set[str] = set()
    edges = sorted(
        ontology.graph.edges(), key=lambda e: (e.source, e.label, e.target)
    )
    for edge in edges:
        connected.add(edge.source)
        connected.add(edge.target)
    for term in sorted(ontology.terms()):
        if term not in connected:
            lines.append(f"term {term}")
    for edge in edges:
        lines.append(f"{edge.source} -{edge.label}-> {edge.target}")
    return "\n".join(lines) + "\n"


def load(path: str | Path, *, name: str | None = None) -> Ontology:
    return loads(Path(path).read_text(), name=name)


def dump(ontology: Ontology, path: str | Path) -> None:
    Path(path).write_text(dumps(ontology))
