"""XML ontology documents (paper §1, §2.1: "We accept ontologies based
on IDL specifications and XML-based documents").

Two XML shapes are accepted:

1. the library's own flat interchange form::

       <ontology name="carrier">
         <term name="Car"/>
         <relationship source="Car" label="S" target="Cars"/>
       </ontology>

2. a *nested document* form, where element nesting expresses
   AttributeOf structure — the way a plain XML export of a domain
   document carries implicit ontology, which §1 argues XML alone cannot
   disambiguate::

       <carrier>
         <Cars>
           <Car><Price/></Car>
         </Cars>
       </carrier>

   Child elements become ``SubclassOf`` edges by default; set
   ``nested_relation="AttributeOf"`` (or any label) to change that.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from pathlib import Path

from repro.core.ontology import Ontology
from repro.core.relations import SUBCLASS_OF
from repro.errors import FormatError

__all__ = ["loads", "dumps", "load", "dump", "loads_nested"]


def loads(text: str, *, name: str | None = None) -> Ontology:
    """Parse the flat ``<ontology>`` interchange form."""
    try:
        root = ET.fromstring(text)
    except ET.ParseError as exc:
        raise FormatError(f"malformed XML: {exc}") from exc
    if root.tag != "ontology":
        raise FormatError(
            f"expected <ontology> root element, found <{root.tag}>"
        )
    onto = Ontology(name or root.attrib.get("name", "ontology"))
    for element in root:
        if element.tag == "term":
            term = element.attrib.get("name")
            if not term:
                raise FormatError("<term> element missing name attribute")
            onto.ensure_term(term)
        elif element.tag == "relationship":
            missing = [
                key
                for key in ("source", "label", "target")
                if key not in element.attrib
            ]
            if missing:
                raise FormatError(
                    f"<relationship> missing attribute(s): {missing}"
                )
            source = element.attrib["source"]
            target = element.attrib["target"]
            onto.ensure_term(source)
            onto.ensure_term(target)
            onto.relate(source, element.attrib["label"], target)
        else:
            raise FormatError(f"unexpected element <{element.tag}>")
    return onto


def loads_nested(
    text: str,
    *,
    name: str | None = None,
    nested_relation: str = SUBCLASS_OF.name,
) -> Ontology:
    """Parse a nested XML document, deriving structure from nesting.

    The root element names the ontology; each child element becomes a
    term related to its parent element's term via ``nested_relation``.
    Repeated elements with the same tag merge into one term (consistent
    vocabulary).
    """
    try:
        root = ET.fromstring(text)
    except ET.ParseError as exc:
        raise FormatError(f"malformed XML: {exc}") from exc
    onto = Ontology(name or root.tag)

    def walk(element: ET.Element, parent_term: str | None) -> None:
        term = element.tag
        onto.ensure_term(term)
        if parent_term is not None:
            if not onto.graph.has_edge(
                term, onto.registry.code_for(nested_relation), parent_term
            ):
                onto.relate(term, nested_relation, parent_term)
        for child in element:
            walk(child, term)

    for child in root:
        walk(child, None)
    return onto


def dumps(ontology: Ontology) -> str:
    """Serialize to the flat interchange form (round-trips exactly)."""
    root = ET.Element("ontology", {"name": ontology.name})
    for term in sorted(ontology.terms()):
        ET.SubElement(root, "term", {"name": term})
    for edge in sorted(
        ontology.graph.edges(), key=lambda e: (e.source, e.label, e.target)
    ):
        ET.SubElement(
            root,
            "relationship",
            {"source": edge.source, "label": edge.label, "target": edge.target},
        )
    ET.indent(root)
    return ET.tostring(root, encoding="unicode") + "\n"


def load(path: str | Path, *, name: str | None = None) -> Ontology:
    return loads(Path(path).read_text(), name=name)


def dump(ontology: Ontology, path: str | Path) -> None:
    Path(path).write_text(dumps(ontology))
