"""RDF-style triple format.

The paper cites the RDF model-and-syntax spec [4] as the direction the
web was taking for explicit semantic context.  This module reads and
writes a line-oriented N-Triples-like form over the library's
vocabulary::

    <carrier:Car> <S> <carrier:Cars> .
    <carrier:Price> <A> <carrier:Cars> .

Subjects/objects are ``ontology:term`` qualified names; predicates are
edge labels (relation codes or free verbs).  :func:`loads` accepts
triples for one ontology and checks the qualifier is uniform;
:func:`loads_graph` reads a mixed-namespace triple set into a raw
labeled graph (useful for unified-graph snapshots).
"""

from __future__ import annotations

import re
from pathlib import Path

from repro.core.graph import LabeledGraph
from repro.core.ontology import Ontology, split_qualified
from repro.errors import FormatError

__all__ = ["loads", "dumps", "load", "dump", "loads_graph", "dumps_graph"]

_TRIPLE = re.compile(
    r"^<(?P<subject>[^<>]+)>\s+<(?P<predicate>[^<>]+)>\s+"
    r"<(?P<object>[^<>]+)>\s*\.\s*$"
)


def _parse_triples(text: str) -> list[tuple[str, str, str]]:
    triples: list[tuple[str, str, str]] = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        match = _TRIPLE.match(line)
        if not match:
            raise FormatError(f"line {lineno}: cannot parse triple {line!r}")
        triples.append(
            (
                match.group("subject"),
                match.group("predicate"),
                match.group("object"),
            )
        )
    return triples


def loads(text: str, *, name: str | None = None) -> Ontology:
    """Read triples into one ontology.

    All subjects and objects must share one namespace qualifier (or
    carry none, in which case ``name`` must be given).
    """
    triples = _parse_triples(text)
    namespaces = set()
    for subject, _, obj in triples:
        for entity in (subject, obj):
            namespace, _term = split_qualified(entity)
            if namespace is not None:
                namespaces.add(namespace)
    if len(namespaces) > 1:
        raise FormatError(
            f"triples span multiple namespaces {sorted(namespaces)}; "
            "use loads_graph for mixed-namespace data"
        )
    inferred = next(iter(namespaces)) if namespaces else None
    onto = Ontology(name or inferred or "ontology")

    def local(entity: str) -> str:
        namespace, term = split_qualified(entity)
        return term if namespace is not None else entity

    for subject, predicate, obj in triples:
        onto.ensure_term(local(subject))
        onto.ensure_term(local(obj))
        onto.relate(local(subject), predicate, local(obj))
    return onto


def loads_graph(text: str) -> LabeledGraph:
    """Read a mixed-namespace triple set as a raw labeled graph."""
    graph = LabeledGraph()
    for subject, predicate, obj in _parse_triples(text):
        for entity in (subject, obj):
            if not graph.has_node(entity):
                _namespace, term = split_qualified(entity)
                graph.add_node(entity, term)
        graph.add_edge(subject, predicate, obj)
    return graph


def dumps(ontology: Ontology, *, qualified: bool = True) -> str:
    """Serialize an ontology's relationships as triples.

    Isolated terms are emitted as comment lines; triples cannot carry
    them, and silently dropping terms would break round-trips.
    """
    prefix = f"{ontology.name}:" if qualified else ""
    lines = []
    connected: set[str] = set()
    for edge in sorted(
        ontology.graph.edges(), key=lambda e: (e.source, e.label, e.target)
    ):
        connected.add(edge.source)
        connected.add(edge.target)
        lines.append(
            f"<{prefix}{edge.source}> <{edge.label}> <{prefix}{edge.target}> ."
        )
    isolated = sorted(set(ontology.terms()) - connected)
    header = [f"# isolated-term: {prefix}{term}" for term in isolated]
    return "\n".join(header + lines) + "\n"


def dumps_graph(graph: LabeledGraph) -> str:
    lines = [
        f"<{edge.source}> <{edge.label}> <{edge.target}> ."
        for edge in sorted(
            graph.edges(), key=lambda e: (e.source, e.label, e.target)
        )
    ]
    return "\n".join(lines) + "\n"


def load(path: str | Path, *, name: str | None = None) -> Ontology:
    return loads(Path(path).read_text(), name=name)


def dump(ontology: Ontology, path: str | Path, *, qualified: bool = True) -> None:
    Path(path).write_text(dumps(ontology, qualified=qualified))
