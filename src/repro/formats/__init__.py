"""Wrappers for external ontology representations (paper §2.1):
adjacency lists, XML documents, IDL specifications, RDF-style triples,
and Graphviz DOT export for the viewer."""

from repro.formats import adjacency, dot, idl, rdf, xmlfmt
from repro.formats.dot import articulation_to_dot, ontology_to_dot, write_dot

__all__ = [
    "adjacency",
    "articulation_to_dot",
    "dot",
    "idl",
    "ontology_to_dot",
    "rdf",
    "write_dot",
    "xmlfmt",
]
