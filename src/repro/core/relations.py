"""Semantic relationship vocabulary and per-relationship property rules.

The paper's running example (§2.5) models the relationships
``SubclassOf``, ``AttributeOf``, ``InstanceOf`` and
``SemanticImplication`` with edge labels ``S``, ``A``, ``I`` and ``SI``,
and notes that *"the ontologies are expected to have rules that define
the properties of each relationship, e.g. ... the transitive nature of
the SubclassOf relationship. These rules are used by the articulation
generator and the inference engine"*.

:class:`RelationType` captures one relationship together with its
logical properties; :class:`RelationRegistry` is the rule book an
ontology carries around and hands to the inference engine.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from dataclasses import dataclass, field

from repro.errors import OntologyError

__all__ = [
    "RelationType",
    "RelationRegistry",
    "SUBCLASS_OF",
    "ATTRIBUTE_OF",
    "INSTANCE_OF",
    "SEMANTIC_IMPLICATION",
    "SI_BRIDGE",
    "standard_registry",
]


@dataclass(frozen=True, slots=True)
class RelationType:
    """One semantic relationship and its logical properties.

    ``name`` is the long form used in prose ("SubclassOf"); ``code`` is
    the edge label actually stored on graph edges ("S"), matching the
    paper's figures.  The boolean properties become Horn axioms in the
    inference engine:

    * ``transitive``  — ``r(x,y), r(y,z) -> r(x,z)``
    * ``symmetric``   — ``r(x,y) -> r(y,x)``
    * ``reflexive``   — ``r(x,x)`` for every node
    * ``implies``     — ``r(x,y) -> r'(x,y)`` for each named relation
    """

    name: str
    code: str
    transitive: bool = False
    symmetric: bool = False
    reflexive: bool = False
    implies: tuple[str, ...] = ()
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name or not self.code:
            raise OntologyError("relation name and code must be non-empty")


# The paper's standard relationship vocabulary (§2.5, §4.1).
SUBCLASS_OF = RelationType(
    "SubclassOf",
    "S",
    transitive=True,
    description="class specialization; transitive (paper §2.5)",
)
ATTRIBUTE_OF = RelationType(
    "AttributeOf",
    "A",
    description="property/attribute attachment",
)
INSTANCE_OF = RelationType(
    "InstanceOf",
    "I",
    description="object membership in a class",
)
SEMANTIC_IMPLICATION = RelationType(
    "SemanticImplication",
    "SI",
    transitive=True,
    description="P semantically implies Q / directed subset (paper §4.1)",
)
# Bridge edges produced by the articulation generator.  They carry the
# same directed-subset semantics as SI but are kept distinguishable so
# the algebra can separate articulation structure from source structure.
SI_BRIDGE = RelationType(
    "SIBridge",
    "SIBridge",
    transitive=False,
    implies=("SemanticImplication",),
    description="semantic bridge between a source ontology and an articulation",
)


class RelationRegistry:
    """The set of relationship types an ontology understands.

    Lookup works by long name *or* by edge code.  Unknown edge labels
    are allowed on graphs (the paper permits arbitrary verb-labeled
    relationships); the registry only governs relationships that have
    declared logical properties.
    """

    def __init__(self, relations: Iterable[RelationType] = ()) -> None:
        self._by_name: dict[str, RelationType] = {}
        self._by_code: dict[str, RelationType] = {}
        for relation in relations:
            self.register(relation)

    def register(self, relation: RelationType) -> RelationType:
        existing = self._by_name.get(relation.name)
        if existing is not None and existing != relation:
            raise OntologyError(
                f"relation {relation.name!r} already registered with "
                "different properties"
            )
        clashing = self._by_code.get(relation.code)
        if clashing is not None and clashing.name != relation.name:
            raise OntologyError(
                f"edge code {relation.code!r} already used by "
                f"{clashing.name!r}"
            )
        self._by_name[relation.name] = relation
        self._by_code[relation.code] = relation
        return relation

    def get(self, name_or_code: str) -> RelationType | None:
        """Resolve by long name first, then by edge code."""
        return self._by_name.get(name_or_code) or self._by_code.get(name_or_code)

    def require(self, name_or_code: str) -> RelationType:
        relation = self.get(name_or_code)
        if relation is None:
            raise OntologyError(f"unknown relation: {name_or_code!r}")
        return relation

    def code_for(self, name_or_code: str) -> str:
        """Normalize a relation reference to the stored edge code."""
        return self.require(name_or_code).code

    def __contains__(self, name_or_code: str) -> bool:
        return self.get(name_or_code) is not None

    def __iter__(self) -> Iterator[RelationType]:
        return iter(self._by_name.values())

    def __len__(self) -> int:
        return len(self._by_name)

    def transitive_codes(self) -> set[str]:
        return {r.code for r in self._by_name.values() if r.transitive}

    def symmetric_codes(self) -> set[str]:
        return {r.code for r in self._by_name.values() if r.symmetric}

    def copy(self) -> "RelationRegistry":
        return RelationRegistry(self._by_name.values())

    def merged_with(self, other: "RelationRegistry") -> "RelationRegistry":
        """A registry understanding both vocabularies.

        Raises :class:`OntologyError` when the two registries give the
        same relationship name conflicting properties — that is a real
        semantic mismatch an expert must resolve, not something to
        silently pick a winner for.
        """
        merged = self.copy()
        for relation in other:
            merged.register(relation)
        return merged


def standard_registry() -> RelationRegistry:
    """The paper's default relationship vocabulary."""
    return RelationRegistry(
        [
            SUBCLASS_OF,
            ATTRIBUTE_OF,
            INSTANCE_OF,
            SEMANTIC_IMPLICATION,
            SI_BRIDGE,
        ]
    )
