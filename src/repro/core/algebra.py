"""The ontology algebra (paper §5).

Unary operators — ``filter`` and ``extract`` — are the select/project
analogues: given an ontology and a graph pattern they return portions
of the ontology graph.  Binary operators — ``union``, ``intersection``
and ``difference`` — are defined over two ontologies *and* a set of
articulation rules, and return an ontology that can be composed
further.  The operator outputs:

* ``union``        — both source graphs + the articulation ontology +
  the bridge edges (computed virtually, §5.1);
* ``intersection`` — the articulation ontology alone, with edges into
  the sources pruned so the result is self-contained (§5.2);
* ``difference``   — the part of the first ontology not determined to
  exist in the second (§5.3), using the reachability semantics of the
  paper's Car/Vehicle worked example.

The paper's formal difference definition and its worked example differ
slightly: the definition keeps ``n`` iff there is *no path from n to
N2*; the example additionally removes nodes that become unreachable
except through deleted nodes ("all nodes that can be reached by a path
from Car, but not by a path from any other node").  We implement the
worked-example semantics as ``strategy="conservative"`` (default) and
the bare formal rule as ``strategy="formal"``; the maintenance
benchmark ablates the two.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.core.articulation import Articulation, ArticulationGenerator
from repro.core.graph import LabeledGraph
from repro.core.ontology import Ontology, qualify, split_qualified
from repro.core.patterns import MatchConfig, Pattern, find_matches
from repro.core.rules import ArticulationRuleSet
from repro.core.unified import UnifiedOntology
from repro.errors import AlgebraError

__all__ = [
    "filter_ontology",
    "extract_ontology",
    "union",
    "intersection",
    "difference",
    "compose",
]


# ----------------------------------------------------------------------
# unary operators
# ----------------------------------------------------------------------
def _matched_terms(
    ontology: Ontology, pattern: Pattern, config: MatchConfig | None
) -> set[str]:
    if pattern.ontology is not None and pattern.ontology != ontology.name:
        raise AlgebraError(
            f"pattern is scoped to ontology {pattern.ontology!r}, "
            f"got {ontology.name!r}"
        )
    matched: set[str] = set()
    for binding in find_matches(pattern, ontology.graph, config):
        matched |= binding.matched_nodes()
    return matched


def filter_ontology(
    ontology: Ontology,
    pattern: Pattern,
    *,
    config: MatchConfig | None = None,
    name: str | None = None,
) -> Ontology:
    """Select: the sub-ontology induced by the nodes of every match.

    Analogous to relational *select* — only the matched terms and the
    relationships among them survive.
    """
    matched = _matched_terms(ontology, pattern, config)
    return ontology.subontology(matched, name or f"{ontology.name}_filtered")


def extract_ontology(
    ontology: Ontology,
    pattern: Pattern,
    *,
    config: MatchConfig | None = None,
    name: str | None = None,
) -> Ontology:
    """Project: matched nodes plus everything reachable from them.

    Analogous to relational *project* — it carves out the full region
    of the ontology rooted at the matched terms, so the result carries
    enough context (superclasses, attribute targets) to stand alone.
    """
    matched = _matched_terms(ontology, pattern, config)
    if not matched:
        return ontology.subontology((), name or f"{ontology.name}_extract")
    region = ontology.graph.reachable_from(matched)
    return ontology.subontology(region, name or f"{ontology.name}_extract")


# ----------------------------------------------------------------------
# binary operators
# ----------------------------------------------------------------------
def _articulate(
    o1: Ontology,
    o2: Ontology,
    rules: ArticulationRuleSet | Articulation,
    name: str,
) -> Articulation:
    """Accept either rules (generate now) or a pre-built articulation."""
    if isinstance(rules, Articulation):
        return rules
    generator = ArticulationGenerator([o1, o2], name=name)
    return generator.generate(rules)


def union(
    o1: Ontology,
    o2: Ontology,
    rules: ArticulationRuleSet | Articulation,
    *,
    name: str = "articulation",
) -> UnifiedOntology:
    """§5.1: ``O1 union_rules O2`` — the unified ontology.

    ``N = N1 + N2 + NA``, ``E = E1 + E2 + EA + BridgeEdges``.  The
    result is virtual: a :class:`UnifiedOntology` referencing the
    sources and the stored articulation, materialized on demand.
    """
    articulation = _articulate(o1, o2, rules, name)
    return UnifiedOntology(articulation)


def intersection(
    o1: Ontology,
    o2: Ontology,
    rules: ArticulationRuleSet | Articulation,
    *,
    name: str = "articulation",
) -> Ontology:
    """§5.2: ``O1 intersect_rules O2`` — the articulation ontology.

    Edges between articulation nodes and source nodes are *not*
    included (their far endpoints are outside the result), which is
    exactly why the intersection "produces an ontology that can be
    further composed with other ontologies".
    """
    articulation = _articulate(o1, o2, rules, name)
    return articulation.ontology.copy()


def difference(
    o1: Ontology,
    o2: Ontology,
    rules: ArticulationRuleSet | Articulation,
    *,
    name: str | None = None,
    strategy: str = "conservative",
    articulation_name: str = "articulation",
) -> Ontology:
    """§5.3: ``O1 - O2`` — what remains independent of the articulation.

    A term of ``O1`` is *determined to exist in* ``O2`` when the
    unified graph contains a directed path over implication-carrying
    edges (SubclassOf, InstanceOf, SemanticImplication, bridges) from
    it into ``O2``'s namespace — that is how ``carrier:Car`` dies from
    ``carrier - factory`` while ``factory:Vehicle`` survives
    ``factory - carrier``.

    ``strategy="conservative"`` (default, the worked example) also
    drops nodes that are reachable (over any edges) from a deleted
    node but not from any surviving anchor; ``strategy="formal"``
    keeps every unmatched node.
    """
    if strategy not in ("conservative", "formal"):
        raise AlgebraError(f"unknown difference strategy {strategy!r}")
    articulation = _articulate(o1, o2, rules, articulation_name)
    unified = articulation.unified_graph()  # cached on the articulation

    # "Determined to exist in the second": a directed path over
    # implication-carrying edges (local SubclassOf / InstanceOf, SI,
    # bridges) from the O1 term into O2's namespace.  Attribute and
    # free verb edges do not carry subsumption, so they do not count —
    # otherwise every attribute of a matched class would be dragged out
    # with it.
    implication_labels = {
        o1.registry.code_for("SubclassOf"),
        o1.registry.code_for("InstanceOf"),
        o1.registry.code_for("SemanticImplication"),
        o1.registry.code_for("SIBridge"),
    }
    o2_nodes = {
        node for node in unified.nodes() if node.startswith(f"{o2.name}:")
    }

    # One reverse BFS from O2's namespace replaces a forward BFS per O1
    # term: a term reaches O2 iff it lies in the set that reaches O2.
    reaches_o2: set[str] = (
        unified.reachable_from(
            o2_nodes, labels=implication_labels, reverse=True
        )
        if o2_nodes
        else set()
    )
    deleted = {
        term
        for term in o1.terms()
        if qualify(o1.name, term) in reaches_o2
    }

    kept = {term for term in o1.terms() if term not in deleted}

    if strategy == "conservative" and deleted:
        # The worked example's second clause: also delete "all nodes
        # that can be reached by a path from Car, but not by a path
        # from any other node".  Candidates are the nodes downstream
        # (any edge label) of a deleted node; they survive only if an
        # *anchor* — a node that is neither deleted nor itself a
        # candidate — still reaches them once the deleted nodes are
        # gone.
        candidates = o1.graph.reachable_from(deleted) - deleted
        anchors = kept - candidates
        remaining = o1.graph.subgraph(kept)
        if anchors:
            survivors = remaining.reachable_from(anchors)
        else:
            survivors = set()
        kept = anchors | (candidates & survivors)

    result_name = name or f"{o1.name}_minus_{o2.name}"
    return o1.subontology(kept, result_name)


def compose(
    articulation: Articulation,
    new_source: Ontology,
    rules: ArticulationRuleSet,
    *,
    name: str = "articulation2",
) -> Articulation:
    """§4.2: articulate an existing articulation with a further source.

    "The articulation ontology of two ontologies can be composed with
    another source ontology to create a second articulation that spans
    over all three source ontologies."  The first articulation ontology
    acts as an ordinary source here — no restructuring of existing
    ontologies or articulations is needed.
    """
    if new_source.name == articulation.name:
        raise AlgebraError(
            f"new source name {new_source.name!r} collides with the "
            "existing articulation"
        )
    generator = ArticulationGenerator(
        [articulation.ontology, new_source], name=name
    )
    return generator.generate(rules)
