"""Core data layer: the graph-oriented ontology model, articulation
generator and ontology algebra (paper §§3-5)."""

from repro.core.algebra import (
    compose,
    difference,
    extract_ontology,
    filter_ontology,
    intersection,
    union,
)
from repro.core.articulation import Articulation, ArticulationGenerator
from repro.core.graph import Edge, LabeledGraph
from repro.core.maintenance import ArticulationMaintainer, MaintenanceReport
from repro.core.ontology import Ontology, qualify, split_qualified
from repro.core.pattern_parser import parse_pattern
from repro.core.patterns import (
    Binding,
    MatchConfig,
    Pattern,
    find_matches,
    first_match,
    matches,
)
from repro.core.relations import (
    ATTRIBUTE_OF,
    INSTANCE_OF,
    SEMANTIC_IMPLICATION,
    SI_BRIDGE,
    SUBCLASS_OF,
    RelationRegistry,
    RelationType,
    standard_registry,
)
from repro.core.rules import (
    AndOperand,
    ArticulationRuleSet,
    FunctionalRule,
    HornClause,
    ImplicationRule,
    OrOperand,
    TermOperand,
    TermRef,
    parse_rule,
    parse_rules,
)
from repro.core.transform import (
    EdgeAddition,
    EdgeDeletion,
    NodeAddition,
    NodeDeletion,
    TransformLog,
    apply_all,
)
from repro.core.unified import UnifiedOntology

__all__ = [
    "Articulation",
    "ArticulationGenerator",
    "ArticulationMaintainer",
    "MaintenanceReport",
    "ArticulationRuleSet",
    "AndOperand",
    "ATTRIBUTE_OF",
    "Binding",
    "Edge",
    "EdgeAddition",
    "EdgeDeletion",
    "FunctionalRule",
    "HornClause",
    "ImplicationRule",
    "INSTANCE_OF",
    "LabeledGraph",
    "MatchConfig",
    "NodeAddition",
    "NodeDeletion",
    "Ontology",
    "OrOperand",
    "Pattern",
    "RelationRegistry",
    "RelationType",
    "SEMANTIC_IMPLICATION",
    "SI_BRIDGE",
    "SUBCLASS_OF",
    "TermOperand",
    "TermRef",
    "TransformLog",
    "UnifiedOntology",
    "apply_all",
    "compose",
    "difference",
    "extract_ontology",
    "filter_ontology",
    "find_matches",
    "first_match",
    "intersection",
    "matches",
    "parse_pattern",
    "parse_rule",
    "parse_rules",
    "qualify",
    "split_qualified",
    "standard_registry",
    "union",
]
