"""Graph patterns and pattern matching (paper §3).

A pattern is itself a small graph.  The paper's strict matching rule is
a label-preserving graph homomorphism: pattern graph ``G1`` matches
into ``G2`` iff there is a total mapping ``f`` with

1. ``lambda1(n) = lambda2(f(n))`` for every pattern node ``n``, and
2. every pattern edge ``(n1, alpha, n2)`` has a counterpart
   ``(f(n1), alpha, f(n2))``.

On top of the strict rule the paper lets the domain expert relax both
conditions ("fuzzy matching"): nodes may match through a synonym set,
and edge labels may be ignored.  :class:`MatchConfig` carries those
expert choices; :func:`find_matches` implements the backtracking
search.  Pattern nodes may also be *variables* (unlabeled), which bind
to any graph node — the textual form ``truck(O: owner, model)`` from
the paper binds ``O`` this way.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Iterator, Mapping
from dataclasses import dataclass, field

from repro.core.graph import LabeledGraph
from repro.errors import PatternError

__all__ = [
    "PatternNode",
    "PatternEdge",
    "Pattern",
    "MatchConfig",
    "Binding",
    "find_matches",
    "matches",
    "first_match",
]

# Edge label wildcard inside patterns: matches any edge label.
ANY_LABEL = "*"


@dataclass(frozen=True, slots=True)
class PatternNode:
    """One node of a pattern.

    ``label`` is the term the node must match; ``None`` makes the node
    a wildcard.  ``variable`` names the binding this node produces in
    match results (wildcards usually carry a variable; labeled nodes
    may too).
    """

    node_id: str
    label: str | None = None
    variable: str | None = None

    @property
    def is_wildcard(self) -> bool:
        return self.label is None


@dataclass(frozen=True, slots=True)
class PatternEdge:
    """One edge of a pattern; label ``*`` matches any edge label."""

    source: str
    label: str
    target: str


@dataclass(frozen=True, slots=True)
class Binding:
    """One successful match: pattern node id -> graph node id.

    ``variables`` projects the mapping down to the named variables, the
    part queries and rules consume.
    """

    mapping: Mapping[str, str]
    variables: Mapping[str, str]

    def __getitem__(self, pattern_node_id: str) -> str:
        return self.mapping[pattern_node_id]

    def var(self, name: str) -> str:
        return self.variables[name]

    def matched_nodes(self) -> frozenset[str]:
        """The set of graph nodes touched by this match."""
        return frozenset(self.mapping.values())


class Pattern:
    """A pattern graph with optional ontology scope and variables.

    ``ontology`` restricts the pattern to one source (the leading
    ``carrier:`` in the paper's textual notation); ``None`` means the
    pattern applies to whatever graph it is matched against.
    """

    def __init__(self, ontology: str | None = None) -> None:
        self.ontology = ontology
        self._nodes: dict[str, PatternNode] = {}
        self._edges: list[PatternEdge] = []

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_node(
        self,
        node_id: str,
        label: str | None = None,
        variable: str | None = None,
    ) -> PatternNode:
        if node_id in self._nodes:
            raise PatternError(f"duplicate pattern node id {node_id!r}")
        node = PatternNode(node_id, label, variable)
        self._nodes[node_id] = node
        return node

    def add_edge(self, source: str, label: str, target: str) -> PatternEdge:
        for endpoint in (source, target):
            if endpoint not in self._nodes:
                raise PatternError(f"pattern edge references unknown node "
                                   f"{endpoint!r}")
        if not label:
            raise PatternError("pattern edge label must be non-empty "
                               f"(use {ANY_LABEL!r} for a wildcard)")
        edge = PatternEdge(source, label, target)
        self._edges.append(edge)
        return edge

    @classmethod
    def single(cls, label: str, *, ontology: str | None = None) -> "Pattern":
        """A one-node pattern matching a single term."""
        pattern = cls(ontology)
        pattern.add_node("n0", label)
        return pattern

    @classmethod
    def path(
        cls,
        labels: Iterable[str],
        *,
        ontology: str | None = None,
        edge_label: str = ANY_LABEL,
    ) -> "Pattern":
        """A chain pattern ``l0 -> l1 -> ...`` (the ``a:b:c`` notation)."""
        pattern = cls(ontology)
        previous: str | None = None
        for index, label in enumerate(labels):
            node_id = f"n{index}"
            pattern.add_node(node_id, label)
            if previous is not None:
                pattern.add_edge(previous, edge_label, node_id)
            previous = node_id
        if previous is None:
            raise PatternError("path pattern needs at least one label")
        return pattern

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    def nodes(self) -> list[PatternNode]:
        return list(self._nodes.values())

    def node(self, node_id: str) -> PatternNode:
        try:
            return self._nodes[node_id]
        except KeyError:
            raise PatternError(f"no pattern node {node_id!r}") from None

    def edges(self) -> list[PatternEdge]:
        return list(self._edges)

    def variables(self) -> list[str]:
        return [n.variable for n in self._nodes.values() if n.variable]

    def node_labels(self) -> set[str]:
        return {n.label for n in self._nodes.values() if n.label is not None}

    def __len__(self) -> int:
        return len(self._nodes)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        scope = f" ontology={self.ontology!r}" if self.ontology else ""
        return f"<Pattern nodes={len(self._nodes)} edges={len(self._edges)}{scope}>"


@dataclass(frozen=True)
class MatchConfig:
    """Expert-tunable match semantics (paper §3, fuzzy matching).

    * ``synonyms`` — mapping from a term to its accepted alternatives;
      symmetric closure is applied, so one direction suffices.
    * ``case_insensitive`` — compare labels case-insensitively.
    * ``relax_edge_labels`` — drop condition 2's label equality: any
      edge in the right direction matches.
    * ``node_equiv`` / ``edge_equiv`` — escape hatches for arbitrary
      expert-supplied predicates; they run *in addition to* the rules
      above (a pair matches if any rule accepts it).
    * ``injective`` — require distinct pattern nodes to map to distinct
      graph nodes.  The paper's ``f`` is a plain total mapping, so this
      defaults to False.
    """

    synonyms: Mapping[str, frozenset[str]] = field(default_factory=dict)
    case_insensitive: bool = False
    relax_edge_labels: bool = False
    node_equiv: Callable[[str, str], bool] | None = None
    edge_equiv: Callable[[str, str], bool] | None = None
    injective: bool = False

    @classmethod
    def strict(cls) -> "MatchConfig":
        return cls()

    @classmethod
    def with_synonyms(cls, pairs: Iterable[tuple[str, str]]) -> "MatchConfig":
        """Build a config from symmetric synonym pairs."""
        table: dict[str, set[str]] = {}
        for a, b in pairs:
            table.setdefault(a, set()).add(b)
            table.setdefault(b, set()).add(a)
        frozen = {term: frozenset(alts) for term, alts in table.items()}
        return cls(synonyms=frozen)

    # -- label comparison ------------------------------------------------
    def node_labels_match(self, pattern_label: str, graph_label: str) -> bool:
        if pattern_label == graph_label:
            return True
        if self.case_insensitive and pattern_label.lower() == graph_label.lower():
            return True
        alts = self.synonyms.get(pattern_label)
        if alts is not None:
            if graph_label in alts:
                return True
            if self.case_insensitive and any(
                a.lower() == graph_label.lower() for a in alts
            ):
                return True
        if self.node_equiv is not None and self.node_equiv(
            pattern_label, graph_label
        ):
            return True
        return False

    def edge_labels_match(self, pattern_label: str, graph_label: str) -> bool:
        if pattern_label == ANY_LABEL or self.relax_edge_labels:
            return True
        if pattern_label == graph_label:
            return True
        if self.edge_equiv is not None and self.edge_equiv(
            pattern_label, graph_label
        ):
            return True
        return False


def _candidates(
    node: PatternNode, graph: LabeledGraph, config: MatchConfig
) -> list[str]:
    """Graph nodes that could satisfy condition 1 for ``node``."""
    if node.is_wildcard:
        return list(graph.nodes())
    assert node.label is not None
    # Fast path: exact label index.
    found = set(graph.nodes_with_label(node.label))
    needs_scan = bool(
        config.case_insensitive or config.synonyms or config.node_equiv
    )
    if needs_scan:
        for label in graph.labels():
            if label in found:
                continue
            if config.node_labels_match(node.label, label):
                found.update(graph.nodes_with_label(label))
    return list(found)


def find_matches(
    pattern: Pattern,
    graph: LabeledGraph,
    config: MatchConfig | None = None,
    *,
    limit: int | None = None,
) -> Iterator[Binding]:
    """All mappings of ``pattern`` into ``graph`` under ``config``.

    Backtracking search ordered most-constrained-first: labeled pattern
    nodes with the fewest candidates are assigned before wildcards, and
    every partial assignment is checked against the pattern edges whose
    endpoints are already bound.
    """
    config = config or MatchConfig.strict()
    nodes = pattern.nodes()
    if not nodes:
        raise PatternError("cannot match an empty pattern")

    candidate_sets = {
        n.node_id: _candidates(n, graph, config) for n in nodes
    }
    # Most constrained (fewest candidates, then most pattern edges) first.
    adjacency: dict[str, list[PatternEdge]] = {n.node_id: [] for n in nodes}
    for edge in pattern.edges():
        adjacency[edge.source].append(edge)
        adjacency[edge.target].append(edge)
    order = sorted(
        nodes,
        key=lambda n: (len(candidate_sets[n.node_id]), -len(adjacency[n.node_id])),
    )

    edges = pattern.edges()
    assignment: dict[str, str] = {}
    used: set[str] = set()
    emitted = 0

    def edge_ok(edge: PatternEdge) -> bool:
        src = assignment.get(edge.source)
        dst = assignment.get(edge.target)
        if src is None or dst is None:
            return True  # not yet checkable
        for graph_edge in graph.out_edges(src):
            if graph_edge.target == dst and config.edge_labels_match(
                edge.label, graph_edge.label
            ):
                return True
        return False

    def extend(depth: int) -> Iterator[Binding]:
        nonlocal emitted
        if depth == len(order):
            variables = {
                n.variable: assignment[n.node_id]
                for n in nodes
                if n.variable is not None
            }
            emitted += 1
            yield Binding(dict(assignment), variables)
            return
        pattern_node = order[depth]
        for candidate in candidate_sets[pattern_node.node_id]:
            if config.injective and candidate in used:
                continue
            assignment[pattern_node.node_id] = candidate
            used.add(candidate)
            if all(
                edge_ok(e)
                for e in adjacency[pattern_node.node_id]
            ):
                yield from extend(depth + 1)
                if limit is not None and emitted >= limit:
                    del assignment[pattern_node.node_id]
                    used.discard(candidate)
                    return
            del assignment[pattern_node.node_id]
            used.discard(candidate)

    yield from extend(0)


def matches(
    pattern: Pattern, graph: LabeledGraph, config: MatchConfig | None = None
) -> bool:
    """True iff the pattern matches into the graph at least once."""
    return first_match(pattern, graph, config) is not None


def first_match(
    pattern: Pattern, graph: LabeledGraph, config: MatchConfig | None = None
) -> Binding | None:
    for binding in find_matches(pattern, graph, config, limit=1):
        return binding
    return None
