"""Graph patterns and pattern matching (paper §3).

A pattern is itself a small graph.  The paper's strict matching rule is
a label-preserving graph homomorphism: pattern graph ``G1`` matches
into ``G2`` iff there is a total mapping ``f`` with

1. ``lambda1(n) = lambda2(f(n))`` for every pattern node ``n``, and
2. every pattern edge ``(n1, alpha, n2)`` has a counterpart
   ``(f(n1), alpha, f(n2))``.

On top of the strict rule the paper lets the domain expert relax both
conditions ("fuzzy matching"): nodes may match through a synonym set,
and edge labels may be ignored.  :class:`MatchConfig` carries those
expert choices; :func:`find_matches` implements the backtracking
search.  Pattern nodes may also be *variables* (unlabeled), which bind
to any graph node — the textual form ``truck(O: owner, model)`` from
the paper binds ``O`` this way.

Two execution strategies share one backtracking core:

* ``strategy="indexed"`` (default) resolves condition 1 through a
  :class:`MatchIndex` — a per-``(graph, MatchConfig)`` map from labels
  to candidate node sets with the case/synonym closure folded in at
  build time, cached on the graph and kept current under graph deltas
  by replaying the graph's bounded mutation journal in place (full
  rebuild only when the gap outruns the journal) — and compiles the
  pattern once per call
  (:func:`compile_pattern`): nodes ordered by selectivity, each edge
  check lowered to an O(1) set or pair lookup.
* ``strategy="scan"`` is the original per-call label scan, preserved
  as the parity baseline the property suite and the benchmarks compare
  against.

Both strategies enumerate candidates in sorted order, so matches are
reproducible run-to-run and identical between strategies.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from collections.abc import Callable, Iterable, Iterator, Mapping
from dataclasses import dataclass, field

from repro.core.graph import LabeledGraph
from repro.errors import PatternError

__all__ = [
    "PatternNode",
    "PatternEdge",
    "Pattern",
    "MatchConfig",
    "MatchIndex",
    "CompiledPattern",
    "Binding",
    "compile_pattern",
    "find_matches",
    "matches",
    "first_match",
]

# Edge label wildcard inside patterns: matches any edge label.
ANY_LABEL = "*"


@dataclass(frozen=True, slots=True)
class PatternNode:
    """One node of a pattern.

    ``label`` is the term the node must match; ``None`` makes the node
    a wildcard.  ``variable`` names the binding this node produces in
    match results (wildcards usually carry a variable; labeled nodes
    may too).
    """

    node_id: str
    label: str | None = None
    variable: str | None = None

    @property
    def is_wildcard(self) -> bool:
        return self.label is None


@dataclass(frozen=True, slots=True)
class PatternEdge:
    """One edge of a pattern; label ``*`` matches any edge label."""

    source: str
    label: str
    target: str


@dataclass(frozen=True, slots=True)
class Binding:
    """One successful match: pattern node id -> graph node id.

    ``variables`` projects the mapping down to the named variables, the
    part queries and rules consume.
    """

    mapping: Mapping[str, str]
    variables: Mapping[str, str]

    def __getitem__(self, pattern_node_id: str) -> str:
        return self.mapping[pattern_node_id]

    def var(self, name: str) -> str:
        return self.variables[name]

    def matched_nodes(self) -> frozenset[str]:
        """The set of graph nodes touched by this match."""
        return frozenset(self.mapping.values())


class Pattern:
    """A pattern graph with optional ontology scope and variables.

    ``ontology`` restricts the pattern to one source (the leading
    ``carrier:`` in the paper's textual notation); ``None`` means the
    pattern applies to whatever graph it is matched against.
    """

    def __init__(self, ontology: str | None = None) -> None:
        self.ontology = ontology
        self._nodes: dict[str, PatternNode] = {}
        self._edges: list[PatternEdge] = []
        self._nodes_view: tuple[PatternNode, ...] | None = None
        self._edges_view: tuple[PatternEdge, ...] | None = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_node(
        self,
        node_id: str,
        label: str | None = None,
        variable: str | None = None,
    ) -> PatternNode:
        if node_id in self._nodes:
            raise PatternError(f"duplicate pattern node id {node_id!r}")
        node = PatternNode(node_id, label, variable)
        self._nodes[node_id] = node
        self._nodes_view = None
        return node

    def add_edge(self, source: str, label: str, target: str) -> PatternEdge:
        for endpoint in (source, target):
            if endpoint not in self._nodes:
                raise PatternError(f"pattern edge references unknown node "
                                   f"{endpoint!r}")
        if not label:
            raise PatternError("pattern edge label must be non-empty "
                               f"(use {ANY_LABEL!r} for a wildcard)")
        edge = PatternEdge(source, label, target)
        self._edges.append(edge)
        self._edges_view = None
        return edge

    @classmethod
    def single(cls, label: str, *, ontology: str | None = None) -> "Pattern":
        """A one-node pattern matching a single term."""
        pattern = cls(ontology)
        pattern.add_node("n0", label)
        return pattern

    @classmethod
    def path(
        cls,
        labels: Iterable[str],
        *,
        ontology: str | None = None,
        edge_label: str = ANY_LABEL,
    ) -> "Pattern":
        """A chain pattern ``l0 -> l1 -> ...`` (the ``a:b:c`` notation)."""
        pattern = cls(ontology)
        previous: str | None = None
        for index, label in enumerate(labels):
            node_id = f"n{index}"
            pattern.add_node(node_id, label)
            if previous is not None:
                pattern.add_edge(previous, edge_label, node_id)
            previous = node_id
        if previous is None:
            raise PatternError("path pattern needs at least one label")
        return pattern

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    def nodes(self) -> tuple[PatternNode, ...]:
        """All pattern nodes, as a cached tuple (no per-call copy)."""
        if self._nodes_view is None:
            self._nodes_view = tuple(self._nodes.values())
        return self._nodes_view

    def node(self, node_id: str) -> PatternNode:
        try:
            return self._nodes[node_id]
        except KeyError:
            raise PatternError(f"no pattern node {node_id!r}") from None

    def edges(self) -> tuple[PatternEdge, ...]:
        """All pattern edges, as a cached tuple (no per-call copy)."""
        if self._edges_view is None:
            self._edges_view = tuple(self._edges)
        return self._edges_view

    def variables(self) -> list[str]:
        return [n.variable for n in self._nodes.values() if n.variable]

    def node_labels(self) -> set[str]:
        return {n.label for n in self._nodes.values() if n.label is not None}

    def __len__(self) -> int:
        return len(self._nodes)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        scope = f" ontology={self.ontology!r}" if self.ontology else ""
        return f"<Pattern nodes={len(self._nodes)} edges={len(self._edges)}{scope}>"


@dataclass(frozen=True)
class MatchConfig:
    """Expert-tunable match semantics (paper §3, fuzzy matching).

    * ``synonyms`` — mapping from a term to its accepted alternatives;
      :meth:`with_synonyms` builds the full symmetric+transitive
      closure, so chained pairs ``a~b``, ``b~c`` also make ``a`` match
      ``c``.
    * ``case_insensitive`` — compare labels case-insensitively.
    * ``relax_edge_labels`` — drop condition 2's label equality: any
      edge in the right direction matches.
    * ``node_equiv`` / ``edge_equiv`` — escape hatches for arbitrary
      expert-supplied predicates; they run *in addition to* the rules
      above (a pair matches if any rule accepts it).
    * ``injective`` — require distinct pattern nodes to map to distinct
      graph nodes.  The paper's ``f`` is a plain total mapping, so this
      defaults to False.
    """

    synonyms: Mapping[str, frozenset[str]] = field(default_factory=dict)
    case_insensitive: bool = False
    relax_edge_labels: bool = False
    node_equiv: Callable[[str, str], bool] | None = None
    edge_equiv: Callable[[str, str], bool] | None = None
    injective: bool = False

    @classmethod
    def strict(cls) -> "MatchConfig":
        return cls()

    @classmethod
    def with_synonyms(cls, pairs: Iterable[tuple[str, str]]) -> "MatchConfig":
        """Build a config from synonym pairs, fully closed.

        The table is the symmetric *and transitive* closure of the
        pairs: two rules chaining ``a -> b`` and ``b -> c`` put ``a``,
        ``b`` and ``c`` in one equivalence class, so ``a`` matches
        ``c`` without the expert restating the composite pair.
        """
        adjacency: dict[str, set[str]] = {}
        for a, b in pairs:
            adjacency.setdefault(a, set()).add(b)
            adjacency.setdefault(b, set()).add(a)
        frozen: dict[str, frozenset[str]] = {}
        seen: set[str] = set()
        for start in adjacency:
            if start in seen:
                continue
            component = {start}
            stack = [start]
            while stack:
                for neighbor in adjacency[stack.pop()]:
                    if neighbor not in component:
                        component.add(neighbor)
                        stack.append(neighbor)
            seen |= component
            for term in component:
                frozen[term] = frozenset(component - {term})
        return cls(synonyms=frozen)

    # -- index cache key --------------------------------------------------
    def cache_key(self) -> tuple:
        """A hashable *value* key for per-graph match-index caches.

        Equal configs share one :class:`MatchIndex` even when callers
        construct a fresh (frozen, value-equal) instance per call.  The
        predicate escape hatches compare by identity — their behavior
        is not introspectable — and the cached index keeps its config
        (and thus the predicates) alive, so a recycled ``id`` can never
        false-match a live cache entry.
        """
        cached = self.__dict__.get("_cache_key")
        if cached is None:
            cached = (
                tuple(
                    sorted(
                        (term, tuple(sorted(alts)))
                        for term, alts in self.synonyms.items()
                    )
                ),
                self.case_insensitive,
                self.relax_edge_labels,
                id(self.node_equiv) if self.node_equiv is not None else None,
                id(self.edge_equiv) if self.edge_equiv is not None else None,
            )
            object.__setattr__(self, "_cache_key", cached)
        return cached

    # -- label comparison ------------------------------------------------
    def node_labels_match(self, pattern_label: str, graph_label: str) -> bool:
        if pattern_label == graph_label:
            return True
        if self.case_insensitive and pattern_label.lower() == graph_label.lower():
            return True
        alts = self.synonyms.get(pattern_label)
        if alts is not None:
            if graph_label in alts:
                return True
            if self.case_insensitive and any(
                a.lower() == graph_label.lower() for a in alts
            ):
                return True
        if self.node_equiv is not None and self.node_equiv(
            pattern_label, graph_label
        ):
            return True
        return False

    def edge_labels_match(self, pattern_label: str, graph_label: str) -> bool:
        if pattern_label == ANY_LABEL or self.relax_edge_labels:
            return True
        if pattern_label == graph_label:
            return True
        if self.edge_equiv is not None and self.edge_equiv(
            pattern_label, graph_label
        ):
            return True
        return False


# ----------------------------------------------------------------------
# the match index (built once per (graph, config), cached on the graph)
# ----------------------------------------------------------------------
class MatchIndex:
    """Precomputed candidate lookups for one ``(graph, MatchConfig)``.

    The index folds the fuzzy-label closure into build-time maps so
    that resolving a pattern label costs a few dict lookups instead of
    a scan over every distinct graph label:

    * the exact label index comes straight from the graph;
    * ``case_insensitive`` adds a lowercased-label map (built once);
    * synonym alternatives resolve through those same maps;
    * an arbitrary ``node_equiv`` predicate cannot be inverted, so it
      falls back to one label scan — but only once per distinct
      pattern label, memoized for the life of the index.

    Edge checks use a lazily built ``(source, target) -> labels`` pair
    map, turning the relaxed-edge test into one dict probe.

    Instances are cached on the graph (:meth:`for_graph`).  When the
    graph's mutation version moves, the cached index first tries to
    *replay* the graph's bounded mutation journal in place
    (:meth:`refresh` — patching candidate tuples, the lowercase map,
    the node list and the pair-label map, counted by
    ``delta_refreshes``) and rebuilds from scratch only when the gap
    exceeds the journal's retention window.
    """

    __slots__ = (
        "graph",
        "config",
        "version",
        "delta_refreshes",
        "_by_lower",
        "_label_cache",
        "_all_nodes",
        "_pair_labels",
    )

    def __init__(self, graph: LabeledGraph, config: MatchConfig) -> None:
        self.graph = graph
        self.config = config
        self.version = graph.version
        self.delta_refreshes = 0
        self._by_lower: dict[str, set[str]] | None = None
        self._label_cache: dict[str, tuple[str, ...]] = {}
        self._all_nodes: tuple[str, ...] | None = None
        self._pair_labels: dict[tuple[str, str], set[str]] | None = None

    # A handful of configs per graph is the realistic ceiling; beyond
    # it, drop the oldest entries rather than grow without bound.
    _CACHE_LIMIT = 8

    # One lock for every graph's index cache: for_graph both mutates
    # the per-graph cache dict and replays mutation journals into
    # cached entries in place, so concurrent serving threads must not
    # interleave.  Contention is negligible (the work inside is dict
    # probes and bounded journal replay; full index builds are lazy).
    _cache_lock = threading.Lock()

    @classmethod
    def for_graph(cls, graph: LabeledGraph, config: MatchConfig) -> "MatchIndex":
        """The cached index for this config, rebuilt if the graph moved.

        Keyed by the config's *value* (:meth:`MatchConfig.cache_key`),
        so callers constructing a fresh equal config per call still
        reuse the warm index.  Thread-safe: lookup, in-place journal
        replay and eviction happen under one class-wide lock.
        """
        with cls._cache_lock:
            cache = graph._match_indexes
            key = config.cache_key()
            entry = cache.get(key)
            if entry is not None and (
                entry.version == graph.version or entry.refresh()
            ):
                return entry
            if entry is None and len(cache) >= cls._CACHE_LIMIT:
                # Evict the oldest entry (dict preserves insertion
                # order) rather than wiping every warm index on the
                # graph.
                del cache[next(iter(cache))]
            index = cls(graph, config)
            cache[key] = index
            return index

    def fresh(self) -> bool:
        return self.version == self.graph.version

    # -- incremental maintenance ----------------------------------------
    def refresh(self) -> bool:
        """Catch up with the graph by replaying its mutation journal.

        Returns False when the gap since this index's version has
        fallen out of the journal's bounded window — the caller must
        rebuild.  Otherwise every built structure is patched in place
        (lazy ones not built yet stay lazy and resolve against the
        current graph when first used), ``version`` catches up, and
        ``delta_refreshes`` counts the replay.
        """
        rows = self.graph.journal_since(self.version)
        if rows is None:
            # Falling back to a rebuild ends this index's incremental
            # streak: without the reset, a direct holder that rebuilds
            # and keeps polling the counter over-reports replays that
            # never happened.
            self.delta_refreshes = 0
            return False
        if rows:
            # A spill-backed label cache can only be patched where the
            # replay can see it (the in-memory side); spilled entries
            # would come back stale, so they are dropped wholesale.
            invalidate = getattr(self._label_cache, "invalidate_spilled", None)
            if invalidate is not None:
                invalidate()
        for row in rows:
            op = row[1]
            if op == "add_node":
                self._replay_add_node(row[2], row[3])
            elif op == "remove_node":
                self._replay_remove_node(row[2], row[3])
            elif op == "relabel_node":
                self._replay_relabel(row[2], row[3], row[4])
            elif op == "add_edge":
                if self._pair_labels is not None:
                    self._pair_labels.setdefault(
                        (row[2], row[4]), set()
                    ).add(row[3])
            else:  # remove_edge
                if self._pair_labels is not None:
                    labels = self._pair_labels.get((row[2], row[4]))
                    if labels is not None:
                        labels.discard(row[3])
        self.version = self.graph.version
        if rows:
            self.delta_refreshes += 1
        return True

    def enable_spill(self, capacity: int = 128, path: str | None = None):
        """Bound the label→candidate memo, spilling overflow to disk.

        Swaps ``_label_cache`` for a
        :class:`~repro.kb.pagestore.LabelSpillCache`: the hottest
        ``capacity`` pattern labels stay in memory, colder ones move
        to a SQLite side table and are promoted back on access — the
        out-of-core discipline of :class:`PagedFactStore`, applied to
        the matcher.  Already-memoized entries are carried over.
        Returns the spill cache (for stats and explicit ``close``).
        """
        from repro.kb.pagestore import LabelSpillCache

        spill = LabelSpillCache(capacity, path)
        for label, nodes in self._label_cache.items():
            spill[label] = nodes
        self._label_cache = spill
        return spill

    def _replay_add_node(self, node_id: str, label: str) -> None:
        # Membership in a cached candidate tuple is exactly condition 1
        # — node_labels_match folds the exact/case/synonym/equiv rules.
        match = self.config.node_labels_match
        for plabel, cached in self._label_cache.items():
            if match(plabel, label):
                self._label_cache[plabel] = _insert_sorted(cached, node_id)
        if self._by_lower is not None:
            self._by_lower.setdefault(label.lower(), set()).add(node_id)
        if self._all_nodes is not None:
            self._all_nodes = _insert_sorted(self._all_nodes, node_id)

    def _replay_remove_node(self, node_id: str, label: str) -> None:
        for plabel, cached in self._label_cache.items():
            self._label_cache[plabel] = _remove_sorted(cached, node_id)
        if self._by_lower is not None:
            bucket = self._by_lower.get(label.lower())
            if bucket is not None:
                bucket.discard(node_id)
        if self._all_nodes is not None:
            self._all_nodes = _remove_sorted(self._all_nodes, node_id)

    def _replay_relabel(self, node_id: str, old: str, new: str) -> None:
        match = self.config.node_labels_match
        for plabel, cached in self._label_cache.items():
            if match(plabel, new):
                self._label_cache[plabel] = _insert_sorted(cached, node_id)
            else:
                self._label_cache[plabel] = _remove_sorted(cached, node_id)
        if self._by_lower is not None:
            bucket = self._by_lower.get(old.lower())
            if bucket is not None:
                bucket.discard(node_id)
            self._by_lower.setdefault(new.lower(), set()).add(node_id)

    # -- candidate resolution -------------------------------------------
    def all_nodes(self) -> tuple[str, ...]:
        """Every graph node, sorted (wildcard candidates)."""
        if self._all_nodes is None:
            self._all_nodes = tuple(sorted(self.graph.nodes()))
        return self._all_nodes

    def _lower_map(self) -> dict[str, set[str]]:
        if self._by_lower is None:
            by_lower: dict[str, set[str]] = {}
            for label in self.graph.labels():
                by_lower.setdefault(label.lower(), set()).update(
                    self.graph.nodes_with_label(label)
                )
            self._by_lower = by_lower
        return self._by_lower

    def candidates(self, pattern_label: str) -> tuple[str, ...]:
        """Graph nodes satisfying condition 1 for ``pattern_label``.

        Exactly the set the scanning baseline produces, sorted.
        """
        cached = self._label_cache.get(pattern_label)
        if cached is not None:
            return cached
        graph, config = self.graph, self.config
        found: set[str] = set(graph.nodes_with_label(pattern_label))
        if config.case_insensitive:
            found |= self._lower_map().get(pattern_label.lower(), set())
        alts = config.synonyms.get(pattern_label)
        if alts:
            for alt in alts:
                found |= graph.nodes_with_label(alt)
                if config.case_insensitive:
                    found |= self._lower_map().get(alt.lower(), set())
        if config.node_equiv is not None:
            equiv = config.node_equiv
            for label in graph.labels():
                if equiv(pattern_label, label):
                    found |= graph.nodes_with_label(label)
        result = tuple(sorted(found))
        self._label_cache[pattern_label] = result
        return result

    # -- edge resolution -------------------------------------------------
    def pair_labels(self, source: str, target: str) -> set[str]:
        """Edge labels present between a node pair (possibly empty)."""
        if self._pair_labels is None:
            pairs: dict[tuple[str, str], set[str]] = {}
            for edge in self.graph.edges():
                pairs.setdefault((edge.source, edge.target), set()).add(
                    edge.label
                )
            self._pair_labels = pairs
        return self._pair_labels.get((source, target), _NO_LABELS)


_NO_LABELS: set[str] = set()


def _insert_sorted(items: tuple[str, ...], value: str) -> tuple[str, ...]:
    """``items`` with ``value`` inserted in order (no-op if present)."""
    at = bisect_left(items, value)
    if at < len(items) and items[at] == value:
        return items
    return items[:at] + (value,) + items[at:]


def _remove_sorted(items: tuple[str, ...], value: str) -> tuple[str, ...]:
    """``items`` without ``value`` (no-op if absent)."""
    at = bisect_left(items, value)
    if at < len(items) and items[at] == value:
        return items[:at] + items[at + 1:]
    return items

# The shared default config: every config-less find_matches call must
# resolve to ONE object, or the identity-keyed index cache would miss
# (and churn) on every call.
_STRICT_CONFIG = MatchConfig.strict()

# Edge-check kinds precomputed by compile_pattern.
_EDGE_EXACT = 0  # strict label: one O(1) has_edge probe
_EDGE_ANY = 1  # wildcard / relaxed: any edge between the pair
_EDGE_EQUIV = 2  # expert edge_equiv: test the pair's label set


@dataclass(frozen=True, slots=True)
class CompiledPattern:
    """A pattern lowered against one graph + config.

    ``order`` assigns the most constrained nodes first; ``candidates``
    holds the (sorted) candidate tuple per pattern node id; ``checks``
    lists, per assignment depth, the edge tests whose endpoints are
    bound once that node is assigned, each lowered to
    ``(source_id, target_id, pattern_label, kind)``.
    """

    order: tuple[PatternNode, ...]
    candidates: Mapping[str, tuple[str, ...]]
    checks: tuple[tuple[tuple[str, str, str, int], ...], ...]


def _order_nodes(
    nodes: Iterable[PatternNode],
    candidate_sets: Mapping[str, Iterable[str]],
    adjacency: Mapping[str, list[PatternEdge]],
) -> list[PatternNode]:
    """Most constrained (fewest candidates, then most edges) first.

    Shared by both strategies so they assign nodes in the same order
    and therefore emit identical binding sequences.
    """
    return sorted(
        nodes,
        key=lambda n: (
            len(candidate_sets[n.node_id]),
            -len(adjacency[n.node_id]),
        ),
    )


def _pattern_adjacency(
    nodes: Iterable[PatternNode], edges: Iterable[PatternEdge]
) -> dict[str, list[PatternEdge]]:
    adjacency: dict[str, list[PatternEdge]] = {n.node_id: [] for n in nodes}
    for edge in edges:
        adjacency[edge.source].append(edge)
        adjacency[edge.target].append(edge)
    return adjacency


def compile_pattern(
    pattern: Pattern,
    graph: LabeledGraph,
    config: MatchConfig | None = None,
    *,
    index: MatchIndex | None = None,
) -> CompiledPattern:
    """Lower ``pattern`` for matching against ``graph`` under ``config``.

    Candidate sets resolve through the (cached) :class:`MatchIndex`;
    pattern nodes are ordered by selectivity; every pattern edge is
    classified once into the cheapest check its semantics allow, and
    attached to the assignment depth at which both endpoints are bound.
    """
    config = config if config is not None else _STRICT_CONFIG
    nodes = pattern.nodes()
    if not nodes:
        raise PatternError("cannot match an empty pattern")
    index = index if index is not None else MatchIndex.for_graph(graph, config)

    candidates = {
        n.node_id: (
            index.all_nodes() if n.is_wildcard else index.candidates(n.label)
        )
        for n in nodes
    }
    adjacency = _pattern_adjacency(nodes, pattern.edges())
    order = tuple(_order_nodes(nodes, candidates, adjacency))

    depth_of = {node.node_id: depth for depth, node in enumerate(order)}
    checks: list[list[tuple[str, str, str, int]]] = [[] for _ in order]
    for edge in pattern.edges():
        if edge.label == ANY_LABEL or config.relax_edge_labels:
            kind = _EDGE_ANY
        elif config.edge_equiv is not None:
            kind = _EDGE_EQUIV
        else:
            kind = _EDGE_EXACT
        bound_at = max(depth_of[edge.source], depth_of[edge.target])
        checks[bound_at].append((edge.source, edge.target, edge.label, kind))
    return CompiledPattern(
        order=order,
        candidates=candidates,
        checks=tuple(tuple(c) for c in checks),
    )


# ----------------------------------------------------------------------
# the scanning baseline (parity reference)
# ----------------------------------------------------------------------
def _scan_candidates(
    node: PatternNode, graph: LabeledGraph, config: MatchConfig
) -> list[str]:
    """Graph nodes that could satisfy condition 1 for ``node``.

    The pre-index code path: a full label scan per fuzzy lookup.  Kept
    as the baseline the parity suite and benchmarks measure against.
    """
    if node.is_wildcard:
        return sorted(graph.nodes())
    assert node.label is not None
    # Fast path: exact label index.
    found = set(graph.nodes_with_label(node.label))
    needs_scan = bool(
        config.case_insensitive or config.synonyms or config.node_equiv
    )
    if needs_scan:
        for label in graph.labels():
            if label == node.label:
                continue  # already covered by the exact index above
            if config.node_labels_match(node.label, label):
                found.update(graph.nodes_with_label(label))
    return sorted(found)


def _find_matches_scan(
    pattern: Pattern,
    graph: LabeledGraph,
    config: MatchConfig,
    limit: int | None,
) -> Iterator[Binding]:
    nodes = pattern.nodes()
    candidate_sets = {
        n.node_id: _scan_candidates(n, graph, config) for n in nodes
    }
    adjacency = _pattern_adjacency(nodes, pattern.edges())
    order = _order_nodes(nodes, candidate_sets, adjacency)

    assignment: dict[str, str] = {}
    used: set[str] = set()
    emitted = 0

    def edge_ok(edge: PatternEdge) -> bool:
        src = assignment.get(edge.source)
        dst = assignment.get(edge.target)
        if src is None or dst is None:
            return True  # not yet checkable
        for graph_edge in graph.out_edges(src):
            if graph_edge.target == dst and config.edge_labels_match(
                edge.label, graph_edge.label
            ):
                return True
        return False

    def extend(depth: int) -> Iterator[Binding]:
        nonlocal emitted
        if depth == len(order):
            variables = {
                n.variable: assignment[n.node_id]
                for n in nodes
                if n.variable is not None
            }
            emitted += 1
            yield Binding(dict(assignment), variables)
            return
        pattern_node = order[depth]
        for candidate in candidate_sets[pattern_node.node_id]:
            if config.injective and candidate in used:
                continue
            assignment[pattern_node.node_id] = candidate
            used.add(candidate)
            if all(
                edge_ok(e)
                for e in adjacency[pattern_node.node_id]
            ):
                yield from extend(depth + 1)
                if limit is not None and emitted >= limit:
                    del assignment[pattern_node.node_id]
                    used.discard(candidate)
                    return
            del assignment[pattern_node.node_id]
            used.discard(candidate)

    yield from extend(0)


# ----------------------------------------------------------------------
# the indexed engine
# ----------------------------------------------------------------------
def _find_matches_indexed(
    pattern: Pattern,
    graph: LabeledGraph,
    config: MatchConfig,
    limit: int | None,
) -> Iterator[Binding]:
    index = MatchIndex.for_graph(graph, config)
    compiled = compile_pattern(pattern, graph, config, index=index)
    order = compiled.order
    candidates = compiled.candidates
    checks = compiled.checks
    nodes = pattern.nodes()
    injective = config.injective
    has_edge = graph.has_edge
    pair_labels = index.pair_labels
    edge_labels_match = config.edge_labels_match

    assignment: dict[str, str] = {}
    used: set[str] = set()
    emitted = 0

    def checks_ok(depth: int) -> bool:
        for src_id, dst_id, label, kind in checks[depth]:
            src = assignment[src_id]
            dst = assignment[dst_id]
            if kind == _EDGE_EXACT:
                if not has_edge(src, label, dst):
                    return False
            elif kind == _EDGE_ANY:
                if not pair_labels(src, dst):
                    return False
            else:  # _EDGE_EQUIV
                if not any(
                    edge_labels_match(label, gl)
                    for gl in pair_labels(src, dst)
                ):
                    return False
        return True

    def extend(depth: int) -> Iterator[Binding]:
        nonlocal emitted
        if depth == len(order):
            variables = {
                n.variable: assignment[n.node_id]
                for n in nodes
                if n.variable is not None
            }
            emitted += 1
            yield Binding(dict(assignment), variables)
            return
        pattern_node = order[depth]
        node_id = pattern_node.node_id
        for candidate in candidates[node_id]:
            if injective and candidate in used:
                continue
            assignment[node_id] = candidate
            used.add(candidate)
            if checks_ok(depth):
                yield from extend(depth + 1)
                if limit is not None and emitted >= limit:
                    del assignment[node_id]
                    used.discard(candidate)
                    return
            del assignment[node_id]
            used.discard(candidate)

    yield from extend(0)


def find_matches(
    pattern: Pattern,
    graph: LabeledGraph,
    config: MatchConfig | None = None,
    *,
    limit: int | None = None,
    strategy: str = "indexed",
) -> Iterator[Binding]:
    """All mappings of ``pattern`` into ``graph`` under ``config``.

    Backtracking search ordered most-constrained-first: labeled pattern
    nodes with the fewest candidates are assigned before wildcards, and
    every partial assignment is checked against the pattern edges whose
    endpoints are already bound.

    ``strategy`` selects ``"indexed"`` (default: cached
    :class:`MatchIndex` + :func:`compile_pattern`) or ``"scan"`` (the
    per-call label-scan baseline).  Both enumerate the same bindings in
    the same order.
    """
    config = config if config is not None else _STRICT_CONFIG
    if not len(pattern):
        raise PatternError("cannot match an empty pattern")
    if strategy == "indexed":
        return _find_matches_indexed(pattern, graph, config, limit)
    if strategy == "scan":
        return _find_matches_scan(pattern, graph, config, limit)
    raise PatternError(f"unknown match strategy {strategy!r}")


def matches(
    pattern: Pattern, graph: LabeledGraph, config: MatchConfig | None = None
) -> bool:
    """True iff the pattern matches into the graph at least once."""
    return first_match(pattern, graph, config) is not None


def first_match(
    pattern: Pattern, graph: LabeledGraph, config: MatchConfig | None = None
) -> Binding | None:
    for binding in find_matches(pattern, graph, config, limit=1):
        return binding
    return None
