"""Incremental articulation maintenance (paper §5.3, §6).

"If a change to a source ontology, say O1, occurs in the difference of
O1 with other ontologies, no change needs to occur in any of the
articulation ontologies.  If on the other hand a node occurs in O1 but
not in O1 − O2 then any change related to the node ... must also be
reflected in the articulation ontologies."

:class:`ArticulationMaintainer` turns that sentence into machinery:
given a batch of source changes (a churn report, or just the touched
term set), it

1. *classifies* every change as **free** (lands in the difference — no
   articulation work) or **affecting** (touches an articulated term);
2. *repairs* the articulation: drops bridges dangling from deleted
   terms, deletes rules that can no longer be applied, and replays the
   still-valid rules so the articulation reflects the new source state;
3. *reports* the work it did in the same graph-op currency the
   benchmarks use.

The repair is sound-by-reconstruction: rather than patching bridge by
bridge, still-valid rules are re-run through the generator, which is
deterministic, so the repaired articulation equals the one that would
be generated from scratch with the surviving rule set — but the
*decision* of whether any work is needed at all costs only a set
intersection, which is the paper's maintenance win.

The maintainer also keeps one :class:`OntologyInferenceEngine` alive
across passes for semantic checks (disjointness violations, §1's
articulation errors): free changes leave it untouched, and after a
repair it is *refreshed* — the engine diffs the repaired program
against what it has loaded, pushes new facts through the Horn
evaluator's incremental delta propagation, and queues disappeared
facts (dropped bridges, dropped rules, shed source edges) as
*retractions* for the DRed overdelete/rederive pass
(``inference_mode == "retract"``).  The whole shrink+grow diff rides
one :meth:`~repro.inference.horn.HornEngine.apply_batch`, so a repair
pays a single coalesced pass however many bridges and rules it moved —
and when the diff's retraction count crosses the engine's measured
rebuild crossover, the engine replays from base instead
(``inference_mode == "batch-rebuild"``).  A repair that only removes
bridges never re-walks the unchanged source graphs either: program
extraction is cached per graph version, so the fingerprint path
serves the retraction delta from the bridge/rule diff alone.  A full
rebuild happens only when the axiom set itself changed.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass, field

from repro.core.articulation import Articulation, ArticulationGenerator
from repro.core.ontology import qualify
from repro.core.rules import (
    ArticulationRuleSet,
    FunctionalRule,
    ImplicationRule,
    Rule,
)
from repro.errors import ArticulationError

__all__ = ["MaintenanceReport", "ArticulationMaintainer"]


@dataclass
class MaintenanceReport:
    """What one maintenance pass classified and did."""

    free_terms: set[str] = field(default_factory=set)
    affected_terms: set[str] = field(default_factory=set)
    dropped_rules: list[Rule] = field(default_factory=list)
    dropped_bridges: int = 0
    replayed_rules: int = 0
    repair_ops: int = 0
    # "" / "initial" / "incremental" / "retract" / "replay" /
    # "batch-rebuild" (the shrink+grow diff crossed the engine's
    # measured rebuild crossover) / "rebuild" (axiom change)
    inference_mode: str = ""

    @property
    def required_work(self) -> bool:
        return bool(self.affected_terms)

    def summary(self) -> str:
        return (
            f"free={len(self.free_terms)} affected={len(self.affected_terms)} "
            f"dropped_rules={len(self.dropped_rules)} "
            f"dropped_bridges={self.dropped_bridges} "
            f"replayed={self.replayed_rules} ops={self.repair_ops}"
        )


class ArticulationMaintainer:
    """Keeps one articulation consistent with its evolving sources."""

    def __init__(self, articulation: Articulation) -> None:
        self.articulation = articulation
        self._engine = None  # lazily-built OntologyInferenceEngine

    # ------------------------------------------------------------------
    # classification (the cheap §5.3 decision)
    # ------------------------------------------------------------------
    def classify(
        self, source_name: str, touched_terms: Iterable[str]
    ) -> tuple[set[str], set[str]]:
        """Split touched terms into (free, affected).

        A term is *affected* when a bridge references it — i.e. it lies
        outside the difference of its source with the articulated
        world.  Everything else is free: the paper's no-maintenance
        region.  The covered-term set is version-stamp cached on the
        articulation, so back-to-back change batches classify without
        re-walking the bridges.
        """
        if source_name not in self.articulation.sources:
            raise ArticulationError(
                f"unknown source ontology {source_name!r}"
            )
        covered = self.articulation.covered_source_terms()
        free: set[str] = set()
        affected: set[str] = set()
        for term in touched_terms:
            if qualify(source_name, term) in covered:
                affected.add(term)
            else:
                free.add(term)
        return free, affected

    # ------------------------------------------------------------------
    # rule validity against the current source state
    # ------------------------------------------------------------------
    def _rule_still_valid(self, rule: Rule) -> bool:
        """Does every source term the rule references still exist?"""
        if isinstance(rule, ImplicationRule):
            refs = list(rule.terms())
        elif isinstance(rule, FunctionalRule):
            refs = [rule.source, rule.target]
        else:  # pragma: no cover - defensive
            return False
        for ref in refs:
            onto_name = ref.ontology
            if onto_name is None or onto_name == self.articulation.name:
                continue  # articulation terms are (re)created on demand
            source = self.articulation.sources.get(onto_name)
            if source is None or not source.has_term(ref.term):
                return False
        return True

    # ------------------------------------------------------------------
    # the maintenance pass
    # ------------------------------------------------------------------
    def apply_source_changes(
        self, source_name: str, touched_terms: Iterable[str]
    ) -> MaintenanceReport:
        """React to a batch of changes in one source.

        Free changes return immediately (``repair_ops == 0``).
        Affecting changes trigger the reconstruction repair described
        in the module docstring.
        """
        report = MaintenanceReport()
        free, affected = self.classify(source_name, touched_terms)
        report.free_terms = free
        report.affected_terms = affected
        if not affected:
            return report  # cached inference engine stays valid as-is
        self._repair(report)
        return report

    # ------------------------------------------------------------------
    # semantic checks over a reused incremental inference engine
    # ------------------------------------------------------------------
    def inference_engine(self):
        """The maintainer's :class:`OntologyInferenceEngine` (cached).

        Built on first use and *refreshed* — not rebuilt — after
        repairs: additions flow through the Horn engine's incremental
        delta propagation, removals through its DRed retraction pass.
        """
        if self._engine is None:
            from repro.inference.engine import OntologyInferenceEngine

            self._engine = OntologyInferenceEngine.from_articulation(
                self.articulation
            )
        return self._engine

    def semantic_verify(self) -> list[str]:
        """Inference-level invariants; empty list means consistent.

        Reports every term implied into two declared-disjoint classes
        — the articulation errors §1 promises to surface.  The cached
        engine is refreshed first: *free* source changes skip repairs
        but can still add graph edges the engine's program loads, and
        additions are exactly the cheap incremental case.
        """
        engine = self.inference_engine()
        engine.refresh_from_articulation(self.articulation)
        return [
            f"contradiction: {term!r} implied into disjoint "
            f"{class_a!r} / {class_b!r}"
            for term, class_a, class_b in engine.contradictions()
        ]

    def _repair(self, report: MaintenanceReport) -> None:
        articulation = self.articulation
        surviving = ArticulationRuleSet()
        for rule in articulation.rules:
            if self._rule_still_valid(rule):
                surviving.add(rule)
            else:
                report.dropped_rules.append(rule)

        report.dropped_bridges = len(articulation.bridges)

        generator = ArticulationGenerator(
            articulation.sources.values(), name=articulation.name
        )
        rebuilt = generator.generate(surviving)

        # Swap the rebuilt state into the existing articulation object,
        # so callers holding a reference observe the repair.  The
        # version stamp must move: the swapped-in graphs carry their
        # own mutation counters, which could coincide with the old
        # fingerprint and make cached unified views / inference
        # programs (wrongly) look current.
        articulation.ontology = rebuilt.ontology
        articulation.bridges = rebuilt.bridges
        articulation.functions = rebuilt.functions
        articulation.rules = rebuilt.rules
        articulation.log = rebuilt.log
        articulation.bump_version()

        report.dropped_bridges -= len(rebuilt.bridges)
        report.dropped_bridges = max(report.dropped_bridges, 0)
        report.replayed_rules = len(surviving)
        report.repair_ops = rebuilt.cost()

        if self._engine is not None:
            refresh = self._engine.refresh_from_articulation(
                self.articulation
            )
            report.inference_mode = str(refresh["mode"])

    def verify(self) -> list[str]:
        """Post-repair invariants; empty list means consistent.

        * no bridge references a missing term;
        * every stored rule is applicable against the current sources.
        """
        issues = [
            f"dangling bridge: {edge}"
            for edge in self.articulation.dangling_bridges()
        ]
        for rule in self.articulation.rules:
            if not self._rule_still_valid(rule):
                issues.append(f"stale rule: {rule}")
        return issues
