"""Articulation rules (paper §4.1).

Rules take the form ``P => Q`` — *"the object Q semantically belongs to
the class P"* / *"P semantically implies Q"* — where the operands range
from simple qualified terms to conjunctions, disjunctions and cascaded
multi-term implications.  Functional rules attach a conversion function
to a bridge (``DGToEuroFn() : carrier:DutchGuilders => transport:Euro``).

This module defines the rule AST, the textual rule syntax, and the
translation to Horn clauses used by the inference engine.  The
*graph-level* interpretation of rules (which nodes and edges the
articulation generator adds) lives in
:mod:`repro.core.articulation`.

Textual syntax accepted by :func:`parse_rule`::

    carrier:Car => factory:Vehicle
    carrier:Car => transport:PassengerCar => factory:Vehicle   # cascade
    (factory:CargoCarrier ^ factory:Vehicle) => carrier:Trucks # conjunction
    factory:Vehicle => (carrier:Cars | carrier:Trucks)         # disjunction
    (A ^ B) => C AS NiceName          # override synthesized node label
    DGToEuroFn() : carrier:DutchGuilders => transport:Euro     # functional
    PSToEuroFn(x / 0.7111 ; x * 0.7111 ; EuroToPSFn) : \
        carrier:PoundSterling => transport:Euro   # executable conversion

``^``/``&`` spell conjunction, ``|`` spells disjunction, ``=>`` the
semantic implication, and ``AS`` renames the class synthesized for a
compound operand (the paper: the default label "is the predicate text,
which can be overruled by the user").
"""

from __future__ import annotations

import re
from collections.abc import Callable, Iterable, Iterator, Sequence
from dataclasses import dataclass, field

from repro.core.ontology import split_qualified
from repro.errors import RuleError, RuleParseError

__all__ = [
    "TermRef",
    "Operand",
    "TermOperand",
    "AndOperand",
    "OrOperand",
    "ImplicationRule",
    "FunctionalRule",
    "ArticulationRuleSet",
    "HornClause",
    "compile_conversion",
    "parse_rule",
    "parse_rules",
]


@dataclass(frozen=True, slots=True, order=True)
class TermRef:
    """A possibly-qualified term reference, e.g. ``carrier:Car``.

    ``ontology`` is ``None`` for unqualified references; the
    articulation generator resolves those against the articulation
    ontology itself (rules "are also used to structure ... the
    articulation ontology graph itself", §4.1).
    """

    ontology: str | None
    term: str

    @classmethod
    def parse(cls, text: str) -> "TermRef":
        text = text.strip()
        if not text:
            raise RuleError("empty term reference")
        ontology, term = split_qualified(text)
        if not term:
            raise RuleError(f"term reference {text!r} has an empty term")
        return cls(ontology, term)

    def qualified(self, default_ontology: str | None = None) -> str:
        onto = self.ontology or default_ontology
        if onto is None:
            raise RuleError(f"term reference {self.term!r} is unqualified")
        return f"{onto}:{self.term}"

    def __str__(self) -> str:
        return f"{self.ontology}:{self.term}" if self.ontology else self.term


class Operand:
    """Base class for rule operands."""

    def terms(self) -> Iterator[TermRef]:
        raise NotImplementedError

    def default_label(self) -> str:
        """The label for a node synthesized from this operand."""
        raise NotImplementedError


@dataclass(frozen=True, slots=True)
class TermOperand(Operand):
    ref: TermRef

    def terms(self) -> Iterator[TermRef]:
        yield self.ref

    def default_label(self) -> str:
        return self.ref.term

    def __str__(self) -> str:
        return str(self.ref)


@dataclass(frozen=True, slots=True)
class AndOperand(Operand):
    """Conjunction of terms: matches things belonging to *all* operands."""

    operands: tuple[TermOperand, ...]

    def __post_init__(self) -> None:
        if len(self.operands) < 2:
            raise RuleError("conjunction needs at least two operands")

    def terms(self) -> Iterator[TermRef]:
        for operand in self.operands:
            yield from operand.terms()

    def default_label(self) -> str:
        # Paper: CargoCarrier ^ Vehicle synthesizes CargoCarrierVehicle.
        return "".join(op.ref.term for op in self.operands)

    def __str__(self) -> str:
        return "(" + " ^ ".join(str(op) for op in self.operands) + ")"


@dataclass(frozen=True, slots=True)
class OrOperand(Operand):
    """Disjunction of terms: things belonging to *any* operand."""

    operands: tuple[TermOperand, ...]

    def __post_init__(self) -> None:
        if len(self.operands) < 2:
            raise RuleError("disjunction needs at least two operands")

    def terms(self) -> Iterator[TermRef]:
        for operand in self.operands:
            yield from operand.terms()

    def default_label(self) -> str:
        # Paper: Cars | Trucks synthesizes CarsTrucks.
        return "".join(op.ref.term for op in self.operands)

    def __str__(self) -> str:
        return "(" + " | ".join(str(op) for op in self.operands) + ")"


@dataclass(frozen=True, slots=True)
class HornClause:
    """``head :- body``; atoms are ``(predicate, args...)`` tuples.

    The rule layer only ever emits binary ``implies`` atoms over
    qualified terms, but the clause form is general so the inference
    engine can mix in relationship axioms.
    """

    head: tuple[str, ...]
    body: tuple[tuple[str, ...], ...] = ()

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        head = f"{self.head[0]}({', '.join(self.head[1:])})"
        if not self.body:
            return f"{head}."
        body = ", ".join(f"{b[0]}({', '.join(b[1:])})" for b in self.body)
        return f"{head} :- {body}."


@dataclass(frozen=True)
class ImplicationRule:
    """A (possibly cascaded / compound) semantic-implication rule.

    ``steps`` is the cascade ``P0 => P1 => ... => Pk`` with ``k >= 1``;
    the common case is two steps.  ``label`` overrides the synthesized
    class name when a compound operand needs a node (``AS`` clause).
    ``source`` records the rule's provenance ("expert", "skat",
    "inferred"), which the expert loop uses to rank suggestions.
    """

    steps: tuple[Operand, ...]
    label: str | None = None
    source: str = "expert"

    def __post_init__(self) -> None:
        if len(self.steps) < 2:
            raise RuleError("implication rule needs at least two steps")
        compound = [
            s for s in self.steps if isinstance(s, (AndOperand, OrOperand))
        ]
        if len(compound) > 1:
            raise RuleError(
                "at most one compound operand per rule is supported"
            )

    @property
    def premise(self) -> Operand:
        return self.steps[0]

    @property
    def consequence(self) -> Operand:
        return self.steps[-1]

    def terms(self) -> Iterator[TermRef]:
        for step in self.steps:
            yield from step.terms()

    def ontologies(self) -> set[str]:
        return {ref.ontology for ref in self.terms() if ref.ontology}

    def is_simple(self) -> bool:
        """A plain ``O1:A => O2:B`` between two single terms."""
        return len(self.steps) == 2 and all(
            isinstance(s, TermOperand) for s in self.steps
        )

    def atomic_implications(
        self, articulation: str
    ) -> list[tuple[str, str]]:
        """Break the cascade into atomic ``(specific, general)`` pairs.

        The paper: "the notational convenience of multi-term implication
        is broken down by the inference engine into multiple atomic
        implicative rules."  Compound operands are represented by the
        qualified name of their synthesized articulation class.
        """
        names: list[str] = []
        for step in self.steps:
            if isinstance(step, TermOperand):
                names.append(step.ref.qualified(articulation))
            else:
                label = self.label or step.default_label()
                names.append(f"{articulation}:{label}")
        return [(names[i], names[i + 1]) for i in range(len(names) - 1)]

    def to_horn(self, articulation: str) -> list[HornClause]:
        """Horn form: one ``implies`` fact per atomic implication."""
        return [
            HornClause(("implies", specific, general))
            for specific, general in self.atomic_implications(articulation)
        ]

    def __str__(self) -> str:
        text = " => ".join(str(s) for s in self.steps)
        if self.label:
            text += f" AS {self.label}"
        return text


@dataclass(frozen=True)
class FunctionalRule:
    """A conversion-function bridge (paper §4.1, Functional Rules).

    ``fn`` converts a value expressed in ``source``'s metric into
    ``target``'s; ``inverse`` (optional) converts back.  The generator
    adds the edge ``(source, "name()", target)`` and, given an inverse,
    the reverse edge, mirroring the paper's ``PSToEuroFn``/``EuroToPSFn``
    pair in Fig. 2.

    ``expr_text`` / ``inverse_expr_text`` record the textual arithmetic
    bodies when the rule came from (or should round-trip through) the
    rule language, e.g. ``PSToEuroFn(x / 0.7111 ; x * 0.7111 ;
    EuroToPSFn) : carrier:PoundSterling => transport:Euro``.
    """

    name: str
    source: TermRef
    target: TermRef
    fn: Callable[[float], float] | None = None
    inverse: Callable[[float], float] | None = None
    inverse_name: str | None = None
    source_kind: str = "expert"
    expr_text: str | None = None
    inverse_expr_text: str | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise RuleError("functional rule needs a function name")

    def edge_label(self) -> str:
        return f"{self.name}()"

    def inverse_edge_label(self) -> str | None:
        if self.inverse is None and self.inverse_name is None:
            return None
        return f"{self.inverse_name or self._default_inverse_name()}()"

    def _default_inverse_name(self) -> str:
        return f"{self.name}Inverse"

    def apply(self, value: float) -> float:
        if self.fn is None:
            raise RuleError(
                f"functional rule {self.name!r} has no executable function"
            )
        return self.fn(value)

    def apply_inverse(self, value: float) -> float:
        if self.inverse is None:
            raise RuleError(
                f"functional rule {self.name!r} has no inverse function"
            )
        return self.inverse(value)

    def __str__(self) -> str:
        body = ""
        if self.expr_text:
            parts = [self.expr_text]
            if self.inverse_expr_text:
                parts.append(self.inverse_expr_text)
                if self.inverse_name:
                    parts.append(self.inverse_name)
            body = " ; ".join(parts)
        return f"{self.name}({body}) : {self.source} => {self.target}"


Rule = ImplicationRule | FunctionalRule


class ArticulationRuleSet:
    """An ordered, de-duplicated collection of articulation rules.

    ``version`` is a monotonic mutation counter: it moves on every
    successful :meth:`add`, so caches keyed on it (the articulation's
    fingerprint, the memoized atomic-implication extraction) detect
    change without hashing the rules themselves.
    """

    def __init__(self, rules: Iterable[Rule] = ()) -> None:
        self._rules: list[Rule] = []
        self._seen: set[str] = set()
        self._version = 0
        # (version, articulation name) -> atomic (specific, general)
        # pairs, in rule order; one entry only — refreshes target one
        # articulation at a time.
        self._atomic_cache: tuple[tuple[int, str], tuple[tuple[str, str], ...]] | None = None
        for rule in rules:
            self.add(rule)

    @property
    def version(self) -> int:
        return self._version

    def add(self, rule: Rule) -> bool:
        """Add a rule; return False if an identical rule is present."""
        key = str(rule)
        if key in self._seen:
            return False
        self._seen.add(key)
        self._rules.append(rule)
        self._version += 1
        return True

    def atomic_pairs(self, articulation: str) -> tuple[tuple[str, str], ...]:
        """Every implication rule's atomic ``(specific, general)`` pairs.

        Memoized against ``version`` — the inference engine re-extracts
        the rule program on each refresh, and the rule set rarely moves
        between refreshes.  Returns a tuple so callers cannot mutate
        the cached entry in place.
        """
        key = (self._version, articulation)
        cached = self._atomic_cache
        if cached is not None and cached[0] == key:
            return cached[1]
        pairs: list[tuple[str, str]] = []
        for rule in self.implications():
            pairs.extend(rule.atomic_implications(articulation))
        frozen = tuple(pairs)
        self._atomic_cache = (key, frozen)
        return frozen

    def add_text(self, text: str) -> bool:
        return self.add(parse_rule(text))

    def extend(self, rules: Iterable[Rule]) -> int:
        return sum(1 for rule in rules if self.add(rule))

    def implications(self) -> list[ImplicationRule]:
        return [r for r in self._rules if isinstance(r, ImplicationRule)]

    def functional(self) -> list[FunctionalRule]:
        return [r for r in self._rules if isinstance(r, FunctionalRule)]

    def ontologies(self) -> set[str]:
        """Every source ontology the rules mention."""
        names: set[str] = set()
        for rule in self._rules:
            if isinstance(rule, ImplicationRule):
                names |= rule.ontologies()
            else:
                for ref in (rule.source, rule.target):
                    if ref.ontology:
                        names.add(ref.ontology)
        return names

    def to_horn(self, articulation: str) -> list[HornClause]:
        clauses: list[HornClause] = []
        for rule in self.implications():
            clauses.extend(rule.to_horn(articulation))
        return clauses

    def __iter__(self) -> Iterator[Rule]:
        return iter(self._rules)

    def __len__(self) -> int:
        return len(self._rules)

    def __contains__(self, rule: Rule) -> bool:
        return str(rule) in self._seen

    def copy(self) -> "ArticulationRuleSet":
        return ArticulationRuleSet(self._rules)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<ArticulationRuleSet rules={len(self._rules)}>"


# ----------------------------------------------------------------------
# textual rule parsing
# ----------------------------------------------------------------------
_FUNCTIONAL = re.compile(
    r"^\s*(?P<name>[A-Za-z_][A-Za-z0-9_]*)\s*\((?P<body>.*)\)\s*:"
    r"\s*(?P<rest>.+)$",
    re.DOTALL,
)

# Node types permitted in functional-rule arithmetic bodies.
_ALLOWED_EXPR_NODES = (
    "Expression",
    "BinOp",
    "UnaryOp",
    "Constant",
    "Name",
    "Add",
    "Sub",
    "Mult",
    "Div",
    "Pow",
    "Mod",
    "USub",
    "UAdd",
    "Load",
)


def compile_conversion(expression: str) -> Callable[[float], float]:
    """Compile an arithmetic expression over ``x`` into a callable.

    Only literals, ``x`` and ``+ - * / ** %`` are allowed — this is the
    rule-language form of the paper's expert-supplied normalization
    functions, safe to load from rule files.
    """
    import ast as _ast

    try:
        tree = _ast.parse(expression, mode="eval")
    except SyntaxError as exc:
        raise RuleError(
            f"cannot parse conversion expression {expression!r}: {exc}"
        ) from exc
    for node in _ast.walk(tree):
        kind = type(node).__name__
        if kind not in _ALLOWED_EXPR_NODES:
            raise RuleError(
                f"conversion expression {expression!r} uses unsupported "
                f"construct {kind}"
            )
        if isinstance(node, _ast.Name) and node.id != "x":
            raise RuleError(
                f"conversion expression may only reference 'x', "
                f"found {node.id!r}"
            )
        if isinstance(node, _ast.Constant) and not isinstance(
            node.value, (int, float)
        ):
            raise RuleError(
                f"conversion expression {expression!r} uses a non-numeric "
                "literal"
            )
    code = compile(tree, "<conversion>", "eval")

    def convert(x: float) -> float:
        return eval(code, {"__builtins__": {}}, {"x": x})  # noqa: S307

    return convert
_AS_CLAUSE = re.compile(r"\s+AS\s+(?P<label>[A-Za-z_][A-Za-z0-9_\-]*)\s*$")


def _parse_operand(text: str, original: str) -> Operand:
    text = text.strip()
    if not text:
        raise RuleParseError(original, "empty operand")
    if text.startswith("(") and text.endswith(")"):
        inner = text[1:-1].strip()
        for symbol, cls in (("^", AndOperand), ("&", AndOperand), ("|", OrOperand)):
            if symbol in inner:
                parts = [p.strip() for p in inner.split(symbol)]
                if any(not p for p in parts):
                    raise RuleParseError(original, f"empty operand near {symbol!r}")
                try:
                    return cls(
                        tuple(TermOperand(TermRef.parse(p)) for p in parts)
                    )
                except RuleError as exc:
                    raise RuleParseError(original, str(exc)) from exc
        text = inner  # parenthesized single term
    if any(symbol in text for symbol in "^&|"):
        raise RuleParseError(
            original, "compound operands must be parenthesized"
        )
    try:
        return TermOperand(TermRef.parse(text))
    except RuleError as exc:
        raise RuleParseError(original, str(exc)) from exc


def parse_rule(text: str, *, source: str = "expert") -> Rule:
    """Parse one textual rule (see module docstring for the syntax)."""
    original = text
    if not text or not text.strip():
        raise RuleParseError(text, "empty rule")
    stripped = text.strip()

    functional = _FUNCTIONAL.match(stripped)
    if functional:
        rest = functional.group("rest")
        sides = [s.strip() for s in rest.split("=>")]
        if len(sides) != 2 or not all(sides):
            raise RuleParseError(
                original, "functional rule needs exactly one '=>'"
            )
        try:
            source_ref = TermRef.parse(sides[0])
            target_ref = TermRef.parse(sides[1])
        except RuleError as exc:
            raise RuleParseError(original, str(exc)) from exc
        body = functional.group("body").strip()
        fn = inverse = None
        expr_text = inverse_expr_text = inverse_name = None
        if body:
            segments = [seg.strip() for seg in body.split(";")]
            if len(segments) > 3:
                raise RuleParseError(
                    original,
                    "functional body is 'expr [; inverse_expr "
                    "[; InverseName]]'",
                )
            try:
                expr_text = segments[0]
                fn = compile_conversion(expr_text)
                if len(segments) >= 2:
                    inverse_expr_text = segments[1]
                    inverse = compile_conversion(inverse_expr_text)
                if len(segments) == 3:
                    inverse_name = segments[2]
                    if not re.fullmatch(
                        r"[A-Za-z_][A-Za-z0-9_]*", inverse_name
                    ):
                        raise RuleError(
                            f"invalid inverse name {inverse_name!r}"
                        )
            except RuleError as exc:
                raise RuleParseError(original, str(exc)) from exc
        return FunctionalRule(
            functional.group("name"),
            source_ref,
            target_ref,
            fn=fn,
            inverse=inverse,
            inverse_name=inverse_name,
            source_kind=source,
            expr_text=expr_text,
            inverse_expr_text=inverse_expr_text,
        )

    label: str | None = None
    as_clause = _AS_CLAUSE.search(stripped)
    if as_clause:
        label = as_clause.group("label")
        stripped = stripped[: as_clause.start()]

    sides = [s.strip() for s in stripped.split("=>")]
    if len(sides) < 2:
        raise RuleParseError(original, "rule needs at least one '=>'")
    if any(not s for s in sides):
        raise RuleParseError(original, "empty rule step")
    steps = tuple(_parse_operand(s, original) for s in sides)
    try:
        return ImplicationRule(steps, label=label, source=source)
    except RuleError as exc:
        raise RuleParseError(original, str(exc)) from exc


def parse_rules(
    lines: Iterable[str] | str, *, source: str = "expert"
) -> ArticulationRuleSet:
    """Parse many rules; blank lines and ``#`` comments are skipped."""
    if isinstance(lines, str):
        lines = lines.splitlines()
    ruleset = ArticulationRuleSet()
    for line in lines:
        body = line.split("#", 1)[0].strip()
        if body:
            ruleset.add(parse_rule(body, source=source))
    return ruleset
