"""The unified ontology — a *virtual* composition (paper §2, §5.1).

"It is important to note that the unified ontology is not a physical
entity but is merely a term coined to facilitate the current
discourse.  The source ontologies are independently maintained and the
articulation is the only thing that is physically stored."

:class:`UnifiedOntology` therefore holds references to the source
ontologies and the articulation, and *computes* the union graph on
demand.  :meth:`materialize` produces a single physical
:class:`~repro.core.ontology.Ontology` over qualified term names —
used by the global-schema baseline and by tests, never by the ONION
pipeline itself.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.core.articulation import Articulation
from repro.core.graph import LabeledGraph
from repro.core.ontology import Ontology, qualify, split_qualified
from repro.core.relations import (
    SEMANTIC_IMPLICATION,
    SI_BRIDGE,
    SUBCLASS_OF,
)
from repro.errors import AlgebraError, TermNotFoundError

__all__ = ["UnifiedOntology"]

# Edge labels that carry "directed subset" semantics in the unified
# graph: local specialization, semantic implication, and bridges.
_IMPLICATION_LABELS = frozenset(
    {SUBCLASS_OF.code, SEMANTIC_IMPLICATION.code, SI_BRIDGE.code}
)


class UnifiedOntology:
    """A virtual union of source ontologies through an articulation."""

    def __init__(self, articulation: Articulation) -> None:
        self.articulation = articulation

    @property
    def sources(self) -> dict[str, Ontology]:
        return self.articulation.sources

    @property
    def name(self) -> str:
        return self.articulation.name

    # ------------------------------------------------------------------
    # resolution
    # ------------------------------------------------------------------
    def resolve(self, qualified: str) -> tuple[Ontology, str]:
        """Resolve ``onto:term`` to its owning ontology and local term."""
        onto_name, term = split_qualified(qualified)
        if onto_name is None:
            raise AlgebraError(
                f"unified lookup needs a qualified term, got {qualified!r}"
            )
        if onto_name == self.articulation.name:
            owner: Ontology = self.articulation.ontology
        else:
            try:
                owner = self.sources[onto_name]
            except KeyError:
                raise TermNotFoundError(term, onto_name) from None
        if not owner.has_term(term):
            raise TermNotFoundError(term, onto_name)
        return owner, term

    def has_term(self, qualified: str) -> bool:
        try:
            self.resolve(qualified)
        except (AlgebraError, TermNotFoundError):
            return False
        return True

    def terms(self) -> Iterator[str]:
        """All qualified terms: every source, then the articulation."""
        for name, source in self.sources.items():
            for term in source.terms():
                yield qualify(name, term)
        for term in self.articulation.ontology.terms():
            yield qualify(self.articulation.name, term)

    def term_count(self) -> int:
        return sum(len(s) for s in self.sources.values()) + len(
            self.articulation.ontology
        )

    # ------------------------------------------------------------------
    # the union graph (version-stamp cached on the articulation)
    # ------------------------------------------------------------------
    def graph(self) -> LabeledGraph:
        """§5.1 union semantics over qualified node ids.

        Returns the articulation's *shared cached* unified graph —
        treat it as read-only; mutate a ``.copy()`` instead (the same
        instance backs the algebra operators and cached match
        indexes).
        """
        return self.articulation.unified_graph()

    def materialize(self, name: str = "unified") -> Ontology:
        """Flatten into one physical ontology over qualified term names.

        Qualified ids become the terms of the result, so the output is
        consistent by construction.  This exists for baselines and
        tests; ONION itself never materializes the union (§2).
        """
        merged = Ontology(name.replace(":", "_"))
        graph = self.graph()
        for node in graph.nodes():
            merged.ensure_term(node.replace(":", "."))
        for edge in graph.edges():
            merged.relate(
                edge.source.replace(":", "."),
                edge.label,
                edge.target.replace(":", "."),
            )
        return merged

    # ------------------------------------------------------------------
    # semantic navigation across sources
    # ------------------------------------------------------------------
    def implies(self, specific: str, general: str) -> bool:
        """True iff ``specific``'s concept is subsumed by ``general``'s.

        Both arguments are qualified terms; the check walks SubclassOf,
        SemanticImplication and bridge edges in the unified graph —
        exactly the reasoning the query processor uses to decide which
        sources can answer a query term.
        """
        self.resolve(specific)
        self.resolve(general)
        graph = self.graph()
        reach = graph.reachable_from(specific, labels=_IMPLICATION_LABELS)
        return general in reach

    def specializations(self, qualified: str) -> set[str]:
        """All qualified terms whose concepts imply ``qualified``'s."""
        self.resolve(qualified)
        graph = self.graph()
        return (
            graph.reachable_from(
                qualified, labels=_IMPLICATION_LABELS, reverse=True
            )
            - {qualified}
        )

    def generalizations(self, qualified: str) -> set[str]:
        """All qualified terms implied by ``qualified``."""
        self.resolve(qualified)
        graph = self.graph()
        return graph.reachable_from(qualified, labels=_IMPLICATION_LABELS) - {
            qualified
        }

    def equivalents(self, qualified: str) -> set[str]:
        """Terms mutually implied with ``qualified`` (SI cycles, §4.1)."""
        self.resolve(qualified)
        graph = self.graph()
        forward = graph.reachable_from(qualified, labels=_IMPLICATION_LABELS)
        backward = graph.reachable_from(
            qualified, labels=_IMPLICATION_LABELS, reverse=True
        )
        return (forward & backward) - {qualified}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<UnifiedOntology articulation={self.articulation.name!r} "
            f"sources={sorted(self.sources)}>"
        )
