"""Graph transformation primitives NA / ND / EA / ED (paper §3).

The paper defines exactly four primitive operations on ontology
graphs:

* **NA** — node addition: a node plus its adjacent edges;
* **ND** — node deletion: a node plus every incident edge;
* **EA** — edge addition of a set of edges;
* **ED** — edge deletion of a set of edges.

Each primitive here is a small command object with ``apply`` and
``invert``.  The articulation generator emits primitives instead of
mutating graphs directly, which gives us three things the paper's
architecture needs: a journal of what the articulation did (§2.4 —
the expert reviews and may roll back), cheap undo when the expert
rejects a suggestion, and op counts that the maintenance benchmarks
use as their cost model.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass, field

from repro.core.graph import Edge, LabeledGraph
from repro.errors import GraphError

__all__ = [
    "NodeAddition",
    "NodeDeletion",
    "EdgeAddition",
    "EdgeDeletion",
    "Transformation",
    "TransformLog",
    "apply_all",
]


@dataclass(frozen=True, slots=True)
class NodeAddition:
    """NA: add node ``node_id`` (labeled ``label``) and its adjacent edges.

    Matches the paper: ``M' = M + N`` and ``E' = E + {(N, alpha_i, m_j)}``.
    Adjacent edges may point either way; endpoints other than the new
    node must already exist.
    """

    node_id: str
    label: str | None = None
    edges: tuple[Edge, ...] = ()

    def apply(self, graph: LabeledGraph) -> None:
        graph.add_node(self.node_id, self.label)
        for edge in self.edges:
            if self.node_id not in (edge.source, edge.target):
                raise GraphError(
                    f"NA edge {edge} is not adjacent to new node {self.node_id!r}"
                )
            graph.add_edge(edge.source, edge.label, edge.target)

    def invert(self) -> "NodeDeletion":
        return NodeDeletion(self.node_id, self.label, self.edges)

    def cost(self) -> int:
        """Number of elementary graph changes (1 node + its edges)."""
        return 1 + len(self.edges)


@dataclass(frozen=True, slots=True)
class NodeDeletion:
    """ND: delete node ``node_id`` and all incident edges.

    ``label`` and ``edges`` record what was removed so the operation
    can be inverted; they are filled in by :meth:`TransformLog.apply`
    when not supplied by the caller.
    """

    node_id: str
    label: str | None = None
    edges: tuple[Edge, ...] = ()

    def apply(self, graph: LabeledGraph) -> "NodeDeletion":
        """Delete the node; return a fully-recorded deletion (for undo)."""
        label = graph.label(self.node_id)
        removed = tuple(graph.remove_node(self.node_id))
        return NodeDeletion(self.node_id, label, removed)

    def invert(self) -> NodeAddition:
        if self.label is None:
            raise GraphError(
                f"cannot invert ND({self.node_id!r}): removal was never applied"
            )
        return NodeAddition(self.node_id, self.label, self.edges)

    def cost(self) -> int:
        return 1 + len(self.edges)


@dataclass(frozen=True, slots=True)
class EdgeAddition:
    """EA: add a set of edges; all endpoints must already exist.

    ``apply`` returns a copy recording only the edges that were
    actually new — inverting that copy never deletes an edge that
    predated the operation.
    """

    edges: tuple[Edge, ...]

    def apply(self, graph: LabeledGraph) -> "EdgeAddition":
        added: list[Edge] = []
        for edge in self.edges:
            if not graph.has_edge(edge.source, edge.label, edge.target):
                graph.add_edge(edge.source, edge.label, edge.target)
                added.append(edge)
        return EdgeAddition(tuple(added))

    def invert(self) -> "EdgeDeletion":
        return EdgeDeletion(self.edges)

    def cost(self) -> int:
        return len(self.edges)


@dataclass(frozen=True, slots=True)
class EdgeDeletion:
    """ED: remove a set of edges (each must be present)."""

    edges: tuple[Edge, ...]

    def apply(self, graph: LabeledGraph) -> None:
        for edge in self.edges:
            graph.remove_edge(edge)

    def invert(self) -> EdgeAddition:
        return EdgeAddition(self.edges)

    def cost(self) -> int:
        return len(self.edges)


Transformation = NodeAddition | NodeDeletion | EdgeAddition | EdgeDeletion


@dataclass
class TransformLog:
    """An append-only journal of applied primitives, with undo.

    The log stores the *recorded* form of each primitive (node
    deletions capture what they removed), so :meth:`undo` and
    :meth:`rollback` can restore the graph exactly.
    """

    applied: list[Transformation] = field(default_factory=list)

    def apply(self, graph: LabeledGraph, op: Transformation) -> Transformation:
        """Apply one primitive to ``graph`` and journal it."""
        if isinstance(op, (NodeDeletion, EdgeAddition)):
            recorded: Transformation = op.apply(graph)
        else:
            op.apply(graph)
            recorded = op
        self.applied.append(recorded)
        return recorded

    def apply_all(
        self, graph: LabeledGraph, ops: Iterable[Transformation]
    ) -> list[Transformation]:
        return [self.apply(graph, op) for op in ops]

    def undo(self, graph: LabeledGraph) -> Transformation | None:
        """Undo the most recent primitive; return it, or None if empty."""
        if not self.applied:
            return None
        op = self.applied.pop()
        op.invert().apply(graph)
        return op

    def rollback(self, graph: LabeledGraph, *, to: int = 0) -> int:
        """Undo back to journal position ``to``; return ops undone."""
        undone = 0
        while len(self.applied) > to:
            self.undo(graph)
            undone += 1
        return undone

    def total_cost(self) -> int:
        """Sum of elementary graph changes across the journal.

        This is the work metric the scalability and maintenance
        benchmarks report, so results do not depend on wall-clock noise.
        """
        return sum(op.cost() for op in self.applied)

    def checkpoint(self) -> int:
        """Current journal position, for later :meth:`rollback`."""
        return len(self.applied)

    def __len__(self) -> int:
        return len(self.applied)

    def __iter__(self) -> Iterator[Transformation]:
        return iter(self.applied)


def apply_all(graph: LabeledGraph, ops: Sequence[Transformation]) -> TransformLog:
    """Apply a batch of primitives to ``graph``; return the journal."""
    log = TransformLog()
    log.apply_all(graph, ops)
    return log
