"""The ontology model: a named, consistent, directed labeled graph.

An :class:`Ontology` wraps a :class:`~repro.core.graph.LabeledGraph`
and enforces the consistency requirement from §1 of the paper: *"a term
in an ontology does not refer to different concepts within one
knowledge base"*.  Inside one ontology, therefore, the term string *is*
the node id, and the paper's convention of using a node's label in
place of the node (§3, end) is safe.

Across ontologies the same term may appear in several sources; the
module-level helpers :func:`qualify` and :func:`split_qualified` define
the ``ontology:term`` naming used by unified graphs, articulation
bridges and the textual rule/pattern languages.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from repro.core.graph import Edge, LabeledGraph
from repro.core.relations import (
    ATTRIBUTE_OF,
    INSTANCE_OF,
    SEMANTIC_IMPLICATION,
    SUBCLASS_OF,
    RelationRegistry,
    standard_registry,
)
from repro.errors import (
    ConsistencyError,
    GraphError,
    OntologyError,
    TermNotFoundError,
)

__all__ = ["Ontology", "qualify", "split_qualified", "QUALIFIER"]

QUALIFIER = ":"


def qualify(ontology_name: str, term: str) -> str:
    """Build the qualified node id ``ontology:term`` used in unified graphs."""
    return f"{ontology_name}{QUALIFIER}{term}"


def split_qualified(qualified: str) -> tuple[str | None, str]:
    """Split ``ontology:term`` into its parts.

    Unqualified inputs return ``(None, term)``.  Only the *first*
    separator splits, so terms containing ``:`` survive round-trips.
    """
    if QUALIFIER in qualified:
        ontology, term = qualified.split(QUALIFIER, 1)
        return ontology, term
    return None, qualified


class Ontology:
    """A named ontology: terms (nodes) plus labeled relationships (edges).

    The constructor starts from an empty graph and the paper's standard
    relationship registry; wrappers in :mod:`repro.formats` build
    ontologies from external representations.
    """

    def __init__(
        self,
        name: str,
        *,
        registry: RelationRegistry | None = None,
    ) -> None:
        if not name:
            raise OntologyError("ontology name must be non-empty")
        if QUALIFIER in name:
            raise OntologyError(
                f"ontology name may not contain {QUALIFIER!r}: {name!r}"
            )
        self.name = name
        self.graph = LabeledGraph()
        self.registry = registry if registry is not None else standard_registry()

    # ------------------------------------------------------------------
    # term management
    # ------------------------------------------------------------------
    def add_term(self, term: str) -> str:
        """Add a term (concept) to the ontology.

        The node id and label are both the term string, which keeps the
        label/node interchangeability the paper relies on.  Adding a
        term twice raises — that would mean one term for two concepts.
        """
        if self.graph.has_node(term):
            raise ConsistencyError(
                f"term {term!r} already exists in ontology {self.name!r}"
            )
        return self.graph.add_node(term, term)

    def ensure_term(self, term: str) -> str:
        """Add the term if absent; return it either way."""
        if not self.graph.has_node(term):
            self.graph.add_node(term, term)
        return term

    def remove_term(self, term: str) -> list[Edge]:
        """Remove a term and all its relationships; return removed edges."""
        self._require(term)
        return self.graph.remove_node(term)

    def has_term(self, term: str) -> bool:
        return self.graph.has_node(term)

    def terms(self) -> Iterator[str]:
        return self.graph.nodes()

    def term_count(self) -> int:
        return self.graph.node_count()

    def _require(self, term: str) -> str:
        if not self.graph.has_node(term):
            raise TermNotFoundError(term, self.name)
        return term

    # ------------------------------------------------------------------
    # relationship management
    # ------------------------------------------------------------------
    def relate(self, source: str, relation: str, target: str) -> Edge:
        """Add the relationship edge ``(source, relation, target)``.

        ``relation`` may be a registered long name ("SubclassOf"), a
        registered code ("S"), or any other non-empty verb label — the
        paper allows free binary relationships beyond the standard set.
        Registered names are normalized to their edge code so the graph
        matches the paper's figures.
        """
        self._require(source)
        self._require(target)
        known = self.registry.get(relation)
        code = known.code if known is not None else relation
        return self.graph.add_edge(source, code, target)

    def unrelate(self, source: str, relation: str, target: str) -> None:
        """Remove a relationship edge; raises if it is not present."""
        known = self.registry.get(relation)
        code = known.code if known is not None else relation
        self.graph.remove_edge(Edge(source, code, target))

    def add_subclass(self, subclass: str, superclass: str) -> Edge:
        """``subclass`` SubclassOf ``superclass`` (edge label ``S``)."""
        return self.relate(subclass, SUBCLASS_OF.name, superclass)

    def add_attribute(self, attribute: str, owner: str) -> Edge:
        """``attribute`` AttributeOf ``owner`` (edge label ``A``)."""
        return self.relate(attribute, ATTRIBUTE_OF.name, owner)

    def add_instance(self, instance: str, cls: str) -> Edge:
        """``instance`` InstanceOf ``cls`` (edge label ``I``)."""
        return self.relate(instance, INSTANCE_OF.name, cls)

    def add_implication(self, specific: str, general: str) -> Edge:
        """``specific`` SemanticImplication ``general`` (edge label ``SI``)."""
        return self.relate(specific, SEMANTIC_IMPLICATION.name, general)

    # ------------------------------------------------------------------
    # structural queries (direct, non-inferred; the inference engine
    # provides the transitive versions)
    # ------------------------------------------------------------------
    def related(self, source: str, relation: str) -> set[str]:
        """Targets of ``relation`` edges leaving ``source``."""
        self._require(source)
        known = self.registry.get(relation)
        code = known.code if known is not None else relation
        return self.graph.successors(source, code)

    def superclasses(self, term: str) -> set[str]:
        return self.related(term, SUBCLASS_OF.code)

    def subclasses(self, term: str) -> set[str]:
        self._require(term)
        return self.graph.predecessors(term, SUBCLASS_OF.code)

    def attributes(self, term: str) -> set[str]:
        """Attributes attached to ``term`` (sources of ``A`` edges into it)."""
        self._require(term)
        return self.graph.predecessors(term, ATTRIBUTE_OF.code)

    def instances(self, term: str) -> set[str]:
        self._require(term)
        return self.graph.predecessors(term, INSTANCE_OF.code)

    def ancestors(self, term: str, relation: str | None = None) -> set[str]:
        """All terms reachable from ``term`` via ``relation`` edges.

        Defaults to SubclassOf.  Excludes the term itself.
        """
        self._require(term)
        code = self.registry.code_for(relation or SUBCLASS_OF.name)
        return self.graph.reachable_from(term, labels={code}) - {term}

    def descendants(self, term: str, relation: str | None = None) -> set[str]:
        """All terms that reach ``term`` via ``relation`` edges (excl. itself)."""
        self._require(term)
        code = self.registry.code_for(relation or SUBCLASS_OF.name)
        return self.graph.reachable_from(term, labels={code}, reverse=True) - {
            term
        }

    def roots(self, relation: str | None = None) -> set[str]:
        """Terms with no outgoing ``relation`` edge (hierarchy tops)."""
        code = self.registry.code_for(relation or SUBCLASS_OF.name)
        return {
            term
            for term in self.graph.nodes()
            if not self.graph.out_edges(term, code)
        }

    # ------------------------------------------------------------------
    # validation / introspection
    # ------------------------------------------------------------------
    def validate(self) -> list[str]:
        """Check ontology invariants; return a list of human-readable issues.

        An empty list means the ontology is well-formed: consistent
        labels, no dangling structure, and no cycle in the SubclassOf
        hierarchy (a class that is its own strict specialization is the
        kind of articulation error §1 says the model must detect).
        """
        issues: list[str] = []
        if not self.graph.is_consistent():
            issues.append("graph labels are not consistent (duplicate labels)")
        for term in self.graph.nodes():
            if self.graph.label(term) != term:
                issues.append(
                    f"node id {term!r} disagrees with its label "
                    f"{self.graph.label(term)!r}"
                )
        for code in self.registry.transitive_codes():
            if code == SEMANTIC_IMPLICATION.code:
                # SI cycles express equivalence and are legal (§4.1 uses
                # a two-way SIBridge pair for equivalence).
                continue
            try:
                self.graph.topological_order(labels={code})
            except GraphError:
                # the one expected failure: a cycle over this label set.
                # Any other exception is a bug and must propagate.
                issues.append(f"cycle detected over transitive relation {code!r}")
        return issues

    def is_valid(self) -> bool:
        return not self.validate()

    def triples(self) -> Iterator[tuple[str, str, str]]:
        """Iterate relationships as ``(source, relation-code, target)``."""
        for edge in self.graph.edges():
            yield (edge.source, edge.label, edge.target)

    # ------------------------------------------------------------------
    # copies and qualified projection
    # ------------------------------------------------------------------
    def copy(self, name: str | None = None) -> "Ontology":
        clone = Ontology(name or self.name, registry=self.registry.copy())
        clone.graph = self.graph.copy()
        return clone

    def qualified_graph(self) -> LabeledGraph:
        """This ontology's graph with node ids qualified as ``name:term``.

        Labels stay unqualified.  This is the projection the union
        operator and the unified ontology build on, so that identical
        vocabulary in two sources never collides.
        """
        graph = LabeledGraph()
        for term in self.graph.nodes():
            graph.add_node(qualify(self.name, term), self.graph.label(term))
        for edge in self.graph.edges():
            graph.add_edge(
                qualify(self.name, edge.source),
                edge.label,
                qualify(self.name, edge.target),
            )
        return graph

    def subontology(self, terms: Iterable[str], name: str | None = None) -> "Ontology":
        """The induced sub-ontology over ``terms`` (used by extract/filter)."""
        wanted = [self._require(t) for t in terms]
        sub = Ontology(name or self.name, registry=self.registry.copy())
        sub.graph = self.graph.subgraph(wanted)
        return sub

    def same_structure(self, other: "Ontology") -> bool:
        """Structural equality of the two ontology graphs (names ignored)."""
        return self.graph.same_structure(other.graph)

    def __contains__(self, term: object) -> bool:
        return isinstance(term, str) and self.graph.has_node(term)

    def __len__(self) -> int:
        return self.graph.node_count()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<Ontology {self.name!r} terms={self.graph.node_count()} "
            f"relationships={self.graph.edge_count()}>"
        )
