"""Parser for the paper's textual pattern notation (§3).

The paper sketches two textual forms and a bracket convention:

* ``carrier:car:driver`` — a pattern in the *carrier* ontology: a node
  ``car`` with an outgoing edge to a node ``driver``.  The first
  segment names the ontology; the remaining segments form a path.
* ``truck(O: owner, model)`` — a node ``truck`` with attribute edges
  from ``owner`` and ``model``; the variable ``O`` binds the node
  matched for ``owner``.  Variables are the capitalized bound terms.
* ``(curly) brackets to denote hierarchical objects`` —
  ``truck{owner{name}, model}`` nests attribute structure.

Grammar accepted here (whitespace-insensitive)::

    pattern   := [onto ':'] element
    element   := term [args | block]
    args      := '(' arg (',' arg)* ')'
    arg       := [VAR ':'] element
    block     := '{' element (',' element)* '}'
    path      := onto ':' term (':' term)+        # paper's a:b:c form

A leading single segment followed by ``:`` and plain terms (no
brackets) is parsed as the path form.  Attribute arguments create
``A``-labeled edges *into* the parent node, matching the direction the
paper's Fig. 2 draws AttributeOf edges (attribute -> owner).
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.core.patterns import ANY_LABEL, Pattern
from repro.core.relations import ATTRIBUTE_OF
from repro.errors import PatternParseError

__all__ = ["parse_pattern", "is_variable_token"]

_TOKEN = re.compile(
    r"\s*(?:(?P<name>[A-Za-z_][A-Za-z0-9_\-]*)|(?P<punct>[(){},:]))"
)


def is_variable_token(token: str) -> bool:
    """Variables are single-letter or ALL-CAPS identifiers (paper's ``O``)."""
    return token.isupper()


@dataclass
class _Tokenizer:
    text: str
    pos: int = 0

    def peek(self) -> str | None:
        match = _TOKEN.match(self.text, self.pos)
        if match is None:
            return None
        return match.group("name") or match.group("punct")

    def next(self) -> str | None:
        match = _TOKEN.match(self.text, self.pos)
        if match is None:
            return None
        self.pos = match.end()
        return match.group("name") or match.group("punct")

    def expect(self, token: str) -> None:
        got = self.next()
        if got != token:
            raise PatternParseError(
                self.text, f"expected {token!r}, found {got!r}"
            )

    def at_end(self) -> bool:
        return self.peek() is None and not self.text[self.pos :].strip()


class _Parser:
    """Recursive-descent parser emitting into a single Pattern."""

    def __init__(self, text: str) -> None:
        self.text = text
        self.tokens = _Tokenizer(text)
        self.pattern: Pattern | None = None
        self._counter = 0

    def fresh_id(self) -> str:
        node_id = f"n{self._counter}"
        self._counter += 1
        return node_id

    def parse(self) -> Pattern:
        first = self.tokens.next()
        if first is None or first in "(){},:":
            raise PatternParseError(self.text, "pattern must start with a term")

        ontology: str | None = None
        if self.tokens.peek() == ":":
            # Either the path form onto:a:b... or a scoped element
            # onto:term(...).  Decide after reading the second segment.
            self.tokens.expect(":")
            second = self.tokens.next()
            if second is None or second in "(){},:":
                raise PatternParseError(self.text, "dangling ':'")
            ontology = first
            if self.tokens.peek() == ":":
                return self._parse_path(ontology, second)
            self.pattern = Pattern(ontology)
            self._parse_element_body(second)
            self._check_done()
            return self.pattern

        self.pattern = Pattern(None)
        self._parse_element_body(first)
        self._check_done()
        return self.pattern

    def _check_done(self) -> None:
        if not self.tokens.at_end():
            raise PatternParseError(
                self.text, f"unexpected trailing input at offset {self.tokens.pos}"
            )

    def _parse_path(self, ontology: str, first_term: str) -> Pattern:
        """The ``onto:a:b:c`` chain form (any-labeled edges)."""
        terms = [first_term]
        while self.tokens.peek() == ":":
            self.tokens.expect(":")
            term = self.tokens.next()
            if term is None or term in "(){},:":
                raise PatternParseError(self.text, "dangling ':' in path")
            terms.append(term)
        self._check_done()
        return Pattern.path(terms, ontology=ontology, edge_label=ANY_LABEL)

    def _parse_element_body(self, term: str, variable: str | None = None) -> str:
        """Parse ``term [args|block]``; return the created node id."""
        assert self.pattern is not None
        node_id = self.fresh_id()
        self.pattern.add_node(node_id, term, variable)
        nxt = self.tokens.peek()
        if nxt == "(":
            self.tokens.expect("(")
            self._parse_children(node_id, closing=")")
        elif nxt == "{":
            self.tokens.expect("{")
            self._parse_children(node_id, closing="}")
        return node_id

    def _parse_children(self, parent_id: str, *, closing: str) -> None:
        """Parse a comma list of child elements; attach via A edges."""
        assert self.pattern is not None
        first = True
        while True:
            token = self.tokens.next()
            if token is None:
                raise PatternParseError(self.text, f"missing {closing!r}")
            if token == closing:
                if not first:
                    raise PatternParseError(
                        self.text, f"trailing ',' before {closing!r}"
                    )
                return  # allows empty argument lists
            first = False
            if token in "(){},:":
                raise PatternParseError(
                    self.text, f"unexpected {token!r} in argument list"
                )
            variable: str | None = None
            term = token
            if is_variable_token(token) and self.tokens.peek() == ":":
                self.tokens.expect(":")
                inner = self.tokens.next()
                if inner is None or inner in "(){},:":
                    raise PatternParseError(
                        self.text, f"variable {token!r} missing its term"
                    )
                variable = token
                term = inner
            child_id = self._parse_element_body(term, variable)
            # Attribute edges point attribute -> owner, as in Fig. 2.
            self.pattern.add_edge(child_id, ATTRIBUTE_OF.code, parent_id)
            token = self.tokens.next()
            if token == closing:
                return
            if token != ",":
                raise PatternParseError(
                    self.text, f"expected ',' or {closing!r}, found {token!r}"
                )


def parse_pattern(text: str) -> Pattern:
    """Parse the paper's textual pattern notation into a :class:`Pattern`.

    Examples::

        parse_pattern("carrier:car:driver")      # path in carrier
        parse_pattern("truck(O: owner, model)")  # node with attributes
        parse_pattern("factory:truck{owner{name}}")  # nested hierarchy
    """
    if not text or not text.strip():
        raise PatternParseError(text, "empty pattern")
    return _Parser(text).parse()
