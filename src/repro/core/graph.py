"""Directed labeled multigraph — the substrate of the ONION data layer.

The paper (§3) defines an ontology as a directed labeled graph
``G = (N, E)`` with a node-labeling function ``lambda`` and an
edge-labeling function ``delta``.  :class:`LabeledGraph` implements that
model directly:

* nodes are identified by an opaque string id and carry a non-null
  string label (the paper's ``lambda(n)``);
* edges are ``(source, label, target)`` triples (the paper's
  ``(n1, alpha, n2)``); a pair of nodes may be connected by many edges
  as long as their labels differ, and the same labeled edge is never
  stored twice.

The class keeps forward, backward and label indexes so that pattern
matching and the algebra operators stay near-linear in the size of the
portion of the graph they touch.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Iterable, Iterator
from dataclasses import dataclass
from typing import Callable

from repro.errors import (
    DuplicateNodeError,
    EdgeNotFoundError,
    GraphError,
    NodeNotFoundError,
)

__all__ = ["Edge", "LabeledGraph"]

# Mutation-journal retention: indexes more than this many mutations
# stale fall back to a full rebuild instead of a replay.
_JOURNAL_RETENTION = 256


@dataclass(frozen=True, slots=True)
class Edge:
    """A directed labeled edge ``(source, label, target)``.

    Matches the paper's edge form ``(n1, alpha, n2)``.  Edges are value
    objects: two edges are equal iff all three components are equal.
    """

    source: str
    label: str
    target: str

    def reversed(self) -> "Edge":
        """Return the same-labeled edge pointing the other way."""
        return Edge(self.target, self.label, self.source)

    def relabeled(self, label: str) -> "Edge":
        """Return a copy of this edge with a different label."""
        return Edge(self.source, label, self.target)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"({self.source} -[{self.label}]-> {self.target})"


class LabeledGraph:
    """A mutable directed labeled multigraph.

    Node ids are strings; each node has a non-empty string label.  In a
    consistent ontology the id and the label coincide (one node per
    term); in unified graphs ids are qualified (``ontology:term``) while
    labels stay unqualified, so the same vocabulary can appear in
    several sources without clashing.
    """

    __slots__ = (
        "_labels",
        "_out",
        "_in",
        "_edges",
        "_by_label",
        "_version",
        "_match_indexes",
        "_journal",
    )

    def __init__(self) -> None:
        self._labels: dict[str, str] = {}
        self._out: dict[str, set[Edge]] = {}
        self._in: dict[str, set[Edge]] = {}
        self._edges: set[Edge] = set()
        self._by_label: dict[str, set[str]] = {}
        self._version = 0
        # Per-(graph, MatchConfig-value) candidate indexes, managed by
        # repro.core.patterns.MatchIndex; entries self-invalidate
        # against ``_version``.
        self._match_indexes: dict[tuple, object] = {}
        # Bounded mutation journal: one (version, op, ...) row per
        # structural change, newest _JOURNAL_RETENTION rows kept.
        # MatchIndex replays the rows since its build version instead
        # of rebuilding; journal_since() serves the span.
        self._journal: deque[tuple] = deque(maxlen=_JOURNAL_RETENTION)

    @property
    def version(self) -> int:
        """Monotonic mutation counter; bumped by every structural change.

        Caches built over a graph (pattern-match indexes, cached unified
        graphs) record the version they were built at and refresh when
        it moves — by replaying :meth:`journal_since` when the gap fits
        the journal window, from scratch otherwise.
        """
        return self._version

    def journal_since(self, version: int) -> list[tuple] | None:
        """Mutation rows recorded after ``version``, oldest first.

        Every structural mutation appends exactly one row tagged with
        the version it produced, so rows carry consecutive versions
        and the newest row is always the current version.  Returns
        ``[]`` when ``version`` is already current, ``None`` when the
        requested span has fallen out of the bounded window (the
        caller must rebuild its cache instead of replaying).
        """
        if version >= self._version:
            return []
        journal = self._journal
        if not journal or journal[0][0] > version + 1:
            return None
        return [row for row in journal if row[0] > version]

    # ------------------------------------------------------------------
    # node operations
    # ------------------------------------------------------------------
    def add_node(self, node_id: str, label: str | None = None) -> str:
        """Add a node.  The label defaults to the id itself.

        Raises :class:`DuplicateNodeError` if the id is taken and
        :class:`GraphError` if the label is empty (the paper requires
        ``lambda`` to map to a *non-null* string).
        """
        if node_id in self._labels:
            raise DuplicateNodeError(node_id)
        resolved = label if label is not None else node_id
        if not resolved:
            raise GraphError(f"node {node_id!r} must have a non-empty label")
        self._labels[node_id] = resolved
        self._out[node_id] = set()
        self._in[node_id] = set()
        self._by_label.setdefault(resolved, set()).add(node_id)
        self._version += 1
        self._journal.append((self._version, "add_node", node_id, resolved))
        return node_id

    def ensure_node(self, node_id: str, label: str | None = None) -> str:
        """Add the node if absent; return the id either way."""
        if node_id not in self._labels:
            self.add_node(node_id, label)
        return node_id

    def remove_node(self, node_id: str) -> list[Edge]:
        """Remove a node and every edge incident to it.

        Returns the removed incident edges, which callers (the
        transformation log, the difference operator) use to build
        inverse operations.
        """
        if node_id not in self._labels:
            raise NodeNotFoundError(node_id)
        incident = list(self._out[node_id] | self._in[node_id])
        for edge in incident:
            self.remove_edge(edge)
        label = self._labels.pop(node_id)
        peers = self._by_label[label]
        peers.discard(node_id)
        if not peers:
            del self._by_label[label]
        del self._out[node_id]
        del self._in[node_id]
        self._version += 1
        self._journal.append((self._version, "remove_node", node_id, label))
        return incident

    def has_node(self, node_id: str) -> bool:
        return node_id in self._labels

    def label(self, node_id: str) -> str:
        """The paper's ``lambda(n)``."""
        try:
            return self._labels[node_id]
        except KeyError:
            raise NodeNotFoundError(node_id) from None

    def relabel_node(self, node_id: str, label: str) -> None:
        """Change ``lambda(n)``, keeping all edges intact."""
        if not label:
            raise GraphError(f"node {node_id!r} must have a non-empty label")
        old = self.label(node_id)
        if old == label:
            return
        peers = self._by_label[old]
        peers.discard(node_id)
        if not peers:
            del self._by_label[old]
        self._labels[node_id] = label
        self._by_label.setdefault(label, set()).add(node_id)
        self._version += 1
        self._journal.append(
            (self._version, "relabel_node", node_id, old, label)
        )

    def nodes(self) -> Iterator[str]:
        return iter(self._labels)

    def node_count(self) -> int:
        return len(self._labels)

    def nodes_with_label(self, label: str) -> frozenset[str]:
        """All node ids whose label equals ``label`` exactly."""
        return frozenset(self._by_label.get(label, ()))

    def labels(self) -> Iterator[str]:
        """Iterate over the distinct node labels present in the graph."""
        return iter(self._by_label)

    # ------------------------------------------------------------------
    # edge operations
    # ------------------------------------------------------------------
    def add_edge(self, source: str, label: str, target: str) -> Edge:
        """Add the edge ``(source, label, target)``.

        Both endpoints must already exist.  Adding an edge that is
        already present is a no-op returning the existing edge value,
        mirroring set semantics of the paper's ``E' = E union SE``.
        """
        if source not in self._labels:
            raise NodeNotFoundError(source)
        if target not in self._labels:
            raise NodeNotFoundError(target)
        if not label:
            raise GraphError("edge label must be a non-empty string")
        edge = Edge(source, label, target)
        if edge not in self._edges:
            self._edges.add(edge)
            self._out[source].add(edge)
            self._in[target].add(edge)
            self._version += 1
            self._journal.append(
                (self._version, "add_edge", source, label, target)
            )
        return edge

    def remove_edge(self, edge: Edge) -> None:
        if edge not in self._edges:
            raise EdgeNotFoundError(edge)
        self._edges.discard(edge)
        self._out[edge.source].discard(edge)
        self._in[edge.target].discard(edge)
        self._version += 1
        self._journal.append(
            (self._version, "remove_edge", edge.source, edge.label,
             edge.target)
        )

    def discard_edge(self, edge: Edge) -> bool:
        """Remove the edge if present; return whether it was removed."""
        if edge in self._edges:
            self.remove_edge(edge)
            return True
        return False

    def has_edge(self, source: str, label: str, target: str) -> bool:
        return Edge(source, label, target) in self._edges

    def edges(self) -> Iterator[Edge]:
        return iter(self._edges)

    def edge_count(self) -> int:
        return len(self._edges)

    def out_edges(self, node_id: str, label: str | None = None) -> list[Edge]:
        """Outgoing edges of a node, optionally restricted to one label."""
        if node_id not in self._labels:
            raise NodeNotFoundError(node_id)
        edges = self._out[node_id]
        if label is None:
            return list(edges)
        return [e for e in edges if e.label == label]

    def in_edges(self, node_id: str, label: str | None = None) -> list[Edge]:
        """Incoming edges of a node, optionally restricted to one label."""
        if node_id not in self._labels:
            raise NodeNotFoundError(node_id)
        edges = self._in[node_id]
        if label is None:
            return list(edges)
        return [e for e in edges if e.label == label]

    def successors(self, node_id: str, label: str | None = None) -> set[str]:
        return {e.target for e in self.out_edges(node_id, label)}

    def predecessors(self, node_id: str, label: str | None = None) -> set[str]:
        return {e.source for e in self.in_edges(node_id, label)}

    def degree(self, node_id: str) -> int:
        if node_id not in self._labels:
            raise NodeNotFoundError(node_id)
        return len(self._out[node_id]) + len(self._in[node_id])

    def edge_labels(self) -> set[str]:
        """The distinct edge labels used in the graph."""
        return {e.label for e in self._edges}

    # ------------------------------------------------------------------
    # traversal
    # ------------------------------------------------------------------
    def reachable_from(
        self,
        start: str | Iterable[str],
        *,
        labels: Iterable[str] | None = None,
        reverse: bool = False,
    ) -> set[str]:
        """Nodes reachable from ``start`` by directed paths.

        ``labels`` restricts traversal to edges with those labels;
        ``reverse`` walks edges backwards.  The start nodes themselves
        are included (a node reaches itself by the empty path), matching
        the closure convention used by the difference operator (§5.3).
        """
        roots = [start] if isinstance(start, str) else list(start)
        for node in roots:
            if node not in self._labels:
                raise NodeNotFoundError(node)
        allowed = set(labels) if labels is not None else None
        seen: set[str] = set(roots)
        frontier: deque[str] = deque(roots)
        while frontier:
            node = frontier.popleft()
            edges = self._in[node] if reverse else self._out[node]
            for edge in edges:
                if allowed is not None and edge.label not in allowed:
                    continue
                nxt = edge.source if reverse else edge.target
                if nxt not in seen:
                    seen.add(nxt)
                    frontier.append(nxt)
        return seen

    def shortest_path(
        self, source: str, target: str, *, labels: Iterable[str] | None = None
    ) -> list[str] | None:
        """BFS shortest directed path as a node list, or None."""
        if source not in self._labels:
            raise NodeNotFoundError(source)
        if target not in self._labels:
            raise NodeNotFoundError(target)
        if source == target:
            return [source]
        allowed = set(labels) if labels is not None else None
        parent: dict[str, str] = {source: source}
        frontier: deque[str] = deque([source])
        while frontier:
            node = frontier.popleft()
            for edge in self._out[node]:
                if allowed is not None and edge.label not in allowed:
                    continue
                if edge.target in parent:
                    continue
                parent[edge.target] = node
                if edge.target == target:
                    path = [target]
                    while path[-1] != source:
                        path.append(parent[path[-1]])
                    path.reverse()
                    return path
                frontier.append(edge.target)
        return None

    def topological_order(self, *, labels: Iterable[str] | None = None) -> list[str]:
        """Kahn topological order over the chosen edge labels.

        Raises :class:`GraphError` if those edges contain a cycle.
        """
        allowed = set(labels) if labels is not None else None

        def counts_in(node: str) -> int:
            if allowed is None:
                return len(self._in[node])
            return sum(1 for e in self._in[node] if e.label in allowed)

        indegree = {n: counts_in(n) for n in self._labels}
        ready = deque(sorted(n for n, d in indegree.items() if d == 0))
        order: list[str] = []
        while ready:
            node = ready.popleft()
            order.append(node)
            for edge in sorted(self._out[node], key=lambda e: e.target):
                if allowed is not None and edge.label not in allowed:
                    continue
                indegree[edge.target] -= 1
                if indegree[edge.target] == 0:
                    ready.append(edge.target)
        if len(order) != len(self._labels):
            raise GraphError("graph contains a cycle over the selected labels")
        return order

    # ------------------------------------------------------------------
    # whole-graph operations
    # ------------------------------------------------------------------
    def copy(self) -> "LabeledGraph":
        clone = LabeledGraph()
        clone._labels = dict(self._labels)
        clone._edges = set(self._edges)
        clone._out = {n: set(edges) for n, edges in self._out.items()}
        clone._in = {n: set(edges) for n, edges in self._in.items()}
        clone._by_label = {lbl: set(ids) for lbl, ids in self._by_label.items()}
        # Match indexes are keyed to the original object; the clone
        # starts with none and its own version history.
        return clone

    def subgraph(self, node_ids: Iterable[str]) -> "LabeledGraph":
        """The subgraph induced by ``node_ids`` (edges with both ends kept)."""
        keep = set(node_ids)
        missing = keep - self._labels.keys()
        if missing:
            raise NodeNotFoundError(sorted(missing)[0])
        sub = LabeledGraph()
        for node in keep:
            sub.add_node(node, self._labels[node])
        for edge in self._edges:
            if edge.source in keep and edge.target in keep:
                sub.add_edge(edge.source, edge.label, edge.target)
        return sub

    def merge(self, other: "LabeledGraph") -> None:
        """Union ``other`` into this graph in place.

        Shared node ids must agree on their label; otherwise the two
        graphs describe different concepts under one id and merging
        would corrupt both, so we raise :class:`GraphError`.
        """
        for node in other.nodes():
            label = other.label(node)
            if self.has_node(node):
                if self.label(node) != label:
                    raise GraphError(
                        f"conflicting labels for node {node!r}: "
                        f"{self.label(node)!r} vs {label!r}"
                    )
            else:
                self.add_node(node, label)
        for edge in other.edges():
            self.add_edge(edge.source, edge.label, edge.target)

    def filter_nodes(self, predicate: Callable[[str, str], bool]) -> "LabeledGraph":
        """Induced subgraph of nodes where ``predicate(id, label)`` holds."""
        return self.subgraph(
            n for n, lbl in self._labels.items() if predicate(n, lbl)
        )

    def is_consistent(self) -> bool:
        """True iff every label names exactly one node (paper §1).

        A consistent vocabulary is what makes the label interchangeable
        with the node, as the paper assumes from §3 onwards.
        """
        return all(len(ids) == 1 for ids in self._by_label.values())

    # ------------------------------------------------------------------
    # comparison / export
    # ------------------------------------------------------------------
    def structure(self) -> tuple[frozenset[tuple[str, str]], frozenset[Edge]]:
        """A hashable snapshot: ``({(id, label)}, {edges})``."""
        return (
            frozenset(self._labels.items()),
            frozenset(self._edges),
        )

    def same_structure(self, other: "LabeledGraph") -> bool:
        """Exact equality of node ids, labels and edges."""
        return self.structure() == other.structure()

    def label_structure(
        self,
    ) -> tuple[frozenset[str], frozenset[tuple[str, str, str]]]:
        """Structure up to node identity: labels and label-level edges.

        Two consistent ontology graphs over the same vocabulary compare
        equal here even if their internal node ids differ.
        """
        labels = frozenset(self._labels.values())
        edges = frozenset(
            (self._labels[e.source], e.label, self._labels[e.target])
            for e in self._edges
        )
        return labels, edges

    def to_dict(self) -> dict:
        """A JSON-serializable snapshot of the graph."""
        return {
            "nodes": [
                {"id": n, "label": lbl} for n, lbl in sorted(self._labels.items())
            ],
            "edges": [
                {"source": e.source, "label": e.label, "target": e.target}
                for e in sorted(
                    self._edges, key=lambda e: (e.source, e.label, e.target)
                )
            ],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "LabeledGraph":
        graph = cls()
        for node in payload.get("nodes", ()):
            graph.add_node(node["id"], node.get("label"))
        for edge in payload.get("edges", ()):
            graph.add_edge(edge["source"], edge["label"], edge["target"])
        return graph

    def __len__(self) -> int:
        return len(self._labels)

    def __contains__(self, node_id: object) -> bool:
        return node_id in self._labels

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<LabeledGraph nodes={len(self._labels)} edges={len(self._edges)}>"
        )
