"""The articulation generator (paper §4).

Given source ontologies and a set of articulation rules, the generator
builds the **articulation**: an articulation ontology plus the semantic
bridges linking it to the sources.  Only the articulation is physically
stored — the unified ontology stays virtual (paper §2, "the unified
ontology is not a physical entity").

Rule interpretation follows the paper's worked examples one for one:

* ``O1:A => O2:B`` (both terms in source ontologies) — add node ``B``
  to the articulation, an ``SIBridge`` edge from ``O1:A`` to it, and a
  *pair* of ``SIBridge`` edges between ``O2:B`` and the articulation
  node establishing their equivalence.
* ``O1:A => ART:X => O2:B`` (cascade through the articulation) — add
  node ``X`` and the two directed bridges, nothing more.
* ``ART:X => ART:Y`` (both ends in the articulation) — a SubclassOf
  edge inside the articulation ontology ("the class Owner is a subclass
  of the class Person").
* ``(P ^ Q) => R`` — synthesize a class for the conjunction, bridge it
  *to* each conjunct and to ``R``, and bridge every common subclass of
  the conjuncts *into* the synthesized class.
* ``P => (Q | R)`` — synthesize a class for the disjunction and bridge
  the premise and every disjunct *into* it.
* ``Fn() : O1:A => ART:B`` — a conversion edge labeled ``Fn()`` (and
  its inverse when supplied), registered for the query processor.

All mutations go through the NA/EA transformation primitives and are
journaled, so the expert loop can inspect and roll back exactly what a
rule did, and benchmarks can count graph work.
"""

from __future__ import annotations

import threading
from collections.abc import Iterable, Mapping
from dataclasses import dataclass, field

from repro.core.graph import Edge, LabeledGraph
from repro.core.ontology import Ontology, qualify, split_qualified
from repro.core.relations import (
    SI_BRIDGE,
    SUBCLASS_OF,
    RelationRegistry,
    standard_registry,
)
from repro.core.rules import (
    AndOperand,
    ArticulationRuleSet,
    FunctionalRule,
    ImplicationRule,
    Operand,
    OrOperand,
    TermOperand,
    TermRef,
)
from repro.core.transform import EdgeAddition, NodeAddition, TransformLog
from repro.errors import ArticulationError, TermNotFoundError

__all__ = ["Articulation", "ArticulationGenerator"]

# One lock for every articulation's cached views (the unified graph
# and the covered-term set).  A module-level lock rather than a
# per-instance field keeps the dataclass copyable/picklable and costs
# nothing: the guarded sections are a fingerprint compare on hits, and
# serializing the occasional rebuild is exactly the point — concurrent
# serving threads must share ONE unified graph (and its match
# indexes), not race to build duplicates.
_CACHE_LOCK = threading.Lock()


@dataclass
class Articulation:
    """An articulation ontology plus its semantic bridges.

    ``bridges`` connect qualified node ids (``source:Term`` to
    ``articulation:Term``); ``ontology`` holds the articulation's own
    nodes and internal edges; ``functions`` maps a conversion edge
    label (``"PSToEuroFn()"``) to its executable rule.

    ``version`` is a monotonically bumped mutation stamp: the
    generator, the maintenance repair, and the bridge-dropping helpers
    bump it, and :meth:`fingerprint` combines it with the mutation
    versions of every underlying graph.  Derived state — the unified
    graph, the covered-term set, downstream inference programs — is
    cached against that fingerprint instead of being rebuilt per call;
    ``cache_stats`` counts the hits and misses tests and benchmarks
    assert on.
    """

    ontology: Ontology
    sources: dict[str, Ontology]
    rules: ArticulationRuleSet
    bridges: set[Edge] = field(default_factory=set)
    functions: dict[str, FunctionalRule] = field(default_factory=dict)
    log: TransformLog = field(default_factory=TransformLog)
    version: int = field(default=0, compare=False)
    cache_stats: dict[str, int] = field(
        default_factory=dict, repr=False, compare=False
    )
    _unified_cache: tuple[LabeledGraph, tuple, int] | None = field(
        default=None, repr=False, compare=False
    )
    _covered_cache: tuple[tuple, set[str]] | None = field(
        default=None, repr=False, compare=False
    )

    @property
    def name(self) -> str:
        return self.ontology.name

    # ------------------------------------------------------------------
    # version stamping
    # ------------------------------------------------------------------
    def bump_version(self) -> None:
        """Record a mutation not visible through the graph versions
        (bridge/function/rule swaps); invalidates every cached view."""
        self.version += 1

    def fingerprint(self) -> tuple:
        """A cheap change stamp over everything the unified view reads.

        Combines the explicit ``version`` with the mutation counters of
        the articulation graph and every source graph, plus
        order-insensitive content stamps of the bridge set and the
        function table (both public fields, mutable in place by
        external callers — size alone would miss an equal-count swap).
        O(#sources + #bridges), no graph traversal.
        """
        bridge_stamp = 0
        for edge in self.bridges:
            bridge_stamp ^= hash(edge)
        function_stamp = 0
        for label in self.functions:
            function_stamp ^= hash(label)
        return (
            self.version,
            self.ontology.graph.version,
            tuple(
                sorted(
                    (name, source.graph.version)
                    for name, source in self.sources.items()
                )
            ),
            len(self.bridges),
            bridge_stamp,
            len(self.functions),
            function_stamp,
            self.rules.version,
        )

    # ------------------------------------------------------------------
    # bridge navigation (used by algebra, query reformulation)
    # ------------------------------------------------------------------
    def bridges_from(self, qualified: str) -> list[Edge]:
        return [e for e in self.bridges if e.source == qualified]

    def bridges_to(self, qualified: str) -> list[Edge]:
        return [e for e in self.bridges if e.target == qualified]

    def source_terms_implying(self, art_term: str) -> set[str]:
        """Qualified source terms bridged *into* an articulation term.

        These are the source specializations of the articulation class:
        exactly the terms a query over the articulation must fan out to.
        """
        target = qualify(self.name, art_term)
        return {
            e.source
            for e in self.bridges
            if e.target == target and not e.source.startswith(f"{self.name}:")
        }

    def articulation_terms_for(self, qualified_source_term: str) -> set[str]:
        """Articulation terms a qualified source term is bridged into."""
        prefix = f"{self.name}:"
        return {
            split_qualified(e.target)[1]
            for e in self.bridges
            if e.source == qualified_source_term and e.target.startswith(prefix)
        }

    def covered_source_terms(self) -> set[str]:
        """All qualified source terms touched by any bridge.

        The maintenance story (§5.3) hinges on this set: changes to
        source terms outside it never require articulation updates.
        Cached against :meth:`fingerprint` — the maintainer classifies
        every change batch through it.
        """
        with _CACHE_LOCK:
            fp = self.fingerprint()
            cached = self._covered_cache
            if cached is not None and cached[0] == fp:
                self.cache_stats["covered_hits"] = (
                    self.cache_stats.get("covered_hits", 0) + 1
                )
                return set(cached[1])
            prefix = f"{self.name}:"
            covered: set[str] = set()
            for edge in self.bridges:
                for endpoint in (edge.source, edge.target):
                    if not endpoint.startswith(prefix):
                        covered.add(endpoint)
            self._covered_cache = (fp, covered)
            self.cache_stats["covered_misses"] = (
                self.cache_stats.get("covered_misses", 0) + 1
            )
            return set(covered)

    def conversion_between(
        self, qualified_source: str, qualified_target: str
    ) -> FunctionalRule | None:
        """The functional rule on a direct conversion edge, if any."""
        for edge in self.bridges:
            if (
                edge.source == qualified_source
                and edge.target == qualified_target
                and edge.label in self.functions
            ):
                return self.functions[edge.label]
        return None

    # ------------------------------------------------------------------
    # unified view (paper §2: virtual, computed on demand)
    # ------------------------------------------------------------------
    def unified_graph(self) -> LabeledGraph:
        """Sources + articulation + bridges, over qualified node ids.

        This is exactly the union semantics of §5.1:
        ``N = N1 + N2 + NA`` and ``E = E1 + E2 + EA + BridgeEdges``.

        The built graph is cached against :meth:`fingerprint`, so
        repeated algebra operators, query reformulation and match-index
        construction share one instance (and one set of pattern
        indexes) until something underneath actually changes.  Treat
        the result as read-only; a caller that mutates it bumps its
        version and the cache rebuilds on the next call.
        """
        with _CACHE_LOCK:
            fp = self.fingerprint()
            cached = self._unified_cache
            if cached is not None:
                graph, built_fp, built_version = cached
                if built_fp == fp and graph.version == built_version:
                    self.cache_stats["unified_hits"] = (
                        self.cache_stats.get("unified_hits", 0) + 1
                    )
                    return graph
            graph = LabeledGraph()
            for source in self.sources.values():
                graph.merge(source.qualified_graph())
            graph.merge(self.ontology.qualified_graph())
            for edge in self.bridges:
                # Bridge endpoints may reference terms removed from a
                # source since generation; skip dangling bridges rather
                # than fail.
                if graph.has_node(edge.source) and graph.has_node(edge.target):
                    graph.add_edge(edge.source, edge.label, edge.target)
            self._unified_cache = (graph, fp, graph.version)
            self.cache_stats["unified_misses"] = (
                self.cache_stats.get("unified_misses", 0) + 1
            )
            return graph

    def match_index(self, config) -> "object":
        """The cached pattern-match index over the unified graph.

        Import-light convenience for rule application and the algebra:
        the index lives on the cached unified graph, so it survives
        across calls exactly as long as the graph does.
        """
        from repro.core.patterns import MatchIndex

        return MatchIndex.for_graph(self.unified_graph(), config)

    def dangling_bridges(self) -> list[Edge]:
        """Bridges whose source-side endpoint no longer exists.

        Non-empty output means a source changed inside the articulated
        region and the articulation needs maintenance (§5.3).
        """
        dangling: list[Edge] = []
        for edge in self.bridges:
            for endpoint in (edge.source, edge.target):
                onto_name, term = split_qualified(endpoint)
                if onto_name == self.name:
                    exists = self.ontology.has_term(term)
                elif onto_name in self.sources:
                    exists = self.sources[onto_name].has_term(term)
                else:
                    exists = False
                if not exists:
                    dangling.append(edge)
                    break
        return dangling

    def drop_dangling_bridges(self) -> int:
        """Remove dangling bridges; return how many were dropped."""
        dangling = self.dangling_bridges()
        for edge in dangling:
            self.bridges.discard(edge)
        if dangling:
            self.bump_version()
        return len(dangling)

    def cost(self) -> int:
        """Total elementary graph changes spent building the articulation."""
        return self.log.total_cost()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<Articulation {self.name!r} terms={len(self.ontology)} "
            f"bridges={len(self.bridges)} sources={sorted(self.sources)}>"
        )


class ArticulationGenerator:
    """Builds an :class:`Articulation` from sources and rules (§4).

    The generator is reusable: :meth:`generate` starts a fresh
    articulation, while :meth:`extend` applies additional rules to an
    existing one (the expert's iterate-until-satisfied loop, §2.4).
    """

    def __init__(
        self,
        sources: Iterable[Ontology],
        *,
        name: str = "articulation",
        registry: RelationRegistry | None = None,
    ) -> None:
        self.sources: dict[str, Ontology] = {}
        for source in sources:
            if source.name in self.sources:
                raise ArticulationError(
                    f"duplicate source ontology name {source.name!r}"
                )
            self.sources[source.name] = source
        if name in self.sources:
            raise ArticulationError(
                f"articulation name {name!r} collides with a source"
            )
        self.name = name
        base = registry if registry is not None else standard_registry()
        for source in self.sources.values():
            base = base.merged_with(source.registry)
        self.registry = base

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def generate(self, rules: ArticulationRuleSet) -> Articulation:
        """Build the articulation for ``rules`` from scratch."""
        articulation = Articulation(
            ontology=Ontology(self.name, registry=self.registry.copy()),
            sources=dict(self.sources),
            rules=ArticulationRuleSet(),
        )
        self.extend(articulation, rules)
        return articulation

    def extend(
        self, articulation: Articulation, rules: ArticulationRuleSet
    ) -> int:
        """Apply additional rules to an existing articulation.

        Returns the number of rules newly applied.  Rules already in
        the articulation's rule set are skipped, which makes the
        SKAT-expert iteration idempotent.
        """
        applied = 0
        for rule in rules:
            if not articulation.rules.add(rule):
                continue
            if isinstance(rule, ImplicationRule):
                self._apply_implication(articulation, rule)
            elif isinstance(rule, FunctionalRule):
                self._apply_functional(articulation, rule)
            else:  # pragma: no cover - defensive
                raise ArticulationError(f"unsupported rule type: {rule!r}")
            applied += 1
        return applied

    # ------------------------------------------------------------------
    # rule interpretation
    # ------------------------------------------------------------------
    def _resolve(self, articulation: Articulation, ref: TermRef) -> str:
        """Resolve a term reference to a qualified node id.

        Source references must name existing terms.  References to the
        articulation ontology (explicit, or unqualified) create the
        term on demand — that is how cascades introduce new articulation
        classes like ``transport:PassengerCar``.
        """
        onto_name = ref.ontology or self.name
        if onto_name == self.name:
            if not articulation.ontology.has_term(ref.term):
                self._add_articulation_term(articulation, ref.term)
            return qualify(self.name, ref.term)
        source = self.sources.get(onto_name)
        if source is None:
            raise ArticulationError(
                f"rule references unknown ontology {onto_name!r}"
            )
        if not source.has_term(ref.term):
            raise TermNotFoundError(ref.term, onto_name)
        return qualify(onto_name, ref.term)

    def _add_articulation_term(
        self, articulation: Articulation, term: str
    ) -> str:
        articulation.log.apply(
            articulation.ontology.graph, NodeAddition(term, term)
        )
        return qualify(self.name, term)

    def _add_internal_edge(
        self, articulation: Articulation, source: str, label: str, target: str
    ) -> None:
        """An edge between two articulation terms (stored in the ontology)."""
        edge = Edge(source, label, target)
        if not articulation.ontology.graph.has_edge(source, label, target):
            articulation.log.apply(
                articulation.ontology.graph, EdgeAddition((edge,))
            )

    def _add_bridge(
        self, articulation: Articulation, source: str, label: str, target: str
    ) -> None:
        """A bridge edge between qualified endpoints (stored separately)."""
        edge = Edge(source, label, target)
        if edge not in articulation.bridges:
            articulation.bridges.add(edge)
            articulation.bump_version()
            # Bridges live outside any one graph; journal them on the
            # articulation's log with a free-standing EA for costing.
            articulation.log.applied.append(EdgeAddition((edge,)))

    def _connect(
        self, articulation: Articulation, specific: str, general: str
    ) -> None:
        """One atomic implication ``specific => general`` as graph work."""
        prefix = f"{self.name}:"
        spec_internal = specific.startswith(prefix)
        gen_internal = general.startswith(prefix)
        if spec_internal and gen_internal:
            # Paper: Owner => Person adds a SubclassOf edge inside the
            # articulation ontology.
            self._add_internal_edge(
                articulation,
                split_qualified(specific)[1],
                SUBCLASS_OF.code,
                split_qualified(general)[1],
            )
        else:
            self._add_bridge(articulation, specific, SI_BRIDGE.code, general)

    def _apply_implication(
        self, articulation: Articulation, rule: ImplicationRule
    ) -> None:
        # Resolve every step to a qualified node id, synthesizing
        # articulation classes for compound operands.
        resolved: list[str] = []
        for step in rule.steps:
            if isinstance(step, TermOperand):
                resolved.append(self._resolve(articulation, step.ref))
            else:
                resolved.append(
                    self._synthesize_compound(articulation, step, rule.label)
                )

        if rule.is_simple():
            spec_ref = rule.steps[0]
            gen_ref = rule.steps[-1]
            assert isinstance(spec_ref, TermOperand)
            assert isinstance(gen_ref, TermOperand)
            spec_onto = spec_ref.ref.ontology or self.name
            gen_onto = gen_ref.ref.ontology or self.name
            if spec_onto != self.name and gen_onto != self.name:
                # Paper's first worked example: copy the consequence
                # into the articulation and establish equivalence.
                art_node = self._add_articulation_term_if_missing(
                    articulation, gen_ref.ref.term
                )
                self._add_bridge(
                    articulation, resolved[0], SI_BRIDGE.code, art_node
                )
                self._add_bridge(
                    articulation, resolved[1], SI_BRIDGE.code, art_node
                )
                self._add_bridge(
                    articulation, art_node, SI_BRIDGE.code, resolved[1]
                )
                return

        for specific, general in zip(resolved, resolved[1:]):
            self._connect(articulation, specific, general)

    def _add_articulation_term_if_missing(
        self, articulation: Articulation, term: str
    ) -> str:
        if articulation.ontology.has_term(term):
            return qualify(self.name, term)
        return self._add_articulation_term(articulation, term)

    def _synthesize_compound(
        self,
        articulation: Articulation,
        operand: Operand,
        label_override: str | None,
    ) -> str:
        """Create the articulation class representing ``(A ^ B)`` / ``(A | B)``.

        Returns the qualified id of the synthesized node.
        """
        label = label_override or operand.default_label()
        node = self._add_articulation_term_if_missing(articulation, label)
        members = [
            self._resolve(articulation, term_ref)
            for term_ref in operand.terms()
        ]
        if isinstance(operand, AndOperand):
            # The synthesized class specializes every conjunct...
            for member in members:
                self._connect(articulation, node, member)
            # ...and every common subclass of all conjuncts specializes it.
            for common in self._common_subclasses(operand):
                self._connect(articulation, common, node)
        elif isinstance(operand, OrOperand):
            # Every disjunct specializes the synthesized class.
            for member in members:
                self._connect(articulation, member, node)
        else:  # pragma: no cover - defensive
            raise ArticulationError(f"unsupported operand: {operand!r}")
        return node

    def _common_subclasses(self, operand: AndOperand) -> list[str]:
        """Qualified terms that are (transitive) subclasses of *all* conjuncts.

        Computable only when every conjunct lives in one source
        ontology — cross-ontology conjunction has no shared subclass
        hierarchy to inspect, so it contributes no extra edges.
        """
        ontologies = {ref.ontology for ref in operand.terms()}
        if len(ontologies) != 1:
            return []
        onto_name = next(iter(ontologies))
        if onto_name is None or onto_name == self.name:
            return []
        source = self.sources.get(onto_name)
        if source is None:
            return []
        common: set[str] | None = None
        for ref in operand.terms():
            if not source.has_term(ref.term):
                raise TermNotFoundError(ref.term, onto_name)
            descendants = source.descendants(ref.term)
            common = descendants if common is None else common & descendants
        if not common:
            return []
        return sorted(qualify(onto_name, term) for term in common)

    def _apply_functional(
        self, articulation: Articulation, rule: FunctionalRule
    ) -> None:
        source = self._resolve(articulation, rule.source)
        target = self._resolve(articulation, rule.target)
        label = rule.edge_label()
        self._add_bridge(articulation, source, label, target)
        articulation.functions[label] = rule
        articulation.bump_version()
        inverse_label = rule.inverse_edge_label()
        if inverse_label is not None:
            self._add_bridge(articulation, target, inverse_label, source)
            articulation.functions[inverse_label] = FunctionalRule(
                rule.inverse_name or f"{rule.name}Inverse",
                rule.target,
                rule.source,
                fn=rule.inverse,
                inverse=rule.fn,
                inverse_name=rule.name,
                source_kind=rule.source_kind,
            )

    # ------------------------------------------------------------------
    # structure inheritance (§4.2)
    # ------------------------------------------------------------------
    def inherit_structure(
        self,
        articulation: Articulation,
        source_name: str,
        *,
        terms: Iterable[str] | None = None,
        transitive: bool = False,
    ) -> int:
        """Copy source structure into the articulation ontology (§4.2).

        For every pair of articulation terms that are bridged to terms
        of ``source_name``, copy the edges that connect those source
        terms ("the articulation generator generates the edges between
        the nodes in the articulation ontology based primarily on the
        edges in the selected portion of O_i").  With ``transitive``,
        SubclassOf paths also become direct edges.  Returns the number
        of edges added.
        """
        source = self.sources.get(source_name)
        if source is None:
            raise ArticulationError(f"unknown source ontology {source_name!r}")
        selected = set(terms) if terms is not None else None

        # articulation term -> the source terms it is bridged to.
        counterpart: dict[str, set[str]] = {}
        prefix_src = f"{source_name}:"
        prefix_art = f"{self.name}:"
        for edge in articulation.bridges:
            ends = (edge.source, edge.target)
            for a, b in (ends, ends[::-1]):
                if a.startswith(prefix_src) and b.startswith(prefix_art):
                    src_term = split_qualified(a)[1]
                    art_term = split_qualified(b)[1]
                    if selected is not None and src_term not in selected:
                        continue
                    counterpart.setdefault(art_term, set()).add(src_term)

        added = 0
        art_terms = list(counterpart)
        for i, art_a in enumerate(art_terms):
            for art_b in art_terms:
                if art_a == art_b:
                    continue
                for src_a in counterpart[art_a]:
                    for src_b in counterpart[art_b]:
                        for edge in source.graph.out_edges(src_a):
                            if edge.target != src_b:
                                continue
                            if not articulation.ontology.graph.has_edge(
                                art_a, edge.label, art_b
                            ):
                                self._add_internal_edge(
                                    articulation, art_a, edge.label, art_b
                                )
                                added += 1
                        if transitive and not source.graph.has_edge(
                            src_a, SUBCLASS_OF.code, src_b
                        ):
                            if src_b in source.ancestors(src_a):
                                if not articulation.ontology.graph.has_edge(
                                    art_a, SUBCLASS_OF.code, art_b
                                ):
                                    self._add_internal_edge(
                                        articulation,
                                        art_a,
                                        SUBCLASS_OF.code,
                                        art_b,
                                    )
                                    added += 1
        return added
