"""Baseline integration strategies the paper argues against:
global-schema merging and manually specified mediator views."""

from repro.baselines.global_schema import GlobalSchemaIntegrator
from repro.baselines.manual_views import ManualViewIntegrator, ViewSpec

__all__ = [
    "GlobalSchemaIntegrator",
    "ManualViewIntegrator",
    "ViewSpec",
]
