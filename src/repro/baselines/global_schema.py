"""The global-schema integration baseline (what the paper argues against).

§1: "Most prior work on the use of ontologies relies on the
construction of a single global ontology covering all sources.  Such an
approach is not scalable and maintainable especially when the sources
change frequently."

:class:`GlobalSchemaIntegrator` implements that strategy faithfully so
the scalability and maintenance benchmarks have a real opponent: it
merges *every* term and edge of *every* source into one physical
ontology, unifying aligned concepts with a union-find, and — the
crucial part — any change to any source forces a full re-merge,
because the merged artifact has no record of which regions depend on
which source (that record is exactly what ONION's articulation is).

Costs are counted in elementary graph operations, the same currency
the articulation generator's transform log uses.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping

from repro.core.ontology import Ontology, qualify, split_qualified
from repro.errors import AlgebraError

__all__ = ["GlobalSchemaIntegrator"]


class _UnionFind:
    def __init__(self) -> None:
        self._parent: dict[str, str] = {}

    def find(self, item: str) -> str:
        parent = self._parent.setdefault(item, item)
        if parent == item:
            return item
        root = self.find(parent)
        self._parent[item] = root
        return root

    def union(self, a: str, b: str) -> None:
        root_a, root_b = self.find(a), self.find(b)
        if root_a != root_b:
            # Deterministic representative: lexicographically smallest.
            keep, drop = sorted((root_a, root_b))
            self._parent[drop] = keep


class GlobalSchemaIntegrator:
    """Merge-everything integration with full-rebuild maintenance."""

    def __init__(
        self,
        sources: Iterable[Ontology],
        alignment: Iterable[tuple[str, str]] = (),
        *,
        name: str = "global",
    ) -> None:
        """``alignment`` pairs qualified terms (``o1:A``, ``o2:B``) that
        denote the same concept — the same knowledge an articulation's
        equivalence rules carry, spent here on merging nodes."""
        self.sources: dict[str, Ontology] = {}
        for source in sources:
            if source.name in self.sources:
                raise AlgebraError(
                    f"duplicate source ontology name {source.name!r}"
                )
            self.sources[source.name] = source
        self.alignment = list(alignment)
        self.name = name
        self.merged: Ontology | None = None
        self.total_cost = 0
        self.build_count = 0

    # ------------------------------------------------------------------
    # the merge
    # ------------------------------------------------------------------
    def build(self) -> Ontology:
        """(Re)build the global schema from scratch; accumulates cost."""
        uf = _UnionFind()
        for pair in self.alignment:
            qualified_a, qualified_b = pair
            uf.union(qualified_a, qualified_b)

        merged = Ontology(self.name)
        cost = 0

        def merged_term(qualified: str) -> str:
            root = uf.find(qualified)
            # The representative's bare term names the merged concept;
            # qualify on collision with a *different* concept.
            _onto, term = split_qualified(root)
            candidate = term
            if merged.has_term(candidate):
                existing_root = representative.get(candidate)
                if existing_root == root:
                    return candidate
                candidate = root.replace(":", ".")
            if not merged.has_term(candidate):
                merged.ensure_term(candidate)
                representative[candidate] = root
                nonlocal cost
                cost += 1
            return candidate

        representative: dict[str, str] = {}
        for source_name, source in sorted(self.sources.items()):
            for term in sorted(source.terms()):
                merged_term(qualify(source_name, term))
            for edge in sorted(
                source.graph.edges(),
                key=lambda e: (e.source, e.label, e.target),
            ):
                merged_source = merged_term(qualify(source_name, edge.source))
                merged_target = merged_term(qualify(source_name, edge.target))
                if not merged.graph.has_edge(
                    merged_source, edge.label, merged_target
                ):
                    merged.relate(merged_source, edge.label, merged_target)
                    cost += 1

        self.merged = merged
        self.total_cost += cost
        self.build_count += 1
        return merged

    # ------------------------------------------------------------------
    # maintenance: every change is a full rebuild
    # ------------------------------------------------------------------
    def update_source(self, ontology: Ontology) -> Ontology:
        """A source changed: replace it and re-merge everything.

        This is the maintenance behaviour the paper criticizes — the
        merged schema cannot absorb an incremental change because the
        provenance of its regions was erased by the merge.
        """
        if ontology.name not in self.sources:
            raise AlgebraError(f"unknown source {ontology.name!r}")
        self.sources[ontology.name] = ontology
        return self.build()

    def maintenance_cost_for(self, changed_terms: Iterable[str]) -> int:
        """Cost charged for a batch of source changes: one full rebuild,
        regardless of how small or how irrelevant the change was."""
        _ = list(changed_terms)  # the baseline cannot exploit locality
        before = self.total_cost
        self.build()
        return self.total_cost - before
