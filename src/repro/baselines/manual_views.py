"""The manual-view mediation baseline (paper §1).

"Recent progress in automated support for mediated systems, using
views, has been described by [Infomaster, Information Manifold, ...].
Defining such views, however, requires manual specification.  Views
need to be updated or reconstructed even for small changes to the
individual sources."

:class:`ManualViewIntegrator` models that cost structure: a human
writes one view per exposed concept per source; any schema change to a
source invalidates *every* view over that source (the mediator cannot
tell which views a change misses — that analysis is exactly what
ONION's difference operator provides), and each invalidated view costs
a manual revision plus a refresh.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass, field

from repro.core.ontology import Ontology
from repro.errors import AlgebraError

__all__ = ["ViewSpec", "ManualViewIntegrator"]


@dataclass
class ViewSpec:
    """One manually written mediator view over one source."""

    name: str
    source: str
    exposed_terms: tuple[str, ...]
    revision: int = 0

    def touches(self, terms: Iterable[str]) -> bool:
        return bool(set(terms) & set(self.exposed_terms))


@dataclass
class ManualViewIntegrator:
    """Tracks the human cost of view-based mediation."""

    sources: dict[str, Ontology] = field(default_factory=dict)
    views: list[ViewSpec] = field(default_factory=list)
    specification_cost: int = 0
    maintenance_cost: int = 0

    def add_source(self, ontology: Ontology) -> None:
        if ontology.name in self.sources:
            raise AlgebraError(f"duplicate source {ontology.name!r}")
        self.sources[ontology.name] = ontology

    def define_views(
        self, source_name: str, *, terms_per_view: int = 5
    ) -> list[ViewSpec]:
        """Manually specify views exposing a source's vocabulary.

        One view per ``terms_per_view`` terms — the granularity a human
        mediator designer typically chooses.  Each view costs one
        specification unit per exposed term.
        """
        source = self.sources.get(source_name)
        if source is None:
            raise AlgebraError(f"unknown source {source_name!r}")
        terms = sorted(source.terms())
        created: list[ViewSpec] = []
        for index in range(0, len(terms), terms_per_view):
            chunk = tuple(terms[index : index + terms_per_view])
            view = ViewSpec(
                f"{source_name}_view{index // terms_per_view}",
                source_name,
                chunk,
            )
            self.views.append(view)
            created.append(view)
            self.specification_cost += len(chunk)
        return created

    def source_changed(
        self, source_name: str, changed_terms: Iterable[str] | None = None
    ) -> int:
        """A source changed: revise every view over it.

        ``changed_terms`` is accepted for interface parity with the
        articulation but *cannot be exploited*: without a difference
        operator the mediator maintainer must re-validate every view
        over the source.  Returns the maintenance cost charged.
        """
        _ = changed_terms
        if source_name not in self.sources:
            raise AlgebraError(f"unknown source {source_name!r}")
        cost = 0
        for view in self.views:
            if view.source == source_name:
                view.revision += 1
                cost += len(view.exposed_terms)
        self.maintenance_cost += cost
        return cost
