"""Exception hierarchy for the ONION reproduction.

Every error raised by the library derives from :class:`OnionError`, so
callers can catch one type at the API boundary.  Subclasses are split by
subsystem to keep ``except`` clauses precise.
"""

from __future__ import annotations


class OnionError(Exception):
    """Base class for all errors raised by this library."""


class GraphError(OnionError):
    """Structural violation in a labeled graph (missing node, dangling edge)."""


class NodeNotFoundError(GraphError):
    """An operation referenced a node id that is not in the graph."""

    def __init__(self, node_id: str) -> None:
        super().__init__(f"node not found: {node_id!r}")
        self.node_id = node_id


class EdgeNotFoundError(GraphError):
    """An operation referenced an edge that is not in the graph."""

    def __init__(self, edge: object) -> None:
        super().__init__(f"edge not found: {edge!r}")
        self.edge = edge


class DuplicateNodeError(GraphError):
    """A node id was added twice."""

    def __init__(self, node_id: str) -> None:
        super().__init__(f"node already exists: {node_id!r}")
        self.node_id = node_id


class OntologyError(OnionError):
    """Violation of ontology-level invariants (e.g. term consistency)."""


class TermNotFoundError(OntologyError):
    """A referenced term does not exist in the ontology."""

    def __init__(self, term: str, ontology: str | None = None) -> None:
        where = f" in ontology {ontology!r}" if ontology else ""
        super().__init__(f"term not found{where}: {term!r}")
        self.term = term
        self.ontology = ontology


class ConsistencyError(OntologyError):
    """The ontology is inconsistent: one term maps to several concepts."""


class RuleError(OnionError):
    """Malformed or unresolvable articulation rule."""


class RuleParseError(RuleError):
    """Textual rule could not be parsed."""

    def __init__(self, text: str, reason: str) -> None:
        super().__init__(f"cannot parse rule {text!r}: {reason}")
        self.text = text
        self.reason = reason


class PatternError(OnionError):
    """Malformed graph pattern or pattern expression."""


class PatternParseError(PatternError):
    """Textual pattern could not be parsed."""

    def __init__(self, text: str, reason: str) -> None:
        super().__init__(f"cannot parse pattern {text!r}: {reason}")
        self.text = text
        self.reason = reason


class ArticulationError(OnionError):
    """The articulation generator could not apply a rule set."""


class AlgebraError(OnionError):
    """Invalid operands for an ontology-algebra operation."""


class InferenceError(OnionError):
    """The inference engine hit an unsupported construct or a contradiction."""


class ContradictionError(InferenceError):
    """A logical contradiction was derived (e.g. disjoint classes unified)."""


class QueryError(OnionError):
    """Query subsystem failure."""


class QueryParseError(QueryError):
    """Textual query could not be parsed."""

    def __init__(self, text: str, reason: str) -> None:
        super().__init__(f"cannot parse query {text!r}: {reason}")
        self.text = text
        self.reason = reason


class PlanningError(QueryError):
    """No executable plan could be derived for a query."""


class FormatError(OnionError):
    """External representation could not be read or written."""


class KnowledgeBaseError(OnionError):
    """Instance-level violation in a knowledge base."""


class LexiconError(OnionError):
    """Semantic lexicon failure (unknown synset, malformed entry)."""


class ServingError(OnionError):
    """The serving subsystem cannot satisfy a request (bad state,
    unknown session, no articulation loaded)."""


class ProtocolError(ServingError):
    """A serving request violates the JSON protocol (missing field,
    wrong type, malformed atom)."""
