"""Reliability layer: fault injection, retry policy, churn journal.

The inference runtime treats worker failure and degraded operation as
the normal case (the mediator-anatomy lesson): the parallel stratum
scheduler retries, times out, respawns its pool, and degrades to a
serial in-process run rather than ever changing results; batched churn
write-ahead journals its diffs so a crash mid-batch replays to the
last consistent fixpoint; the SQLite backend waits out and retries
locked databases.  This package holds the three shared pieces:

* :class:`~repro.reliability.policy.RetryPolicy` — deterministic
  bounded retry/backoff/timeout knobs;
* :class:`~repro.reliability.faults.FaultPlan` — seeded, replayable
  fault injection threaded through test-only hooks in the engine and
  the backend;
* :class:`~repro.reliability.journal.ChurnJournal` — the write-ahead
  log behind crash-safe :meth:`HornEngine.apply_batch`.
"""

from repro.reliability.faults import (
    FAULT_SITES,
    FaultInjected,
    FaultPlan,
    TaskFault,
)
from repro.reliability.journal import ChurnJournal, JournalError
from repro.reliability.policy import (
    DEFAULT_RETRY_POLICY,
    SQLITE_RETRY_POLICY,
    RetryPolicy,
)

__all__ = [
    "DEFAULT_RETRY_POLICY",
    "FAULT_SITES",
    "SQLITE_RETRY_POLICY",
    "ChurnJournal",
    "FaultInjected",
    "FaultPlan",
    "JournalError",
    "RetryPolicy",
    "TaskFault",
]
